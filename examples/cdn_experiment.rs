//! Re-run the paper's §5 CDN deployment: the 5000-certificate reissue,
//! the IP-alignment experiment (§5.2), and the ORIGIN frame
//! experiment (§5.3), with both active and passive measurements.
//!
//! ```sh
//! cargo run --release --example cdn_experiment
//! ```

use respect_origin::cdn::{ActiveMeasurement, DeploymentMode, PassivePipeline, SampleGroup};
use respect_origin::netsim::SimRng;

fn main() {
    let mut rng = SimRng::seed_from_u64(0x0516);
    let group = SampleGroup::build(5_000, &mut rng);
    println!(
        "sample group: 5000 candidates − {} subpage-only = {} domains; equal-byte cert check: {}",
        group.removed_subpage_only,
        group.sites.len(),
        if group.equal_byte_check() {
            "OK"
        } else {
            "FAILED"
        }
    );

    // §5.2 — IP-based coalescing via DNS alignment.
    println!("\n== §5.2 IP-based coalescing (August 2021) ==");
    let (exp, ctl) = ActiveMeasurement::ip_experiment().run_both(&group, 42);
    println!(
        "active (Firefox v91): zero new connections to the third party: experiment {:.0}%, control {:.0}% (paper: 70% / 9%)",
        exp.fraction_with(0) * 100.0,
        ctl.fraction_with(0) * 100.0
    );
    let passive = PassivePipeline::new(DeploymentMode::IpAligned).run(&group, 42);
    println!(
        "passive (1% sampled, all browsers): {:.0}% reduction in TLS connection rate (paper: 56%)",
        passive.tp_connection_reduction() * 100.0
    );

    // §5.3 — ORIGIN frames, DNS reverted.
    println!("\n== §5.3 ORIGIN frame coalescing (January 2022) ==");
    let (exp, ctl) = ActiveMeasurement::origin_experiment().run_both(&group, 43);
    println!(
        "active (Firefox v96): zero new connections: experiment {:.0}%, control {:.0}% (paper: 64% / 6%)",
        exp.fraction_with(0) * 100.0,
        ctl.fraction_with(0) * 100.0
    );
    println!(
        "active: one new connection: experiment {:.0}% (paper: 33%); max connections seen: {}",
        exp.fraction_with(1) * 100.0,
        exp.max_connections()
    );
    let passive = PassivePipeline::new(DeploymentMode::OriginFrames).run(&group, 43);
    println!(
        "passive (Firefox UAs): {:.0}% reduction in TLS connection rate (paper: ≈50%)",
        passive.tp_connection_reduction() * 100.0
    );
    println!(
        "PLT: experiment median {:.0}ms vs control {:.0}ms — 'no worse' (§6.1)",
        exp.median_plt(),
        ctl.median_plt()
    );
}
