//! A miniature "edge" demo on the raw frame layer: shows the exact
//! bytes of an ORIGIN frame on the wire, the fail-open rule for
//! unknown frames, and the §6.7 middlebox failure.
//!
//! ```sh
//! cargo run --example origin_server
//! ```

use bytes_dump::hex;
use respect_origin::h2::{Frame, FrameDecoder, FrameType, OriginSet};
use respect_origin::netsim::fault::NonCompliantMiddlebox;
use respect_origin::netsim::{Middlebox, MiddleboxVerdict};

mod bytes_dump {
    /// Tiny hex-dump helper for the demo output.
    pub fn hex(data: &[u8]) -> String {
        data.iter()
            .map(|b| format!("{b:02x}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn main() {
    // Build the origin set the paper's deployment advertised.
    let set = OriginSet::from_hosts(["sample-00001.example", "cdnjs.cloudflare.com"]);
    let frame = set.to_frame();
    let wire = frame.to_bytes();
    println!("ORIGIN frame ({} bytes on the wire):", wire.len());
    println!("  {}", hex(&wire));
    println!(
        "  type octet = {:#04x} (RFC 8336)",
        FrameType::Origin.to_u8()
    );

    // Decode it back.
    let decoder = FrameDecoder::default();
    let mut buf = bytes::BytesMut::from(&wire[..]);
    let decoded = decoder.decode(&mut buf).expect("valid").expect("complete");
    if let Frame::Origin { origins } = &decoded {
        println!("decoded origin set: {origins:?}");
    }

    // RFC 7540 §4.1: a compliant endpoint must IGNORE unknown frames.
    // The §6.7 antivirus agent instead tore the connection down:
    let buggy = NonCompliantMiddlebox::default();
    println!("\n§6.7 middlebox inspecting frame types:");
    for (label, ft) in [
        ("DATA", 0x00u8),
        ("SETTINGS", 0x04),
        ("ALTSVC", 0x0a),
        ("ORIGIN", 0x0c),
    ] {
        let verdict = buggy.inspect(ft);
        println!(
            "  {label:<8} ({ft:#04x}) → {verdict:?}{}",
            if verdict == MiddleboxVerdict::TearDown {
                "   ← the bug: must be Forward"
            } else {
                ""
            }
        );
    }
    println!("\nclients behind that agent lost every connection to ORIGIN-enabled sites");
    println!("until the vendor fixed the product (confirmed September 2022).");
}
