//! Render the Figure 2 waterfall: a measured page-load timeline and
//! its §4.1 reconstruction under ORIGIN coalescing.
//!
//! ```sh
//! cargo run --release --example waterfall
//! ```

use respect_origin::browser::{BrowserKind, PageLoader, UniverseEnv};
use respect_origin::model::model::{predict, CoalescingGrouping};
use respect_origin::netsim::SimRng;
use respect_origin::web::waterfall;
use respect_origin::webgen::{Dataset, DatasetConfig};

fn main() {
    let dataset = Dataset::generate(DatasetConfig {
        sites: 60,
        ..Default::default()
    });
    // Pick a small page so the waterfall is readable.
    let site = dataset
        .sites()
        .iter()
        .filter(|s| !s.failed && !s.services.is_empty())
        .min_by_key(|s| s.n_requests)
        .expect("a usable site")
        .clone();
    let page = dataset.page_for(&site);
    let mut env = UniverseEnv::new(&dataset);
    env.flush_dns();
    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut rng = SimRng::seed_from_u64(site.page_seed);
    let measured = loader.load(&page, &mut env, &mut rng);
    let (_, reconstructed) = predict(&page, &measured, CoalescingGrouping::ByAs);

    let mut before = measured.clone();
    let mut after = reconstructed.clone();
    before.requests.truncate(10);
    after.requests.truncate(10);
    println!("{}", waterfall::render_comparison(&before, &after, 80));
    println!(
        "full page: {} requests | measured PLT {:.0}ms → reconstructed {:.0}ms",
        measured.request_count(),
        measured.plt(),
        reconstructed.plt()
    );
}
