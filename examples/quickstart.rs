//! Quickstart: an HTTP/2 server advertising an ORIGIN frame, and a
//! client that coalesces onto the connection.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the library's "hello world": everything is sans-IO, so the
//! example moves the bytes between the two endpoints itself — exactly
//! what a socket loop (or the discrete-event simulator) would do.

use respect_origin::h2::conn::{request_headers, status_of, ServerConfig};
use respect_origin::h2::{Connection, Event, OriginSet, Settings};

fn main() {
    // A server configured like the paper's deployment: it serves the
    // customer domain and the popular third-party domain, and says so
    // with an ORIGIN frame on stream 0.
    let mut server = Connection::server(ServerConfig {
        settings: Settings::default(),
        origin_set: Some(OriginSet::from_hosts([
            "shop.example",
            "cdnjs.cloudflare.com",
        ])),
        authorized: vec!["shop.example".into(), "cdnjs.cloudflare.com".into()],
    });

    // A client that connected (via TLS, SNI = shop.example).
    let mut client = Connection::client("shop.example", Settings::default());

    // Pump bytes until quiescent; collect what the client learns.
    let mut events = Vec::new();
    loop {
        let c = client.take_outgoing();
        let s = server.take_outgoing();
        if c.is_empty() && s.is_empty() {
            break;
        }
        if !c.is_empty() {
            for ev in server.recv(&c).expect("server recv") {
                if let Event::Headers {
                    stream, headers, ..
                } = ev
                {
                    // Serve anything we're authorized for; 421 otherwise.
                    let authority = respect_origin::h2::conn::authority_of(&headers)
                        .unwrap_or("")
                        .to_string();
                    if server.is_authorized(&authority) {
                        server.send_response(stream, 200, b"hello from the edge");
                    } else {
                        server.send_misdirected(stream);
                    }
                }
            }
        }
        if !s.is_empty() {
            events.extend(client.recv(&s).expect("client recv"));
        }
    }

    // The ORIGIN frame arrived and updated the client's origin set.
    for ev in &events {
        if let Event::OriginReceived { origins } = ev {
            println!("ORIGIN frame received: {origins:?}");
        }
    }
    assert!(client.origin_allows("cdnjs.cloudflare.com"));
    println!("client may now coalesce requests for cdnjs.cloudflare.com — no DNS, no new TLS");

    // Issue a request for the original host AND a coalesced one.
    client.send_request(&request_headers("GET", "shop.example", "/"), true);
    client.send_request(
        &request_headers("GET", "cdnjs.cloudflare.com", "/ajax/libs/jquery.min.js"),
        true,
    );
    let mut statuses = Vec::new();
    loop {
        let c = client.take_outgoing();
        let s = server.take_outgoing();
        if c.is_empty() && s.is_empty() {
            break;
        }
        if !c.is_empty() {
            for ev in server.recv(&c).expect("server recv") {
                if let Event::Headers { stream, .. } = ev {
                    server.send_response(stream, 200, b"{}");
                }
            }
        }
        if !s.is_empty() {
            for ev in client.recv(&s).expect("client recv") {
                if let Event::Headers { headers, .. } = ev {
                    if let Some(code) = status_of(&headers) {
                        statuses.push(code);
                    }
                }
            }
        }
    }
    println!("responses on one connection: {statuses:?}");
    assert_eq!(statuses, vec![200, 200]);
    println!("done: two origins, one TLS connection.");
}
