//! Crawl a synthetic web dataset and run the paper's §4 best-case
//! coalescing model over it.
//!
//! ```sh
//! cargo run --release --example crawl_and_model -- [sites]
//! ```
//!
//! Prints the Figure 3 medians (measured vs ideal IP vs ideal ORIGIN
//! DNS/TLS counts) and the Figure 9 PLT predictions.

use respect_origin::browser::{BrowserKind, PageLoader, UniverseEnv};
use respect_origin::model::model::{predict, CoalescingGrouping};
use respect_origin::netsim::SimRng;
use respect_origin::webgen::{Dataset, DatasetConfig};

fn main() {
    let sites: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    println!("generating {sites} synthetic sites…");
    let dataset = Dataset::generate(DatasetConfig {
        sites,
        ..Default::default()
    });
    let site_cfgs: Vec<_> = dataset.successful_sites().cloned().collect();
    println!(
        "{} crawls succeeded ({} failed, like the paper's non-200/CAPTCHA losses)",
        site_cfgs.len(),
        sites as usize - site_cfgs.len()
    );

    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut measured = (vec![], vec![], vec![]); // dns, tls, plt
    let mut ideal_ip = (vec![], vec![], vec![]);
    let mut ideal_origin = (vec![], vec![], vec![]);
    for site in &site_cfgs {
        let page = dataset.page_for(site);
        let mut env = UniverseEnv::new(&dataset);
        env.flush_dns(); // fresh browser session per page (§3.1)
        let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
        let load = loader.load(&page, &mut env, &mut rng);
        measured.0.push(load.dns_queries() as f64);
        measured.1.push(load.tls_connections() as f64);
        measured.2.push(load.plt());
        let (ip, _) = predict(&page, &load, CoalescingGrouping::ByIp);
        ideal_ip.0.push(ip.dns_queries as f64);
        ideal_ip.1.push(ip.tls_connections as f64);
        ideal_ip.2.push(ip.plt_ms);
        let (origin, _) = predict(&page, &load, CoalescingGrouping::ByAs);
        ideal_origin.0.push(origin.dns_queries as f64);
        ideal_origin.1.push(origin.tls_connections as f64);
        ideal_origin.2.push(origin.plt_ms);
    }

    let med = |v: &[f64]| respect_origin::stats::median(v).unwrap_or(0.0);
    println!("\n                         DNS     TLS     PLT");
    println!(
        "measured (Chrome)      {:>5.1}  {:>6.1}  {:>7.0}ms",
        med(&measured.0),
        med(&measured.1),
        med(&measured.2)
    );
    println!(
        "ideal IP coalescing    {:>5.1}  {:>6.1}  {:>7.0}ms",
        med(&ideal_ip.0),
        med(&ideal_ip.1),
        med(&ideal_ip.2)
    );
    println!(
        "ideal ORIGIN frames    {:>5.1}  {:>6.1}  {:>7.0}ms",
        med(&ideal_origin.0),
        med(&ideal_origin.1),
        med(&ideal_origin.2)
    );
    println!(
        "\nORIGIN reductions: DNS {:+.1}% | TLS {:+.1}% | PLT {:+.1}%   (paper: −64%, −67%, −27%)",
        respect_origin::stats::percent_change(med(&measured.0), med(&ideal_origin.0)),
        respect_origin::stats::percent_change(med(&measured.1), med(&ideal_origin.1)),
        respect_origin::stats::percent_change(med(&measured.2), med(&ideal_origin.2)),
    );
}
