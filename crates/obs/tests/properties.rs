//! Property-law tests for the streaming aggregates (seeded, no
//! external quickcheck): sketch error bounds against exact sorted
//! percentiles, and merge associativity / shard-order invariance for
//! sketches and timelines.

use origin_obs::window::{DEFAULT_SPACING, DEFAULT_WINDOW};
use origin_obs::{Exemplar, QuantileSketch, Timeline, VisitObs};

/// Minimal deterministic generator (splitmix64) for the property runs.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A value in `0..bound`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Nearest-rank exact percentile of a sorted slice.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let k = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[k - 1]
}

#[test]
fn sketch_quantiles_match_exact_within_documented_error() {
    for seed in 0..20u64 {
        let mut gen = Gen::new(seed);
        let n = 50 + gen.below(2_000) as usize;
        // Mix magnitudes: uniform small, heavy-tailed large.
        let mut values: Vec<u64> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    gen.below(100)
                } else {
                    let shift = 4 + gen.below(24);
                    gen.below(1 << shift)
                }
            })
            .collect();
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.record(v, None);
        }
        values.sort_unstable();
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = sketch.quantile(q);
            assert!(
                est >= exact && est <= exact + exact / 8 + 1,
                "seed {seed} q {q}: exact {exact}, estimate {est}"
            );
        }
        assert_eq!(sketch.max(), *values.last().unwrap());
        assert_eq!(sketch.quantile(1.0), *values.last().unwrap());
    }
}

#[test]
fn sketch_merge_is_associative_and_commutative() {
    for seed in 0..10u64 {
        let mut gen = Gen::new(0xABCD ^ seed);
        let parts: Vec<QuantileSketch> = (0..3)
            .map(|p| {
                let mut s = QuantileSketch::new();
                for _ in 0..200 {
                    let v = gen.below(1 << 20);
                    s.record(
                        v,
                        Some(Exemplar {
                            value: v,
                            rank: gen.below(500) as u32,
                            span_id: gen.below(1 << 30),
                        }),
                    );
                }
                let _ = p;
                s
            })
            .collect();
        let [a, b, c] = [&parts[0], &parts[1], &parts[2]];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(b);
        left.merge(c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a
        let mut rev = c.clone();
        rev.merge(b);
        rev.merge(a);
        assert_eq!(left, right, "associativity failed at seed {seed}");
        assert_eq!(left, rev, "commutativity failed at seed {seed}");
    }
}

fn random_visit(gen: &mut Gen, rank: u32) -> VisitObs {
    let requests = 1 + gen.below(40);
    let mut v = VisitObs {
        rank,
        plt_us: 100_000 + gen.below(8_000_000),
        plt_ideal_ip_us: 100_000 + gen.below(6_000_000),
        plt_ideal_origin_us: 100_000 + gen.below(5_000_000),
        plt_span: ((rank as u64) << 24) | gen.below(100),
        requests,
        coalesced_requests: gen.below(requests + 1),
        connections_opened: 1 + gen.below(20),
        dns_queries: gen.below(20),
        dns_cache_hits: gen.below(10),
        dns_cache_misses: gen.below(10),
        measured_tls: 1 + gen.below(20),
        model_ip_tls: 1 + gen.below(15),
        model_origin_tls: 1 + gen.below(8),
        fault_misdirected_421: gen.below(3),
        fault_events: gen.below(5),
        fault_recoveries: gen.below(5),
        h1_connections: gen.below(6),
        h1_requests: gen.below(12),
        h1_redundant: [
            gen.below(3),
            gen.below(3),
            gen.below(3),
            gen.below(3),
            gen.below(3),
        ],
        ..VisitObs::default()
    };
    for _ in 0..gen.below(8) {
        v.handshakes
            .push((gen.below(5_000_000), gen.below(200_000), gen.below(1 << 30)));
    }
    for _ in 0..gen.below(8) {
        v.bytes
            .push((gen.below(5_000_000), gen.below(1 << 22), gen.below(1 << 30)));
    }
    v
}

#[test]
fn timeline_merge_is_shard_order_invariant() {
    for seed in 0..8u64 {
        let mut gen = Gen::new(0x7137 ^ seed);
        let visits: Vec<VisitObs> = (0..120).map(|r| random_visit(&mut gen, r)).collect();

        // Ground truth: one timeline fed sequentially.
        let mut whole = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        for v in &visits {
            whole.record_visit(v);
        }

        // Shard by an arbitrary interleave into 4 parts, then merge the
        // parts in several different orders.
        let mut shards: Vec<Timeline> = (0..4)
            .map(|_| Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING))
            .collect();
        for (i, v) in visits.iter().enumerate() {
            shards[(i * 7 + seed as usize) % 4].record_visit(v);
        }
        for order in [[0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]] {
            let mut merged = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
            for &s in &order {
                merged.merge(&shards[s]);
            }
            assert_eq!(
                merged.to_json(),
                whole.to_json(),
                "seed {seed}, merge order {order:?}"
            );
        }

        // Associativity: ((s0 ⊕ s1) ⊕ (s2 ⊕ s3)) byte-matches too.
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        let mut right = shards[2].clone();
        right.merge(&shards[3]);
        left.merge(&right);
        assert_eq!(left.to_json(), whole.to_json(), "seed {seed}, paired merge");
    }
}

#[test]
fn timeline_memory_is_windows_times_series_not_visits() {
    let mut gen = Gen::new(42);
    let mut t = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
    // Many visits, few distinct windows: ranks wrap over 8 epochs.
    for i in 0..50_000u32 {
        let mut v = random_visit(&mut gen, i % 8);
        v.handshakes.truncate(2);
        v.bytes.truncate(2);
        t.record_visit(&v);
    }
    assert_eq!(t.total_visits(), 50_000);
    // 8 epochs at 1s spacing + event offsets up to ~5s: a handful of
    // 4s windows, regardless of 50k visits streamed through.
    assert!(t.num_windows() <= 8, "windows: {}", t.num_windows());
    let totals = t.totals();
    // Sparse sketches: bounded by distinct log2 sub-buckets, not samples.
    assert!(totals.plt().occupied_buckets() < 300);
    assert!(totals.bytes().occupied_buckets() < 300);
}
