//! Tumbling-window aggregation over the crawl's simulated timeline.
//!
//! The crawl is open-loop: visit `rank` begins at the deterministic
//! epoch `rank × spacing` on a shared simulated timeline, and every
//! event inside the visit lands at `epoch + offset` where `offset` is
//! the event's sim-time offset within the visit. The timeline is thus
//! a pure function of the site list — independent of thread count,
//! shard boundaries, and wall clock.
//!
//! Windows are tumbling: window `i` covers `[i·W, (i+1)·W)` simulated
//! time. Each window holds a fixed array of counters plus a handful of
//! sparse [`QuantileSketch`]es, so aggregator memory is
//! `O(windows × series)` regardless of how many visits stream through.
//! Merging two timelines is a window-keyed union with commutative cell
//! addition: associative and shard-order-invariant by construction
//! (pinned by property tests in `tests/`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use origin_netsim::{SimDuration, SimTime};

use crate::sketch::{Exemplar, QuantileSketch};

/// Coalescing-policy labels for the h1 redundant-connection series,
/// in the same order `origin-browser` reports them.
pub const H1_POLICIES: [&str; 5] = [
    "chromium",
    "firefox",
    "firefox_origin",
    "ideal_ip",
    "ideal_origin",
];

// Counter slots within a window cell. Kept private: producers fill the
// named fields of `VisitObs`; only the cell maps them to slots.
const C_VISITS: usize = 0;
const C_REQUESTS: usize = 1;
const C_COALESCED: usize = 2;
const C_CONNS: usize = 3;
const C_DNS_QUERIES: usize = 4;
const C_DNS_HITS: usize = 5;
const C_DNS_MISSES: usize = 6;
const C_MEASURED_TLS: usize = 7;
const C_MODEL_IP_TLS: usize = 8;
const C_MODEL_ORIGIN_TLS: usize = 9;
const C_FAULT_421: usize = 10;
const C_FAULT_EVENTS: usize = 11;
const C_FAULT_RECOVERIES: usize = 12;
const C_H1_CONNS: usize = 13;
const C_H1_REQUESTS: usize = 14;
const C_H1_RED: usize = 15; // 5 slots, one per policy
const C_BYTES_TOTAL: usize = 20;
const N_COUNTERS: usize = 21;

const COUNTER_NAMES: [&str; N_COUNTERS] = [
    "visits",
    "requests",
    "coalesced_requests",
    "connections_opened",
    "dns_queries",
    "dns_cache_hits",
    "dns_cache_misses",
    "measured_tls",
    "model_ip_tls",
    "model_origin_tls",
    "fault_misdirected_421",
    "fault_events",
    "fault_recoveries",
    "h1_connections",
    "h1_requests",
    "h1_redundant_chromium",
    "h1_redundant_firefox",
    "h1_redundant_firefox_origin",
    "h1_redundant_ideal_ip",
    "h1_redundant_ideal_origin",
    "bytes_total",
];

/// Everything one visit contributes to the timeline, filled by the
/// crawl harness and consumed by [`Timeline::record_visit`]. Reused
/// across visits via [`VisitObs::clear`] so the per-visit obs path
/// allocates only when an event vector has to grow.
#[derive(Debug, Default, Clone)]
pub struct VisitObs {
    /// Site rank of the visit (fixes its epoch on the timeline).
    pub rank: u32,
    /// Measured page load time, µs.
    pub plt_us: u64,
    /// Modelled ideal-IP page load time, µs.
    pub plt_ideal_ip_us: u64,
    /// Modelled ideal-ORIGIN page load time, µs.
    pub plt_ideal_origin_us: u64,
    /// Trace span ID of the request that determined `plt_us`.
    pub plt_span: u64,
    /// Subresource requests issued.
    pub requests: u64,
    /// Requests served over a coalesced connection.
    pub coalesced_requests: u64,
    /// Connections opened (including forced extras).
    pub connections_opened: u64,
    /// DNS queries issued.
    pub dns_queries: u64,
    /// Resolver cache hits.
    pub dns_cache_hits: u64,
    /// Resolver cache misses (network queries).
    pub dns_cache_misses: u64,
    /// Measured TLS connections.
    pub measured_tls: u64,
    /// Modelled ideal-IP TLS connections.
    pub model_ip_tls: u64,
    /// Modelled ideal-ORIGIN TLS connections.
    pub model_origin_tls: u64,
    /// Injected 421 Misdirected Request responses.
    pub fault_misdirected_421: u64,
    /// Total injected fault events of all classes.
    pub fault_events: u64,
    /// Fault events the client recovered from within bounded retries.
    pub fault_recoveries: u64,
    /// Legacy HTTP/1.1 connections opened.
    pub h1_connections: u64,
    /// Requests served over HTTP/1.1.
    pub h1_requests: u64,
    /// Of the h1 connections, how many each policy would have coalesced
    /// away under h2 (order of [`H1_POLICIES`]).
    pub h1_redundant: [u64; 5],
    /// TLS handshakes: `(visit-relative start µs, duration µs, span)`.
    pub handshakes: Vec<(u64, u64, u64)>,
    /// Response bodies: `(visit-relative end µs, size bytes, span)`.
    pub bytes: Vec<(u64, u64, u64)>,
}

/// The observability sinks an observed page load writes into. Both
/// are optional so one entry point serves flight-only, timeline-only,
/// and fully observed loads.
#[derive(Default)]
pub struct VisitSinks<'a> {
    /// Flight recorder receiving the load's notable events as they
    /// happen.
    pub flight: Option<&'a mut crate::flight::FlightRecorder>,
    /// Per-visit observation derived from the completed load.
    pub visit: Option<&'a mut VisitObs>,
}

impl VisitObs {
    /// Reset for the next visit, keeping event-vector capacity.
    pub fn clear(&mut self) {
        let mut handshakes = std::mem::take(&mut self.handshakes);
        let mut bytes = std::mem::take(&mut self.bytes);
        handshakes.clear();
        bytes.clear();
        *self = VisitObs::default();
        self.handshakes = handshakes;
        self.bytes = bytes;
    }
}

/// One tumbling window's aggregate: a fixed counter array plus the
/// per-window quantile sketches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowCell {
    counters: [u64; N_COUNTERS],
    plt: QuantileSketch,
    plt_ideal_ip: QuantileSketch,
    plt_ideal_origin: QuantileSketch,
    handshake: QuantileSketch,
    bytes: QuantileSketch,
}

/// Divide, returning 0 for an empty denominator.
fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl WindowCell {
    /// Visits whose epoch fell in this window.
    pub fn visits(&self) -> u64 {
        self.counters[C_VISITS]
    }

    /// Share of requests served over a coalesced connection.
    pub fn coalesce_rate(&self) -> f64 {
        ratio(self.counters[C_COALESCED], self.counters[C_REQUESTS])
    }

    /// Connections opened per visit.
    pub fn connections_per_visit(&self) -> f64 {
        ratio(self.counters[C_CONNS], self.counters[C_VISITS])
    }

    /// Resolver cache hit rate.
    pub fn dns_cache_hit_rate(&self) -> f64 {
        ratio(
            self.counters[C_DNS_HITS],
            self.counters[C_DNS_HITS] + self.counters[C_DNS_MISSES],
        )
    }

    /// Share of injected fault events the client recovered from.
    pub fn fault_recovery_rate(&self) -> f64 {
        ratio(
            self.counters[C_FAULT_RECOVERIES],
            self.counters[C_FAULT_EVENTS],
        )
    }

    /// Injected fault events per visit.
    pub fn fault_events_per_visit(&self) -> f64 {
        ratio(self.counters[C_FAULT_EVENTS], self.counters[C_VISITS])
    }

    /// TLS connections saved by the ideal-IP model, as a share of
    /// measured TLS connections.
    pub fn tls_reduction_ideal_ip(&self) -> f64 {
        if self.counters[C_MEASURED_TLS] == 0 {
            return 0.0;
        }
        1.0 - ratio(self.counters[C_MODEL_IP_TLS], self.counters[C_MEASURED_TLS])
    }

    /// TLS connections saved by the ideal-ORIGIN model, as a share of
    /// measured TLS connections.
    pub fn tls_reduction_ideal_origin(&self) -> f64 {
        if self.counters[C_MEASURED_TLS] == 0 {
            return 0.0;
        }
        1.0 - ratio(
            self.counters[C_MODEL_ORIGIN_TLS],
            self.counters[C_MEASURED_TLS],
        )
    }

    /// Share of h1 connections policy `i` (order of [`H1_POLICIES`])
    /// would have coalesced away under h2.
    pub fn h1_redundant_share(&self, i: usize) -> f64 {
        ratio(self.counters[C_H1_RED + i], self.counters[C_H1_CONNS])
    }

    /// The measured-PLT sketch.
    pub fn plt(&self) -> &QuantileSketch {
        &self.plt
    }

    /// The TLS-handshake-duration sketch.
    pub fn handshake(&self) -> &QuantileSketch {
        &self.handshake
    }

    /// The response-body-size sketch.
    pub fn bytes(&self) -> &QuantileSketch {
        &self.bytes
    }

    /// Fold another cell in (commutative, associative).
    pub fn merge(&mut self, other: &WindowCell) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        self.plt.merge(&other.plt);
        self.plt_ideal_ip.merge(&other.plt_ideal_ip);
        self.plt_ideal_origin.merge(&other.plt_ideal_origin);
        self.handshake.merge(&other.handshake);
        self.bytes.merge(&other.bytes);
    }

    fn counters_json(&self, out: &mut String) {
        out.push('{');
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", name, self.counters[i]);
        }
        out.push('}');
    }

    fn rates_json(&self, out: &mut String) {
        let rates: [(&str, f64); 12] = [
            ("coalesce_rate", self.coalesce_rate()),
            ("connections_per_visit", self.connections_per_visit()),
            ("dns_cache_hit_rate", self.dns_cache_hit_rate()),
            ("fault_recovery_rate", self.fault_recovery_rate()),
            ("fault_events_per_visit", self.fault_events_per_visit()),
            ("tls_reduction_ideal_ip", self.tls_reduction_ideal_ip()),
            (
                "tls_reduction_ideal_origin",
                self.tls_reduction_ideal_origin(),
            ),
            ("h1_redundant_chromium_share", self.h1_redundant_share(0)),
            ("h1_redundant_firefox_share", self.h1_redundant_share(1)),
            (
                "h1_redundant_firefox_origin_share",
                self.h1_redundant_share(2),
            ),
            ("h1_redundant_ideal_ip_share", self.h1_redundant_share(3)),
            (
                "h1_redundant_ideal_origin_share",
                self.h1_redundant_share(4),
            ),
        ];
        out.push('{');
        for (i, (name, v)) in rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{:.6}", name, v);
        }
        out.push('}');
    }

    fn sketches_json(&self, out: &mut String) {
        let sketches: [(&str, &QuantileSketch); 5] = [
            ("plt_us", &self.plt),
            ("plt_ideal_ip_us", &self.plt_ideal_ip),
            ("plt_ideal_origin_us", &self.plt_ideal_origin),
            ("handshake_us", &self.handshake),
            ("bytes", &self.bytes),
        ];
        out.push('{');
        for (i, (name, s)) in sketches.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}",
                name,
                s.count(),
                s.quantile(0.50),
                s.quantile(0.90),
                s.quantile(0.99),
                s.max()
            );
            if let Some(e) = s.quantile_exemplar(0.99) {
                let _ = write!(
                    out,
                    ",\"p99_exemplar\":{{\"value\":{},\"rank\":{},\"span_id\":{}}}",
                    e.value, e.rank, e.span_id
                );
            }
            out.push('}');
        }
        out.push('}');
    }
}

/// The streaming aggregate of a whole crawl: tumbling windows over the
/// open-loop simulated timeline.
///
/// For long serving horizons the live window map can be bounded with
/// [`Timeline::with_retention`]: once more than `retain` windows have
/// been seen, windows falling behind the retention horizon are evicted
/// and folded into a single committed tail cell. Folding is cell
/// merge — commutative and associative — and the horizon is derived
/// from the *maximum* window index seen (itself a max over shards), so
/// a retained timeline merged from any sharding folds exactly the same
/// window set and stays byte-identical at any thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    window: SimDuration,
    spacing: SimDuration,
    windows: BTreeMap<u64, WindowCell>,
    /// Maximum live windows to keep (`None` = unbounded, the crawl
    /// default; the committed reference exports never retain).
    retain: Option<u64>,
    /// Highest window index ever touched (recorded or merged in).
    max_seen: u64,
    /// Everything evicted by retention, folded into one tail cell.
    folded: WindowCell,
    /// First window index NOT folded (0 = nothing folded yet).
    folded_before: u64,
}

/// Default visit spacing on the open-loop timeline (one visit epoch
/// per second of simulated time).
pub const DEFAULT_SPACING: SimDuration = SimDuration::from_millis(1_000);

/// Default window width.
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_millis(4_000);

impl Timeline {
    /// A timeline with the given tumbling-window width and visit
    /// spacing (both must be nonzero).
    pub fn new(window: SimDuration, spacing: SimDuration) -> Self {
        assert!(window.as_micros() > 0, "window width must be nonzero");
        assert!(spacing.as_micros() > 0, "visit spacing must be nonzero");
        Timeline {
            window,
            spacing,
            windows: BTreeMap::new(),
            retain: None,
            max_seen: 0,
            folded: WindowCell::default(),
            folded_before: 0,
        }
    }

    /// Bound the live window map to at most `max_windows` cells:
    /// older windows are evicted and folded into the committed tail
    /// summary (see the type docs for why this stays deterministic
    /// under sharding). Panics on zero.
    pub fn with_retention(mut self, max_windows: u64) -> Self {
        assert!(max_windows > 0, "retention must keep at least one window");
        self.retain = Some(max_windows);
        self
    }

    /// The configured retention horizon, when bounded.
    pub fn retention(&self) -> Option<u64> {
        self.retain
    }

    /// The tumbling-window width.
    pub fn window_width(&self) -> SimDuration {
        self.window
    }

    /// The visit spacing.
    pub fn spacing(&self) -> SimDuration {
        self.spacing
    }

    /// The epoch of visit `rank` on the shared timeline.
    pub fn epoch(&self, rank: u32) -> SimTime {
        SimTime::from_micros(rank as u64 * self.spacing.as_micros())
    }

    fn cell(&mut self, t: SimTime) -> &mut WindowCell {
        let idx = t.window_index(self.window);
        if idx > self.max_seen {
            self.max_seen = idx;
        }
        // Behind the retention horizon the live window is gone; its
        // contribution belongs to the tail cell it was folded into.
        if idx < self.folded_before {
            return &mut self.folded;
        }
        self.windows.entry(idx).or_default()
    }

    /// Evict-and-fold every live window behind the retention horizon
    /// (`max_seen − retain + 1`). A no-op without retention.
    fn enforce_retention(&mut self) {
        if self.retain.is_none() {
            return;
        }
        let retain = self.retain.unwrap();
        let boundary = (self.max_seen + 1).saturating_sub(retain);
        if boundary > self.folded_before {
            self.folded_before = boundary;
        }
        // Sweep unconditionally: merge() can raise `folded_before` past
        // live windows of this shard without moving the boundary here.
        while let Some(entry) = self.windows.first_entry() {
            if *entry.key() >= self.folded_before {
                break;
            }
            self.folded.merge(&entry.remove());
        }
    }

    /// Fold one visit's contribution into the timeline. Counters and
    /// PLT sketches land in the window of the visit's epoch; handshake
    /// and byte events land in the window of their own timeline
    /// instant (`epoch + visit-relative offset`).
    pub fn record_visit(&mut self, v: &VisitObs) {
        self.record_visit_at(self.epoch(v.rank), v);
    }

    /// [`Timeline::record_visit`] with an explicit timeline instant
    /// instead of the rank-derived epoch — the open-loop serving
    /// engine records visits at their simulated arrival time.
    pub fn record_visit_at(&mut self, epoch: SimTime, v: &VisitObs) {
        let cell = self.cell(epoch);
        cell.counters[C_VISITS] += 1;
        cell.counters[C_REQUESTS] += v.requests;
        cell.counters[C_COALESCED] += v.coalesced_requests;
        cell.counters[C_CONNS] += v.connections_opened;
        cell.counters[C_DNS_QUERIES] += v.dns_queries;
        cell.counters[C_DNS_HITS] += v.dns_cache_hits;
        cell.counters[C_DNS_MISSES] += v.dns_cache_misses;
        cell.counters[C_MEASURED_TLS] += v.measured_tls;
        cell.counters[C_MODEL_IP_TLS] += v.model_ip_tls;
        cell.counters[C_MODEL_ORIGIN_TLS] += v.model_origin_tls;
        cell.counters[C_FAULT_421] += v.fault_misdirected_421;
        cell.counters[C_FAULT_EVENTS] += v.fault_events;
        cell.counters[C_FAULT_RECOVERIES] += v.fault_recoveries;
        cell.counters[C_H1_CONNS] += v.h1_connections;
        cell.counters[C_H1_REQUESTS] += v.h1_requests;
        for (i, r) in v.h1_redundant.iter().enumerate() {
            cell.counters[C_H1_RED + i] += r;
        }
        cell.plt.record(
            v.plt_us,
            Some(Exemplar {
                value: v.plt_us,
                rank: v.rank,
                span_id: v.plt_span,
            }),
        );
        cell.plt_ideal_ip.record(v.plt_ideal_ip_us, None);
        cell.plt_ideal_origin.record(v.plt_ideal_origin_us, None);
        for &(t_us, dur_us, span) in &v.handshakes {
            let at = epoch + SimDuration::from_micros(t_us);
            self.cell(at).handshake.record(
                dur_us,
                Some(Exemplar {
                    value: dur_us,
                    rank: v.rank,
                    span_id: span,
                }),
            );
        }
        for &(t_us, size, span) in &v.bytes {
            let at = epoch + SimDuration::from_micros(t_us);
            let cell = self.cell(at);
            cell.bytes.record(
                size,
                Some(Exemplar {
                    value: size,
                    rank: v.rank,
                    span_id: span,
                }),
            );
            cell.counters[C_BYTES_TOTAL] += size;
        }
        self.enforce_retention();
    }

    /// Window-keyed union with cell merge: commutative and
    /// associative, so shards may combine in any order. Retained
    /// timelines re-fold against the merged (global) horizon, so the
    /// folded set is the same for any partition of the inputs.
    pub fn merge(&mut self, other: &Timeline) {
        debug_assert_eq!(self.window, other.window);
        debug_assert_eq!(self.spacing, other.spacing);
        debug_assert_eq!(self.retain, other.retain);
        self.folded.merge(&other.folded);
        self.folded_before = self.folded_before.max(other.folded_before);
        for (&idx, cell) in &other.windows {
            if idx < self.folded_before {
                self.folded.merge(cell);
            } else {
                self.windows.entry(idx).or_default().merge(cell);
            }
        }
        self.max_seen = self.max_seen.max(other.max_seen);
        self.enforce_retention();
    }

    /// Number of materialised (live) windows.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// Total visits recorded, including visits folded into the tail.
    pub fn total_visits(&self) -> u64 {
        self.folded.visits() + self.windows.values().map(WindowCell::visits).sum::<u64>()
    }

    /// Iterate windows in time order as `(index, cell)`.
    pub fn windows(&self) -> impl Iterator<Item = (u64, &WindowCell)> {
        self.windows.iter().map(|(&i, c)| (i, c))
    }

    /// The tail cell retention folded evicted windows into (empty
    /// without retention or before the horizon first moved).
    pub fn folded(&self) -> &WindowCell {
        &self.folded
    }

    /// The whole-crawl aggregate: every window cell — live and folded
    /// — folded together.
    pub fn totals(&self) -> WindowCell {
        let mut total = self.folded.clone();
        for cell in self.windows.values() {
            total.merge(cell);
        }
        total
    }

    /// Deterministic JSON export: window list in time order plus a
    /// `totals` section with the same cell shape. A retained timeline
    /// additionally carries a `folded` tail-summary section; without
    /// retention the export is byte-identical to what it was before
    /// retention existed, which is what keeps the committed reference
    /// timelines valid.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 1024 * self.windows.len());
        let _ = write!(
            out,
            "{{\n  \"window_ms\": {},\n  \"spacing_ms\": {},\n",
            self.window.as_micros() / 1_000,
            self.spacing.as_micros() / 1_000
        );
        if let Some(retain) = self.retain {
            let _ = write!(
                out,
                "  \"retain_windows\": {},\n  \"folded\": {{\"before_index\":{},\"counters\":",
                retain, self.folded_before
            );
            self.folded.counters_json(&mut out);
            out.push_str(",\"rates\":");
            self.folded.rates_json(&mut out);
            out.push_str(",\"sketches\":");
            self.folded.sketches_json(&mut out);
            out.push_str("},\n");
        }
        out.push_str("  \"windows\": [\n");
        for (i, (&idx, cell)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let start_ms = idx * self.window.as_micros() / 1_000;
            let _ = write!(
                out,
                "    {{\"index\":{},\"start_ms\":{},\"counters\":",
                idx, start_ms
            );
            cell.counters_json(&mut out);
            out.push_str(",\"rates\":");
            cell.rates_json(&mut out);
            out.push_str(",\"sketches\":");
            cell.sketches_json(&mut out);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"totals\": {\"counters\":");
        let totals = self.totals();
        totals.counters_json(&mut out);
        out.push_str(",\"rates\":");
        totals.rates_json(&mut out);
        out.push_str(",\"sketches\":");
        totals.sketches_json(&mut out);
        out.push_str("}\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(rank: u32, plt: u64) -> VisitObs {
        VisitObs {
            rank,
            plt_us: plt,
            plt_ideal_ip_us: plt / 2,
            plt_ideal_origin_us: plt / 3,
            plt_span: (rank as u64) << 24,
            requests: 10,
            coalesced_requests: 4,
            connections_opened: 5,
            dns_queries: 3,
            dns_cache_hits: 1,
            dns_cache_misses: 2,
            measured_tls: 5,
            model_ip_tls: 3,
            model_origin_tls: 2,
            handshakes: vec![(100, 30_000, 1), (500_000, 40_000, 2)],
            bytes: vec![(900_000, 4096, 3)],
            ..VisitObs::default()
        }
    }

    #[test]
    fn epochs_are_pure_functions_of_rank() {
        let t = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        assert_eq!(t.epoch(0), SimTime::ZERO);
        assert_eq!(t.epoch(7).as_micros(), 7_000_000);
    }

    #[test]
    fn record_then_merge_equals_single_timeline() {
        let mk = || Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        let mut whole = mk();
        for r in 0..20 {
            whole.record_visit(&visit(r, 1_000_000 + r as u64 * 10_000));
        }
        let (mut a, mut b) = (mk(), mk());
        for r in 0..20 {
            let v = visit(r, 1_000_000 + r as u64 * 10_000);
            if r % 2 == 0 {
                a.record_visit(&v)
            } else {
                b.record_visit(&v)
            }
        }
        b.merge(&a);
        assert_eq!(whole.to_json(), b.to_json());
    }

    #[test]
    fn totals_match_counter_sums() {
        let mut t = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        for r in 0..32 {
            t.record_visit(&visit(r, 2_000_000));
        }
        let totals = t.totals();
        assert_eq!(totals.visits(), 32);
        assert_eq!(t.total_visits(), 32);
        assert_eq!(totals.plt().count(), 32);
        assert_eq!(totals.handshake().count(), 64);
        assert!((totals.coalesce_rate() - 0.4).abs() < 1e-9);
    }

    /// A cheap visit for the high-volume retention tests: no
    /// handshake/byte events, so each record touches one window.
    fn light_visit(rank: u32, plt: u64) -> VisitObs {
        VisitObs {
            rank,
            plt_us: plt,
            requests: 3,
            coalesced_requests: 1,
            connections_opened: 1,
            measured_tls: 1,
            ..VisitObs::default()
        }
    }

    #[test]
    fn retention_bounds_live_windows_over_a_million_visits() {
        // A serving horizon: one visit every 10 ms of simulated time,
        // a million visits → 10,000 one-second windows, of which only
        // the trailing 64 stay live; everything older folds into the
        // tail summary and no visit is lost.
        let mut t = Timeline::new(SimDuration::from_secs(1), DEFAULT_SPACING).with_retention(64);
        for i in 0..1_000_000u64 {
            t.record_visit_at(
                SimTime::from_micros(i * 10_000),
                &light_visit((i % 1000) as u32, 1_000 + i % 7),
            );
            assert!(t.num_windows() <= 64);
        }
        assert_eq!(t.total_visits(), 1_000_000);
        assert_eq!(t.totals().visits(), 1_000_000);
        assert!(t.folded().visits() > 900_000, "tail absorbed the horizon");
        let json = t.to_json();
        assert!(json.contains("\"retain_windows\": 64"));
        assert!(json.contains("\"folded\""));
    }

    #[test]
    fn retained_merge_is_partition_invariant() {
        // Sharding a retained timeline must fold exactly the window
        // set a sequential pass folds: the horizon is a max over
        // shards and cell merge is commutative.
        let mk = || Timeline::new(SimDuration::from_secs(1), DEFAULT_SPACING).with_retention(8);
        let mut whole = mk();
        for i in 0..2_000u64 {
            whole.record_visit_at(
                SimTime::from_micros(i * 400_000),
                &light_visit(i as u32, 5_000 + i),
            );
        }
        for shards in [2usize, 3, 8] {
            let mut parts: Vec<Timeline> = (0..shards).map(|_| mk()).collect();
            for i in 0..2_000u64 {
                parts[i as usize % shards].record_visit_at(
                    SimTime::from_micros(i * 400_000),
                    &light_visit(i as u32, 5_000 + i),
                );
            }
            let mut merged = mk();
            for p in &parts {
                merged.merge(p);
            }
            assert_eq!(merged.to_json(), whole.to_json(), "{shards} shards");
        }
    }

    #[test]
    fn unretained_export_has_no_folded_section() {
        let mut t = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        for r in 0..10 {
            t.record_visit(&visit(r, 1_000_000));
        }
        let json = t.to_json();
        assert!(!json.contains("folded"));
        assert!(!json.contains("retain_windows"));
    }

    #[test]
    fn event_behind_the_horizon_lands_in_the_tail() {
        let mut t = Timeline::new(SimDuration::from_secs(1), DEFAULT_SPACING).with_retention(4);
        // Drive the horizon far ahead, then record a straggler at t=0.
        t.record_visit_at(SimTime::from_secs(100), &light_visit(1, 1_000));
        t.record_visit_at(SimTime::ZERO, &light_visit(2, 2_000));
        assert_eq!(t.total_visits(), 2);
        assert_eq!(t.folded().visits(), 1, "straggler folded, not revived");
        assert!(t.num_windows() <= 4);
    }

    #[test]
    fn record_visit_at_epoch_matches_record_visit() {
        let mk = || Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        let (mut a, mut b) = (mk(), mk());
        for r in 0..20 {
            let v = visit(r, 1_500_000);
            a.record_visit(&v);
            let epoch = b.epoch(r);
            b.record_visit_at(epoch, &v);
        }
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn visit_obs_clear_keeps_capacity() {
        let mut v = visit(3, 1_000);
        let cap = v.handshakes.capacity();
        v.clear();
        assert_eq!(v.rank, 0);
        assert!(v.handshakes.is_empty());
        assert!(v.handshakes.capacity() >= cap);
    }
}
