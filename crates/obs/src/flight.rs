//! Bounded ring-buffer flight recorder.
//!
//! Each worker carries a recorder that keeps the last-N structured
//! events it saw (connection opens, injected faults, retries, h1
//! close-delimited cycles…). The ring itself is worker-local and so
//! depends on which visits a worker happened to process — which is why
//! nothing derived from the *whole* ring is ever exported. The two
//! deterministic outputs are
//!
//! * **fault-abort snapshots**: when a visit's injected-fault count
//!   reaches the abort threshold, the recorder captures that visit's
//!   events (a visit is processed wholly by one worker, so the
//!   rank-filtered slice of the ring is a pure function of the visit);
//!   merging recorders keeps the trigger with the smallest rank, so
//!   the snapshot written after the crawl is thread-count-invariant;
//! * **panic dumps** (best-effort): [`with_panic_dump`] writes the
//!   current visit's events if the wrapped closure panics — the panic
//!   site in a deterministic crawl is itself deterministic.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;

/// Default ring capacity per worker.
pub const DEFAULT_CAPACITY: usize = 256;

/// One structured flight-recorder event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Visit-relative simulated time, µs.
    pub t_us: u64,
    /// Site rank of the visit the event occurred in.
    pub rank: u32,
    /// Stable event code (e.g. `fault.421`, `h1.connection_closed`).
    pub code: &'static str,
    /// Event-specific value (attempt number, frame count, bytes…).
    pub value: u64,
    /// Short human-readable detail (usually the host involved).
    pub detail: String,
}

impl FlightEvent {
    fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"t_us\":{},\"rank\":{},\"code\":\"{}\",\"value\":{},\"detail\":\"{}\"}}",
            self.t_us,
            self.rank,
            self.code,
            self.value,
            // Details are hosts/labels from our own generator: plain
            // ASCII, but escape quotes/backslashes defensively.
            self.detail.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
}

/// A fault-abort trigger: the lowest-ranked visit whose injected-fault
/// count reached the threshold, plus its captured events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trigger {
    /// Rank of the triggering visit.
    pub rank: u32,
    /// The visit's flight events, captured at trigger time.
    pub events: Vec<FlightEvent>,
}

/// Per-worker bounded event ring with deterministic trigger capture.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    ring: VecDeque<FlightEvent>,
    capacity: usize,
    recorded: u64,
    current_rank: u32,
    trigger: Option<Trigger>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ..FlightRecorder::default()
        }
    }

    /// Mark the start of a visit; subsequent events belong to `rank`.
    pub fn begin_visit(&mut self, rank: u32) {
        self.current_rank = rank;
    }

    /// The rank the recorder is currently attributing events to.
    pub fn current_rank(&self) -> u32 {
        self.current_rank
    }

    /// Record one event at visit-relative sim time `t_us` for the
    /// current visit.
    pub fn record(&mut self, t_us: u64, code: &'static str, value: u64, detail: &str) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(FlightEvent {
            t_us,
            rank: self.current_rank,
            code,
            value,
            detail: detail.to_string(),
        });
        self.recorded += 1;
    }

    /// Total events recorded (not bounded by the ring; deterministic
    /// across thread counts when summed over workers).
    pub fn events_recorded(&self) -> u64 {
        self.recorded
    }

    /// The events of visit `rank` still present in the ring, in
    /// recording order.
    pub fn visit_events(&self, rank: u32) -> Vec<FlightEvent> {
        self.ring
            .iter()
            .filter(|e| e.rank == rank)
            .cloned()
            .collect()
    }

    /// Capture the current visit as a fault-abort trigger if it beats
    /// (has a smaller rank than) any trigger captured so far.
    pub fn capture_trigger(&mut self) {
        let rank = self.current_rank;
        if self.trigger.as_ref().is_none_or(|t| rank < t.rank) {
            self.trigger = Some(Trigger {
                rank,
                events: self.visit_events(rank),
            });
        }
    }

    /// The captured trigger, if any visit reached the abort threshold.
    pub fn trigger(&self) -> Option<&Trigger> {
        self.trigger.as_ref()
    }

    /// Fold another recorder in: event counts add and the
    /// smallest-rank trigger wins (commutative and associative). Ring
    /// contents are deliberately **not** merged — they are
    /// worker-local and never exported.
    pub fn merge(&mut self, other: &FlightRecorder) {
        self.recorded += other.recorded;
        if let Some(t) = &other.trigger {
            if self.trigger.as_ref().is_none_or(|mine| t.rank < mine.rank) {
                self.trigger = Some(t.clone());
            }
        }
    }

    /// Deterministic JSON snapshot of the captured trigger. `None`
    /// when no visit reached the threshold.
    pub fn trigger_snapshot_json(&self, threshold: u64) -> Option<String> {
        let t = self.trigger.as_ref()?;
        let mut out = String::with_capacity(256 + 128 * t.events.len());
        let _ = write!(
            out,
            "{{\n  \"trigger_rank\": {},\n  \"fault_threshold\": {},\n  \"events\": [\n",
            t.rank, threshold
        );
        for (i, e) in t.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            e.json(&mut out);
        }
        out.push_str("\n  ]\n}\n");
        Some(out)
    }

    /// JSON dump of the current visit's events (the panic-dump body).
    pub fn panic_snapshot_json(&self) -> String {
        let rank = self.current_rank;
        let events = self.visit_events(rank);
        let mut out = String::with_capacity(256 + 128 * events.len());
        let _ = write!(out, "{{\n  \"panic_rank\": {},\n  \"events\": [\n", rank);
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("    ");
            e.json(&mut out);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Run `f` with the recorder; if it panics, write the current visit's
/// flight events to `path` (best-effort) and resume the panic.
pub fn with_panic_dump<R>(
    rec: &mut FlightRecorder,
    path: &Path,
    f: impl FnOnce(&mut FlightRecorder) -> R,
) -> R {
    match panic::catch_unwind(AssertUnwindSafe(|| f(rec))) {
        Ok(r) => r,
        Err(payload) => {
            let _ = std::fs::write(path, rec.panic_snapshot_json());
            panic::resume_unwind(payload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(ranks: &[u32]) -> FlightRecorder {
        let mut rec = FlightRecorder::new(8);
        for &r in ranks {
            rec.begin_visit(r);
            rec.record(10, "conn.open", 1, "a.example");
            rec.record(20, "fault.421", 1, "b.example");
        }
        rec
    }

    #[test]
    fn ring_is_bounded() {
        let mut rec = FlightRecorder::new(4);
        rec.begin_visit(1);
        for i in 0..10 {
            rec.record(i, "conn.open", i, "h");
        }
        assert_eq!(rec.events_recorded(), 10);
        assert_eq!(rec.visit_events(1).len(), 4);
        assert_eq!(rec.visit_events(1)[0].t_us, 6);
    }

    #[test]
    fn trigger_keeps_smallest_rank_across_merges() {
        let mut a = filled(&[5, 3]);
        a.begin_visit(3);
        a.capture_trigger();
        let mut b = filled(&[2]);
        b.begin_visit(2);
        b.capture_trigger();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.trigger().unwrap().rank, 2);
        assert_eq!(
            ab.trigger_snapshot_json(3).unwrap(),
            ba.trigger_snapshot_json(3).unwrap()
        );
        assert_eq!(
            ab.events_recorded(),
            a.events_recorded() + b.events_recorded()
        );
    }

    #[test]
    fn later_visit_with_larger_rank_does_not_displace_trigger() {
        let mut rec = filled(&[4]);
        rec.begin_visit(4);
        rec.capture_trigger();
        rec.begin_visit(9);
        rec.record(5, "fault.421", 1, "x");
        rec.capture_trigger();
        assert_eq!(rec.trigger().unwrap().rank, 4);
    }

    #[test]
    fn snapshot_json_shape() {
        let mut rec = filled(&[7]);
        rec.begin_visit(7);
        rec.capture_trigger();
        let json = rec.trigger_snapshot_json(2).unwrap();
        assert!(json.contains("\"trigger_rank\": 7"));
        assert!(json.contains("\"code\":\"fault.421\""));
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn panic_dump_writes_current_visit() {
        let dir = std::env::temp_dir().join("origin-obs-panic-test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("flight.panic.json");
        let _ = std::fs::remove_file(&path);
        let mut rec = FlightRecorder::new(8);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            with_panic_dump(&mut rec, &path, |rec| {
                rec.begin_visit(3);
                rec.record(1, "conn.open", 1, "boom.example");
                panic!("injected");
            })
        }));
        assert!(result.is_err());
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"panic_rank\": 3"));
        assert!(body.contains("boom.example"));
        let _ = std::fs::remove_file(&path);
    }
}
