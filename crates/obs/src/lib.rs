//! Streaming observability for the crawl: tumbling-window aggregation
//! on simulated time, deterministic quantile sketches with trace
//! exemplars, and a bounded flight recorder.
//!
//! Everything in this crate is built for the same contract the rest of
//! the workspace honours: **byte-identical output at any thread
//! count**. The two properties that make that cheap to guarantee are
//!
//! 1. every aggregate is keyed by *simulated* time derived purely from
//!    a visit's site rank (never wall clock, never arrival order), and
//! 2. every merge is commutative and associative (integer bucket
//!    addition, window-keyed union, min-rank trigger selection), so
//!    shards can be combined in any order — a strictly stronger
//!    guarantee than the rank-ordered merges the one-shot reports use.
//!
//! Memory is `O(windows × series)` — each window holds a fixed counter
//! array and a handful of sparse sketches — never `O(visits)`.
//!
//! See `DESIGN.md` §15 for the window model, sketch error bound, and
//! flight-recorder semantics.

#![warn(missing_docs)]

pub mod dashboard;
pub mod flight;
pub mod sketch;
pub mod window;

pub use flight::{with_panic_dump, FlightEvent, FlightRecorder};
pub use sketch::{Exemplar, QuantileSketch};
pub use window::{Timeline, VisitObs, VisitSinks, WindowCell};
