//! ASCII dashboard renderer for a [`Timeline`].
//!
//! Renders the windows covering a site-rank range as fixed-width rows
//! (one per window) plus sparkline strips for coalesce rate and p99
//! PLT. Output is a pure function of the timeline: deterministic and
//! diff-friendly, suitable for CI artifacts.

use std::fmt::Write as _;

use crate::window::{Timeline, WindowCell};

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
const BAR_WIDTH: usize = 10;

fn spark_of(values: &[f64]) -> String {
    let max = values.iter().cloned().fold(0.0_f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let i = ((v / max) * 7.0).round() as usize;
                SPARK[i.min(7)]
            }
        })
        .collect()
}

fn bar_of(fraction: f64) -> String {
    let filled = (fraction.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize;
    let mut s = String::with_capacity(BAR_WIDTH * 3);
    for _ in 0..filled {
        s.push('█');
    }
    for _ in filled..BAR_WIDTH {
        s.push('·');
    }
    s
}

fn window_row(out: &mut String, idx: u64, start_ms: u64, cell: &WindowCell) {
    let _ = writeln!(
        out,
        "w{:>4} {:>8}ms  visits {:>4}  coal {:.3} {}  plt p50/p99 {:>6}/{:>6}ms  conn/v {:>5.2}  dns-hit {:.3}  fault/v {:>5.3}  h1-red {:.3}",
        idx,
        start_ms,
        cell.visits(),
        cell.coalesce_rate(),
        bar_of(cell.coalesce_rate()),
        cell.plt().quantile(0.50) / 1_000,
        cell.plt().quantile(0.99) / 1_000,
        cell.connections_per_visit(),
        cell.dns_cache_hit_rate(),
        cell.fault_events_per_visit(),
        cell.h1_redundant_share(4),
    );
}

/// Render the dashboard for the windows that cover visit ranks
/// `rank_lo..=rank_hi` (epochs plus the following spacing interval).
pub fn render(timeline: &Timeline, rank_lo: u32, rank_hi: u32) -> String {
    let width = timeline.window_width();
    let lo = timeline.epoch(rank_lo).window_index(width);
    let hi = (timeline.epoch(rank_hi) + timeline.spacing()).window_index(width);
    let window_ms = width.as_micros() / 1_000;

    let mut rows: Vec<(u64, &WindowCell)> = Vec::new();
    let mut coal = Vec::new();
    let mut p99 = Vec::new();
    for (idx, cell) in timeline.windows() {
        if idx < lo || idx > hi {
            continue;
        }
        rows.push((idx, cell));
        coal.push(cell.coalesce_rate());
        p99.push(cell.plt().quantile(0.99) as f64);
    }

    let mut out = String::with_capacity(256 + 160 * rows.len());
    let _ = writeln!(
        out,
        "timeline dashboard  sites {}..={}  window {}ms  spacing {}ms  ({} windows)",
        rank_lo,
        rank_hi,
        window_ms,
        timeline.spacing().as_micros() / 1_000,
        rows.len()
    );
    let _ = writeln!(out, "coalesce rate  {}", spark_of(&coal));
    let _ = writeln!(out, "p99 PLT        {}", spark_of(&p99));
    out.push('\n');
    for (idx, cell) in &rows {
        window_row(&mut out, *idx, idx * window_ms, cell);
    }

    let totals = {
        let mut t = WindowCell::default();
        for (_, cell) in &rows {
            t.merge(cell);
        }
        t
    };
    out.push('\n');
    let _ = writeln!(
        out,
        "range totals: visits {}  coalesce {:.3}  plt p50/p99 {}/{}ms  tls-saved origin {:.3}  fault-recovery {:.3}",
        totals.visits(),
        totals.coalesce_rate(),
        totals.plt().quantile(0.50) / 1_000,
        totals.plt().quantile(0.99) / 1_000,
        totals.tls_reduction_ideal_origin(),
        totals.fault_recovery_rate(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{VisitObs, DEFAULT_SPACING, DEFAULT_WINDOW};

    #[test]
    fn render_is_deterministic_and_scoped() {
        let mut t = Timeline::new(DEFAULT_WINDOW, DEFAULT_SPACING);
        for rank in 0..40u32 {
            t.record_visit(&VisitObs {
                rank,
                plt_us: 1_000_000 + rank as u64 * 5_000,
                requests: 12,
                coalesced_requests: 5,
                connections_opened: 6,
                measured_tls: 6,
                model_origin_tls: 2,
                ..VisitObs::default()
            });
        }
        let a = render(&t, 8, 23);
        let b = render(&t, 8, 23);
        assert_eq!(a, b);
        assert!(a.contains("sites 8..=23"));
        // 4 visits per 4s window; ranks 8..=23 span windows 2..=6.
        assert!(a.contains("visits    4"));
        assert!(!a.contains("w   0"));
    }

    #[test]
    fn sparkline_handles_flat_zero_series() {
        assert_eq!(spark_of(&[0.0, 0.0]), "▁▁");
        assert_eq!(bar_of(0.0).chars().filter(|&c| c == '█').count(), 0);
        assert_eq!(bar_of(1.0).chars().filter(|&c| c == '█').count(), BAR_WIDTH);
    }
}
