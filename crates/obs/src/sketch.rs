//! Deterministic log2-bucket quantile sketch.
//!
//! An HDR-style histogram: values below 8 get exact buckets; above
//! that, each power-of-two octave is split into 8 linear sub-buckets,
//! so a bucket's width is at most 1/8 of its lower bound. Quantile
//! estimates return the bucket's upper bound, which yields the
//! one-sided error law pinned by the property tests:
//!
//! ```text
//! exact(q) <= estimate(q) <= exact(q) + exact(q)/8 + 1
//! ```
//!
//! (nearest-rank definition of `exact`; the `+ 1` absorbs integer
//! truncation). Buckets are stored sparsely in a `BTreeMap`, so a
//! sketch costs memory proportional to the number of *distinct
//! magnitudes seen*, not the number of samples, and iteration order is
//! value order — merges and exports are deterministic for free.
//!
//! Each bucket may carry an [`Exemplar`] linking the largest sample
//! that landed in it back to an `origin-trace` span, so an outlier
//! percentile is one hop from its waterfall.

use std::collections::BTreeMap;

/// Number of linear sub-buckets per power-of-two octave. The relative
/// bucket error is `1 / SUBBUCKETS`.
pub const SUBBUCKETS: u64 = 8;

/// A sample that stands in for every sample in its bucket, keeping a
/// link back to the trace span that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The sampled value (same unit as the sketch).
    pub value: u64,
    /// Site rank of the visit that produced the sample.
    pub rank: u32,
    /// Trace span ID (`origin_trace::span_ref(rank, seq)`): the visit's
    /// trace process is its rank, the low bits select the span.
    pub span_id: u64,
}

impl Exemplar {
    /// Deterministic two-exemplar merge: keep the larger value;
    /// tie-break on smaller rank, then smaller span ID, so the result
    /// is independent of merge order.
    pub fn merge(self, other: Exemplar) -> Exemplar {
        match other.value.cmp(&self.value) {
            std::cmp::Ordering::Greater => other,
            std::cmp::Ordering::Less => self,
            std::cmp::Ordering::Equal => {
                if (other.rank, other.span_id) < (self.rank, self.span_id) {
                    other
                } else {
                    self
                }
            }
        }
    }
}

/// Map a value to its bucket index. Exact below [`SUBBUCKETS`]; above,
/// `SUBBUCKETS` linear sub-buckets per octave.
pub fn bucket_index(v: u64) -> u16 {
    if v < SUBBUCKETS {
        return v as u16;
    }
    let octave = 63 - v.leading_zeros() as u64; // >= 3
    let sub = (v >> (octave - 3)) - SUBBUCKETS; // 0..8 within the octave
    (octave * 8 - 16 + sub) as u16
}

/// Upper bound (inclusive) of a bucket: the largest value that maps to
/// `idx`. Inverse of [`bucket_index`] up to bucket resolution.
pub fn bucket_upper(idx: u16) -> u64 {
    let idx = idx as u64;
    if idx < SUBBUCKETS {
        return idx;
    }
    let octave = (idx - 8) / 8 + 3;
    let sub = (idx - 8) % 8;
    ((SUBBUCKETS + sub + 1) << (octave - 3)) - 1
}

/// A mergeable quantile sketch over `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: BTreeMap<u16, u64>,
    exemplars: BTreeMap<u16, Exemplar>,
    count: u64,
    max: u64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample, optionally with an exemplar linking it to a
    /// trace span.
    pub fn record(&mut self, value: u64, exemplar: Option<Exemplar>) {
        let idx = bucket_index(value);
        *self.buckets.entry(idx).or_insert(0) += 1;
        self.count += 1;
        self.max = self.max.max(value);
        if let Some(e) = exemplar {
            let merged = match self.exemplars.get(&idx) {
                Some(prev) => prev.merge(e),
                None => e,
            };
            self.exemplars.insert(idx, merged);
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of occupied buckets (the sketch's memory footprint).
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest sample, clamped to
    /// the observed maximum. Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> u64 {
        match self.quantile_bucket(q) {
            Some(idx) => bucket_upper(idx).min(self.max),
            None => 0,
        }
    }

    /// The bucket index the quantile estimate comes from, or `None`
    /// when the sketch is empty.
    pub fn quantile_bucket(&self, q: f64) -> Option<u16> {
        if self.count == 0 {
            return None;
        }
        let k = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (&idx, &n) in &self.buckets {
            cum += n;
            if cum >= k {
                return Some(idx);
            }
        }
        self.buckets.last_key_value().map(|(&idx, _)| idx)
    }

    /// The exemplar attached to the bucket a quantile falls in, if any
    /// sample in that bucket carried one.
    pub fn quantile_exemplar(&self, q: f64) -> Option<Exemplar> {
        self.quantile_bucket(q)
            .and_then(|idx| self.exemplars.get(&idx).copied())
    }

    /// Fold another sketch in. Bucket counts add, exemplars merge by
    /// the deterministic [`Exemplar::merge`] rule, so the operation is
    /// commutative and associative.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        for (&idx, &e) in &other.exemplars {
            let merged = match self.exemplars.get(&idx) {
                Some(prev) => prev.merge(e),
                None => e,
            };
            self.exemplars.insert(idx, merged);
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        let mut prev = bucket_index(0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "jump at {v}");
            prev = idx;
        }
    }

    #[test]
    fn bucket_upper_inverts_bucket_index() {
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < {v}");
            assert_eq!(bucket_index(upper), idx);
            if upper + 1 < u64::MAX {
                assert_eq!(bucket_index(upper + 1), idx + 1);
            }
        }
        // Spot-check large magnitudes.
        for shift in 10..60 {
            let v = 1u64 << shift;
            assert!(bucket_upper(bucket_index(v)) >= v);
        }
    }

    #[test]
    fn bucket_relative_width_is_at_most_one_eighth() {
        for v in SUBBUCKETS..1_000_000u64 {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper - v <= v / 8, "width too large at {v}: upper {upper}");
        }
    }

    #[test]
    fn exemplar_merge_is_order_independent() {
        let a = Exemplar {
            value: 9,
            rank: 4,
            span_id: 1,
        };
        let b = Exemplar {
            value: 9,
            rank: 2,
            span_id: 7,
        };
        let c = Exemplar {
            value: 11,
            rank: 9,
            span_id: 3,
        };
        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b).merge(c), c.merge(b.merge(a)));
        assert_eq!(a.merge(c).value, 11);
        assert_eq!(a.merge(b).rank, 2);
    }

    #[test]
    fn empty_sketch_is_all_zeros() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile_exemplar(0.99), None);
    }
}
