//! Deterministic observability for the pipeline.
//!
//! Every value recorded here is either
//!
//! * **deterministic work** — monotonic `u64` counters, fixed-bucket
//!   histograms, and phase totals measured in simulated time
//!   ([`origin_netsim::SimTime`]), all of which are byte-identical
//!   across runs and thread counts because accumulation is commutative
//!   integer addition; or
//! * **wall-clock runtime** — the `runtime_ms` section, which exists
//!   purely for humans and CI perf trending and is *excluded* from
//!   determinism comparison (strip it with `jq 'del(.runtime_ms)'`).
//!
//! The [`Registry`] follows the same `merge()` discipline as the
//! sharded crawl results: workers accumulate into private registries
//! and the driver merges shards back in rank order. Because every
//! deterministic field merges by integer addition, the merged registry
//! is independent of how the work was chunked.

mod hist;
mod registry;
mod timer;

pub use hist::FixedHistogram;
pub use registry::{PhaseStat, Registry};
pub use timer::PhaseTimer;
