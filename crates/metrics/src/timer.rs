//! Phase timers over simulated time.

use crate::registry::Registry;
use origin_netsim::SimTime;

/// Measures one interval of *simulated* time for a named phase.
///
/// Keyed on [`SimTime`] rather than wall-clock so the recorded
/// duration is a property of the workload, not the machine: the same
/// crawl records the same phase totals on any host at any thread
/// count. Wall-clock runtime belongs in
/// [`Registry::set_runtime_ms`] instead.
///
/// ```
/// use origin_metrics::{PhaseTimer, Registry};
/// use origin_netsim::SimTime;
///
/// let mut reg = Registry::new();
/// let t = PhaseTimer::start("dns", SimTime::from_millis(10));
/// t.stop(SimTime::from_millis(35), &mut reg);
/// assert_eq!(reg.phase("dns").unwrap().total.as_micros(), 25_000);
/// ```
#[derive(Debug)]
#[must_use = "a started timer records nothing until stopped"]
pub struct PhaseTimer {
    name: String,
    start: SimTime,
}

impl PhaseTimer {
    /// Begin timing `name` at simulated instant `now`.
    pub fn start(name: &str, now: SimTime) -> Self {
        PhaseTimer {
            name: name.to_string(),
            start: now,
        }
    }

    /// End the interval at simulated instant `now` and record it.
    /// Saturates to zero when `now` precedes the start.
    pub fn stop(self, now: SimTime, registry: &mut Registry) {
        registry.record_phase(&self.name, now.since(self.start));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_netsim::SimDuration;

    #[test]
    fn records_elapsed_sim_time() {
        let mut reg = Registry::new();
        let t = PhaseTimer::start("phase", SimTime::from_micros(100));
        t.stop(SimTime::from_micros(350), &mut reg);
        let p = reg.phase("phase").unwrap();
        assert_eq!(p.count, 1);
        assert_eq!(p.total, SimDuration::from_micros(250));
    }

    #[test]
    fn backwards_stop_saturates() {
        let mut reg = Registry::new();
        let t = PhaseTimer::start("phase", SimTime::from_micros(500));
        t.stop(SimTime::from_micros(100), &mut reg);
        assert_eq!(reg.phase("phase").unwrap().total, SimDuration::ZERO);
    }
}
