//! The metric registry.

use crate::hist::FixedHistogram;
use origin_intern::FxHashMap;
use origin_netsim::SimDuration;
use std::fmt::Write as _;

/// Accumulated simulated time spent in a named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of recorded intervals.
    pub count: u64,
    /// Total simulated time across intervals.
    pub total: SimDuration,
}

/// A set of named metrics with commutative, shard-mergeable
/// accumulation.
///
/// Counters, histograms and phase totals hold only integers, so
/// merging shards in any order — or not sharding at all — produces
/// identical values. `runtime_ms` holds wall-clock milliseconds and
/// is exported as a separate top-level JSON section so determinism
/// checks can strip it (`jq 'del(.runtime_ms)'`).
///
/// Maps use the deterministic Fx hasher and are sorted by name at
/// export time — the crawl records metrics per page, so the hot path
/// must be one hash probe with no allocation for an existing key,
/// while serialisation (once per run) pays the sort.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: FxHashMap<String, u64>,
    hists: FxHashMap<String, FixedHistogram>,
    phases: FxHashMap<String, PhaseStat>,
    runtime_ms: FxHashMap<String, f64>,
}

/// `(name, value)` pairs sorted by name, for the export paths.
fn sorted<V>(map: &FxHashMap<String, V>) -> Vec<(&str, &V)> {
    let mut v: Vec<(&str, &V)> = map.iter().map(|(k, x)| (k.as_str(), x)).collect();
    v.sort_unstable_by_key(|&(k, _)| k);
    v
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            // Materialise the key even for n == 0 so a zero counter
            // appears in the export — absent and zero must serialise
            // identically across shardings.
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Increment the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record an observation into the named fixed-bucket histogram,
    /// creating it with `bounds` on first use. Later calls must pass
    /// the same bounds (enforced on merge and on observe).
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        if !self.hists.contains_key(name) {
            self.hists
                .insert(name.to_string(), FixedHistogram::new(bounds));
        }
        let h = self.hists.get_mut(name).expect("present or just inserted");
        assert_eq!(h.bounds(), bounds, "histogram {name} bounds changed");
        h.observe(value);
    }

    /// The named histogram, when it has been observed into.
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.hists.get(name)
    }

    /// Add one interval of simulated time to the named phase.
    pub fn record_phase(&mut self, name: &str, elapsed: SimDuration) {
        self.record_phase_n(name, 1, elapsed);
    }

    /// Add `count` pre-accumulated intervals totalling `total` to the
    /// named phase in one map probe. Equivalent to `count` calls to
    /// [`Registry::record_phase`] whose durations sum to `total` —
    /// phase accumulation is commutative integer addition, so batching
    /// per page instead of per request cannot change any export.
    pub fn record_phase_n(&mut self, name: &str, count: u64, total: SimDuration) {
        if let Some(p) = self.phases.get_mut(name) {
            p.count += count;
            p.total += total;
        } else {
            self.phases
                .insert(name.to_string(), PhaseStat { count, total });
        }
    }

    /// The named phase total, when recorded.
    pub fn phase(&self, name: &str) -> Option<PhaseStat> {
        self.phases.get(name).copied()
    }

    /// Set a wall-clock runtime entry (milliseconds). Not merged by
    /// shard discipline — the driver sets these once per run; they are
    /// excluded from determinism comparison.
    pub fn set_runtime_ms(&mut self, name: &str, ms: f64) {
        self.runtime_ms.insert(name.to_string(), ms);
    }

    /// Fold another registry into this one. Deterministic sections
    /// merge by integer addition (commutative and associative, so any
    /// shard order yields the same result); `runtime_ms` entries are
    /// taken from `other` only when absent here.
    pub fn merge(&mut self, other: &Registry) {
        for (name, &v) in &other.counters {
            self.add(name, v);
        }
        for (name, h) in &other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, p) in &other.phases {
            let mine = self.phases.entry(name.clone()).or_default();
            mine.count += p.count;
            mine.total += p.total;
        }
        for (name, &ms) in &other.runtime_ms {
            self.runtime_ms.entry(name.clone()).or_insert(ms);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.phases.is_empty()
            && self.runtime_ms.is_empty()
    }

    /// Iterate `(name, value)` over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        sorted(&self.counters).into_iter().map(|(k, &v)| (k, v))
    }

    /// Serialise to JSON. Name-sorted sections plus integer-only
    /// deterministic values make the output byte-identical across
    /// runs and thread counts; `runtime_ms` is a sibling top-level key
    /// so `jq 'del(.runtime_ms)'` removes every wall-clock value.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in sorted(&self.counters) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{name}\": {v}");
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        first = true;
        for (name, h) in sorted(&self.hists) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"bounds\": {}, \"counts\": {}, \"count\": {}, \"sum\": {}}}",
                json_u64_array(h.bounds()),
                json_u64_array(h.counts()),
                h.count(),
                h.sum()
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"phases\": {");
        first = true;
        for (name, p) in sorted(&self.phases) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{name}\": {{\"count\": {}, \"total_us\": {}}}",
                p.count,
                p.total.as_micros()
            );
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"runtime_ms\": {");
        first = true;
        for (name, ms) in sorted(&self.runtime_ms) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{name}\": {ms:.3}");
        }
        out.push_str(if first { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }
}

fn json_u64_array(xs: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.inc("a");
        r.add("a", 4);
        r.add("b", 0);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 0);
        assert_eq!(r.counter("missing"), 0);
        // Zero-add materialises the key so exports are shard-stable.
        assert!(r.to_json().contains("\"b\": 0"));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut r = Registry::new();
        r.add("x", 7);
        r.observe("h", &[1, 10], 3);
        r.record_phase("p", SimDuration::from_millis(2));
        let snapshot = r.clone();
        r.merge(&Registry::new());
        assert_eq!(r, snapshot);

        let mut empty = Registry::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_is_commutative_on_output() {
        let mut a = Registry::new();
        a.add("x", 2);
        a.observe("h", &[5], 1);
        a.record_phase("p", SimDuration::from_micros(10));
        let mut b = Registry::new();
        b.add("x", 3);
        b.add("y", 1);
        b.observe("h", &[5], 9);
        b.record_phase("p", SimDuration::from_micros(5));
        b.record_phase("q", SimDuration::from_micros(1));

        let mut ab = Registry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Registry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counter("x"), 5);
        assert_eq!(ab.phase("p").unwrap().count, 2);
        assert_eq!(ab.phase("p").unwrap().total, SimDuration::from_micros(15));
    }

    #[test]
    fn json_shape_and_runtime_section() {
        let mut r = Registry::new();
        r.add("n.count", 2);
        r.observe("lat", &[1, 2], 2);
        r.record_phase("crawl", SimDuration::from_millis(1));
        r.set_runtime_ms("total", 12.5);
        let json = r.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"n.count\": 2"));
        assert!(json.contains(
            "\"lat\": {\"bounds\": [1, 2], \"counts\": [0, 1, 0], \"count\": 1, \"sum\": 2}"
        ));
        assert!(json.contains("\"crawl\": {\"count\": 1, \"total_us\": 1000}"));
        assert!(json.contains("\"runtime_ms\": {"));
        assert!(json.contains("\"total\": 12.500"));
        // Empty registry is still valid JSON with all four sections.
        let empty = Registry::new().to_json();
        for key in ["counters", "histograms", "phases", "runtime_ms"] {
            assert!(empty.contains(key), "missing {key}");
        }
    }

    #[test]
    fn runtime_ms_does_not_merge_additively() {
        let mut a = Registry::new();
        a.set_runtime_ms("total", 10.0);
        let mut b = Registry::new();
        b.set_runtime_ms("total", 99.0);
        b.set_runtime_ms("extra", 1.0);
        a.merge(&b);
        let json = a.to_json();
        assert!(json.contains("\"total\": 10.000"));
        assert!(json.contains("\"extra\": 1.000"));
    }
}
