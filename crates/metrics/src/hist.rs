//! Fixed-bucket histograms.
//!
//! Unlike `origin_stats::Histogram` (exact per-value counts, used for
//! paper tables), these histograms have bucket bounds fixed at
//! construction so two instances recorded independently on different
//! shards are always merge-compatible — the precondition for the
//! registry's commutative `merge()`.

/// A histogram over `u64` observations with fixed upper bounds.
///
/// An observation `x` lands in the first bucket whose bound satisfies
/// `x <= bound`; values above the last bound land in the implicit
/// overflow bucket. `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl FixedHistogram {
    /// New histogram with the given ascending upper bounds.
    ///
    /// Panics when `bounds` is empty or not strictly ascending —
    /// merge compatibility depends on every instance of a metric
    /// using identical bounds, so malformed bounds are a programming
    /// error, not data.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Fold another histogram into this one. Panics when bounds
    /// differ — shards of the same metric always share bounds.
    pub fn merge(&mut self, other: &FixedHistogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_buckets_and_overflow() {
        let mut h = FixedHistogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 100] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 112);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FixedHistogram::new(&[10]);
        let mut b = FixedHistogram::new(&[10]);
        a.observe(3);
        b.observe(30);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 33);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = FixedHistogram::new(&[10]);
        let b = FixedHistogram::new(&[20]);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bounds_must_ascend() {
        FixedHistogram::new(&[5, 5]);
    }
}
