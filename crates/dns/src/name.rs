//! Validated DNS names.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A validated, normalized (lowercase, no trailing dot) DNS hostname.
///
/// Validation follows the RFC 1035 preferred-name syntax with the
/// modern allowance for digits-first labels and underscores (seen in
/// service names like `_dns.resolver.arpa`): labels are 1–63 octets of
/// `[a-z0-9_-]`, not starting or ending with `-`, full name ≤253
/// octets. A leading `*` label is allowed so the same type can carry
/// certificate wildcard patterns (`*.example.com`).
///
/// The normalized text is held in a shared `Arc<str>`: hostnames are
/// cloned on every generated resource, every request record, and every
/// certificate SAN, and an atomic refcount bump there beats a heap
/// copy. The derived impls still delegate to the string contents
/// (`Hash`/`Eq`/`Ord` of `Arc<T>` forward to `T`), so nothing about
/// ordering, hashing, or the `Borrow<str>` probe contract changes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName(Arc<str>);

/// Why a string failed to parse as a [`DnsName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// Empty input or empty label (consecutive dots).
    EmptyLabel,
    /// Name exceeds 253 octets.
    TooLong,
    /// A label exceeds 63 octets.
    LabelTooLong,
    /// A label contains a character outside `[a-z0-9_-]`.
    BadCharacter(char),
    /// A label starts or ends with a hyphen.
    BadHyphen,
    /// `*` appears somewhere other than as the entire leftmost label.
    BadWildcard,
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel => write!(f, "empty name or label"),
            NameError::TooLong => write!(f, "name longer than 253 octets"),
            NameError::LabelTooLong => write!(f, "label longer than 63 octets"),
            NameError::BadCharacter(c) => write!(f, "invalid character {c:?}"),
            NameError::BadHyphen => write!(f, "label starts or ends with '-'"),
            NameError::BadWildcard => write!(f, "wildcard must be the entire leftmost label"),
        }
    }
}

impl std::error::Error for NameError {}

impl DnsName {
    /// Parse and normalize a hostname.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(NameError::EmptyLabel);
        }
        let lower = s.to_ascii_lowercase();
        if lower.len() > 253 {
            return Err(NameError::TooLong);
        }
        for (i, label) in lower.split('.').enumerate() {
            if label.is_empty() {
                return Err(NameError::EmptyLabel);
            }
            if label.len() > 63 {
                return Err(NameError::LabelTooLong);
            }
            if label == "*" {
                if i != 0 {
                    return Err(NameError::BadWildcard);
                }
                continue;
            }
            if label.contains('*') {
                return Err(NameError::BadWildcard);
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(NameError::BadHyphen);
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_') {
                    return Err(NameError::BadCharacter(c));
                }
            }
        }
        Ok(DnsName(lower.into()))
    }

    /// The normalized name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost to rightmost.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// True when the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.0.starts_with("*.")
    }

    /// The name with the leftmost label removed
    /// (`a.b.example.com → b.example.com`), or `None` for a
    /// single-label name.
    pub fn parent(&self) -> Option<DnsName> {
        self.parent_str().map(|rest| DnsName(Arc::from(rest)))
    }

    /// [`DnsName::parent`] as a borrowed slice of this name — the
    /// allocation-free form the per-request hot path (SAN wildcard
    /// matching, certificate fallback walks) uses.
    pub fn parent_str(&self) -> Option<&str> {
        self.0.split_once('.').map(|(_, rest)| rest)
    }

    /// True when `self` is a strict subdomain of `other`
    /// (`www.example.com` is a subdomain of `example.com`; a name is
    /// not a subdomain of itself).
    pub fn is_subdomain_of(&self, other: &DnsName) -> bool {
        self.0.len() > other.0.len()
            && self.0.ends_with(other.as_str())
            && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.'
    }

    /// The registrable domain under a simplified public-suffix model:
    /// the last two labels, or three when the name ends with a common
    /// two-part suffix such as `co.uk` / `com.au`. Good enough for
    /// grouping sharded subdomains by site, which is all the dataset
    /// characterization needs.
    pub fn registrable(&self) -> DnsName {
        let r = self.registrable_str();
        if r.len() == self.0.len() {
            self.clone()
        } else {
            DnsName(Arc::from(r))
        }
    }

    /// [`DnsName::registrable`] as a borrowed suffix of this name.
    /// The registrable domain is always a label-aligned suffix, so
    /// the hot-path colocation checks can compare slices (or interned
    /// ids of them) without allocating.
    pub fn registrable_str(&self) -> &str {
        const TWO_PART_SUFFIXES: &[&str] = &[
            "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "co.jp", "ne.jp",
            "or.jp", "com.br", "com.cn", "com.mx", "co.in", "co.kr", "co.za",
        ];
        // Walk dots from the right: find the start of the last two,
        // then (for two-part public suffixes) the last three labels.
        let s: &str = &self.0;
        let Some(last_dot) = s.rfind('.') else {
            return s; // single label
        };
        let Some(second_dot) = s[..last_dot].rfind('.') else {
            return s; // exactly two labels
        };
        let last_two = &s[second_dot + 1..];
        if !TWO_PART_SUFFIXES.contains(&last_two) {
            return last_two;
        }
        match s[..second_dot].rfind('.') {
            Some(third_dot) => &s[third_dot + 1..],
            None => s, // exactly three labels ending in a two-part suffix
        }
    }

    /// Wire-format encoded length in bytes: one length octet per label
    /// plus the label bytes plus the root octet. Used for certificate
    /// SAN size accounting.
    pub fn wire_len(&self) -> usize {
        self.labels().map(|l| 1 + l.len()).sum::<usize>() + 1
    }
}

impl FromStr for DnsName {
    type Err = NameError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DnsName::parse(s)
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for DnsName {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// `DnsName` hashes and compares exactly like its normalized string
/// (the derived impls delegate to the inner `String`), so maps keyed
/// by `DnsName` can be probed with a borrowed `&str` — which is what
/// lets the zone wildcard walk try successive suffixes without
/// allocating a name per level.
impl std::borrow::Borrow<str> for DnsName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl DnsName {
    /// Wrap an already-normalized name string without re-validating —
    /// for crate-internal paths that derive names from existing
    /// `DnsName`s (e.g. the matched suffix of a wildcard walk).
    pub(crate) fn from_normalized(s: &str) -> DnsName {
        DnsName(Arc::from(s))
    }
}

/// Parse a name, panicking on failure — for literals in tests and
/// generators where the input is known valid.
pub fn name(s: &str) -> DnsName {
    DnsName::parse(s).unwrap_or_else(|e| panic!("invalid DNS name {s:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_normalizes() {
        let n = DnsName::parse("WWW.Example.COM.").unwrap();
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn rejects_bad_names() {
        assert_eq!(DnsName::parse(""), Err(NameError::EmptyLabel));
        assert_eq!(DnsName::parse("a..b"), Err(NameError::EmptyLabel));
        assert_eq!(
            DnsName::parse("exa mple.com"),
            Err(NameError::BadCharacter(' '))
        );
        assert_eq!(DnsName::parse("-bad.com"), Err(NameError::BadHyphen));
        assert_eq!(DnsName::parse("bad-.com"), Err(NameError::BadHyphen));
        assert!(matches!(
            DnsName::parse(&"a".repeat(64)),
            Err(NameError::LabelTooLong)
        ));
        let long = format!("{}.com", "a.".repeat(130));
        assert!(DnsName::parse(&long).is_err());
    }

    #[test]
    fn wildcard_rules() {
        assert!(DnsName::parse("*.example.com").unwrap().is_wildcard());
        assert!(!name("www.example.com").is_wildcard());
        assert_eq!(DnsName::parse("www.*.com"), Err(NameError::BadWildcard));
        assert_eq!(
            DnsName::parse("w*w.example.com"),
            Err(NameError::BadWildcard)
        );
    }

    #[test]
    fn underscore_labels_allowed() {
        assert!(DnsName::parse("_dns.resolver.arpa").is_ok());
    }

    #[test]
    fn parent_and_subdomain() {
        let n = name("a.b.example.com");
        assert_eq!(n.parent().unwrap(), name("b.example.com"));
        assert!(n.is_subdomain_of(&name("example.com")));
        assert!(n.is_subdomain_of(&name("b.example.com")));
        assert!(!n.is_subdomain_of(&n));
        assert!(!name("notexample.com").is_subdomain_of(&name("example.com")));
        assert_eq!(name("com").parent(), None);
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(
            name("images.shop.example.com").registrable(),
            name("example.com")
        );
        assert_eq!(name("example.com").registrable(), name("example.com"));
        assert_eq!(name("www.bbc.co.uk").registrable(), name("bbc.co.uk"));
        assert_eq!(name("bbc.co.uk").registrable(), name("bbc.co.uk"));
        assert_eq!(name("com").registrable(), name("com"));
    }

    #[test]
    fn wire_len_counts_label_octets() {
        // www(3)+1 example(7)+1 com(3)+1 + root(1) = 17
        assert_eq!(name("www.example.com").wire_len(), 17);
    }

    #[test]
    fn display_and_fromstr() {
        let n: DnsName = "Example.COM".parse().unwrap();
        assert_eq!(n.to_string(), "example.com");
    }
}
