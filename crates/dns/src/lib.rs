//! Simulated DNS substrate.
//!
//! Connection coalescing interacts with DNS in two load-bearing ways
//! the paper measures:
//!
//! 1. **IP-based coalescing** (Chromium, Firefox) begins with a DNS
//!    query for every subresource hostname; the *address sets* that
//!    zones return — and how load balancing rotates them — decide
//!    whether the browser sees a match with its connected set (§2.3).
//! 2. **Privacy**: each plaintext UDP/TCP-53 query leaks user activity
//!    on-path; ORIGIN coalescing removes those queries entirely
//!    (§6.2). The resolver keeps per-transport counters so experiments
//!    can report exactly how much cleartext disappeared.
//!
//! The crate is sans-IO: an authoritative [`Zone`] set is queried by a
//! caching [`Resolver`] whose notion of time is supplied by the
//! caller (simulated microseconds), so TTL expiry is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod name;
pub mod record;
pub mod resolver;
pub mod zone;

pub use name::DnsName;
pub use record::{RecordSet, Rotation};
pub use resolver::{QueryAnswer, Resolver, ResolverState, ResolverStats, Transport};
pub use zone::{SerialKey, Zone, ZoneSet};
