//! Caching stub resolver with per-transport privacy accounting.

use crate::name::DnsName;
use crate::zone::{Answer, SerialKey, ZoneSet};
use origin_intern::{FxHashMap, HostTable};
use origin_netsim::{SimDuration, SimRng, SimTime};

/// The transport a client uses for its DNS queries. The paper's
/// privacy argument (§6.2) is that every coalesced connection hides at
/// least one query "if transmitted over UDP or TCP on port 53" —
/// plaintext transports leak, encrypted ones don't.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Classic cleartext DNS over UDP/TCP port 53.
    Udp53,
    /// DNS over TLS (RFC 7858).
    DoT,
    /// DNS over HTTPS (RFC 8484).
    DoH,
}

impl Transport {
    /// Whether queries over this transport are visible on-path.
    pub fn is_plaintext(self) -> bool {
        matches!(self, Transport::Udp53)
    }
}

/// Counters describing the resolver's work; the experiment harness
/// reads these to report DNS-query reductions and privacy exposure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolverStats {
    /// Queries answered from cache.
    pub cache_hits: u64,
    /// Queries that went to the network.
    pub network_queries: u64,
    /// Network queries sent in cleartext (subset of `network_queries`).
    pub plaintext_queries: u64,
    /// Queries that returned NXDOMAIN.
    pub nxdomain: u64,
}

impl ResolverStats {
    /// Total lookups served (cache hits plus network queries).
    pub fn lookups(&self) -> u64 {
        self.cache_hits + self.network_queries
    }

    /// Export the counters into a metrics registry under `dns.*`.
    pub fn record_into(&self, metrics: &mut origin_metrics::Registry) {
        metrics.add("dns.lookups", self.lookups());
        metrics.add("dns.cache_hits", self.cache_hits);
        metrics.add("dns.cache_misses", self.network_queries);
        metrics.add("dns.plaintext_queries", self.plaintext_queries);
        metrics.add("dns.nxdomain", self.nxdomain);
    }

    /// Feed the resolver's per-visit counters into a streaming
    /// observation (the stats must already be a visit delta, as
    /// returned by a freshly flushed resolver).
    pub fn record_obs(&self, obs: &mut origin_obs::VisitObs) {
        obs.dns_queries += self.lookups();
        obs.dns_cache_hits += self.cache_hits;
        obs.dns_cache_misses += self.network_queries;
    }
}

/// The result of one resolution.
///
/// Addresses are a shared slice: a cache hit hands out another
/// reference to the cached allocation instead of copying the address
/// list, and the browser's connection pool keeps the same reference as
/// each connection's available set. The slice is immutable after
/// construction, so sharing is observationally identical to cloning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAnswer {
    /// Resolved addresses (answer order as returned by the authority
    /// or as cached).
    pub addresses: std::sync::Arc<[std::net::IpAddr]>,
    /// Whether this answer came from cache (no network query).
    pub from_cache: bool,
    /// Time the lookup took (zero for cache hits).
    pub latency: SimDuration,
}

struct CacheEntry {
    addresses: std::sync::Arc<[std::net::IpAddr]>,
    expires: SimTime,
}

/// The mutable half of a caching stub resolver: cache, rotation
/// serials, transport and latency model, and counters — everything a
/// resolver *session* owns, with the authoritative [`ZoneSet`]
/// borrowed read-only at each query.
///
/// This split is what lets many sessions (one per crawl worker)
/// resolve against one shared zone set concurrently: the zones never
/// mutate; every session carries its own `ResolverState`.
///
/// Latency model: cache hits are free; network queries cost one
/// resolver round trip (configurable base latency with exponential
/// tail jitter, reflecting real-world recursive lookup behaviour).
pub struct ResolverState {
    /// Interner for queried hostnames: the cache below is keyed by the
    /// dense interned id, so repeat queries hash one `u32` instead of
    /// a whole hostname, and expiry/replace churn never reallocates
    /// keys. The interner survives [`ResolverState::flush_cache`] —
    /// ids stay stable for the session and the cache itself is
    /// emptied, so no stale entry can be observed.
    hosts: HostTable,
    cache: FxHashMap<u32, CacheEntry>,
    /// Per-session round-robin serials overlaying the shared zones.
    serials: FxHashMap<SerialKey, u32>,
    /// Transport used for network queries.
    pub transport: Transport,
    /// Base network-lookup latency.
    pub base_latency: SimDuration,
    /// Mean of the exponential tail added to `base_latency`.
    pub tail_mean_ms: f64,
    stats: ResolverStats,
}

impl ResolverState {
    /// A fresh session with a 30 ms base lookup cost and a 60 ms-mean
    /// exponential tail — a cold recursive resolver doing upstream
    /// work, as the paper's cache-flushed crawls saw.
    pub fn new(transport: Transport) -> Self {
        ResolverState {
            hosts: HostTable::new(),
            cache: FxHashMap::default(),
            serials: FxHashMap::default(),
            transport,
            base_latency: SimDuration::from_millis(30),
            tail_mean_ms: 60.0,
            stats: ResolverStats::default(),
        }
    }

    /// Replace the latency model.
    pub fn with_latency(mut self, base: SimDuration, tail_mean_ms: f64) -> Self {
        self.base_latency = base;
        self.tail_mean_ms = tail_mean_ms;
        self
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ResolverStats {
        self.stats
    }

    /// Reset counters (cache is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = ResolverStats::default();
    }

    /// Drop all session state (cache and rotation serials) — the
    /// paper's active measurements start every page load with a fresh
    /// browser session to "eliminate DNS and resource caching effects"
    /// (§3.1).
    pub fn flush_cache(&mut self) {
        self.cache.clear();
        self.serials.clear();
    }

    /// Resolve `name` against `zones` at simulated time `now`.
    ///
    /// Returns `None` on NXDOMAIN. Cache entries expire strictly after
    /// their TTL.
    pub fn resolve(
        &mut self,
        zones: &ZoneSet,
        name: &DnsName,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<QueryAnswer> {
        let key = self.hosts.intern(name.as_str()).0;
        if let Some(entry) = self.cache.get(&key) {
            if entry.expires > now {
                self.stats.cache_hits += 1;
                return Some(QueryAnswer {
                    addresses: entry.addresses.clone(),
                    from_cache: true,
                    latency: SimDuration::ZERO,
                });
            }
            self.cache.remove(&key);
        }
        self.stats.network_queries += 1;
        if self.transport.is_plaintext() {
            self.stats.plaintext_queries += 1;
        }
        let latency = self.network_latency(rng);
        match zones.resolve_shared(name, &mut self.serials, rng) {
            Some(Answer {
                addresses,
                ttl_secs,
            }) => {
                let addresses: std::sync::Arc<[std::net::IpAddr]> = addresses.into();
                self.cache.insert(
                    key,
                    CacheEntry {
                        addresses: addresses.clone(),
                        expires: now + SimDuration::from_secs(ttl_secs as u64),
                    },
                );
                Some(QueryAnswer {
                    addresses,
                    from_cache: false,
                    latency,
                })
            }
            None => {
                self.stats.nxdomain += 1;
                None
            }
        }
    }

    /// [`ResolverState::resolve`] plus trace events: a `dns.query`
    /// complete span for network lookups (duration = simulated lookup
    /// latency), a `dns.cache_hit` instant for cache hits, and a
    /// `dns.nxdomain` instant for missing names.
    pub fn resolve_traced(
        &mut self,
        zones: &ZoneSet,
        name: &DnsName,
        now: SimTime,
        rng: &mut SimRng,
        tracer: Option<&mut origin_trace::Tracer>,
    ) -> Option<QueryAnswer> {
        let answer = self.resolve(zones, name, now, rng);
        if let Some(tracer) = tracer {
            let host: origin_trace::ArgValue = name.as_str().into();
            match &answer {
                Some(a) if a.from_cache => {
                    tracer.instant_at(
                        "dns.cache_hit",
                        "dns",
                        now.as_micros(),
                        vec![("name", host)],
                    );
                }
                Some(a) => {
                    tracer.complete(
                        "dns.query",
                        "dns",
                        now.as_micros(),
                        a.latency.as_micros(),
                        vec![
                            ("name", host),
                            ("transport", format!("{:?}", self.transport).into()),
                            ("plaintext", self.transport.is_plaintext().into()),
                            ("answers", (a.addresses.len() as u64).into()),
                        ],
                    );
                }
                None => {
                    tracer.instant_at("dns.nxdomain", "dns", now.as_micros(), vec![("name", host)]);
                }
            }
        }
        answer
    }

    fn network_latency(&self, rng: &mut SimRng) -> SimDuration {
        let tail = if self.tail_mean_ms > 0.0 {
            rng.exponential(self.tail_mean_ms)
        } else {
            0.0
        };
        self.base_latency + SimDuration::from_millis_f64(tail)
    }
}

/// A caching stub resolver owning its [`ZoneSet`] — the convenient
/// single-threaded wrapper around [`ResolverState`].
pub struct Resolver {
    zones: ZoneSet,
    state: ResolverState,
}

impl Resolver {
    /// Create a resolver over `zones`; see [`ResolverState::new`] for
    /// the latency defaults.
    pub fn new(zones: ZoneSet, transport: Transport) -> Self {
        Resolver {
            zones,
            state: ResolverState::new(transport),
        }
    }

    /// Replace the latency model.
    pub fn with_latency(mut self, base: SimDuration, tail_mean_ms: f64) -> Self {
        self.state = self.state.with_latency(base, tail_mean_ms);
        self
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ResolverStats {
        self.state.stats()
    }

    /// Reset counters (cache is preserved).
    pub fn reset_stats(&mut self) {
        self.state.reset_stats();
    }

    /// Drop all cached entries and rotation state.
    pub fn flush_cache(&mut self) {
        self.state.flush_cache();
    }

    /// Transport used for network queries.
    pub fn transport(&self) -> Transport {
        self.state.transport
    }

    /// Mutable access to the underlying zones (deployments change DNS
    /// during experiments, e.g. §5.2's single-address alignment).
    pub fn zones_mut(&mut self) -> &mut ZoneSet {
        &mut self.zones
    }

    /// Resolve `name` at simulated time `now`; see
    /// [`ResolverState::resolve`].
    pub fn resolve(
        &mut self,
        name: &DnsName,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<QueryAnswer> {
        self.state.resolve(&self.zones, name, now, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::record::{v4, RecordSet};

    fn setup() -> (Resolver, SimRng) {
        let mut zones = ZoneSet::new();
        zones.insert(
            name("www.example.com"),
            RecordSet::new(vec![v4(10, 0, 0, 1)], 60),
        );
        (
            Resolver::new(zones, Transport::Udp53).with_latency(SimDuration::from_millis(15), 0.0),
            SimRng::seed_from_u64(7),
        )
    }

    #[test]
    fn network_then_cache() {
        let (mut r, mut rng) = setup();
        let t0 = SimTime::ZERO;
        let a1 = r.resolve(&name("www.example.com"), t0, &mut rng).unwrap();
        assert!(!a1.from_cache);
        assert_eq!(a1.latency, SimDuration::from_millis(15));
        let a2 = r
            .resolve(
                &name("www.example.com"),
                t0 + SimDuration::from_secs(1),
                &mut rng,
            )
            .unwrap();
        assert!(a2.from_cache);
        assert_eq!(a2.latency, SimDuration::ZERO);
        let s = r.stats();
        assert_eq!(s.network_queries, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.plaintext_queries, 1);
    }

    #[test]
    fn ttl_expiry_forces_requery() {
        let (mut r, mut rng) = setup();
        r.resolve(&name("www.example.com"), SimTime::ZERO, &mut rng)
            .unwrap();
        // 61 s later the 60 s TTL has lapsed.
        let a = r
            .resolve(&name("www.example.com"), SimTime::from_secs(61), &mut rng)
            .unwrap();
        assert!(!a.from_cache);
        assert_eq!(r.stats().network_queries, 2);
    }

    #[test]
    fn nxdomain_counts() {
        let (mut r, mut rng) = setup();
        assert!(r
            .resolve(&name("missing.example.com"), SimTime::ZERO, &mut rng)
            .is_none());
        assert_eq!(r.stats().nxdomain, 1);
    }

    #[test]
    fn encrypted_transport_not_plaintext() {
        let mut zones = ZoneSet::new();
        zones.insert(name("x.com"), RecordSet::single(v4(1, 1, 1, 1)));
        let mut r = Resolver::new(zones, Transport::DoH);
        let mut rng = SimRng::seed_from_u64(1);
        r.resolve(&name("x.com"), SimTime::ZERO, &mut rng);
        assert_eq!(r.stats().network_queries, 1);
        assert_eq!(r.stats().plaintext_queries, 0);
        assert!(!Transport::DoT.is_plaintext());
        assert!(Transport::Udp53.is_plaintext());
    }

    #[test]
    fn flush_cache_forces_requery() {
        let (mut r, mut rng) = setup();
        r.resolve(&name("www.example.com"), SimTime::ZERO, &mut rng)
            .unwrap();
        r.flush_cache();
        let a = r
            .resolve(&name("www.example.com"), SimTime::from_secs(1), &mut rng)
            .unwrap();
        assert!(!a.from_cache);
    }

    #[test]
    fn latency_tail_adds() {
        let mut zones = ZoneSet::new();
        zones.insert(name("x.com"), RecordSet::single(v4(1, 1, 1, 1)));
        let mut r =
            Resolver::new(zones, Transport::Udp53).with_latency(SimDuration::from_millis(15), 10.0);
        let mut rng = SimRng::seed_from_u64(2);
        let a = r.resolve(&name("x.com"), SimTime::ZERO, &mut rng).unwrap();
        assert!(a.latency >= SimDuration::from_millis(15));
    }
}
