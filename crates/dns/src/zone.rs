//! Authoritative zones.

use crate::name::DnsName;
use crate::record::RecordSet;
use origin_intern::FxHashMap;
use origin_netsim::SimRng;
use std::net::IpAddr;

/// One authoritative zone: a mapping from names (exact or wildcard) to
/// address record sets.
///
/// Both maps use the deterministic Fx hasher: zone lookups run on
/// every resolver cache miss (the crawler flushes caches per page),
/// and no output ever observes map iteration order ([`Zone::names`]
/// has no callers in the reproduction pipeline).
#[derive(Debug, Clone, Default)]
pub struct Zone {
    exact: FxHashMap<DnsName, RecordSet>,
    /// Wildcard entries keyed by the parent domain the `*` covers
    /// (`*.example.com` is stored under `example.com`).
    wildcard: FxHashMap<DnsName, RecordSet>,
}

impl Zone {
    /// New empty zone.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a record set for `name`. A wildcard name
    /// (`*.example.com`) covers all direct and nested subdomains of
    /// its parent, with exact entries taking precedence — matching the
    /// way operators use wildcard A records.
    pub fn insert(&mut self, name: DnsName, records: RecordSet) {
        if name.is_wildcard() {
            let parent = name.parent().expect("wildcard has a parent");
            self.wildcard.insert(parent, records);
        } else {
            self.exact.insert(name, records);
        }
    }

    /// Number of registered entries (exact + wildcard).
    pub fn len(&self) -> usize {
        self.exact.len() + self.wildcard.len()
    }

    /// True when the zone has no entries.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.wildcard.is_empty()
    }

    /// Answer a query, applying the record set's rotation policy.
    /// Returns `None` when no entry covers the name (NXDOMAIN).
    pub fn resolve(&mut self, name: &DnsName, rng: &mut SimRng) -> Option<Answer> {
        if let Some(rs) = self.exact.get_mut(name) {
            return Some(Answer {
                addresses: rs.answer(rng),
                ttl_secs: rs.ttl_secs,
            });
        }
        // Walk ancestors looking for a covering wildcard. The cursor
        // borrows successive suffixes of the queried name — no
        // allocation per level.
        let mut cursor = name.parent_str();
        while let Some(parent) = cursor {
            if let Some(rs) = self.wildcard.get_mut(parent) {
                return Some(Answer {
                    addresses: rs.answer(rng),
                    ttl_secs: rs.ttl_secs,
                });
            }
            cursor = parent.split_once('.').map(|(_, rest)| rest);
        }
        None
    }

    /// Like [`Zone::resolve`] but with all round-robin serials held
    /// externally in `serials`, leaving the zone itself read-only.
    /// Each resolver session keeps its own overlay, so many sessions
    /// can share one zone set across threads.
    pub fn resolve_shared(
        &self,
        name: &DnsName,
        serials: &mut FxHashMap<SerialKey, u32>,
        rng: &mut SimRng,
    ) -> Option<Answer> {
        let (rs, key) = self.lookup(name)?;
        let serial = serials.entry(key).or_insert(0);
        Some(Answer {
            addresses: rs.answer_shared(serial, rng),
            ttl_secs: rs.ttl_secs,
        })
    }

    /// The record set covering `name`, plus the serial-overlay key
    /// identifying it (exact entries take precedence over wildcards).
    /// The owned key allocates only on a hit; misses walk borrowed
    /// suffixes.
    fn lookup(&self, name: &DnsName) -> Option<(&RecordSet, SerialKey)> {
        if let Some(rs) = self.exact.get(name) {
            return Some((rs, (name.clone(), false)));
        }
        // Walk ancestors looking for a covering wildcard.
        let mut cursor = name.parent_str();
        while let Some(parent) = cursor {
            if let Some(rs) = self.wildcard.get(parent) {
                return Some((rs, (DnsName::from_normalized(parent), true)));
            }
            cursor = parent.split_once('.').map(|(_, rest)| rest);
        }
        None
    }

    /// Read-only view of the registered address set for a name
    /// (exact entries only; no rotation applied).
    pub fn registered(&self, name: &DnsName) -> Option<&[IpAddr]> {
        self.exact.get(name).map(|rs| rs.addresses())
    }

    /// Iterate exact entries.
    pub fn names(&self) -> impl Iterator<Item = &DnsName> {
        self.exact.keys()
    }
}

/// Key identifying one record set in a zone for external rotation
/// state: the matched map key plus whether it was a wildcard entry
/// (an exact `example.com` and a `*.example.com` wildcard share the
/// map key but are distinct record sets).
pub type SerialKey = (DnsName, bool);

/// A resolved answer: the address set and its TTL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    /// Addresses in answer order.
    pub addresses: Vec<IpAddr>,
    /// Time-to-live in seconds.
    pub ttl_secs: u32,
}

/// A collection of zones acting as "the DNS": one global authoritative
/// view, which is all the reproduction needs (delegation chasing adds
/// latency realism but no coalescing behaviour).
#[derive(Debug, Clone, Default)]
pub struct ZoneSet {
    zone: Zone,
}

impl ZoneSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a record set for a name anywhere in the namespace.
    pub fn insert(&mut self, name: DnsName, records: RecordSet) {
        self.zone.insert(name, records);
    }

    /// Answer a query.
    pub fn resolve(&mut self, name: &DnsName, rng: &mut SimRng) -> Option<Answer> {
        self.zone.resolve(name, rng)
    }

    /// Answer a query with rotation serials held externally (shared
    /// read-only zones; see [`Zone::resolve_shared`]).
    pub fn resolve_shared(
        &self,
        name: &DnsName,
        serials: &mut FxHashMap<SerialKey, u32>,
        rng: &mut SimRng,
    ) -> Option<Answer> {
        self.zone.resolve_shared(name, serials, rng)
    }

    /// Read-only registered addresses for a name.
    pub fn registered(&self, name: &DnsName) -> Option<&[IpAddr]> {
        self.zone.registered(name)
    }

    /// Total registered entries.
    pub fn len(&self) -> usize {
        self.zone.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.zone.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::record::v4;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1)
    }

    #[test]
    fn exact_lookup() {
        let mut z = Zone::new();
        z.insert(name("www.example.com"), RecordSet::single(v4(10, 0, 0, 1)));
        let a = z.resolve(&name("www.example.com"), &mut rng()).unwrap();
        assert_eq!(a.addresses, vec![v4(10, 0, 0, 1)]);
        assert!(z.resolve(&name("other.example.com"), &mut rng()).is_none());
    }

    #[test]
    fn wildcard_covers_subdomains() {
        let mut z = Zone::new();
        z.insert(
            name("*.cdn.example.com"),
            RecordSet::single(v4(10, 0, 0, 9)),
        );
        assert!(z.resolve(&name("a.cdn.example.com"), &mut rng()).is_some());
        assert!(z
            .resolve(&name("x.y.cdn.example.com"), &mut rng())
            .is_some());
        // The parent itself is not covered by the wildcard.
        assert!(z.resolve(&name("cdn.example.com"), &mut rng()).is_none());
    }

    #[test]
    fn exact_beats_wildcard() {
        let mut z = Zone::new();
        z.insert(name("*.example.com"), RecordSet::single(v4(1, 1, 1, 1)));
        z.insert(name("www.example.com"), RecordSet::single(v4(2, 2, 2, 2)));
        let a = z.resolve(&name("www.example.com"), &mut rng()).unwrap();
        assert_eq!(a.addresses, vec![v4(2, 2, 2, 2)]);
    }

    #[test]
    fn ttl_propagates() {
        let mut z = Zone::new();
        z.insert(name("x.com"), RecordSet::new(vec![v4(1, 2, 3, 4)], 42));
        assert_eq!(z.resolve(&name("x.com"), &mut rng()).unwrap().ttl_secs, 42);
    }

    #[test]
    fn zoneset_delegates() {
        let mut zs = ZoneSet::new();
        assert!(zs.is_empty());
        zs.insert(name("a.com"), RecordSet::single(v4(5, 5, 5, 5)));
        assert_eq!(zs.len(), 1);
        assert!(zs.resolve(&name("a.com"), &mut rng()).is_some());
        assert_eq!(zs.registered(&name("a.com")).unwrap(), &[v4(5, 5, 5, 5)]);
    }
}
