//! Address record sets and load-balancing rotation.

use origin_netsim::SimRng;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// How an authoritative server orders/subsets the address set in its
/// answers. The paper (§2.3) leans on the fact that "DNS operators
/// have long been able to return any or all addresses from a set" —
/// rotation is exactly what breaks Chromium's strict IP matching while
/// Firefox's transitive matching survives it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rotation {
    /// Always answer with the full set in registration order.
    Fixed,
    /// Rotate the starting offset on every answer (classic
    /// round-robin), returning the full set.
    RoundRobin,
    /// Answer with a random subset of `n` addresses.
    RandomSubset(usize),
}

/// The authoritative address data for one name: a set of IPs, a TTL,
/// and a rotation policy.
#[derive(Debug, Clone)]
pub struct RecordSet {
    addresses: Vec<IpAddr>,
    /// Time-to-live in seconds.
    pub ttl_secs: u32,
    /// Answer rotation policy.
    pub rotation: Rotation,
    /// Monotonic counter driving round-robin rotation.
    serial: u32,
}

impl RecordSet {
    /// Create a record set. Panics on an empty address list — a name
    /// with no addresses should simply be absent from the zone.
    pub fn new(addresses: Vec<IpAddr>, ttl_secs: u32) -> Self {
        assert!(
            !addresses.is_empty(),
            "record set must have at least one address"
        );
        RecordSet {
            addresses,
            ttl_secs,
            rotation: Rotation::Fixed,
            serial: 0,
        }
    }

    /// Single-address convenience constructor with a 300 s TTL.
    pub fn single(addr: IpAddr) -> Self {
        RecordSet::new(vec![addr], 300)
    }

    /// Set the rotation policy.
    pub fn with_rotation(mut self, rotation: Rotation) -> Self {
        if let Rotation::RandomSubset(n) = rotation {
            assert!(n > 0, "subset size must be positive");
        }
        self.rotation = rotation;
        self
    }

    /// The full registered address set.
    pub fn addresses(&self) -> &[IpAddr] {
        &self.addresses
    }

    /// Produce one answer according to the rotation policy. Mutates
    /// round-robin state; random subsets draw from `rng`.
    pub fn answer(&mut self, rng: &mut SimRng) -> Vec<IpAddr> {
        let mut serial = self.serial;
        let out = self.answer_shared(&mut serial, rng);
        self.serial = serial;
        out
    }

    /// Produce one answer with the round-robin serial held externally,
    /// leaving `self` untouched. This is what lets many resolver
    /// sessions share one read-only zone set: each session keeps its
    /// own serial overlay.
    pub fn answer_shared(&self, serial: &mut u32, rng: &mut SimRng) -> Vec<IpAddr> {
        match self.rotation {
            Rotation::Fixed => self.addresses.clone(),
            Rotation::RoundRobin => {
                let n = self.addresses.len();
                let start = (*serial as usize) % n;
                *serial = serial.wrapping_add(1);
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(self.addresses[(start + i) % n]);
                }
                out
            }
            Rotation::RandomSubset(k) => {
                let k = k.min(self.addresses.len());
                let mut idx: Vec<usize> = (0..self.addresses.len()).collect();
                rng.shuffle(&mut idx);
                idx.truncate(k);
                idx.sort_unstable(); // deterministic order within the subset
                idx.into_iter().map(|i| self.addresses[i]).collect()
            }
        }
    }
}

/// Build an IPv4 address from an AS-scoped (net, host) pair; a helper
/// for generators that allocate address space per provider.
pub fn v4(a: u8, b: u8, c: u8, d: u8) -> IpAddr {
    IpAddr::V4(Ipv4Addr::new(a, b, c, d))
}

/// Build an IPv6 address from four 32-bit groups.
pub fn v6(a: u16, b: u16, c: u16, d: u16) -> IpAddr {
    IpAddr::V6(Ipv6Addr::new(a, b, c, d, 0, 0, 0, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xD15)
    }

    #[test]
    fn fixed_answers_full_set_in_order() {
        let mut rs = RecordSet::new(vec![v4(10, 0, 0, 1), v4(10, 0, 0, 2)], 60);
        let mut r = rng();
        assert_eq!(rs.answer(&mut r), vec![v4(10, 0, 0, 1), v4(10, 0, 0, 2)]);
        assert_eq!(rs.answer(&mut r), vec![v4(10, 0, 0, 1), v4(10, 0, 0, 2)]);
    }

    #[test]
    fn round_robin_rotates_start() {
        let mut rs = RecordSet::new(vec![v4(1, 1, 1, 1), v4(2, 2, 2, 2), v4(3, 3, 3, 3)], 60)
            .with_rotation(Rotation::RoundRobin);
        let mut r = rng();
        assert_eq!(rs.answer(&mut r)[0], v4(1, 1, 1, 1));
        assert_eq!(rs.answer(&mut r)[0], v4(2, 2, 2, 2));
        assert_eq!(rs.answer(&mut r)[0], v4(3, 3, 3, 3));
        assert_eq!(rs.answer(&mut r)[0], v4(1, 1, 1, 1));
        // Full set always present.
        assert_eq!(rs.answer(&mut r).len(), 3);
    }

    #[test]
    fn random_subset_size_and_membership() {
        let all = vec![
            v4(1, 0, 0, 1),
            v4(1, 0, 0, 2),
            v4(1, 0, 0, 3),
            v4(1, 0, 0, 4),
        ];
        let mut rs = RecordSet::new(all.clone(), 60).with_rotation(Rotation::RandomSubset(2));
        let mut r = rng();
        for _ in 0..50 {
            let ans = rs.answer(&mut r);
            assert_eq!(ans.len(), 2);
            assert!(ans.iter().all(|a| all.contains(a)));
        }
    }

    #[test]
    fn random_subset_larger_than_set_clamps() {
        let mut rs =
            RecordSet::new(vec![v4(9, 9, 9, 9)], 60).with_rotation(Rotation::RandomSubset(5));
        let mut r = rng();
        assert_eq!(rs.answer(&mut r), vec![v4(9, 9, 9, 9)]);
    }

    #[test]
    #[should_panic(expected = "at least one address")]
    fn empty_set_panics() {
        RecordSet::new(vec![], 60);
    }

    #[test]
    fn v6_helper() {
        let a = v6(0x2606, 0x4700, 0, 1);
        assert!(matches!(a, IpAddr::V6(_)));
    }
}
