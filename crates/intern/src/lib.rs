//! Hostname interning for the per-request hot path.
//!
//! The simulator handles the same few thousand hostnames millions of
//! times per crawl. Comparing and hashing them as `String`s puts a
//! string hash (and often an allocation) on every pool lookup,
//! resolver-cache probe and colocation check. A [`HostTable`] maps
//! each distinct hostname to a dense [`HostId`] exactly once; from
//! then on equality is an integer compare and map keys are `u32`s.
//!
//! Determinism: ids are assigned in first-intern order, so a table is
//! a pure function of the sequence of names offered to it. No id ever
//! leaks into persisted output — exports always go through
//! [`HostTable::name`] back to the string — so differently-sharded
//! runs (whose per-worker tables intern in different orders) still
//! produce byte-identical reports.
//!
//! The module also provides [`FxHasher`], the deterministic
//! multiply-xor hasher used by Firefox and rustc, as a drop-in
//! `BuildHasher` for the hot maps ([`FxHashMap`]). SipHash's DoS
//! resistance buys nothing against a simulator's own synthetic
//! hostnames, and the keyed state breaks nothing here because no hot
//! map's iteration order is ever observed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A dense, per-table identifier for an interned hostname.
///
/// Ids are only meaningful relative to the [`HostTable`] that minted
/// them; two tables intern independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl HostId {
    /// The id as a plain index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only intern table: hostname → [`HostId`] and back.
#[derive(Debug, Default, Clone)]
pub struct HostTable {
    ids: FxHashMap<Box<str>, u32>,
    names: Vec<Box<str>>,
}

impl HostTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (allocating only on first
    /// sight).
    pub fn intern(&mut self, name: &str) -> HostId {
        if let Some(&id) = self.ids.get(name) {
            return HostId(id);
        }
        let id = u32::try_from(self.names.len()).expect("more than u32::MAX interned hostnames");
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.ids.insert(boxed, id);
        HostId(id)
    }

    /// The id of `name` if it has been interned.
    pub fn get(&self, name: &str) -> Option<HostId> {
        self.ids.get(name).map(|&id| HostId(id))
    }

    /// The hostname behind `id`.
    ///
    /// Panics when `id` was not minted by this table — mixing tables
    /// is a logic error, not a recoverable condition.
    pub fn name(&self, id: HostId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// FNV-1a-seeded multiply-xor hasher (the rustc/Firefox "Fx" hash):
/// deterministic, unkeyed, and several times faster than SipHash on
/// the short keys (hostnames, ids, addresses) the hot maps use.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

/// 64-bit multiplier from the Fx hash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Process 8 bytes at a time, then the tail — each step is
        // one xor + one rotate + one multiply.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("exact 8-byte chunk"));
            self.add(v);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut v = 0u64;
            for (i, &b) in rem.iter().enumerate() {
                v |= (b as u64) << (8 * i);
            }
            self.add(v);
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = HostTable::new();
        let a = t.intern("www.example.com");
        let b = t.intern("cdn.example.com");
        let a2 = t.intern("www.example.com");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a, HostId(0));
        assert_eq!(b, HostId(1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "www.example.com");
        assert_eq!(t.name(b), "cdn.example.com");
    }

    #[test]
    fn get_does_not_insert() {
        let mut t = HostTable::new();
        assert_eq!(t.get("x.com"), None);
        let id = t.intern("x.com");
        assert_eq!(t.get("x.com"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ids_follow_first_intern_order() {
        let mut t1 = HostTable::new();
        let mut t2 = HostTable::new();
        for n in ["a.com", "b.com", "c.com"] {
            t1.intern(n);
        }
        for n in ["c.com", "a.com", "b.com"] {
            t2.intern(n);
        }
        // Same names, different order → different ids; identity is
        // only ever resolved back through `name`.
        assert_eq!(t1.name(t1.get("c.com").unwrap()), "c.com");
        assert_eq!(t2.name(t2.get("c.com").unwrap()), "c.com");
        assert_ne!(t1.get("c.com"), t2.get("c.com"));
    }

    #[test]
    fn fx_hash_is_deterministic() {
        let h = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(h("www.example.com"), h("www.example.com"));
        assert_ne!(h("www.example.com"), h("cdn.example.com"));
        // Short and 8-byte-boundary inputs both hash.
        assert_ne!(h("a"), h("b"));
        assert_ne!(h("12345678"), h("123456789"));
    }

    #[test]
    fn fx_map_basic() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
