//! Per-visit HTTP/3 session state and the per-connection driver.
//!
//! [`H3Session`] is what one browser visit remembers across
//! connections: which certificate scopes have advertised h3
//! ([`AltSvcCache`]), the TLS session tickets banked by completed full
//! handshakes (certificate-scoped, so resumption crosses hostnames —
//! Sy et al.), and which server addresses have been validated (so
//! later handshakes to the same address skip the anti-amplification
//! stall — shared address validation). [`connect`] folds all three
//! into one deterministic handshake decision.
//!
//! [`H3Conn`] is one QUIC connection's request machinery: QPACK
//! encoder/decoder pair (the instruction stream is applied to the
//! decoder and the section round-tripped, so compression state
//! actually exercises both ends) and the connection-ID registry,
//! rotated periodically the way migrating clients do.
//!
//! [`connect`]: H3Session::connect

use std::net::IpAddr;

use origin_netsim::{LinkProfile, SimDuration, SimRng};
use origin_tls::{ResumptionScope, SessionTicketCache};

use crate::altsvc::AltSvcCache;
use crate::cid::{ConnectionIdRegistry, DEFAULT_ACTIVE_CID_LIMIT};
use crate::handshake::{HandshakeMode, QuicCostModel, QuicHandshake};
use crate::qpack::{Decoder, Encoder, Field};

/// Probability a server rejects offered 0-RTT early data (key
/// rotation, anti-replay windows); the rejected handshake completes as
/// a full exchange.
pub const ZERO_RTT_REJECT_RATE: f64 = 0.05;

/// Requests between connection-ID rotations on a live connection.
pub const CID_ROTATION_PERIOD: u64 = 16;

/// Counters one visit accumulates; drained into `h3.*` metrics by the
/// loader (nonzero-gated, like every other feature family).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct H3Counts {
    /// QUIC connections established.
    pub connections: u64,
    /// Full 1-RTT handshakes (including 0-RTT rejections that fell
    /// back).
    pub handshakes_1rtt: u64,
    /// Accepted 0-RTT handshakes.
    pub handshakes_0rtt: u64,
    /// 0-RTT offers the server rejected.
    pub zero_rtt_rejected: u64,
    /// Session tickets banked (h2 TLS 1.3 and QUIC 1-RTT handshakes).
    pub tickets_issued: u64,
    /// Redemptions whose issuing host differed from the redeeming
    /// host — the cross-hostname resumption treatment.
    pub resumed_cross_host: u64,
    /// Certificate scopes that advertised h3.
    pub altsvc_learned: u64,
    /// Advertisements lost to middlebox connection teardown.
    pub altsvc_suppressed: u64,
    /// Extra round trips paid to the anti-amplification limit.
    pub amplification_rtts: u64,
    /// Handshakes that skipped the amplification stall because the
    /// address was already validated.
    pub addr_validated_skips: u64,
}

/// What one QUIC connection establishment cost and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuicConnectOutcome {
    /// How the handshake completed.
    pub mode: HandshakeMode,
    /// Blocking handshake time (replaces both `connect` and `ssl`
    /// phases — QUIC has no separate transport round trip).
    pub cost: SimDuration,
    /// The redeemed ticket came from a different hostname.
    pub cross_host: bool,
    /// Extra round trips the amplification limit charged.
    pub amplification_rtts: u32,
}

/// One visit's h3 memory.
#[derive(Debug, Clone)]
pub struct H3Session {
    altsvc: AltSvcCache,
    tickets: SessionTicketCache,
    validated: Vec<IpAddr>,
    /// Running counters, drained by the loader.
    pub counts: H3Counts,
}

impl Default for H3Session {
    fn default() -> Self {
        Self::new()
    }
}

impl H3Session {
    /// Fresh session: nothing learned, certificate-scoped tickets.
    pub fn new() -> Self {
        H3Session {
            altsvc: AltSvcCache::new(),
            tickets: SessionTicketCache::new(ResumptionScope::Certificate),
            validated: Vec::new(),
            counts: H3Counts::default(),
        }
    }

    /// Reset for arena reuse — equivalent to [`new`], keeping
    /// allocations is not worth the bookkeeping here because the
    /// backing maps are tiny.
    ///
    /// [`new`]: Self::new
    pub fn recycle(&mut self) {
        *self = Self::new();
    }

    /// Has this certificate scope advertised h3?
    pub fn knows_h3(&self, cert_serial: u64) -> bool {
        self.altsvc.knows(cert_serial)
    }

    /// An h2 response from this scope carried (or, when `suppressed`,
    /// would have carried — middleboxes that tear down long-lived
    /// connections also eat the advertisement) an `alt-svc: h3` value.
    pub fn learn_alt_svc(&mut self, cert_serial: u64, suppressed: bool) {
        if suppressed {
            self.counts.altsvc_suppressed += 1;
            return;
        }
        if self.altsvc.learn(cert_serial) {
            self.counts.altsvc_learned += 1;
        }
    }

    /// A full TLS 1.3 handshake (h2 path) with `host` completed and
    /// issued a session ticket into the certificate scope.
    pub fn bank_ticket(&mut self, host: &str, cert_serial: u64) {
        self.tickets.issue(host, cert_serial);
        self.counts.tickets_issued += 1;
    }

    /// Tickets banked over the session (for invariant checks).
    pub fn tickets_issued(&self) -> u64 {
        self.tickets.issued()
    }

    /// Tickets redeemed over the session (≤ issued, single-use).
    pub fn tickets_redeemed(&self) -> u64 {
        self.tickets.redeemed()
    }

    /// Establish one QUIC connection to `host` at `ip` under the
    /// certificate with `cert_serial` / `cert_bytes` on the wire.
    ///
    /// Deterministic given the rng: a banked ticket is redeemed for a
    /// 0-RTT offer (one `chance` draw decides rejection); otherwise a
    /// full 1-RTT handshake runs, paying the amplification stall
    /// unless `ip` was validated by an earlier handshake this visit.
    /// Every completed full handshake issues a fresh ticket and
    /// validates `ip`.
    pub fn connect(
        &mut self,
        host: &str,
        cert_serial: u64,
        cert_bytes: u64,
        ip: IpAddr,
        link: &LinkProfile,
        rng: &mut SimRng,
    ) -> QuicConnectOutcome {
        let mut hs = QuicHandshake::new();
        let ticket = self.tickets.redeem(host, cert_serial);
        let mut cross_host = false;
        if let Some(t) = &ticket {
            cross_host = t.issuing_host != host;
            hs.send_zero_rtt().expect("fresh handshake accepts 0-RTT");
            if rng.chance(ZERO_RTT_REJECT_RATE) {
                hs.reject_zero_rtt().expect("0-RTT sent admits rejection");
            }
        } else {
            hs.send_initial().expect("fresh handshake accepts initial");
        }
        let mode = hs.confirm().expect("first flight admits confirmation");
        let address_validated = self.validated.contains(&ip);
        let model = QuicCostModel::for_certificate(cert_bytes, address_validated);
        let cost = model.handshake_cost(mode, link, rng);

        self.counts.connections += 1;
        match mode {
            HandshakeMode::ZeroRtt => {
                self.counts.handshakes_0rtt += 1;
                if cross_host {
                    self.counts.resumed_cross_host += 1;
                }
            }
            HandshakeMode::OneRtt | HandshakeMode::ZeroRttRejected => {
                self.counts.handshakes_1rtt += 1;
                if mode == HandshakeMode::ZeroRttRejected {
                    self.counts.zero_rtt_rejected += 1;
                }
                if address_validated {
                    self.counts.addr_validated_skips += 1;
                } else {
                    self.counts.amplification_rtts += u64::from(model.amplification_rtts);
                }
                // Full handshakes reissue a ticket and validate the
                // path (RFC 9000 §8.1: a completed handshake is
                // address validation).
                self.bank_ticket(host, cert_serial);
                if !address_validated {
                    self.validated.push(ip);
                }
            }
        }
        QuicConnectOutcome {
            mode,
            cost,
            cross_host,
            amplification_rtts: match mode {
                HandshakeMode::ZeroRtt => 0,
                _ if address_validated => 0,
                _ => model.amplification_rtts,
            },
        }
    }
}

/// Per-request QPACK byte counts, for trace spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct H3RequestStats {
    /// Encoder-stream bytes emitted for this request's inserts.
    pub instruction_bytes: u64,
    /// Field-section bytes for the request headers.
    pub section_bytes: u64,
}

/// One QUIC connection's request machinery.
#[derive(Debug, Clone)]
pub struct H3Conn {
    encoder: Encoder,
    decoder: Decoder,
    cids: ConnectionIdRegistry,
    requests: u64,
}

impl Default for H3Conn {
    fn default() -> Self {
        Self::new()
    }
}

impl H3Conn {
    /// Fresh connection state.
    pub fn new() -> Self {
        H3Conn {
            encoder: Encoder::new(),
            decoder: Decoder::new(),
            cids: ConnectionIdRegistry::new(DEFAULT_ACTIVE_CID_LIMIT),
            requests: 0,
        }
    }

    /// Encode one request's header block through QPACK, apply the
    /// instruction stream, and round-trip the field section through
    /// the decoder. Rotates a connection ID every
    /// [`CID_ROTATION_PERIOD`] requests.
    pub fn drive_request(&mut self, authority: &str, path: &str) -> H3RequestStats {
        let fields = [
            Field::new(":method", "GET"),
            Field::new(":scheme", "https"),
            Field::new(":authority", authority),
            Field::new(":path", path),
        ];
        let encoded = self.encoder.encode(&fields);
        self.decoder
            .apply_instructions(&encoded.instructions)
            .expect("own encoder stream is well-formed");
        let decoded = self
            .decoder
            .decode(&encoded.section)
            .expect("own field section is well-formed");
        debug_assert_eq!(decoded.as_slice(), &fields);
        self.requests += 1;
        if self.requests.is_multiple_of(CID_ROTATION_PERIOD) {
            self.cids.rotate().expect("rotation below the CID limit");
        }
        H3RequestStats {
            instruction_bytes: encoded.instructions.len() as u64,
            section_bytes: encoded.section.len() as u64,
        }
    }

    /// Requests driven on this connection.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// QPACK encoder-stream instructions emitted.
    pub fn qpack_instructions(&self) -> u64 {
        self.encoder.instructions()
    }

    /// QPACK dynamic-table evictions on the encoder side.
    pub fn qpack_evictions(&self) -> u64 {
        self.encoder.evictions()
    }

    /// Connection IDs issued (including the handshake's sequence 0).
    pub fn cids_issued(&self) -> u64 {
        self.cids.issued()
    }

    /// Connection IDs retired.
    pub fn cids_retired(&self) -> u64 {
        self.cids.retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_netsim::SimRng;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([198, 51, 100, last])
    }

    fn link() -> LinkProfile {
        LinkProfile::broadband_edge()
    }

    #[test]
    fn first_connect_is_1rtt_then_tickets_enable_0rtt() {
        let mut s = H3Session::new();
        let mut rng = SimRng::seed_from_u64(7);
        let l = link();
        let first = s.connect("a.example.com", 9, 1_500, ip(1), &l, &mut rng);
        assert_eq!(first.mode, HandshakeMode::OneRtt);
        assert!(first.cost > SimDuration::ZERO);
        // The 1-RTT handshake banked a ticket; the next connection in
        // the scope — different hostname — resumes across hosts.
        let second = s.connect("b.example.com", 9, 1_500, ip(2), &l, &mut rng);
        assert!(matches!(
            second.mode,
            HandshakeMode::ZeroRtt | HandshakeMode::ZeroRttRejected
        ));
        if second.mode == HandshakeMode::ZeroRtt {
            assert!(second.cross_host);
            assert_eq!(second.cost, SimDuration::ZERO);
        }
        let c = s.counts;
        assert_eq!(c.handshakes_1rtt + c.handshakes_0rtt, c.connections);
        assert!(c.handshakes_0rtt + c.zero_rtt_rejected <= c.tickets_issued);
        assert!(s.tickets_redeemed() <= s.tickets_issued());
    }

    #[test]
    fn shared_address_validation_skips_amplification() {
        let mut s = H3Session::new();
        let mut rng = SimRng::seed_from_u64(7);
        let l = link();
        // Bloated chain to a fresh address: the stall applies.
        let first = s.connect("a.example.com", 9, 6_000, ip(1), &l, &mut rng);
        assert_eq!(first.amplification_rtts, 1);
        // Exhaust the banked ticket so the next handshake is full.
        s.tickets.clear();
        // Same address: validated by the first handshake, no stall.
        let again = s.connect("other.example.com", 9, 6_000, ip(1), &l, &mut rng);
        assert_eq!(again.amplification_rtts, 0);
        assert!(s.counts.addr_validated_skips >= 1);
    }

    #[test]
    fn conn_drives_qpack_and_rotates_cids() {
        let mut conn = H3Conn::new();
        for i in 0..(CID_ROTATION_PERIOD * 2) {
            let stats = conn.drive_request("a.example.com", &format!("/asset/{i}"));
            assert!(stats.section_bytes > 0);
        }
        assert_eq!(conn.requests(), CID_ROTATION_PERIOD * 2);
        assert!(conn.qpack_instructions() > 0);
        // Two rotations: sequence 0 plus two fresh IDs issued, two
        // retired.
        assert_eq!(conn.cids_issued(), 3);
        assert_eq!(conn.cids_retired(), 2);
    }
}
