//! Connection-ID issuance and retirement (RFC 9000 §5.1).
//!
//! A QUIC endpoint identifies a connection by connection IDs rather
//! than its 4-tuple, issuing them with monotonically increasing
//! sequence numbers (`NEW_CONNECTION_ID`) and retiring old ones
//! (`RETIRE_CONNECTION_ID`). The registry models the client's view of
//! the IDs its peer issued: how many may be active at once is bounded
//! by the advertised `active_connection_id_limit`, and a retired
//! sequence number can never come back.

/// Default `active_connection_id_limit` (RFC 9000 requires ≥ 2;
/// deployed stacks commonly advertise a handful).
pub const DEFAULT_ACTIVE_CID_LIMIT: usize = 4;

/// Errors surfaced by the registry — protocol violations that a real
/// peer would answer with `PROTOCOL_VIOLATION`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CidError {
    /// Issuing another ID would exceed `active_connection_id_limit`.
    LimitExceeded,
    /// The sequence number is not an active connection ID.
    UnknownSequence(u64),
}

impl std::fmt::Display for CidError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CidError::LimitExceeded => write!(f, "active_connection_id_limit exceeded"),
            CidError::UnknownSequence(seq) => write!(f, "unknown connection-ID sequence {seq}"),
        }
    }
}

/// The set of connection IDs issued on one connection.
#[derive(Debug, Clone)]
pub struct ConnectionIdRegistry {
    /// Active sequence numbers, ascending (issuance order).
    active: Vec<u64>,
    /// Next sequence number to mint.
    next_seq: u64,
    limit: usize,
    issued: u64,
    retired: u64,
}

impl ConnectionIdRegistry {
    /// Registry with `limit` as the `active_connection_id_limit`. The
    /// handshake's initial connection ID (sequence 0) is issued
    /// immediately — a connection always has one.
    pub fn new(limit: usize) -> Self {
        let mut r = ConnectionIdRegistry {
            active: Vec::with_capacity(limit.max(1)),
            next_seq: 0,
            limit: limit.max(1),
            issued: 0,
            retired: 0,
        };
        r.issue().expect("limit >= 1 admits the initial CID");
        r
    }

    /// Issue the next connection ID; returns its sequence number.
    pub fn issue(&mut self) -> Result<u64, CidError> {
        if self.active.len() >= self.limit {
            return Err(CidError::LimitExceeded);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.issued += 1;
        self.active.push(seq);
        Ok(seq)
    }

    /// Retire an active connection ID by sequence number.
    pub fn retire(&mut self, seq: u64) -> Result<(), CidError> {
        match self.active.iter().position(|&s| s == seq) {
            Some(pos) => {
                self.active.remove(pos);
                self.retired += 1;
                Ok(())
            }
            None => Err(CidError::UnknownSequence(seq)),
        }
    }

    /// Retire the oldest active ID and issue a fresh one — the
    /// migration-style rotation the loader performs periodically.
    /// Returns `(retired_seq, new_seq)`.
    pub fn rotate(&mut self) -> Result<(u64, u64), CidError> {
        let oldest = *self
            .active
            .first()
            .expect("a connection always holds an active CID");
        // Issue first when below the limit (never leaves the
        // connection without an active ID); at the limit, retire
        // first to free the slot.
        if self.active.len() < self.limit {
            let fresh = self.issue()?;
            self.retire(oldest)?;
            Ok((oldest, fresh))
        } else {
            self.retire(oldest)?;
            let fresh = self.issue()?;
            Ok((oldest, fresh))
        }
    }

    /// Sequence numbers currently active, in issuance order.
    pub fn active(&self) -> &[u64] {
        &self.active
    }

    /// Total IDs issued over the connection's lifetime.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total IDs retired over the connection's lifetime.
    pub fn retired(&self) -> u64 {
        self.retired
    }
}

impl Default for ConnectionIdRegistry {
    fn default() -> Self {
        Self::new(DEFAULT_ACTIVE_CID_LIMIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_preserves_one_active_id_invariant() {
        let mut r = ConnectionIdRegistry::new(2);
        assert_eq!(r.active(), &[0]);
        let (old, new) = r.rotate().unwrap();
        assert_eq!((old, new), (0, 1));
        assert_eq!(r.active(), &[1]);
        assert!(!r.active().is_empty());
    }
}
