//! Alt-Svc advertisement (RFC 7838): how an h2 origin tells a client
//! that HTTP/3 is available.
//!
//! In the wild, h3 discovery is bootstrap-limited: the first
//! connection to an origin is TCP+TLS, and only its response headers
//! (`alt-svc: h3=":443"; ma=86400`) unlock QUIC for subsequent
//! connections. The model keeps that shape — a visit's first
//! connection per certificate scope always pays the h2 path, then the
//! learned advertisement upgrades later connections in the same scope
//! — because it is exactly the asymmetry that makes coalescing-like
//! treatments (resumption, shared address validation) matter under h3.

use std::collections::HashSet;

/// A parsed `alt-svc` alternative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AltService {
    /// ALPN protocol identifier (`h3` here).
    pub protocol: String,
    /// Advertised port.
    pub port: u16,
    /// `ma` freshness lifetime in seconds (RFC 7838 default 86400).
    pub max_age: u64,
}

/// Default `ma` when the parameter is absent (RFC 7838 §3.1).
pub const DEFAULT_MAX_AGE: u64 = 86_400;

/// Render the advertisement header value the model's origins send.
pub fn format_alt_svc(svc: &AltService) -> String {
    format!("{}=\":{}\"; ma={}", svc.protocol, svc.port, svc.max_age)
}

/// Parse an `alt-svc` header value. Returns the first well-formed
/// alternative, `None` for `clear` or garbage — a client ignores what
/// it cannot parse rather than failing the response.
pub fn parse_alt_svc(value: &str) -> Option<AltService> {
    let value = value.trim();
    if value.eq_ignore_ascii_case("clear") {
        return None;
    }
    for alt in value.split(',') {
        let mut params = alt.split(';').map(str::trim);
        let head = params.next()?;
        let (protocol, authority) = head.split_once('=')?;
        let authority = authority.trim_matches('"');
        // Authority is [host]:port; the model's origins advertise the
        // same host, so only the port matters.
        let port: u16 = match authority.rsplit_once(':') {
            Some((_, p)) => p.parse().ok()?,
            None => continue,
        };
        let mut max_age = DEFAULT_MAX_AGE;
        for p in params {
            if let Some((k, v)) = p.split_once('=') {
                if k.trim() == "ma" {
                    max_age = v.trim().parse().ok()?;
                }
            }
        }
        return Some(AltService {
            protocol: protocol.trim().to_string(),
            port,
            max_age,
        });
    }
    None
}

/// The client's per-visit memory of which certificate scopes have
/// advertised h3. Scope keys are certificate serials: an advertisement
/// learned from any host behind a certificate upgrades every host the
/// certificate covers, mirroring how the pool coalesces.
#[derive(Debug, Clone, Default)]
pub struct AltSvcCache {
    scopes: HashSet<u64>,
    learned: u64,
}

impl AltSvcCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an h3 advertisement for the certificate scope. Returns
    /// true when the scope was newly learned.
    pub fn learn(&mut self, cert_serial: u64) -> bool {
        let fresh = self.scopes.insert(cert_serial);
        if fresh {
            self.learned += 1;
        }
        fresh
    }

    /// Has this certificate scope advertised h3?
    pub fn knows(&self, cert_serial: u64) -> bool {
        self.scopes.contains(&cert_serial)
    }

    /// Distinct scopes learned over the cache's lifetime.
    pub fn learned(&self) -> u64 {
        self.learned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_round_trip() {
        let svc = AltService {
            protocol: "h3".into(),
            port: 443,
            max_age: 86_400,
        };
        let wire = format_alt_svc(&svc);
        assert_eq!(wire, "h3=\":443\"; ma=86400");
        assert_eq!(parse_alt_svc(&wire), Some(svc));
    }

    #[test]
    fn parse_handles_clear_defaults_and_garbage() {
        assert_eq!(parse_alt_svc("clear"), None);
        assert_eq!(
            parse_alt_svc("h3=\":443\"").map(|s| s.max_age),
            Some(DEFAULT_MAX_AGE)
        );
        assert_eq!(parse_alt_svc("not a header"), None);
    }

    #[test]
    fn cache_is_scope_keyed() {
        let mut cache = AltSvcCache::new();
        assert!(!cache.knows(7));
        assert!(cache.learn(7));
        assert!(!cache.learn(7));
        assert!(cache.knows(7));
        assert!(!cache.knows(8));
        assert_eq!(cache.learned(), 1);
    }
}
