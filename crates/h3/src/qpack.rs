//! QPACK field compression (RFC 9204) — HTTP/3's replacement for
//! HPACK.
//!
//! Same architecture as `origin_h2::hpack`, different address space:
//! the static table is 0-indexed and fixed (Appendix A), and dynamic
//! entries are identified by *absolute* insertion indices — exactly
//! the monotonic-id scheme the h2 dynamic table already uses
//! internally, so the name/value buckets, FIFO eviction sync, and the
//! one-pass [`find_indices`] (the h2 double-scan regression fix)
//! carry over entry-for-entry. Field sections reference dynamic
//! entries relative to a Base carried in the section prefix.
//!
//! QPACK splits the wire into two streams: *encoder instructions*
//! (inserts, which mutate the dynamic table) and *field sections*
//! (the per-request header block, which only references it).
//! [`Encoder::encode`] returns both; the model emits all inserts
//! before the section so no post-base references are needed.
//!
//! Simplifications relative to the RFC, shared by both ends here:
//! strings are raw (the Huffman bit is always 0), the Required Insert
//! Count wraps are not exercised (sections are decoded in insertion
//! order), and blocked-stream accounting is out of scope.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// The RFC 9204 Appendix A static table (0-indexed on the wire).
pub const STATIC_TABLE: [(&str, &str); 99] = [
    (":authority", ""),
    (":path", "/"),
    ("age", "0"),
    ("content-disposition", ""),
    ("content-length", "0"),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("referer", ""),
    ("set-cookie", ""),
    (":method", "CONNECT"),
    (":method", "DELETE"),
    (":method", "GET"),
    (":method", "HEAD"),
    (":method", "OPTIONS"),
    (":method", "POST"),
    (":method", "PUT"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "103"),
    (":status", "200"),
    (":status", "304"),
    (":status", "404"),
    (":status", "503"),
    ("accept", "*/*"),
    ("accept", "application/dns-message"),
    ("accept-encoding", "gzip, deflate, br"),
    ("accept-ranges", "bytes"),
    ("access-control-allow-headers", "cache-control"),
    ("access-control-allow-headers", "content-type"),
    ("access-control-allow-origin", "*"),
    ("cache-control", "max-age=0"),
    ("cache-control", "max-age=2592000"),
    ("cache-control", "max-age=604800"),
    ("cache-control", "no-cache"),
    ("cache-control", "no-store"),
    ("cache-control", "public, max-age=31536000"),
    ("content-encoding", "br"),
    ("content-encoding", "gzip"),
    ("content-type", "application/dns-message"),
    ("content-type", "application/javascript"),
    ("content-type", "application/json"),
    ("content-type", "application/x-www-form-urlencoded"),
    ("content-type", "image/gif"),
    ("content-type", "image/jpeg"),
    ("content-type", "image/png"),
    ("content-type", "text/css"),
    ("content-type", "text/html; charset=utf-8"),
    ("content-type", "text/plain"),
    ("content-type", "text/plain;charset=utf-8"),
    ("range", "bytes=0-"),
    ("strict-transport-security", "max-age=31536000"),
    (
        "strict-transport-security",
        "max-age=31536000; includesubdomains",
    ),
    (
        "strict-transport-security",
        "max-age=31536000; includesubdomains; preload",
    ),
    ("vary", "accept-encoding"),
    ("vary", "origin"),
    ("x-content-type-options", "nosniff"),
    ("x-xss-protection", "1; mode=block"),
    (":status", "100"),
    (":status", "204"),
    (":status", "206"),
    (":status", "302"),
    (":status", "400"),
    (":status", "403"),
    (":status", "421"),
    (":status", "425"),
    (":status", "500"),
    ("accept-language", ""),
    ("access-control-allow-credentials", "FALSE"),
    ("access-control-allow-credentials", "TRUE"),
    ("access-control-allow-headers", "*"),
    ("access-control-allow-methods", "get"),
    ("access-control-allow-methods", "get, post, options"),
    ("access-control-allow-methods", "options"),
    ("access-control-expose-headers", "content-length"),
    ("access-control-request-headers", "content-type"),
    ("access-control-request-method", "get"),
    ("access-control-request-method", "post"),
    ("alt-svc", "clear"),
    ("authorization", ""),
    (
        "content-security-policy",
        "script-src 'none'; object-src 'none'; base-uri 'none'",
    ),
    ("early-data", "1"),
    ("expect-ct", ""),
    ("forwarded", ""),
    ("if-range", ""),
    ("origin", ""),
    ("purpose", "prefetch"),
    ("server", ""),
    ("timing-allow-origin", "*"),
    ("upgrade-insecure-requests", "1"),
    ("user-agent", ""),
    ("x-forwarded-for", ""),
    ("x-frame-options", "deny"),
    ("x-frame-options", "sameorigin"),
];

/// A header field as stored in the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Header name (lowercase).
    pub name: String,
    /// Header value.
    pub value: String,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: &str, value: &str) -> Self {
        Field {
            name: name.into(),
            value: value.into(),
        }
    }

    /// RFC 9204 §3.2.1 size: name + value + 32 octets of overhead
    /// (identical to HPACK's §4.1 accounting).
    pub fn size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// Per-name index bucket: live absolute indices, ascending (most
/// recent match is `last()`), with a value-keyed refinement — the
/// same structure whose eviction sync fixed the h2 double-scan.
#[derive(Debug, Clone, Default)]
struct NameBucket {
    ids: Vec<u64>,
    by_value: HashMap<String, Vec<u64>>,
}

/// The QPACK dynamic table: FIFO with size-based eviction, entries
/// identified by absolute insertion index.
///
/// Invariant: live absolute indices are always the contiguous range
/// `[insert_count - len, insert_count - 1]` — inserts mint at the top,
/// eviction removes the smallest — so a bucket id resolves to a deque
/// position arithmetically and nothing renumbers on insert/evict.
#[derive(Debug, Clone)]
pub struct DynamicTable {
    /// Most recent first.
    entries: VecDeque<Field>,
    size: usize,
    max_size: usize,
    evictions: u64,
    insert_count: u64,
    by_name: HashMap<String, NameBucket>,
}

impl DynamicTable {
    /// New table with the given capacity.
    pub fn new(max_size: usize) -> Self {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            evictions: 0,
            insert_count: 0,
            by_name: HashMap::new(),
        }
    }

    /// Total insertions over the table's lifetime (the QPACK Insert
    /// Count).
    pub fn insert_count(&self) -> u64 {
        self.insert_count
    }

    /// Entries dropped by size-based eviction over the lifetime.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current occupied size in octets.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a field. Unlike HPACK there is no oversized-entry
    /// whole-table clear in QPACK: an entry that cannot fit even an
    /// empty table is refused (the encoder then emits a literal
    /// without inserting). Returns the new absolute index, or `None`
    /// if refused.
    pub fn insert(&mut self, field: Field) -> Option<u64> {
        let sz = field.size();
        if sz > self.max_size {
            return None;
        }
        let id = self.insert_count;
        self.insert_count += 1;
        let bucket = self.by_name.entry(field.name.clone()).or_default();
        bucket.ids.push(id);
        bucket
            .by_value
            .entry(field.value.clone())
            .or_default()
            .push(id);
        self.size += sz;
        self.entries.push_front(field);
        self.evict();
        Some(id)
    }

    /// Entry by absolute index.
    pub fn get_absolute(&self, abs: u64) -> Option<&Field> {
        let newest = self.insert_count.checked_sub(1)?;
        let pos = newest.checked_sub(abs)?;
        self.entries.get(pos as usize)
    }

    /// Absolute index of the most recent exact (name, value) match.
    pub fn find(&self, name: &str, value: &str) -> Option<u64> {
        self.by_name.get(name)?.by_value.get(value)?.last().copied()
    }

    /// Absolute index of the most recent name-only match.
    pub fn find_name(&self, name: &str) -> Option<u64> {
        self.by_name.get(name)?.ids.last().copied()
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            // The oldest live entry has the smallest absolute index,
            // which sits at the front of both of its buckets.
            let id = self.insert_count - self.entries.len() as u64;
            let e = self.entries.pop_back().expect("size>0 implies entries");
            self.size -= e.size();
            self.evictions += 1;
            if let Some(bucket) = self.by_name.get_mut(&e.name) {
                debug_assert_eq!(bucket.ids.first(), Some(&id));
                bucket.ids.remove(0);
                if let Some(ids) = bucket.by_value.get_mut(&e.value) {
                    debug_assert_eq!(ids.first(), Some(&id));
                    ids.remove(0);
                    if ids.is_empty() {
                        bucket.by_value.remove(&e.value);
                    }
                }
                if bucket.ids.is_empty() {
                    self.by_name.remove(&e.name);
                }
            }
        }
    }
}

/// Where [`find_indices`] found a match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableRef {
    /// 0-based index into [`STATIC_TABLE`].
    Static(usize),
    /// Absolute index into the dynamic table.
    Dynamic(u64),
}

/// Hash index over [`STATIC_TABLE`], built once. `name_first` keeps
/// first-occurrence semantics for name-only references; `pairs` keeps
/// per-name value lists in table order.
struct StaticIndex {
    name_first: HashMap<&'static str, usize>,
    pairs: HashMap<&'static str, Vec<(&'static str, usize)>>,
}

fn static_index() -> &'static StaticIndex {
    static IDX: OnceLock<StaticIndex> = OnceLock::new();
    IDX.get_or_init(|| {
        let mut name_first = HashMap::new();
        let mut pairs: HashMap<&'static str, Vec<(&'static str, usize)>> = HashMap::new();
        for (i, (n, v)) in STATIC_TABLE.iter().enumerate() {
            name_first.entry(*n).or_insert(i);
            let values = pairs.entry(*n).or_default();
            if !values.iter().any(|&(val, _)| val == *v) {
                values.push((*v, i));
            }
        }
        StaticIndex { name_first, pairs }
    })
}

fn static_pair_index(name: &str, value: &str) -> Option<usize> {
    static_index()
        .pairs
        .get(name)?
        .iter()
        .find(|&&(v, _)| v == value)
        .map(|&(_, i)| i)
}

/// Exact-match and name-only references resolved in one pass — static
/// preferred, then dynamic via the name buckets. The QPACK analogue of
/// the h2 `find_indices` double-scan fix: the encoder needs both
/// answers on every literal path and never walks a table twice.
pub fn find_indices(
    dynamic: &DynamicTable,
    name: &str,
    value: &str,
) -> (Option<TableRef>, Option<TableRef>) {
    let exact = static_pair_index(name, value)
        .map(TableRef::Static)
        .or_else(|| dynamic.find(name, value).map(TableRef::Dynamic));
    let by_name = static_index()
        .name_first
        .get(name)
        .copied()
        .map(TableRef::Static)
        .or_else(|| dynamic.find_name(name).map(TableRef::Dynamic));
    (exact, by_name)
}

/// A malformed encoder stream or field section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpackError {
    /// Input ended inside an instruction or field line.
    Truncated,
    /// A reference pointed outside the live table.
    InvalidReference,
    /// A prefix integer overflowed.
    IntegerOverflow,
}

impl std::fmt::Display for QpackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QpackError::Truncated => write!(f, "truncated qpack input"),
            QpackError::InvalidReference => write!(f, "invalid table reference"),
            QpackError::IntegerOverflow => write!(f, "prefix integer overflow"),
        }
    }
}

/// Encode `value` with an N-bit prefix integer (RFC 7541 §5.1, shared
/// by QPACK). `flags` carries the high bits of the first octet.
fn encode_prefix_int(out: &mut Vec<u8>, flags: u8, prefix_bits: u8, mut value: u64) {
    let max = (1u64 << prefix_bits) - 1;
    if value < max {
        out.push(flags | value as u8);
        return;
    }
    out.push(flags | max as u8);
    value -= max;
    while value >= 128 {
        out.push((value % 128) as u8 | 0x80);
        value /= 128;
    }
    out.push(value as u8);
}

/// Decode an N-bit prefix integer; returns (first-octet flags, value).
fn decode_prefix_int(
    input: &[u8],
    pos: &mut usize,
    prefix_bits: u8,
) -> Result<(u8, u64), QpackError> {
    let first = *input.get(*pos).ok_or(QpackError::Truncated)?;
    *pos += 1;
    let max = (1u64 << prefix_bits) - 1;
    let flags = first & !(max as u8);
    let mut value = u64::from(first) & max;
    if value < max {
        return Ok((flags, value));
    }
    let mut shift = 0u32;
    loop {
        let b = *input.get(*pos).ok_or(QpackError::Truncated)?;
        *pos += 1;
        let add = u64::from(b & 0x7f)
            .checked_shl(shift)
            .ok_or(QpackError::IntegerOverflow)?;
        value = value.checked_add(add).ok_or(QpackError::IntegerOverflow)?;
        if b & 0x80 == 0 {
            return Ok((flags, value));
        }
        shift += 7;
        if shift > 62 {
            return Err(QpackError::IntegerOverflow);
        }
    }
}

/// Raw (never Huffman-coded) string literal with an N-bit length
/// prefix; the Huffman bit is the lowest flag bit above the prefix.
fn encode_string(out: &mut Vec<u8>, flags: u8, prefix_bits: u8, s: &str) {
    encode_prefix_int(out, flags, prefix_bits, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(input: &[u8], pos: &mut usize, prefix_bits: u8) -> Result<String, QpackError> {
    let (_, len) = decode_prefix_int(input, pos, prefix_bits)?;
    let len = len as usize;
    let bytes = input
        .get(*pos..*pos + len)
        .ok_or(QpackError::Truncated)?
        .to_vec();
    *pos += len;
    String::from_utf8(bytes).map_err(|_| QpackError::Truncated)
}

/// One request's encoded output: the encoder-stream instructions that
/// mutate the dynamic table, and the field section that references it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodedRequest {
    /// Encoder-stream bytes (table inserts), possibly empty.
    pub instructions: Vec<u8>,
    /// The encoded field section (prefix + field lines).
    pub section: Vec<u8>,
}

/// Default dynamic-table capacity, matching the h2 stack's
/// SETTINGS_HEADER_TABLE_SIZE default.
pub const DEFAULT_TABLE_SIZE: usize = 4096;

/// The QPACK encoder half of one connection.
#[derive(Debug, Clone)]
pub struct Encoder {
    table: DynamicTable,
    instructions: u64,
}

impl Encoder {
    /// Encoder with the default table capacity.
    pub fn new() -> Self {
        Self::with_table_size(DEFAULT_TABLE_SIZE)
    }

    /// Encoder with an explicit table capacity.
    pub fn with_table_size(max: usize) -> Self {
        Encoder {
            table: DynamicTable::new(max),
            instructions: 0,
        }
    }

    /// Encoder-stream instructions emitted over the lifetime.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic-table evictions over the lifetime.
    pub fn evictions(&self) -> u64 {
        self.table.evictions()
    }

    /// Current dynamic-table occupancy in octets.
    pub fn table_size(&self) -> usize {
        self.table.size()
    }

    /// Encode one field list. All table inserts are emitted on the
    /// encoder stream first, then the section references the settled
    /// table — no post-base references.
    pub fn encode(&mut self, fields: &[Field]) -> EncodedRequest {
        let mut out = EncodedRequest::default();
        // Pass 1: table mutations (encoder stream).
        let mut refs: Vec<TableRef> = Vec::with_capacity(fields.len());
        for f in fields {
            let (exact, by_name) = find_indices(&self.table, &f.name, &f.value);
            let r = match exact {
                Some(r) => r,
                None => match self.insert_instruction(f, by_name, &mut out.instructions) {
                    Some(abs) => TableRef::Dynamic(abs),
                    // Refused (larger than the whole table): the
                    // section carries a plain literal.
                    None => TableRef::Static(usize::MAX),
                },
            };
            refs.push(r);
        }
        // A later insert in this very request may have evicted an
        // entry referenced earlier (tiny tables); dead references
        // travel as literals instead.
        let refs: Vec<TableRef> = refs
            .into_iter()
            .map(|r| match r {
                TableRef::Dynamic(abs) if self.table.get_absolute(abs).is_none() => {
                    TableRef::Static(usize::MAX)
                }
                r => r,
            })
            .collect();
        // Pass 2: the field section. Base = insert count after the
        // mutations above, so every dynamic reference is `base - 1 -
        // absolute` and the Required Insert Count is the base itself
        // whenever any dynamic entry is referenced.
        let base = self.table.insert_count();
        let required = refs
            .iter()
            .filter_map(|r| match r {
                TableRef::Dynamic(abs) => Some(abs + 1),
                TableRef::Static(_) => None,
            })
            .max()
            .unwrap_or(0);
        // §4.5.1.1: 0 encodes as 0, anything else as value + 1 (the
        // wrap arithmetic is not exercised here).
        encode_prefix_int(
            &mut out.section,
            0,
            8,
            if required == 0 { 0 } else { required + 1 },
        );
        // Delta Base, sign bit 0: base = required + delta.
        encode_prefix_int(&mut out.section, 0, 7, base - required);
        for (f, r) in fields.iter().zip(&refs) {
            match *r {
                TableRef::Static(idx) if idx != usize::MAX => {
                    // Indexed field line, static (1 T=1 ......).
                    encode_prefix_int(&mut out.section, 0xc0, 6, idx as u64);
                }
                TableRef::Dynamic(abs) => {
                    // Indexed field line, dynamic (1 T=0), relative to
                    // the base.
                    encode_prefix_int(&mut out.section, 0x80, 6, base - 1 - abs);
                }
                TableRef::Static(_) => {
                    // Literal field line with literal name (001 N H).
                    encode_string(&mut out.section, 0x20, 3, &f.name);
                    encode_string(&mut out.section, 0x00, 7, &f.value);
                }
            }
        }
        out
    }

    /// Emit the cheapest insert instruction for `f` and perform it.
    fn insert_instruction(
        &mut self,
        f: &Field,
        by_name: Option<TableRef>,
        stream: &mut Vec<u8>,
    ) -> Option<u64> {
        let abs = self.table.insert(f.clone())?;
        self.instructions += 1;
        match by_name {
            // Insert with name reference (1 T nnnnnn): static table.
            Some(TableRef::Static(idx)) => {
                encode_prefix_int(stream, 0xc0, 6, idx as u64);
                encode_string(stream, 0x00, 7, &f.value);
            }
            // Insert with name reference, dynamic: relative to the
            // current insert count (which already includes this
            // insert, hence -2: the referenced entry predates it).
            Some(TableRef::Dynamic(name_abs)) => {
                encode_prefix_int(stream, 0x80, 6, self.table.insert_count() - 2 - name_abs);
                encode_string(stream, 0x00, 7, &f.value);
            }
            // Insert with literal name (01 H nnnnn).
            None => {
                encode_string(stream, 0x40, 5, &f.name);
                encode_string(stream, 0x00, 7, &f.value);
            }
        }
        Some(abs)
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// The QPACK decoder half of one connection.
#[derive(Debug, Clone)]
pub struct Decoder {
    table: DynamicTable,
}

impl Decoder {
    /// Decoder with the default table capacity.
    pub fn new() -> Self {
        Self::with_table_size(DEFAULT_TABLE_SIZE)
    }

    /// Decoder with an explicit table capacity (must match the
    /// encoder's).
    pub fn with_table_size(max: usize) -> Self {
        Decoder {
            table: DynamicTable::new(max),
        }
    }

    /// Dynamic-table evictions over the lifetime (tracks the encoder
    /// exactly when both saw the same instruction stream).
    pub fn evictions(&self) -> u64 {
        self.table.evictions()
    }

    /// Insert count applied so far.
    pub fn insert_count(&self) -> u64 {
        self.table.insert_count()
    }

    /// Apply encoder-stream instructions.
    pub fn apply_instructions(&mut self, input: &[u8]) -> Result<(), QpackError> {
        let mut pos = 0;
        while pos < input.len() {
            let first = input[pos];
            if first & 0x80 != 0 {
                // Insert with name reference.
                let (flags, idx) = decode_prefix_int(input, &mut pos, 6)?;
                let name = if flags & 0x40 != 0 {
                    STATIC_TABLE
                        .get(idx as usize)
                        .ok_or(QpackError::InvalidReference)?
                        .0
                        .to_string()
                } else {
                    let abs = self
                        .table
                        .insert_count()
                        .checked_sub(1 + idx)
                        .ok_or(QpackError::InvalidReference)?;
                    self.table
                        .get_absolute(abs)
                        .ok_or(QpackError::InvalidReference)?
                        .name
                        .clone()
                };
                let value = decode_string(input, &mut pos, 7)?;
                self.table.insert(Field { name, value });
            } else if first & 0x40 != 0 {
                // Insert with literal name.
                let name = decode_string(input, &mut pos, 5)?;
                let value = decode_string(input, &mut pos, 7)?;
                self.table.insert(Field { name, value });
            } else {
                return Err(QpackError::InvalidReference);
            }
        }
        Ok(())
    }

    /// Decode a field section against the current table.
    pub fn decode(&mut self, section: &[u8]) -> Result<Vec<Field>, QpackError> {
        let mut pos = 0;
        let (_, encoded_ric) = decode_prefix_int(section, &mut pos, 8)?;
        let required = encoded_ric.saturating_sub(1);
        if required > self.table.insert_count() {
            return Err(QpackError::InvalidReference);
        }
        let (_, delta) = decode_prefix_int(section, &mut pos, 7)?;
        let base = required + delta;
        let mut fields = Vec::new();
        while pos < section.len() {
            let first = section[pos];
            if first & 0x80 != 0 {
                // Indexed field line.
                let (flags, idx) = decode_prefix_int(section, &mut pos, 6)?;
                let f = if flags & 0x40 != 0 {
                    let (n, v) = STATIC_TABLE
                        .get(idx as usize)
                        .ok_or(QpackError::InvalidReference)?;
                    Field::new(n, v)
                } else {
                    let abs = base
                        .checked_sub(1 + idx)
                        .ok_or(QpackError::InvalidReference)?;
                    self.table
                        .get_absolute(abs)
                        .ok_or(QpackError::InvalidReference)?
                        .clone()
                };
                fields.push(f);
            } else if first & 0x20 != 0 {
                // Literal field line with literal name.
                let name = decode_string(section, &mut pos, 3)?;
                let value = decode_string(section, &mut pos, 7)?;
                fields.push(Field { name, value });
            } else {
                return Err(QpackError::InvalidReference);
            }
        }
        Ok(fields)
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(name: &str, value: &str) -> Field {
        Field::new(name, value)
    }

    #[test]
    fn static_table_spot_checks() {
        assert_eq!(STATIC_TABLE[0], (":authority", ""));
        assert_eq!(STATIC_TABLE[17], (":method", "GET"));
        assert_eq!(STATIC_TABLE[23], (":scheme", "https"));
        assert_eq!(STATIC_TABLE[25], (":status", "200"));
        assert_eq!(STATIC_TABLE[98], ("x-frame-options", "sameorigin"));
        assert_eq!(STATIC_TABLE.len(), 99);
    }

    #[test]
    fn prefix_int_round_trip() {
        for (prefix, value) in [(6u8, 0u64), (6, 62), (6, 63), (6, 1337), (8, 255), (3, 9)] {
            let mut out = Vec::new();
            encode_prefix_int(&mut out, 0, prefix, value);
            let mut pos = 0;
            let (_, got) = decode_prefix_int(&out, &mut pos, prefix).unwrap();
            assert_eq!(got, value, "prefix {prefix} value {value}");
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn find_indices_matches_separate_lookups() {
        // The QPACK mirror of the h2 double-scan regression test: the
        // fused lookup must agree with running the exact-match and
        // name-only searches independently, before and after inserts.
        let mut t = DynamicTable::new(4096);
        t.insert(f("x-a", "1"));
        for (name, value) in [
            (":method", "GET"),
            (":method", "TRACE"),
            ("x-a", "1"),
            ("x-a", "2"),
            ("nope", "v"),
        ] {
            let separate_exact = static_pair_index(name, value)
                .map(TableRef::Static)
                .or_else(|| t.find(name, value).map(TableRef::Dynamic));
            let separate_name = static_index()
                .name_first
                .get(name)
                .copied()
                .map(TableRef::Static)
                .or_else(|| t.find_name(name).map(TableRef::Dynamic));
            assert_eq!(
                find_indices(&t, name, value),
                (separate_exact, separate_name)
            );
        }
    }
}
