//! QUIC-ish HTTP/3 connection model.
//!
//! The paper's best-case coalescing model (§4) is evaluated under h2
//! semantics, where coalescing is bounded by certificate coverage and
//! the ORIGIN frame. Under QUIC/h3 the reachable best case shifts:
//! handshakes are one round trip (zero when resumed), TLS session
//! tickets can be redeemed across hostnames behind one certificate
//! (Sy et al.), a validated server address is validated for every
//! later connection to it (shared address validation), and bloated
//! certificate chains re-enter the picture through the
//! anti-amplification limit (Nawrocki et al.). This crate models those
//! mechanics as a layer over `origin-netsim`, driven by the browser
//! loader on pages whose origins deploy h3:
//!
//! - [`handshake`] — the 1-RTT/0-RTT client state machine and the
//!   [`QuicCostModel`] that turns mode + certificate size + address
//!   validation into blocking time.
//! - [`cid`] — connection-ID issuance/retirement under
//!   `active_connection_id_limit`.
//! - [`qpack`] — RFC 9204 field compression: the 0-indexed static
//!   table, an absolute-indexed dynamic table sharing the h2 HPACK
//!   table's bucket architecture, and the split encoder-stream /
//!   field-section wire format.
//! - [`altsvc`] — RFC 7838 advertisement parsing and the per-visit
//!   scope cache that gates h3 upgrades.
//! - [`session`] — [`H3Session`] (per-visit Alt-Svc, ticket, and
//!   address-validation memory; every handshake decision in one
//!   deterministic call) and [`H3Conn`] (per-connection QPACK + CID
//!   driving).
//!
//! Everything is deterministic given the caller's rng: the crate draws
//! no entropy of its own, so `--h3-share 0` universes never touch it
//! and stay byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod altsvc;
pub mod cid;
pub mod handshake;
pub mod qpack;
pub mod session;

pub use altsvc::{format_alt_svc, parse_alt_svc, AltService, AltSvcCache};
pub use cid::{CidError, ConnectionIdRegistry, DEFAULT_ACTIVE_CID_LIMIT};
pub use handshake::{HandshakeError, HandshakeMode, HandshakeState, QuicCostModel, QuicHandshake};
pub use qpack::{Decoder as QpackDecoder, Encoder as QpackEncoder, Field, QpackError};
pub use session::{
    H3Conn, H3Counts, H3RequestStats, H3Session, QuicConnectOutcome, CID_ROTATION_PERIOD,
    ZERO_RTT_REJECT_RATE,
};
