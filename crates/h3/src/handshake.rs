//! The QUIC handshake: an explicit client-side state machine plus the
//! cost model that turns a completed handshake into blocking time on a
//! [`LinkProfile`].
//!
//! QUIC folds transport and TLS establishment into one exchange
//! (RFC 9000/9001): a full handshake costs a single round trip where
//! TCP+TLS 1.3 costs two, and a resumed handshake can carry the first
//! request in the client's first flight (0-RTT). The state machine
//! models the transitions the wire tests pin down — 1-RTT vs 0-RTT,
//! and a server rejecting early data, which falls the connection back
//! to a full 1-RTT handshake rather than failing it.
//!
//! The cost model also carries the anti-amplification interaction
//! (Nawrocki et al.): before the client's address is validated, a
//! server may send at most [`AMPLIFICATION_FACTOR`]× the bytes it
//! received (RFC 9000 §8.1). A certificate chain that overflows that
//! budget stalls the handshake for one extra round trip — unless the
//! client presented an address-validation token from a previous
//! connection to the same address (shared address validation,
//! Sy et al.).

use origin_netsim::{LinkProfile, SimDuration, SimRng};

/// How an established QUIC connection's handshake completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeMode {
    /// Full handshake: one round trip before the first request.
    OneRtt,
    /// Accepted 0-RTT resumption: the first request rode the client's
    /// first flight.
    ZeroRtt,
    /// The server rejected the early data; the handshake completed as
    /// a full 1-RTT exchange and the 0-RTT request was replayed.
    ZeroRttRejected,
}

impl HandshakeMode {
    /// Stable label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            HandshakeMode::OneRtt => "1-rtt",
            HandshakeMode::ZeroRtt => "0-rtt",
            HandshakeMode::ZeroRttRejected => "0-rtt-rejected",
        }
    }
}

/// Client-side handshake states. The wire tests walk every legal
/// transition; illegal ones are [`HandshakeError`]s, not panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeState {
    /// Nothing sent yet.
    Initial,
    /// First flight sent without early data (full handshake pending).
    Handshaking,
    /// First flight sent with 0-RTT early data (resumption pending).
    ZeroRttSent,
    /// Handshake confirmed; application data flows.
    Established,
}

/// An illegal transition: the event is not valid in the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeError {
    /// State the machine was in.
    pub state: HandshakeState,
    /// What was attempted.
    pub event: &'static str,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} invalid in {:?}", self.event, self.state)
    }
}

/// The client half of one QUIC handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuicHandshake {
    state: HandshakeState,
    zero_rtt_rejected: bool,
}

impl QuicHandshake {
    /// A handshake that has sent nothing.
    pub fn new() -> Self {
        QuicHandshake {
            state: HandshakeState::Initial,
            zero_rtt_rejected: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> HandshakeState {
        self.state
    }

    /// Send the first flight without early data (no usable ticket).
    pub fn send_initial(&mut self) -> Result<(), HandshakeError> {
        match self.state {
            HandshakeState::Initial => {
                self.state = HandshakeState::Handshaking;
                Ok(())
            }
            state => Err(HandshakeError {
                state,
                event: "send_initial",
            }),
        }
    }

    /// Send the first flight with 0-RTT early data under a resumption
    /// ticket.
    pub fn send_zero_rtt(&mut self) -> Result<(), HandshakeError> {
        match self.state {
            HandshakeState::Initial => {
                self.state = HandshakeState::ZeroRttSent;
                Ok(())
            }
            state => Err(HandshakeError {
                state,
                event: "send_zero_rtt",
            }),
        }
    }

    /// The server rejected the early data. The connection is not dead:
    /// the handshake continues as a full exchange (RFC 9001 §4.6.2),
    /// and the early request is replayed after establishment.
    pub fn reject_zero_rtt(&mut self) -> Result<(), HandshakeError> {
        match self.state {
            HandshakeState::ZeroRttSent => {
                self.state = HandshakeState::Handshaking;
                self.zero_rtt_rejected = true;
                Ok(())
            }
            state => Err(HandshakeError {
                state,
                event: "reject_zero_rtt",
            }),
        }
    }

    /// The server's flight completed the handshake.
    pub fn confirm(&mut self) -> Result<HandshakeMode, HandshakeError> {
        match self.state {
            HandshakeState::Handshaking => {
                self.state = HandshakeState::Established;
                Ok(if self.zero_rtt_rejected {
                    HandshakeMode::ZeroRttRejected
                } else {
                    HandshakeMode::OneRtt
                })
            }
            HandshakeState::ZeroRttSent => {
                self.state = HandshakeState::Established;
                Ok(HandshakeMode::ZeroRtt)
            }
            state => Err(HandshakeError {
                state,
                event: "confirm",
            }),
        }
    }
}

impl Default for QuicHandshake {
    fn default() -> Self {
        Self::new()
    }
}

/// Bytes of the client's padded first datagram (RFC 9000 §14.1 makes
/// Initial packets at least 1200 bytes precisely to widen the server's
/// amplification budget).
pub const CLIENT_INITIAL_BYTES: u64 = 1_200;

/// Pre-validation send allowance multiplier (RFC 9000 §8.1).
pub const AMPLIFICATION_FACTOR: u64 = 3;

/// Server handshake bytes that accompany the certificate chain
/// (ServerHello, EncryptedExtensions, CertificateVerify, Finished).
pub const HANDSHAKE_OVERHEAD_BYTES: u64 = 900;

/// Cost shape of one QUIC handshake over a given certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuicCostModel {
    /// Extra round trips the anti-amplification limit forces before
    /// the server can finish its first flight (0 when the address is
    /// already validated, or the chain fits the budget).
    pub amplification_rtts: u32,
}

impl QuicCostModel {
    /// Model for a server whose certificate chain is `cert_bytes` on
    /// the wire. With `address_validated` (a token from a previous
    /// connection to this address), the amplification limit does not
    /// apply.
    pub fn for_certificate(cert_bytes: u64, address_validated: bool) -> Self {
        let first_flight = cert_bytes + HANDSHAKE_OVERHEAD_BYTES;
        let budget = AMPLIFICATION_FACTOR * CLIENT_INITIAL_BYTES;
        QuicCostModel {
            amplification_rtts: u32::from(!address_validated && first_flight > budget),
        }
    }

    /// Round trips a completed handshake blocked for. A full handshake
    /// costs one RTT (transport and TLS share the exchange — no TCP
    /// round trip precedes it); accepted 0-RTT costs none; a rejected
    /// 0-RTT completes as a full handshake. The amplification stall
    /// applies to the full-handshake shapes only — an accepted 0-RTT
    /// ticket carries the server's address-validation token.
    pub fn round_trips(&self, mode: HandshakeMode) -> f64 {
        match mode {
            HandshakeMode::ZeroRtt => 0.0,
            HandshakeMode::OneRtt | HandshakeMode::ZeroRttRejected => {
                1.0 + f64::from(self.amplification_rtts)
            }
        }
    }

    /// Blocking handshake time over `link`, jittered like every other
    /// handshake in the simulation.
    pub fn handshake_cost(
        &self,
        mode: HandshakeMode,
        link: &LinkProfile,
        rng: &mut SimRng,
    ) -> SimDuration {
        let rtts = self.round_trips(mode);
        if rtts == 0.0 {
            return SimDuration::ZERO;
        }
        let base = SimDuration::from_millis_f64(link.rtt.as_millis_f64() * rtts);
        link.jittered(base, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_threshold() {
        // Small chain fits 3 × 1200 even with overhead.
        assert_eq!(
            QuicCostModel::for_certificate(1_500, false).amplification_rtts,
            0
        );
        // A bloated chain overflows the pre-validation budget…
        assert_eq!(
            QuicCostModel::for_certificate(6_000, false).amplification_rtts,
            1
        );
        // …unless the address is already validated.
        assert_eq!(
            QuicCostModel::for_certificate(6_000, true).amplification_rtts,
            0
        );
    }

    #[test]
    fn zero_rtt_is_free_and_rejection_is_not() {
        let m = QuicCostModel::for_certificate(6_000, false);
        assert_eq!(m.round_trips(HandshakeMode::ZeroRtt), 0.0);
        assert_eq!(m.round_trips(HandshakeMode::OneRtt), 2.0);
        assert_eq!(m.round_trips(HandshakeMode::ZeroRttRejected), 2.0);
    }
}
