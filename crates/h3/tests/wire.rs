//! Golden wire-level tests for the QUIC/h3 building blocks: the
//! handshake state machine (every legal 1-RTT/0-RTT transition and the
//! rejected-0-RTT fallback), connection-ID issuance/retirement, and
//! QPACK encode/decode down to exact bytes — including dynamic-table
//! eviction parity with the h2 HPACK double-scan regression.

use origin_h3::cid::{CidError, ConnectionIdRegistry};
use origin_h3::handshake::{HandshakeMode, HandshakeState, QuicCostModel, QuicHandshake};
use origin_h3::qpack::{self, Decoder, Encoder, Field};

fn f(name: &str, value: &str) -> Field {
    Field::new(name, value)
}

// ---------------------------------------------------------------- //
// Handshake state machine
// ---------------------------------------------------------------- //

#[test]
fn one_rtt_walks_initial_handshaking_established() {
    let mut hs = QuicHandshake::new();
    assert_eq!(hs.state(), HandshakeState::Initial);
    hs.send_initial().unwrap();
    assert_eq!(hs.state(), HandshakeState::Handshaking);
    assert_eq!(hs.confirm().unwrap(), HandshakeMode::OneRtt);
    assert_eq!(hs.state(), HandshakeState::Established);
}

#[test]
fn zero_rtt_walks_initial_zero_rtt_sent_established() {
    let mut hs = QuicHandshake::new();
    hs.send_zero_rtt().unwrap();
    assert_eq!(hs.state(), HandshakeState::ZeroRttSent);
    assert_eq!(hs.confirm().unwrap(), HandshakeMode::ZeroRtt);
    assert_eq!(hs.state(), HandshakeState::Established);
}

#[test]
fn rejected_zero_rtt_falls_back_to_full_handshake() {
    let mut hs = QuicHandshake::new();
    hs.send_zero_rtt().unwrap();
    hs.reject_zero_rtt().unwrap();
    // The connection is not dead — it is mid full handshake.
    assert_eq!(hs.state(), HandshakeState::Handshaking);
    assert_eq!(hs.confirm().unwrap(), HandshakeMode::ZeroRttRejected);
    // And the rejected shape costs what a full handshake costs.
    let m = QuicCostModel::for_certificate(1_500, false);
    assert_eq!(
        m.round_trips(HandshakeMode::ZeroRttRejected),
        m.round_trips(HandshakeMode::OneRtt)
    );
}

#[test]
fn illegal_transitions_error_instead_of_panicking() {
    let mut hs = QuicHandshake::new();
    // Cannot confirm or reject before sending anything.
    assert!(hs.confirm().is_err());
    assert!(hs.reject_zero_rtt().is_err());
    hs.send_initial().unwrap();
    // Cannot send again, and cannot reject 0-RTT that was never sent.
    assert!(hs.send_initial().is_err());
    assert!(hs.send_zero_rtt().is_err());
    assert!(hs.reject_zero_rtt().is_err());
    hs.confirm().unwrap();
    assert!(hs.confirm().is_err());
}

#[test]
fn handshake_mode_labels_are_stable() {
    // Trace/report vocabulary — changing these breaks committed
    // artifacts.
    assert_eq!(HandshakeMode::OneRtt.label(), "1-rtt");
    assert_eq!(HandshakeMode::ZeroRtt.label(), "0-rtt");
    assert_eq!(HandshakeMode::ZeroRttRejected.label(), "0-rtt-rejected");
}

// ---------------------------------------------------------------- //
// Connection IDs
// ---------------------------------------------------------------- //

#[test]
fn cid_issuance_respects_the_active_limit() {
    let mut r = ConnectionIdRegistry::new(2);
    // Sequence 0 exists from the handshake.
    assert_eq!(r.active(), &[0]);
    assert_eq!(r.issue().unwrap(), 1);
    assert_eq!(r.issue(), Err(CidError::LimitExceeded));
    assert_eq!(r.active(), &[0, 1]);
}

#[test]
fn cid_retirement_is_permanent_and_checked() {
    let mut r = ConnectionIdRegistry::new(2);
    r.issue().unwrap();
    r.retire(0).unwrap();
    // A retired sequence number never comes back.
    assert_eq!(r.retire(0), Err(CidError::UnknownSequence(0)));
    assert_eq!(r.active(), &[1]);
    assert_eq!(r.issued(), 2);
    assert_eq!(r.retired(), 1);
}

#[test]
fn cid_rotation_at_the_limit_retires_first() {
    let mut r = ConnectionIdRegistry::new(2);
    r.issue().unwrap(); // at limit: [0, 1]
    let (old, new) = r.rotate().unwrap();
    assert_eq!((old, new), (0, 2));
    assert_eq!(r.active(), &[1, 2]);
    // Below the limit the fresh ID is issued before the retirement,
    // so the connection never momentarily holds zero IDs.
    let mut r = ConnectionIdRegistry::new(4);
    let (old, new) = r.rotate().unwrap();
    assert_eq!((old, new), (0, 1));
    assert_eq!(r.active(), &[1]);
}

// ---------------------------------------------------------------- //
// QPACK: golden bytes
// ---------------------------------------------------------------- //

#[test]
fn static_only_request_has_no_instructions_and_golden_section() {
    let mut enc = Encoder::new();
    let out = enc.encode(&[
        f(":method", "GET"),
        f(":scheme", "https"),
        f(":path", "/"),
        f("accept", "*/*"),
    ]);
    assert!(out.instructions.is_empty());
    // Prefix: Required Insert Count 0, Delta Base 0; then four
    // indexed-static lines (0b11xxxxxx | index).
    assert_eq!(out.section, vec![0x00, 0x00, 0xd1, 0xd7, 0xc1, 0xdd]);
    assert_eq!(enc.instructions(), 0);
}

#[test]
fn authority_inserts_once_then_rides_the_dynamic_table() {
    let mut enc = Encoder::new();
    let fields = [
        f(":method", "GET"),
        f(":scheme", "https"),
        f(":authority", "x.y"),
        f(":path", "/"),
    ];
    let first = enc.encode(&fields);
    // One encoder-stream instruction: insert-with-name-reference to
    // static index 0 (:authority), value "x.y" raw.
    assert_eq!(first.instructions, vec![0xc0, 0x03, b'x', b'.', b'y']);
    // Section: RIC = 1 encoded as 2, Delta Base 0, then GET / https
    // static, the dynamic reference (relative 0), and :path static.
    assert_eq!(first.section, vec![0x02, 0x00, 0xd1, 0xd7, 0x80, 0xc1]);

    // The second identical request needs no instructions and produces
    // the identical section — the table state is settled.
    let second = enc.encode(&fields);
    assert!(second.instructions.is_empty());
    assert_eq!(second.section, first.section);
    assert_eq!(enc.instructions(), 1);

    // And the decoder round-trips both from the wire bytes alone.
    let mut dec = Decoder::new();
    dec.apply_instructions(&first.instructions).unwrap();
    assert_eq!(dec.decode(&first.section).unwrap(), fields);
    assert_eq!(dec.decode(&second.section).unwrap(), fields);
}

#[test]
fn unknown_name_uses_a_literal_name_insert() {
    let mut enc = Encoder::new();
    let out = enc.encode(&[f("x-custom", "v")]);
    // Insert with literal name: 0b01H nnnnn (len 8 fits 5 bits), the
    // name, then the raw value.
    let mut want = vec![0x40 | 8];
    want.extend_from_slice(b"x-custom");
    want.extend_from_slice(&[0x01, b'v']);
    assert_eq!(out.instructions, want);
    let mut dec = Decoder::new();
    dec.apply_instructions(&out.instructions).unwrap();
    assert_eq!(dec.decode(&out.section).unwrap(), vec![f("x-custom", "v")]);
}

#[test]
fn oversized_field_falls_back_to_a_section_literal() {
    // A field larger than the entire table is refused by the dynamic
    // table (QPACK has no HPACK-style whole-table clear) and travels
    // as a literal field line instead.
    let mut enc = Encoder::with_table_size(64);
    let big = "v".repeat(64);
    let out = enc.encode(&[f("x-big", &big)]);
    assert!(out.instructions.is_empty());
    assert_eq!(enc.table_size(), 0);
    let mut dec = Decoder::with_table_size(64);
    assert_eq!(dec.decode(&out.section).unwrap(), vec![f("x-big", &big)]);
}

#[test]
fn intra_request_eviction_demotes_dead_references_to_literals() {
    // One-slot table (each entry is 2+1+32 = 35 octets), three
    // distinct fields in one request: each insert evicts its
    // predecessor, so the first two section lines must travel as
    // literals rather than referencing evicted entries.
    let mut enc = Encoder::with_table_size(68);
    let fields = [f("aa", "1"), f("bb", "2"), f("cc", "3")];
    let out = enc.encode(&fields);
    let mut dec = Decoder::with_table_size(68);
    dec.apply_instructions(&out.instructions).unwrap();
    assert_eq!(dec.decode(&out.section).unwrap(), fields);
    assert_eq!(enc.evictions(), 2);
}

#[test]
fn round_trip_survives_many_requests_with_shared_state() {
    let mut enc = Encoder::new();
    let mut dec = Decoder::new();
    for i in 0..100 {
        let fields = [
            f(":method", "GET"),
            f(":scheme", "https"),
            f(
                ":authority",
                if i % 3 == 0 { "a.example" } else { "b.example" },
            ),
            f(":path", &format!("/asset/{}", i % 7)),
        ];
        let out = enc.encode(&fields);
        dec.apply_instructions(&out.instructions).unwrap();
        assert_eq!(dec.decode(&out.section).unwrap(), fields, "request {i}");
    }
    // Steady state: names and the recurring paths are table hits, so
    // instruction volume converges (2 authorities + 7 paths).
    assert_eq!(enc.instructions(), 9);
}

// ---------------------------------------------------------------- //
// QPACK: eviction parity with the h2 HPACK double-scan regression
// ---------------------------------------------------------------- //

#[test]
fn eviction_keeps_encoder_and_decoder_in_lockstep() {
    // 68 octets fit exactly two 34-octet entries — the same capacity
    // the h2 hpack eviction tests pin. Streaming many distinct fields
    // through forces continuous eviction on both ends.
    let mut enc = Encoder::with_table_size(68);
    let mut dec = Decoder::with_table_size(68);
    for i in 0..26 {
        let name = ((b'a' + i) as char).to_string();
        let fields = [f(&name, "1")];
        let out = enc.encode(&fields);
        dec.apply_instructions(&out.instructions).unwrap();
        assert_eq!(dec.decode(&out.section).unwrap(), fields);
    }
    // 26 inserts into a 2-slot table: 24 evictions, mirrored exactly.
    assert_eq!(enc.evictions(), 24);
    assert_eq!(dec.evictions(), 24);
    assert_eq!(dec.insert_count(), 26);
}

#[test]
fn find_indices_stays_correct_under_continuous_eviction() {
    // The h2 double-scan regression, ported: the fused one-pass
    // exact+name lookup must agree with a linear-scan oracle while
    // eviction continuously rewrites the name buckets.
    use origin_h3::qpack::{DynamicTable, TableRef};

    let mut table = DynamicTable::new(3 * 34);
    let mut oracle: Vec<Field> = Vec::new(); // most recent first
    for i in 0u32..40 {
        let name = format!("{}", (b'a' + (i % 5) as u8) as char);
        let value = format!("{}", i % 3);
        let field = f(&name, &value);
        if table.insert(field.clone()).is_some() {
            oracle.insert(0, field);
            while oracle.len() > 3 {
                oracle.pop();
            }
        }
        // Probe every (name, value) in play plus misses.
        for pn in ["a", "b", "c", "d", "e", "zz"] {
            for pv in ["0", "1", "2", "9"] {
                let (exact, by_name) = qpack::find_indices(&table, pn, pv);
                let newest = table.insert_count() - 1;
                let scan_exact = oracle
                    .iter()
                    .position(|e| e.name == pn && e.value == pv)
                    .map(|pos| TableRef::Dynamic(newest - pos as u64));
                let scan_name = oracle
                    .iter()
                    .position(|e| e.name == pn)
                    .map(|pos| TableRef::Dynamic(newest - pos as u64));
                // No probe name collides with the static table, so
                // the dynamic answers must match the oracle exactly.
                assert_eq!(exact, scan_exact, "exact {pn}={pv} after insert {i}");
                assert_eq!(by_name, scan_name, "name {pn} after insert {i}");
            }
        }
    }
    assert!(table.evictions() > 30);
}
