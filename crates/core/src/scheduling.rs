//! §6.1: scheduling fidelity under coalescing.
//!
//! "The sequence of resources transmitted over multiple connections
//! may be altered by network effects, and received by the client with
//! different ordering and timings. … In contrast, coalesced resources
//! are always received in the ordering intended to optimize the
//! critical path."
//!
//! This module quantifies that claim: given a set of prioritized
//! resources, deliver them (a) over one coalesced connection whose
//! server schedules by the RFC 7540 priority tree, and (b) over `k`
//! parallel connections that race at the bottleneck, then count
//! priority inversions in the arrival order.

use origin_h2::{PriorityTree, StreamId};
use origin_netsim::{LinkProfile, SimRng};

/// One resource to deliver: its priority weight (higher = more
/// urgent) and its size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledResource {
    /// RFC 7540 weight octet (0..=255, representing 1..=256).
    pub weight: u8,
    /// Transfer size in bytes.
    pub size: u64,
}

/// Outcome of one delivery simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryOutcome {
    /// Arrival order as indices into the input resource list.
    pub arrival_order: Vec<usize>,
    /// Number of pairwise priority inversions: pairs `(a, b)` where
    /// `a` has strictly higher weight than `b` but arrived later.
    pub inversions: u64,
}

fn count_inversions(resources: &[ScheduledResource], arrival: &[usize]) -> u64 {
    let mut inv = 0;
    for i in 0..arrival.len() {
        for j in (i + 1)..arrival.len() {
            // arrival[i] arrived before arrival[j].
            if resources[arrival[j]].weight > resources[arrival[i]].weight {
                inv += 1;
            }
        }
    }
    inv
}

/// Deliver over one coalesced connection: the server transmits in
/// priority-tree order, so arrivals follow intent exactly.
pub fn deliver_coalesced(resources: &[ScheduledResource]) -> DeliveryOutcome {
    let mut tree = PriorityTree::new();
    for (i, r) in resources.iter().enumerate() {
        tree.apply(
            StreamId(2 * i as u32 + 1),
            origin_h2::frame::PrioritySpec {
                exclusive: false,
                depends_on: StreamId::CONNECTION,
                weight: r.weight,
            },
        );
    }
    let arrival_order: Vec<usize> = tree
        .transmission_order()
        .into_iter()
        .map(|s| ((s.0 - 1) / 2) as usize)
        .collect();
    let inversions = count_inversions(resources, &arrival_order);
    DeliveryOutcome {
        arrival_order,
        inversions,
    }
}

/// Deliver over `k` parallel connections that share the bottleneck:
/// resources are striped across connections and finish in
/// jitter-perturbed transfer-time order — the client cannot impose
/// priority across connections.
pub fn deliver_parallel(
    resources: &[ScheduledResource],
    k: usize,
    link: &LinkProfile,
    rng: &mut SimRng,
) -> DeliveryOutcome {
    assert!(k > 0, "need at least one connection");
    // Per-connection serialized finish times; each connection gets an
    // equal share of the bottleneck.
    let mut conn_busy = vec![0.0f64; k];
    let mut finish: Vec<(f64, usize)> = Vec::with_capacity(resources.len());
    for (i, r) in resources.iter().enumerate() {
        let conn = i % k;
        // Bottleneck share halves the effective rate per extra
        // concurrent connection; jitter perturbs completion.
        let base = link
            .transfer_time(r.size * k as u64, origin_netsim::link::INIT_CWND)
            .as_millis_f64();
        let jitter = 1.0 + rng.standard_normal().abs() * 0.35;
        conn_busy[conn] += base * jitter;
        finish.push((conn_busy[conn], i));
    }
    finish.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let arrival_order: Vec<usize> = finish.into_iter().map(|(_, i)| i).collect();
    let inversions = count_inversions(resources, &arrival_order);
    DeliveryOutcome {
        arrival_order,
        inversions,
    }
}

/// Run the §6.1 comparison over `trials` random workloads; returns
/// mean inversions `(coalesced, parallel)`.
pub fn compare(trials: u32, resources_per_page: usize, k: usize, seed: u64) -> (f64, f64) {
    let mut rng = SimRng::seed_from_u64(seed);
    let link = LinkProfile::new(30.0, 20.0);
    let (mut coal_total, mut par_total) = (0u64, 0u64);
    for _ in 0..trials {
        let resources: Vec<ScheduledResource> = (0..resources_per_page)
            .map(|_| ScheduledResource {
                weight: rng.range_u64(0, 256) as u8,
                size: (rng.log_normal(20_000.0, 0.8) as u64).clamp(500, 500_000),
            })
            .collect();
        coal_total += deliver_coalesced(&resources).inversions;
        par_total += deliver_parallel(&resources, k, &link, &mut rng).inversions;
    }
    (
        coal_total as f64 / trials as f64,
        par_total as f64 / trials as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resources() -> Vec<ScheduledResource> {
        vec![
            ScheduledResource {
                weight: 10,
                size: 10_000,
            },
            ScheduledResource {
                weight: 200,
                size: 40_000,
            },
            ScheduledResource {
                weight: 100,
                size: 5_000,
            },
            ScheduledResource {
                weight: 250,
                size: 80_000,
            },
        ]
    }

    #[test]
    fn coalesced_delivery_has_zero_inversions() {
        let out = deliver_coalesced(&resources());
        assert_eq!(out.inversions, 0);
        // Highest weight first.
        assert_eq!(out.arrival_order[0], 3);
        assert_eq!(out.arrival_order[1], 1);
    }

    #[test]
    fn parallel_delivery_scrambles_order() {
        let mut rng = SimRng::seed_from_u64(0x5c4ed);
        let link = LinkProfile::new(30.0, 20.0);
        let mut total = 0;
        for _ in 0..50 {
            let out = deliver_parallel(&resources(), 4, &link, &mut rng);
            total += out.inversions;
            assert_eq!(out.arrival_order.len(), 4);
        }
        assert!(total > 0, "parallel connections must produce inversions");
    }

    #[test]
    fn comparison_favors_coalescing() {
        let (coal, par) = compare(40, 12, 6, 0x61);
        assert_eq!(coal, 0.0, "single-connection scheduling is exact");
        assert!(par > 5.0, "parallel inversions {par}");
    }

    #[test]
    fn single_connection_parallel_is_serialized() {
        // k=1 "parallel" still arrives in emission order (no
        // cross-connection racing), so inversions reflect only the
        // unprioritized striping order.
        let mut rng = SimRng::seed_from_u64(1);
        let link = LinkProfile::new(30.0, 20.0);
        let out = deliver_parallel(&resources(), 1, &link, &mut rng);
        assert_eq!(out.arrival_order, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_connections_panics() {
        let mut rng = SimRng::seed_from_u64(1);
        let link = LinkProfile::new(30.0, 20.0);
        deliver_parallel(&resources(), 0, &link, &mut rng);
    }
}
