//! §4.3 certificate-modification planning (Figures 4–5, Tables 8–9).
//!
//! "In each website's certificate we identify and add the individual
//! hostnames needed to load the webpage that are available from the
//! same provider but absent from the SAN."

use origin_dns::DnsName;
use origin_stats::{Cdf, Histogram, TopK};
use origin_tls::Certificate;
use origin_web::Page;
use std::collections::HashMap;

/// The least-effort SAN plan for one website's certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct CertPlan {
    /// Site rank.
    pub rank: u32,
    /// The website (certificate subject).
    pub root_host: DnsName,
    /// DNS SAN entries in the existing certificate.
    pub existing_sans: u32,
    /// Hostnames to add: same-provider page hosts the SAN misses.
    pub additions: Vec<DnsName>,
}

impl CertPlan {
    /// SAN entries after the modification.
    pub fn ideal_sans(&self) -> u32 {
        self.existing_sans + self.additions.len() as u32
    }

    /// Does this certificate need any change at all? (62.41% of the
    /// paper's sites did not.)
    pub fn unchanged(&self) -> bool {
        self.additions.is_empty()
    }
}

/// Compute the least-effort plan for one site.
///
/// `same_provider(a, b)` answers whether hosts `a` and `b` are served
/// by the same provider (the §4.1 colocation assumption); `cert` is
/// the certificate currently served for the root host (None models
/// the paper's SAN-less certificates).
pub fn plan_site(
    page: &Page,
    cert: Option<&Certificate>,
    same_provider: impl Fn(&DnsName, &DnsName) -> bool,
) -> CertPlan {
    let existing_sans = cert.map(|c| c.san_count() as u32).unwrap_or(0);
    let mut additions: Vec<DnsName> = Vec::new();
    for r in &page.resources {
        if r.host == page.root_host || !r.secure {
            continue;
        }
        if !same_provider(&page.root_host, &r.host) {
            continue;
        }
        let covered = cert.map(|c| c.covers(&r.host)).unwrap_or(false);
        if !covered && !additions.contains(&r.host) {
            additions.push(r.host.clone());
        }
    }
    CertPlan {
        rank: page.rank,
        root_host: page.root_host.clone(),
        existing_sans,
        additions,
    }
}

/// One side of Table 8: `(san_size, site_count)` rows by frequency.
pub type Table8Side = Vec<(u64, u64)>;

/// One Table 9 row: provider, customer-site count, and its top-k
/// `(hostname, count, percent-of-sites)` additions.
pub type Table9Row = (String, u64, Vec<(String, u64, f64)>);

/// Aggregate over all sites: the Figure 4/5 and Table 8 inputs.
#[derive(Default)]
pub struct PlanSummary {
    /// Existing SAN sizes (Table 8 "Measured", Figure 4 blue).
    pub existing: Histogram,
    /// Ideal SAN sizes (Table 8 "Ideal", Figure 4 red).
    pub ideal: Histogram,
    /// Number of additions per certificate (Figure 5 green).
    pub changes: Histogram,
    /// `(existing, ideal)` per site, for the Figure 5 rank plot.
    pub per_site: Vec<(u32, u32)>,
    /// Sites requiring no modification.
    pub unchanged_sites: u64,
    /// Total sites planned.
    pub total_sites: u64,
    /// Sites with no SAN at all in the existing certificate.
    pub san_less_sites: u64,
    /// Of the SAN-less sites, how many need changes (the paper found
    /// only 2 of 11,131).
    pub san_less_needing_changes: u64,
}

impl PlanSummary {
    /// Record one site's plan.
    pub fn add(&mut self, plan: &CertPlan) {
        self.total_sites += 1;
        self.existing.add(plan.existing_sans as u64);
        self.ideal.add(plan.ideal_sans() as u64);
        self.changes.add(plan.additions.len() as u64);
        self.per_site.push((plan.existing_sans, plan.ideal_sans()));
        if plan.unchanged() {
            self.unchanged_sites += 1;
        }
        if plan.existing_sans == 0 {
            self.san_less_sites += 1;
            if !plan.unchanged() {
                self.san_less_needing_changes += 1;
            }
        }
    }

    /// Fold a shard's summary into this one. `per_site` concatenates
    /// in call order — merge rank-ordered shards in rank order to
    /// reproduce the sequential Figure 5 series byte for byte; the
    /// histograms and counters are order-independent.
    pub fn merge(&mut self, other: PlanSummary) {
        self.existing.merge(&other.existing);
        self.ideal.merge(&other.ideal);
        self.changes.merge(&other.changes);
        self.per_site.extend(other.per_site);
        self.unchanged_sites += other.unchanged_sites;
        self.total_sites += other.total_sites;
        self.san_less_sites += other.san_less_sites;
        self.san_less_needing_changes += other.san_less_needing_changes;
    }

    /// Export the plan totals into a metrics registry under
    /// `certplan.*`.
    pub fn record_into(&self, metrics: &mut origin_metrics::Registry) {
        metrics.add("certplan.sites", self.total_sites);
        metrics.add("certplan.unchanged_sites", self.unchanged_sites);
        metrics.add("certplan.san_less_sites", self.san_less_sites);
        let additions: u64 = self.changes.bins().map(|(v, c)| v * c).sum();
        metrics.add("certplan.san_additions", additions);
    }

    /// Fraction of sites needing no change (paper: 62.41%).
    pub fn unchanged_fraction(&self) -> f64 {
        if self.total_sites == 0 {
            0.0
        } else {
            self.unchanged_sites as f64 / self.total_sites as f64
        }
    }

    /// Fraction of sites coalescible with ≤ `n` additions (paper:
    /// 92.66% within 10).
    pub fn within_changes(&self, n: u64) -> f64 {
        self.changes.cdf_at(n)
    }

    /// Figure 4 CDFs: `(existing, ideal)`.
    pub fn figure4(&self) -> (Cdf, Cdf) {
        let existing: Vec<u64> = self.per_site.iter().map(|&(e, _)| e as u64).collect();
        let ideal: Vec<u64> = self.per_site.iter().map(|&(_, i)| i as u64).collect();
        (Cdf::from_u64(&existing), Cdf::from_u64(&ideal))
    }

    /// Figure 5 series: sites ranked by existing SAN size
    /// (descending); each entry is `(existing, ideal, changes)`.
    pub fn figure5(&self) -> Vec<(u32, u32, u32)> {
        let mut v: Vec<(u32, u32, u32)> =
            self.per_site.iter().map(|&(e, i)| (e, i, i - e)).collect();
        v.sort_by_key(|&(e, _, _)| std::cmp::Reverse(e));
        v
    }

    /// Sites whose certificate exceeds `threshold` SAN names, before
    /// and after modification (the paper: 230 → 529 above 250).
    pub fn sites_above(&self, threshold: u64) -> (u64, u64) {
        let before = self
            .per_site
            .iter()
            .filter(|&&(e, _)| e as u64 > threshold)
            .count() as u64;
        let after = self
            .per_site
            .iter()
            .filter(|&&(_, i)| i as u64 > threshold)
            .count() as u64;
        (before, after)
    }

    /// Table 8: top-`k` SAN sizes by site count, measured vs ideal.
    pub fn table8(&self, k: usize) -> (Table8Side, Table8Side) {
        let mut measured = self.existing.ranked();
        measured.truncate(k);
        let mut ideal = self.ideal.ranked();
        ideal.truncate(k);
        (measured, ideal)
    }
}

/// Table 9 accumulator: for each hosting provider, which third-party
/// hostnames would most often need adding to its customers' certs.
#[derive(Default)]
pub struct EffectiveChanges {
    per_provider: HashMap<String, ProviderChanges>,
}

#[derive(Default)]
struct ProviderChanges {
    sites: u64,
    hostnames: TopK<String>,
}

impl EffectiveChanges {
    /// New accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a site hosted by `provider` and the hostnames its plan
    /// adds.
    pub fn add(&mut self, provider: &str, plan: &CertPlan) {
        let p = self.per_provider.entry(provider.to_string()).or_default();
        p.sites += 1;
        for h in &plan.additions {
            p.hostnames.add(h.to_string());
        }
    }

    /// Fold a shard's accumulator into this one; all fields are
    /// commutative counters, so any merge order gives the same table.
    pub fn merge(&mut self, other: EffectiveChanges) {
        for (provider, changes) in other.per_provider {
            let p = self.per_provider.entry(provider).or_default();
            p.sites += changes.sites;
            p.hostnames.merge(&changes.hostnames);
        }
    }

    /// Table 9 rows: `(provider, site_count, top-k hostnames with the
    /// count and percent-of-provider-sites using each)`.
    pub fn table9(&self, k: usize) -> Vec<Table9Row> {
        let mut rows: Vec<Table9Row> = self
            .per_provider
            .iter()
            .map(|(name, p)| {
                let hosts = p
                    .hostnames
                    .top(k)
                    .into_iter()
                    .map(|e| {
                        let pct = if p.sites == 0 {
                            0.0
                        } else {
                            e.count as f64 / p.sites as f64 * 100.0
                        };
                        (e.key, e.count, pct)
                    })
                    .collect();
                (name.clone(), p.sites, hosts)
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_tls::CertificateBuilder;
    use origin_web::{ContentType, Resource};

    fn page() -> Page {
        let mut p = Page::new(1, name("site.com"), 1_000);
        p.push(Resource::new(
            name("static.site.com"),
            "/a.css",
            ContentType::Css,
            10,
        ));
        p.push(Resource::new(
            name("cdnjs.cloudflare.com"),
            "/x.js",
            ContentType::Javascript,
            10,
        ));
        p.push(Resource::new(
            name("fonts.gstatic.com"),
            "/f.woff2",
            ContentType::Woff2,
            10,
        ));
        p
    }

    /// site.com + static.site.com + cdnjs are "same provider";
    /// fonts.gstatic.com is not.
    fn same_provider(a: &DnsName, b: &DnsName) -> bool {
        let group = |h: &DnsName| {
            if h.as_str().contains("site.com") || h.as_str().contains("cloudflare") {
                1
            } else {
                2
            }
        };
        group(a) == group(b)
    }

    #[test]
    fn plan_adds_missing_same_provider_hosts() {
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let plan = plan_site(&page(), Some(&cert), same_provider);
        // static.site.com is covered by the wildcard; cdnjs is same
        // provider but absent; fonts.gstatic.com is another provider.
        assert_eq!(plan.additions, vec![name("cdnjs.cloudflare.com")]);
        assert_eq!(plan.existing_sans, 2);
        assert_eq!(plan.ideal_sans(), 3);
        assert!(!plan.unchanged());
    }

    #[test]
    fn covered_site_needs_nothing() {
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .san(name("cdnjs.cloudflare.com"))
            .build();
        let plan = plan_site(&page(), Some(&cert), same_provider);
        assert!(plan.unchanged());
    }

    #[test]
    fn san_less_cert() {
        let plan = plan_site(&page(), None, same_provider);
        assert_eq!(plan.existing_sans, 0);
        // static + cdnjs both need adding (nothing is covered).
        assert_eq!(plan.additions.len(), 2);
    }

    #[test]
    fn duplicate_hosts_deduped() {
        let mut p = page();
        p.push(Resource::new(
            name("cdnjs.cloudflare.com"),
            "/y.js",
            ContentType::Javascript,
            10,
        ));
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let plan = plan_site(&p, Some(&cert), same_provider);
        assert_eq!(plan.additions.len(), 1);
    }

    #[test]
    fn summary_statistics() {
        let mut s = PlanSummary::default();
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let changed = plan_site(&page(), Some(&cert), same_provider);
        let full_cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .san(name("cdnjs.cloudflare.com"))
            .build();
        let unchanged = plan_site(&page(), Some(&full_cert), same_provider);
        s.add(&changed);
        s.add(&unchanged);
        assert_eq!(s.total_sites, 2);
        assert_eq!(s.unchanged_fraction(), 0.5);
        assert_eq!(s.within_changes(0), 0.5);
        assert_eq!(s.within_changes(10), 1.0);
        let (before, after) = s.sites_above(2);
        assert_eq!(before, 1); // the 3-SAN cert
        assert_eq!(after, 2);
        let (cdf_e, cdf_i) = s.figure4();
        assert_eq!(cdf_e.len(), 2);
        assert!(cdf_i.median().unwrap() >= cdf_e.median().unwrap());
        // Figure 5 sorted descending by existing size.
        let f5 = s.figure5();
        assert!(f5[0].0 >= f5[1].0);
    }

    #[test]
    fn summary_merge_matches_sequential_add() {
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let changed = plan_site(&page(), Some(&cert), same_provider);
        let san_less = plan_site(&page(), None, same_provider);

        let mut seq = PlanSummary::default();
        seq.add(&changed);
        seq.add(&san_less);
        seq.add(&changed);

        let mut lo = PlanSummary::default();
        lo.add(&changed);
        lo.add(&san_less);
        let mut hi = PlanSummary::default();
        hi.add(&changed);
        let mut merged = PlanSummary::default();
        merged.merge(lo);
        merged.merge(hi);

        assert_eq!(merged.total_sites, seq.total_sites);
        assert_eq!(merged.per_site, seq.per_site);
        assert_eq!(merged.san_less_sites, seq.san_less_sites);
        assert_eq!(
            merged.san_less_needing_changes,
            seq.san_less_needing_changes
        );
        assert_eq!(merged.table8(5), seq.table8(5));
        assert_eq!(merged.figure5(), seq.figure5());

        // x ⊕ empty == x.
        let mut alone = PlanSummary::default();
        alone.add(&changed);
        let rows = alone.table8(5);
        alone.merge(PlanSummary::default());
        assert_eq!(alone.table8(5), rows);
        assert_eq!(alone.total_sites, 1);
    }

    #[test]
    fn effective_changes_merge_matches_sequential_add() {
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let plan = plan_site(&page(), Some(&cert), same_provider);

        let mut seq = EffectiveChanges::new();
        seq.add("Cloudflare", &plan);
        seq.add("Fastly", &plan);
        seq.add("Cloudflare", &plan);

        let mut lo = EffectiveChanges::new();
        lo.add("Cloudflare", &plan);
        lo.add("Fastly", &plan);
        let mut hi = EffectiveChanges::new();
        hi.add("Cloudflare", &plan);
        let mut merged = EffectiveChanges::new();
        merged.merge(lo);
        merged.merge(hi);
        assert_eq!(merged.table9(5), seq.table9(5));

        // empty ⊕ x == x.
        let mut from_empty = EffectiveChanges::new();
        let mut x = EffectiveChanges::new();
        x.add("Akamai", &plan);
        let rows = x.table9(5);
        from_empty.merge(x);
        assert_eq!(from_empty.table9(5), rows);
    }

    #[test]
    fn effective_changes_table9() {
        let mut e = EffectiveChanges::new();
        let cert = CertificateBuilder::new(name("site.com"))
            .san(name("*.site.com"))
            .build();
        let plan = plan_site(&page(), Some(&cert), same_provider);
        e.add("Cloudflare", &plan);
        e.add("Cloudflare", &plan);
        let rows = e.table9(5);
        assert_eq!(rows.len(), 1);
        let (provider, sites, hosts) = &rows[0];
        assert_eq!(provider, "Cloudflare");
        assert_eq!(*sites, 2);
        assert_eq!(hosts[0].0, "cdnjs.cloudflare.com");
        assert_eq!(hosts[0].1, 2);
        assert_eq!(hosts[0].2, 100.0);
    }

    #[test]
    fn insecure_hosts_excluded() {
        let mut p = page();
        let mut r = Resource::new(name("plain.site.com"), "/p.gif", ContentType::Gif, 5);
        r.secure = false;
        p.push(r);
        let plan = plan_site(&p, None, same_provider);
        assert!(!plan.additions.contains(&name("plain.site.com")));
    }
}
