//! The paper's §4 best-case coalescing model.
//!
//! Given a crawl (pages + their measured [`origin_web::PageLoad`]s),
//! this crate answers the paper's three questions:
//!
//! 1. **How much of the Internet is coalescable?**
//!    [`characterize`] aggregates the dataset the way §3.3 does
//!    (Tables 1–7, Figure 1); [`model`] predicts the ideal IP-based
//!    and ORIGIN-based DNS/TLS/validation counts (Figure 3) and
//!    reconstructs request timelines with setup phases removed
//!    (§4.1, Figures 2 and 9-top).
//! 2. **What changes are required?** [`certplan`] computes the
//!    least-effort certificate SAN additions (Figures 4–5, Table 8)
//!    and the most-effective per-provider changes (Table 9).
//! 3. **Can it be done?** The `origin-cdn` crate deploys the plan;
//!    this crate supplies the prediction it is validated against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certplan;
pub mod characterize;
pub mod model;
pub mod reconstruct;
pub mod scheduling;

pub use certplan::{CertPlan, PlanSummary};
pub use characterize::Characterization;
pub use model::{CoalescingGrouping, ModelPrediction};
pub use reconstruct::reconstruct;
