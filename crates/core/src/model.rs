//! §4.2 predictions: ideal DNS queries, TLS connections, certificate
//! validations, and reconstructed PLTs.
//!
//! "In an ideal coalescing, the number of DNS queries, TLS
//! handshakes, and certificate validations is equal to the number of
//! separate services (not domains or hostnames) needed to serve all
//! webpage resources."

use crate::reconstruct::reconstruct;
use origin_intern::FxHashSet;
use origin_web::har::{ms_to_us, PageLoad};
use origin_web::Page;
use std::net::IpAddr;

/// How requests are grouped into "one connection suffices" classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalescingGrouping {
    /// Ideal IP-based coalescing: any set of ≥2 connections to the
    /// same IP address collapses to one ("our model assumes no
    /// changes and looks for missed opportunities").
    ByIp,
    /// Ideal ORIGIN coalescing: one connection per origin AS — the
    /// model's proxy for "separate services", justified in §4.1 by
    /// the assumption that every server in an ASN can authoritatively
    /// serve all content for that ASN.
    ByAs,
    /// ORIGIN coalescing enabled at a single provider only (the
    /// Figure 9 dotted line): requests to `asn` group together;
    /// everything else keeps its measured behaviour.
    BySingleAs(u32),
}

/// One page's predicted ideal counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPrediction {
    /// Predicted DNS queries.
    pub dns_queries: u64,
    /// Predicted new TLS connections.
    pub tls_connections: u64,
    /// Predicted certificate validations (= TLS connections).
    pub cert_validations: u64,
    /// Reconstructed page load time (ms).
    pub plt_ms: f64,
}

/// Decide, per request, whether the model coalesces it, and return
/// the indices of coalescable requests plus the count of groups that
/// still need a connection.
///
/// A request is coalescable when an earlier request in the page
/// already contacted its group (IP or AS). Requests that never opened
/// a connection in the measured load (reused/failed/N-A) keep their
/// behaviour — the model only removes *redundant* setups.
fn coalescable_set(measured: &PageLoad, grouping: CoalescingGrouping) -> (Vec<bool>, u64) {
    let n = measured.requests.len();
    let mut coalescable = vec![false; n];
    let mut seen_ips: FxHashSet<IpAddr> = FxHashSet::default();
    let mut seen_as: FxHashSet<u32> = FxHashSet::default();
    let mut groups = 0u64;
    for (i, r) in measured.requests.iter().enumerate() {
        if !r.new_connection {
            continue; // already reused, or never connected
        }
        let first_of_group = match grouping {
            CoalescingGrouping::ByIp => seen_ips.insert(r.ip),
            CoalescingGrouping::ByAs => seen_as.insert(r.asn),
            CoalescingGrouping::BySingleAs(asn) => {
                if r.asn == asn {
                    seen_as.insert(asn)
                } else {
                    true // outside the deployment: keep measured behaviour
                }
            }
        };
        if first_of_group {
            groups += 1;
        } else if i != 0 {
            coalescable[i] = true;
        }
    }
    (coalescable, groups)
}

/// Predict one page's ideal counts and reconstructed PLT.
pub fn predict(
    page: &Page,
    measured: &PageLoad,
    grouping: CoalescingGrouping,
) -> (ModelPrediction, PageLoad) {
    let (coalescable, _groups) = coalescable_set(measured, grouping);
    let mut reconstructed = reconstruct(page, measured, |i| coalescable[i]);
    // The ideal models also collapse the client-race duplicates
    // (happy-eyeballs second connections, speculative queries): those
    // duplicate an existing connection by definition.
    if !matches!(grouping, CoalescingGrouping::BySingleAs(_)) {
        for r in &mut reconstructed.requests {
            r.extra_connections = 0;
            r.extra_dns = 0;
        }
    }
    let prediction = ModelPrediction {
        dns_queries: reconstructed.dns_queries(),
        tls_connections: reconstructed.tls_connections(),
        cert_validations: reconstructed.tls_connections(),
        plt_ms: reconstructed.plt(),
    };
    (prediction, reconstructed)
}

/// [`predict`] without materialising the reconstructed [`PageLoad`].
///
/// The crawl calls the model three times per page (ideal-IP,
/// ideal-ORIGIN, single-AS) and only keeps the counts — cloning every
/// request record (two heap strings each) just to sum a few integers
/// dominated the model's cost. This walks the same recursion
/// [`reconstruct`] performs, with the same quantised-microsecond
/// arithmetic, accumulating counts and the running PLT directly; the
/// result is bit-for-bit the prediction `predict` returns (asserted by
/// `counts_match_full_reconstruction` below and an end-to-end check in
/// the bench crate).
pub fn predict_counts(
    page: &Page,
    measured: &PageLoad,
    grouping: CoalescingGrouping,
) -> ModelPrediction {
    assert_eq!(
        page.resources.len(),
        measured.requests.len(),
        "page and load must describe the same resource set"
    );
    let (coalescable, _groups) = coalescable_set(measured, grouping);
    let collapse_races = !matches!(grouping, CoalescingGrouping::BySingleAs(_));
    let n = measured.requests.len();
    let mut new_end = vec![0.0f64; n];
    let mut old_end = vec![0.0f64; n];
    let mut dns = 0u64;
    let mut tls = 0u64;
    let mut plt_us = 0u64;
    for i in 0..n {
        let r = &measured.requests[i];
        old_end[i] = r.end();
        let parent = if i == 0 {
            None
        } else {
            Some(page.resources[i].discovered_by.unwrap_or(0))
        };
        let mut start = r.start;
        if let Some(p) = parent {
            let shift = old_end[p] - new_end[p];
            start = (start - shift).max(0.0);
        }
        let mut phase = r.phase;
        let mut did_dns = r.did_dns;
        let mut new_conn = r.new_connection;
        let mut extra_conns = r.extra_connections;
        let mut extra_dns = r.extra_dns;
        if i != 0 && coalescable[i] {
            phase.dns = 0.0;
            phase.connect = 0.0;
            phase.ssl = 0.0;
            did_dns = false;
            new_conn = false;
            extra_conns = 0;
            extra_dns = 0;
        }
        if collapse_races {
            extra_conns = 0;
            extra_dns = 0;
        }
        dns += did_dns as u64 + extra_dns as u64;
        if r.secure {
            tls += new_conn as u64 + extra_conns as u64;
        }
        let end_us = ms_to_us(start) + phase.total_us();
        new_end[i] = end_us as f64 / 1_000.0;
        plt_us = plt_us.max(end_us);
    }
    ModelPrediction {
        dns_queries: dns,
        tls_connections: tls,
        cert_validations: tls,
        plt_ms: plt_us as f64 / 1_000.0,
    }
}

/// The three predictions the crawl keeps per page — `ByIp`, `ByAs`
/// and `BySingleAs(single_asn)` — computed in one fused walk.
///
/// Everything that does not depend on the grouping (the measured end
/// times, the quantised phase total, the setup cost a coalesced
/// request sheds, the discovery parent) is computed once per request
/// instead of once per grouping. The per-grouping remainder is the
/// coalescing decision, the start-shift recursion and the count
/// accumulation. Two identities make the fusion exact:
///
/// * `old_end` is grouping-independent: it is the *measured* end time.
/// * zeroing `phase.{dns,connect,ssl}` before `total_us()` equals
///   subtracting their quantised values from the un-coalesced total,
///   because `total_us` sums per-field `ms_to_us` and `ms_to_us(0.0)
///   == 0`.
///
/// Equivalence with three [`predict_counts`] calls (and hence with
/// three full [`predict`] reconstructions) is asserted by
/// `fused_matches_single_grouping` below and end-to-end in the bench
/// crate.
pub fn predict_counts3(page: &Page, measured: &PageLoad, single_asn: u32) -> [ModelPrediction; 3] {
    assert_eq!(
        page.resources.len(),
        measured.requests.len(),
        "page and load must describe the same resource set"
    );
    let n = measured.requests.len();
    let mut seen_ips: FxHashSet<IpAddr> = FxHashSet::default();
    let mut seen_as: FxHashSet<u32> = FxHashSet::default();
    let mut seen_single = false;
    let mut old_end = vec![0.0f64; n];
    let mut new_end = vec![[0.0f64; 3]; n];
    let mut dns = [0u64; 3];
    let mut tls = [0u64; 3];
    let mut plt_us = [0u64; 3];
    for i in 0..n {
        let r = &measured.requests[i];
        let q = r.phase.quantised_us();
        let total_us: u64 = q.iter().sum();
        let setup_us = q[1] + q[2] + q[3]; // dns + connect + ssl
        old_end[i] = (ms_to_us(r.start) + total_us) as f64 / 1_000.0;
        let parent = if i == 0 {
            None
        } else {
            Some(page.resources[i].discovered_by.unwrap_or(0))
        };
        // Same decisions coalescable_set makes, one walk for all three.
        let mut coalesce = [false; 3];
        if r.new_connection {
            if !seen_ips.insert(r.ip) && i != 0 {
                coalesce[0] = true;
            }
            if !seen_as.insert(r.asn) && i != 0 {
                coalesce[1] = true;
            }
            if r.asn == single_asn {
                if seen_single && i != 0 {
                    coalesce[2] = true;
                }
                seen_single = true;
            }
        }
        for g in 0..3 {
            let mut start = r.start;
            if let Some(p) = parent {
                let shift = old_end[p] - new_end[p][g];
                start = (start - shift).max(0.0);
            }
            let collapse_races = g != 2; // BySingleAs keeps client races
            let mut did_dns = r.did_dns;
            let mut new_conn = r.new_connection;
            let mut extra_conns = r.extra_connections;
            let mut extra_dns = r.extra_dns;
            if coalesce[g] {
                did_dns = false;
                new_conn = false;
                extra_conns = 0;
                extra_dns = 0;
            }
            if collapse_races {
                extra_conns = 0;
                extra_dns = 0;
            }
            dns[g] += did_dns as u64 + extra_dns as u64;
            if r.secure {
                tls[g] += new_conn as u64 + extra_conns as u64;
            }
            let eff_total = if coalesce[g] {
                total_us - setup_us
            } else {
                total_us
            };
            let end_us = ms_to_us(start) + eff_total;
            new_end[i][g] = end_us as f64 / 1_000.0;
            plt_us[g] = plt_us[g].max(end_us);
        }
    }
    std::array::from_fn(|g| ModelPrediction {
        dns_queries: dns[g],
        tls_connections: tls[g],
        cert_validations: tls[g],
        plt_ms: plt_us[g] as f64 / 1_000.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_web::har::{Phase, RequestTiming};
    use origin_web::{ContentType, Page, Protocol, Resource};
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
    }

    fn req(idx: usize, host: &str, ip_: IpAddr, asn: u32, new_conn: bool) -> RequestTiming {
        RequestTiming {
            resource_index: idx,
            host: name(host),
            ip: ip_,
            asn,
            start: idx as f64 * 100.0,
            phase: Phase {
                dns: if new_conn { 20.0 } else { 0.0 },
                connect: if new_conn { 40.0 } else { 0.0 },
                ssl: if new_conn { 20.0 } else { 0.0 },
                wait: 30.0,
                receive: 10.0,
                ..Default::default()
            },
            did_dns: new_conn,
            new_connection: new_conn,
            coalesced: false,
            protocol: Protocol::H2,
            cert_issuer: None,
            secure: true,
            extra_connections: 0,
            extra_dns: 0,
        }
    }

    /// root (AS 1, ip 1), shard (AS 1, ip 1), service-a (AS 2, ip 2),
    /// service-b (AS 2, ip 3), reused request to root host.
    fn fixture() -> (Page, PageLoad) {
        let mut page = Page::new(1, name("site.com"), 1_000);
        page.push(Resource::new(
            name("static.site.com"),
            "/a.css",
            ContentType::Css,
            100,
        ));
        page.push(Resource::new(
            name("x.svc.net"),
            "/x.js",
            ContentType::Javascript,
            100,
        ));
        page.push(Resource::new(
            name("y.svc.net"),
            "/y.js",
            ContentType::Javascript,
            100,
        ));
        page.push(Resource::new(
            name("site.com"),
            "/img.png",
            ContentType::Png,
            100,
        ));
        let load = PageLoad {
            rank: 1,
            root_host: name("site.com"),
            requests: vec![
                req(0, "site.com", ip(1), 1, true),
                req(1, "static.site.com", ip(1), 1, true),
                req(2, "x.svc.net", ip(2), 2, true),
                req(3, "y.svc.net", ip(3), 2, true),
                req(4, "site.com", ip(1), 1, false),
            ],
        };
        (page, load)
    }

    #[test]
    fn by_ip_collapses_same_ip_only() {
        let (page, load) = fixture();
        assert_eq!(load.tls_connections(), 4);
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::ByIp);
        // shard shares ip(1) with root → coalesces; services differ.
        assert_eq!(pred.tls_connections, 3);
        assert_eq!(pred.dns_queries, 3);
        assert!(recon.requests[1].coalesced);
        assert!(!recon.requests[2].coalesced);
        assert!(!recon.requests[3].coalesced);
    }

    #[test]
    fn by_as_collapses_services() {
        let (page, load) = fixture();
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
        // Two groups: AS1, AS2.
        assert_eq!(pred.tls_connections, 2);
        assert_eq!(pred.cert_validations, 2);
        assert!(recon.requests[1].coalesced);
        assert!(recon.requests[3].coalesced);
    }

    #[test]
    fn single_as_only_touches_that_as() {
        let (page, load) = fixture();
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::BySingleAs(2));
        // AS2's second connection coalesces; AS1's shard does not.
        assert_eq!(pred.tls_connections, 3);
        assert!(!recon.requests[1].coalesced);
        assert!(recon.requests[3].coalesced);
    }

    #[test]
    fn reused_requests_untouched() {
        let (page, load) = fixture();
        let (_, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
        assert!(!recon.requests[4].coalesced);
        assert!(!recon.requests[4].new_connection);
    }

    #[test]
    fn counts_match_full_reconstruction() {
        // The fast path must agree with predict() (which materialises
        // the reconstructed PageLoad) on every grouping — including
        // race extras, insecure requests, and discovery-chain shifts.
        let (mut page, mut load) = fixture();
        // Exercise the corners the base fixture doesn't: an insecure
        // request (excluded from TLS counts), race duplicates, and a
        // discovery chain (child shifts when its parent coalesces).
        load.requests[2].extra_connections = 1;
        load.requests[2].extra_dns = 2;
        load.requests[3].secure = false;
        page.resources[3].discovered_by = Some(2);
        for grouping in [
            CoalescingGrouping::ByIp,
            CoalescingGrouping::ByAs,
            CoalescingGrouping::BySingleAs(2),
            CoalescingGrouping::BySingleAs(999),
        ] {
            let (full, _) = predict(&page, &load, grouping);
            let fast = predict_counts(&page, &load, grouping);
            assert_eq!(full, fast, "grouping {grouping:?}");
        }
    }

    #[test]
    fn fused_matches_single_grouping() {
        // The fused three-grouping walk must agree with three separate
        // predict_counts calls (and therefore with predict) — both
        // when the single-AS deployment exists in the page and when it
        // names an AS the page never contacts.
        let (mut page, mut load) = fixture();
        load.requests[2].extra_connections = 1;
        load.requests[2].extra_dns = 2;
        load.requests[3].secure = false;
        page.resources[3].discovered_by = Some(2);
        for single_asn in [2u32, 999] {
            let fused = predict_counts3(&page, &load, single_asn);
            let separate = [
                predict_counts(&page, &load, CoalescingGrouping::ByIp),
                predict_counts(&page, &load, CoalescingGrouping::ByAs),
                predict_counts(&page, &load, CoalescingGrouping::BySingleAs(single_asn)),
            ];
            assert_eq!(fused, separate, "single_asn {single_asn}");
        }
    }

    #[test]
    fn plt_improves_with_coalescing() {
        let (page, load) = fixture();
        let (ip_pred, _) = predict(&page, &load, CoalescingGrouping::ByIp);
        let (as_pred, _) = predict(&page, &load, CoalescingGrouping::ByAs);
        assert!(ip_pred.plt_ms <= load.plt());
        assert!(as_pred.plt_ms <= ip_pred.plt_ms);
    }
}
