//! §4.2 predictions: ideal DNS queries, TLS connections, certificate
//! validations, and reconstructed PLTs.
//!
//! "In an ideal coalescing, the number of DNS queries, TLS
//! handshakes, and certificate validations is equal to the number of
//! separate services (not domains or hostnames) needed to serve all
//! webpage resources."

use crate::reconstruct::reconstruct;
use origin_web::har::PageLoad;
use origin_web::Page;
use std::collections::HashSet;
use std::net::IpAddr;

/// How requests are grouped into "one connection suffices" classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalescingGrouping {
    /// Ideal IP-based coalescing: any set of ≥2 connections to the
    /// same IP address collapses to one ("our model assumes no
    /// changes and looks for missed opportunities").
    ByIp,
    /// Ideal ORIGIN coalescing: one connection per origin AS — the
    /// model's proxy for "separate services", justified in §4.1 by
    /// the assumption that every server in an ASN can authoritatively
    /// serve all content for that ASN.
    ByAs,
    /// ORIGIN coalescing enabled at a single provider only (the
    /// Figure 9 dotted line): requests to `asn` group together;
    /// everything else keeps its measured behaviour.
    BySingleAs(u32),
}

/// One page's predicted ideal counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelPrediction {
    /// Predicted DNS queries.
    pub dns_queries: u64,
    /// Predicted new TLS connections.
    pub tls_connections: u64,
    /// Predicted certificate validations (= TLS connections).
    pub cert_validations: u64,
    /// Reconstructed page load time (ms).
    pub plt_ms: f64,
}

/// Decide, per request, whether the model coalesces it, and return
/// the indices of coalescable requests plus the count of groups that
/// still need a connection.
///
/// A request is coalescable when an earlier request in the page
/// already contacted its group (IP or AS). Requests that never opened
/// a connection in the measured load (reused/failed/N-A) keep their
/// behaviour — the model only removes *redundant* setups.
fn coalescable_set(measured: &PageLoad, grouping: CoalescingGrouping) -> (Vec<bool>, u64) {
    let n = measured.requests.len();
    let mut coalescable = vec![false; n];
    let mut seen_ips: HashSet<IpAddr> = HashSet::new();
    let mut seen_as: HashSet<u32> = HashSet::new();
    let mut groups = 0u64;
    for (i, r) in measured.requests.iter().enumerate() {
        if !r.new_connection {
            continue; // already reused, or never connected
        }
        let first_of_group = match grouping {
            CoalescingGrouping::ByIp => seen_ips.insert(r.ip),
            CoalescingGrouping::ByAs => seen_as.insert(r.asn),
            CoalescingGrouping::BySingleAs(asn) => {
                if r.asn == asn {
                    seen_as.insert(asn)
                } else {
                    true // outside the deployment: keep measured behaviour
                }
            }
        };
        if first_of_group {
            groups += 1;
        } else if i != 0 {
            coalescable[i] = true;
        }
    }
    (coalescable, groups)
}

/// Predict one page's ideal counts and reconstructed PLT.
pub fn predict(
    page: &Page,
    measured: &PageLoad,
    grouping: CoalescingGrouping,
) -> (ModelPrediction, PageLoad) {
    let (coalescable, _groups) = coalescable_set(measured, grouping);
    let mut reconstructed = reconstruct(page, measured, |i| coalescable[i]);
    // The ideal models also collapse the client-race duplicates
    // (happy-eyeballs second connections, speculative queries): those
    // duplicate an existing connection by definition.
    if !matches!(grouping, CoalescingGrouping::BySingleAs(_)) {
        for r in &mut reconstructed.requests {
            r.extra_connections = 0;
            r.extra_dns = 0;
        }
    }
    let prediction = ModelPrediction {
        dns_queries: reconstructed.dns_queries(),
        tls_connections: reconstructed.tls_connections(),
        cert_validations: reconstructed.tls_connections(),
        plt_ms: reconstructed.plt(),
    };
    (prediction, reconstructed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_web::har::{Phase, RequestTiming};
    use origin_web::{ContentType, Page, Protocol, Resource};
    use std::net::Ipv4Addr;

    fn ip(d: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, d))
    }

    fn req(idx: usize, host: &str, ip_: IpAddr, asn: u32, new_conn: bool) -> RequestTiming {
        RequestTiming {
            resource_index: idx,
            host: name(host),
            ip: ip_,
            asn,
            start: idx as f64 * 100.0,
            phase: Phase {
                dns: if new_conn { 20.0 } else { 0.0 },
                connect: if new_conn { 40.0 } else { 0.0 },
                ssl: if new_conn { 20.0 } else { 0.0 },
                wait: 30.0,
                receive: 10.0,
                ..Default::default()
            },
            did_dns: new_conn,
            new_connection: new_conn,
            coalesced: false,
            protocol: Protocol::H2,
            cert_issuer: None,
            secure: true,
            extra_connections: 0,
            extra_dns: 0,
        }
    }

    /// root (AS 1, ip 1), shard (AS 1, ip 1), service-a (AS 2, ip 2),
    /// service-b (AS 2, ip 3), reused request to root host.
    fn fixture() -> (Page, PageLoad) {
        let mut page = Page::new(1, name("site.com"), 1_000);
        page.push(Resource::new(
            name("static.site.com"),
            "/a.css",
            ContentType::Css,
            100,
        ));
        page.push(Resource::new(
            name("x.svc.net"),
            "/x.js",
            ContentType::Javascript,
            100,
        ));
        page.push(Resource::new(
            name("y.svc.net"),
            "/y.js",
            ContentType::Javascript,
            100,
        ));
        page.push(Resource::new(
            name("site.com"),
            "/img.png",
            ContentType::Png,
            100,
        ));
        let load = PageLoad {
            rank: 1,
            root_host: name("site.com"),
            requests: vec![
                req(0, "site.com", ip(1), 1, true),
                req(1, "static.site.com", ip(1), 1, true),
                req(2, "x.svc.net", ip(2), 2, true),
                req(3, "y.svc.net", ip(3), 2, true),
                req(4, "site.com", ip(1), 1, false),
            ],
        };
        (page, load)
    }

    #[test]
    fn by_ip_collapses_same_ip_only() {
        let (page, load) = fixture();
        assert_eq!(load.tls_connections(), 4);
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::ByIp);
        // shard shares ip(1) with root → coalesces; services differ.
        assert_eq!(pred.tls_connections, 3);
        assert_eq!(pred.dns_queries, 3);
        assert!(recon.requests[1].coalesced);
        assert!(!recon.requests[2].coalesced);
        assert!(!recon.requests[3].coalesced);
    }

    #[test]
    fn by_as_collapses_services() {
        let (page, load) = fixture();
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
        // Two groups: AS1, AS2.
        assert_eq!(pred.tls_connections, 2);
        assert_eq!(pred.cert_validations, 2);
        assert!(recon.requests[1].coalesced);
        assert!(recon.requests[3].coalesced);
    }

    #[test]
    fn single_as_only_touches_that_as() {
        let (page, load) = fixture();
        let (pred, recon) = predict(&page, &load, CoalescingGrouping::BySingleAs(2));
        // AS2's second connection coalesces; AS1's shard does not.
        assert_eq!(pred.tls_connections, 3);
        assert!(!recon.requests[1].coalesced);
        assert!(recon.requests[3].coalesced);
    }

    #[test]
    fn reused_requests_untouched() {
        let (page, load) = fixture();
        let (_, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
        assert!(!recon.requests[4].coalesced);
        assert!(!recon.requests[4].new_connection);
    }

    #[test]
    fn plt_improves_with_coalescing() {
        let (page, load) = fixture();
        let (ip_pred, _) = predict(&page, &load, CoalescingGrouping::ByIp);
        let (as_pred, _) = predict(&page, &load, CoalescingGrouping::ByAs);
        assert!(ip_pred.plt_ms <= load.plt());
        assert!(as_pred.plt_ms <= ip_pred.plt_ms);
    }
}
