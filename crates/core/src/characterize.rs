//! §3.3 dataset characterization (Tables 1–7, Figure 1).

use origin_intern::FxHashMap;
use origin_stats::{Histogram, Summary, TopK};
use origin_web::har::PageLoad;
use origin_web::{ContentType, Page, Protocol};

/// Streaming aggregator over `(page, load)` pairs reproducing the
/// paper's dataset characterization. Feed every successful crawl via
/// [`Characterization::add`], then read the table accessors.
///
/// Both internal maps use the deterministic Fx hasher; neither is read
/// in iteration order (buckets are sorted for Table 1, `as_content` is
/// probed per AS key for Table 6).
#[derive(Default)]
pub struct Characterization {
    /// Per-rank-bucket data: (bucket index → per-page samples).
    buckets: FxHashMap<u32, BucketSamples>,
    /// Requests per destination AS (Table 2).
    pub as_requests: TopK<u32>,
    /// Requests per protocol (Table 3 top).
    pub protocol_requests: TopK<&'static str>,
    /// Secure vs insecure (Table 3 bottom).
    pub secure_requests: u64,
    /// Insecure request count.
    pub insecure_requests: u64,
    /// Certificate issuers by validations (Table 4).
    pub issuers: TopK<String>,
    /// Requests per content type (Table 5).
    pub content_types: TopK<&'static str>,
    /// Per-AS content types (Table 6).
    pub as_content: FxHashMap<u32, TopK<&'static str>>,
    /// Subresource hostnames (Table 7).
    pub hostnames: TopK<String>,
    /// Unique ASes per page (Figure 1).
    pub ases_per_page: Histogram,
    /// Total pages characterized.
    pub pages: u64,
    /// Total requests.
    pub total_requests: u64,
    /// Rank-bucket width used for Table 1 (paper: 100K).
    pub bucket_width: u32,
    /// Scale factor mapping generated ranks onto the nominal Tranco
    /// space (tranco_total / generated_sites).
    pub rank_scale: f64,
}

#[derive(Default)]
struct BucketSamples {
    requests: Vec<f64>,
    plt: Vec<f64>,
    dns: Vec<f64>,
    tls: Vec<f64>,
    success: u64,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Bucket index (0 = ranks 1–100K).
    pub bucket: u32,
    /// Successful page loads in the bucket.
    pub success: u64,
    /// Median requests per page.
    pub median_requests: f64,
    /// Median page load time (ms).
    pub median_plt: f64,
    /// Median DNS queries.
    pub median_dns: f64,
    /// Median TLS connections.
    pub median_tls: f64,
}

impl Characterization {
    /// New aggregator for a dataset generated with `sites` ranks
    /// standing in for `tranco_total` (paper: 500K).
    pub fn new(sites: u32, tranco_total: u32) -> Self {
        Characterization {
            bucket_width: 100_000,
            rank_scale: tranco_total as f64 / sites.max(1) as f64,
            ..Default::default()
        }
    }

    /// Add one successful page load.
    pub fn add(&mut self, page: &Page, load: &PageLoad) {
        self.pages += 1;
        let scaled_rank = (load.rank as f64 * self.rank_scale) as u32;
        let bucket = scaled_rank.saturating_sub(1) / self.bucket_width;
        let b = self.buckets.entry(bucket).or_default();
        b.success += 1;
        b.requests.push(load.request_count() as f64 - 1.0); // subrequests
        b.plt.push(load.plt());
        b.dns.push(load.dns_queries() as f64);
        b.tls.push(load.tls_connections() as f64);

        self.ases_per_page.add(load.distinct_ases());

        for (i, r) in load.requests.iter().enumerate() {
            self.total_requests += 1;
            self.as_requests.add(r.asn);
            self.protocol_requests.add(r.protocol.label());
            if r.secure {
                self.secure_requests += 1;
            } else {
                self.insecure_requests += 1;
            }
            if let Some(issuer) = &r.cert_issuer {
                self.issuers.add_str(issuer);
            }
            let ct = page.resources[i].content_type;
            self.content_types.add(ct.mime());
            self.as_content.entry(r.asn).or_default().add(ct.mime());
            if i != 0 {
                self.hostnames.add_str(r.host.as_str());
            }
        }
    }

    /// Fold a shard's characterization into this one. Per-bucket
    /// sample vectors are concatenated in call order, so merging
    /// rank-ordered shards in rank order reproduces the sequential
    /// sample order exactly (and medians sort anyway); every other
    /// field is a commutative counter.
    pub fn merge(&mut self, other: Characterization) {
        for (bucket, samples) in other.buckets {
            let b = self.buckets.entry(bucket).or_default();
            b.requests.extend(samples.requests);
            b.plt.extend(samples.plt);
            b.dns.extend(samples.dns);
            b.tls.extend(samples.tls);
            b.success += samples.success;
        }
        self.as_requests.merge(&other.as_requests);
        self.protocol_requests.merge(&other.protocol_requests);
        self.secure_requests += other.secure_requests;
        self.insecure_requests += other.insecure_requests;
        self.issuers.merge(&other.issuers);
        self.content_types.merge(&other.content_types);
        for (asn, topk) in &other.as_content {
            self.as_content.entry(*asn).or_default().merge(topk);
        }
        self.hostnames.merge(&other.hostnames);
        self.ases_per_page.merge(&other.ases_per_page);
        self.pages += other.pages;
        self.total_requests += other.total_requests;
    }

    /// Export the crawl-wide counters into a metrics registry under
    /// `crawl.*`.
    pub fn record_into(&self, metrics: &mut origin_metrics::Registry) {
        metrics.add("crawl.pages", self.pages);
        metrics.add("crawl.requests", self.total_requests);
        metrics.add("crawl.secure_requests", self.secure_requests);
        metrics.add("crawl.insecure_requests", self.insecure_requests);
    }

    /// Table 1 rows in bucket order, plus the whole-dataset row.
    pub fn table1(&self) -> Vec<Table1Row> {
        let mut buckets: Vec<u32> = self.buckets.keys().copied().collect();
        buckets.sort_unstable();
        let mut rows = Vec::new();
        let mut all = BucketSamples::default();
        for bkt in buckets {
            let b = &self.buckets[&bkt];
            rows.push(Table1Row {
                bucket: bkt,
                success: b.success,
                median_requests: origin_stats::median(&b.requests).unwrap_or(0.0),
                median_plt: origin_stats::median(&b.plt).unwrap_or(0.0),
                median_dns: origin_stats::median(&b.dns).unwrap_or(0.0),
                median_tls: origin_stats::median(&b.tls).unwrap_or(0.0),
            });
            all.success += b.success;
            all.requests.extend_from_slice(&b.requests);
            all.plt.extend_from_slice(&b.plt);
            all.dns.extend_from_slice(&b.dns);
            all.tls.extend_from_slice(&b.tls);
        }
        rows.push(Table1Row {
            bucket: u32::MAX, // sentinel: the "Total" row
            success: all.success,
            median_requests: origin_stats::median(&all.requests).unwrap_or(0.0),
            median_plt: origin_stats::median(&all.plt).unwrap_or(0.0),
            median_dns: origin_stats::median(&all.dns).unwrap_or(0.0),
            median_tls: origin_stats::median(&all.tls).unwrap_or(0.0),
        });
        rows
    }

    /// Whole-dataset request-count summary (the `μ` row of Table 1).
    pub fn request_summary(&self) -> Option<Summary> {
        let all: Vec<f64> = self
            .buckets
            .values()
            .flat_map(|b| b.requests.iter().copied())
            .collect();
        Summary::from_samples(&all)
    }

    /// Fraction of requests secured with HTTPS (Table 3: 98.53%).
    pub fn secure_fraction(&self) -> f64 {
        let total = self.secure_requests + self.insecure_requests;
        if total == 0 {
            0.0
        } else {
            self.secure_requests as f64 / total as f64
        }
    }

    /// Figure 1 series: `(as_count, fraction_of_pages)` plus CDF.
    pub fn figure1(&self) -> Vec<(u64, f64, f64)> {
        self.ases_per_page
            .bins()
            .map(|(v, c)| {
                (
                    v,
                    c as f64 / self.pages.max(1) as f64,
                    self.ases_per_page.cdf_at(v),
                )
            })
            .collect()
    }
}

/// Fraction of requests using a protocol that can coalesce at all
/// (HTTP/2; §6.6 notes HTTP/3 has no ORIGIN standard).
pub fn coalescible_protocol_fraction(c: &Characterization) -> f64 {
    let h2 = c.protocol_requests.count(&Protocol::H2.label());
    if c.total_requests == 0 {
        0.0
    } else {
        h2 as f64 / c.total_requests as f64
    }
}

/// The Table 5 mime labels in paper order, for rendering.
pub fn table5_labels() -> Vec<&'static str> {
    ContentType::table5().iter().map(|ct| ct.mime()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_web::har::{Phase, RequestTiming};
    use origin_web::Resource;
    use std::net::{IpAddr, Ipv4Addr};

    fn sample(rank: u32) -> (Page, PageLoad) {
        let mut page = Page::new(rank, name("site.com"), 1_000);
        page.push(Resource::new(
            name("cdn.site.com"),
            "/a.js",
            ContentType::Javascript,
            10,
        ));
        let ip = IpAddr::V4(Ipv4Addr::new(1, 2, 3, 4));
        let mk = |idx: usize, host: &str, asn: u32| RequestTiming {
            resource_index: idx,
            host: name(host),
            ip,
            asn,
            start: 0.0,
            phase: Phase {
                dns: 10.0,
                connect: 20.0,
                ssl: 20.0,
                wait: 30.0,
                receive: 5.0,
                ..Default::default()
            },
            did_dns: true,
            new_connection: true,
            coalesced: false,
            protocol: Protocol::H2,
            cert_issuer: Some("Test CA".into()),
            secure: true,
            extra_connections: 0,
            extra_dns: 0,
        };
        let load = PageLoad {
            rank,
            root_host: name("site.com"),
            requests: vec![mk(0, "site.com", 100), mk(1, "cdn.site.com", 200)],
        };
        (page, load)
    }

    #[test]
    fn accumulates_counts() {
        let mut c = Characterization::new(100, 500_000);
        let (p, l) = sample(1);
        c.add(&p, &l);
        let (p2, l2) = sample(60);
        c.add(&p2, &l2);
        assert_eq!(c.pages, 2);
        assert_eq!(c.total_requests, 4);
        assert_eq!(c.secure_fraction(), 1.0);
        assert_eq!(c.as_requests.count(&100), 2);
        assert_eq!(c.issuers.count(&"Test CA".to_string()), 4);
        // Root not counted as subresource hostname.
        assert_eq!(c.hostnames.count(&"site.com".to_string()), 0);
        assert_eq!(c.hostnames.count(&"cdn.site.com".to_string()), 2);
    }

    #[test]
    fn table1_buckets_by_scaled_rank() {
        let mut c = Characterization::new(100, 500_000);
        // rank 1 → scaled 5_000 → bucket 0; rank 60 → 300_000 → bucket 2.
        let (p, l) = sample(1);
        c.add(&p, &l);
        let (p2, l2) = sample(60);
        c.add(&p2, &l2);
        let rows = c.table1();
        assert_eq!(rows.len(), 3); // two buckets + total
        assert_eq!(rows[0].bucket, 0);
        assert_eq!(rows[1].bucket, 2);
        assert_eq!(rows[2].bucket, u32::MAX);
        assert_eq!(rows[2].success, 2);
        assert_eq!(rows[0].median_requests, 1.0);
        assert_eq!(rows[0].median_dns, 2.0);
    }

    #[test]
    fn figure1_fractions_sum_to_one() {
        let mut c = Characterization::new(100, 500_000);
        for rank in 1..=10 {
            let (p, l) = sample(rank);
            c.add(&p, &l);
        }
        let f: f64 = c.figure1().iter().map(|(_, frac, _)| frac).sum();
        assert!((f - 1.0).abs() < 1e-9);
        // Every page touched exactly 2 ASes.
        assert_eq!(c.figure1()[0].0, 2);
        assert_eq!(c.figure1()[0].2, 1.0);
    }

    #[test]
    fn merge_matches_sequential_add() {
        // Sequential reference over ranks 1..=6.
        let mut seq = Characterization::new(100, 500_000);
        for rank in 1..=6 {
            let (p, l) = sample(rank);
            seq.add(&p, &l);
        }
        // Same pages split over two rank-ordered shards.
        let mut lo = Characterization::new(100, 500_000);
        let mut hi = Characterization::new(100, 500_000);
        for rank in 1..=3 {
            let (p, l) = sample(rank);
            lo.add(&p, &l);
        }
        for rank in 4..=6 {
            let (p, l) = sample(rank);
            hi.add(&p, &l);
        }
        let mut merged = Characterization::new(100, 500_000);
        merged.merge(lo);
        merged.merge(hi);
        assert_eq!(merged.pages, seq.pages);
        assert_eq!(merged.total_requests, seq.total_requests);
        assert_eq!(merged.table1(), seq.table1());
        assert_eq!(merged.figure1(), seq.figure1());
        assert_eq!(merged.as_requests.top(10), seq.as_requests.top(10));
        assert_eq!(merged.hostnames.top(10), seq.hostnames.top(10));

        // empty ⊕ x == x.
        let mut from_empty = Characterization::new(100, 500_000);
        let mut x = Characterization::new(100, 500_000);
        let (p, l) = sample(2);
        x.add(&p, &l);
        let x_rows = x.table1();
        from_empty.merge(x);
        assert_eq!(from_empty.table1(), x_rows);
    }

    #[test]
    fn h2_fraction() {
        let mut c = Characterization::new(100, 500_000);
        let (p, l) = sample(1);
        c.add(&p, &l);
        assert_eq!(coalescible_protocol_fraction(&c), 1.0);
    }

    #[test]
    fn table5_labels_present() {
        let labels = table5_labels();
        assert_eq!(labels[0], "application/javascript");
        assert_eq!(labels.len(), 12);
    }
}
