//! §4.1 timeline reconstruction.
//!
//! "Each timeline was then reconstructed first by finding the
//! timelines' event labels {block, send, wait, receive} for the
//! affected subrequests. We then modified those timestamps,
//! conservatively, by omitting the smallest DNS query and TCP/TLS
//! connection establishment times for blocking requests." (§4.1)
//!
//! Concretely: requests identified as coalescable lose their
//! `dns`/`connect`/`ssl` phases, and every request shifts earlier by
//! exactly the amount its discovering parent finished earlier — the
//! browser's dependency-graph computation time (the gap between a
//! parent finishing and a child dispatching) is deliberately left
//! unmodified.

use origin_web::har::PageLoad;
use origin_web::Page;

/// Reconstruct a measured page load as if the requests selected by
/// `coalescable` had been coalesced (no DNS, no TCP+TLS setup).
///
/// `coalescable(i)` is consulted for each request index; the root
/// document (index 0) can never be coalesced (§4.1: "the request for
/// a base-page can never be coalesced since it initiates the first
/// connection").
pub fn reconstruct(
    page: &Page,
    measured: &PageLoad,
    mut coalescable: impl FnMut(usize) -> bool,
) -> PageLoad {
    assert_eq!(
        page.resources.len(),
        measured.requests.len(),
        "page and load must describe the same resource set"
    );
    let n = measured.requests.len();
    // New end time per request, indexed by resource index.
    let mut new_end = vec![0.0f64; n];
    let mut old_end = vec![0.0f64; n];
    let mut out = measured.clone();

    for i in 0..n {
        let r = &mut out.requests[i];
        old_end[i] = measured.requests[i].end();

        // Parent in the discovery graph (root-referenced resources
        // implicitly descend from the root document).
        let parent = if i == 0 {
            None
        } else {
            Some(page.resources[i].discovered_by.unwrap_or(0))
        };

        // Shift the start by however much the parent finished
        // earlier; the dispatch gap itself is preserved.
        if let Some(p) = parent {
            let shift = old_end[p] - new_end[p];
            r.start = (r.start - shift).max(0.0);
        }

        if i != 0 && coalescable(i) {
            // Remove the setup phases: the request rides an existing
            // connection.
            r.phase.dns = 0.0;
            r.phase.connect = 0.0;
            r.phase.ssl = 0.0;
            r.did_dns = false;
            r.new_connection = false;
            r.coalesced = true;
            r.cert_issuer = None;
            r.extra_connections = 0;
            r.extra_dns = 0;
        }
        new_end[i] = r.end();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;
    use origin_web::har::{Phase, RequestTiming};
    use origin_web::{ContentType, Page, Protocol, Resource};
    use std::net::{IpAddr, Ipv4Addr};

    /// Build the Figure 2 example: root + chain of subresources.
    fn fixture() -> (Page, PageLoad) {
        let mut page = Page::new(1, name("www.example.com"), 10_000);
        let css = page.push(Resource::new(
            name("static.example.com"),
            "/css/style.css",
            ContentType::Css,
            5_000,
        ));
        page.push(
            Resource::new(
                name("fonts.cdnhost.com"),
                "/arial.woff",
                ContentType::Woff2,
                8_000,
            )
            .discovered_by(css),
        );
        let ip = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
        let req = |idx: usize, host: &str, start: f64, setup: f64| RequestTiming {
            resource_index: idx,
            host: name(host),
            ip,
            asn: 100,
            start,
            phase: Phase {
                blocked: 1.0,
                dns: setup / 2.0,
                connect: setup / 4.0,
                ssl: setup / 4.0,
                send: 1.0,
                wait: 20.0,
                receive: 10.0,
            },
            did_dns: setup > 0.0,
            new_connection: setup > 0.0,
            coalesced: false,
            protocol: Protocol::H2,
            cert_issuer: Some("CA".into()),
            secure: true,
            extra_connections: 0,
            extra_dns: 1,
        };
        let load = PageLoad {
            rank: 1,
            root_host: name("www.example.com"),
            requests: vec![
                req(0, "www.example.com", 0.0, 100.0),
                // css starts 8 ms after root finishes (dispatch gap).
                req(1, "static.example.com", 140.0, 80.0),
                // font starts 5 ms after css finishes.
                req(2, "fonts.cdnhost.com", 257.0, 60.0),
            ],
        };
        (page, load)
    }

    #[test]
    fn no_coalescing_is_identity() {
        let (page, load) = fixture();
        let out = reconstruct(&page, &load, |_| false);
        assert_eq!(out, load);
    }

    #[test]
    fn coalesced_request_loses_setup_and_children_shift() {
        let (page, load) = fixture();
        // css (request 1) coalesces; font (request 2) does not.
        let out = reconstruct(&page, &load, |i| i == 1);
        // css: setup phases zeroed.
        assert_eq!(out.requests[1].phase.dns, 0.0);
        assert_eq!(out.requests[1].phase.connect, 0.0);
        assert_eq!(out.requests[1].phase.ssl, 0.0);
        assert!(out.requests[1].coalesced);
        assert!(!out.requests[1].new_connection);
        assert_eq!(out.requests[1].extra_dns, 0);
        // css's own start is unchanged (its parent, the root, didn't
        // move) but it finishes 80 ms earlier.
        assert_eq!(out.requests[1].start, load.requests[1].start);
        let css_saving = load.requests[1].end() - out.requests[1].end();
        assert!((css_saving - 80.0).abs() < 1e-9);
        // font keeps its setup but starts 80 ms earlier (cascade).
        assert_eq!(out.requests[2].phase.dns, load.requests[2].phase.dns);
        assert!((load.requests[2].start - out.requests[2].start - 80.0).abs() < 1e-9);
        // PLT improves by exactly the cascaded saving.
        assert!((load.plt() - out.plt() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn root_never_coalesces() {
        let (page, load) = fixture();
        let out = reconstruct(&page, &load, |_| true);
        assert!(out.requests[0].new_connection);
        assert!(out.requests[0].phase.dns > 0.0);
        // Everything else coalesced.
        assert!(out.requests[1].coalesced && out.requests[2].coalesced);
        // Savings cascade: 80 + 60 off the chain.
        assert!((load.plt() - out.plt() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn counts_reflect_reconstruction() {
        let (page, load) = fixture();
        assert_eq!(load.tls_connections(), 3);
        assert_eq!(load.dns_queries(), 3 + 3); // extra_dns = 1 each
        let out = reconstruct(&page, &load, |_| true);
        assert_eq!(out.tls_connections(), 1);
        assert_eq!(out.dns_queries(), 1 + 1);
    }

    #[test]
    fn starts_never_negative() {
        let (page, mut load) = fixture();
        // Craft an extreme shift: parent saves more than child's start.
        load.requests[1].start = 101.0;
        load.requests[2].start = 150.0;
        let out = reconstruct(&page, &load, |_| true);
        for r in &out.requests {
            assert!(r.start >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "same resource set")]
    fn mismatched_inputs_panic() {
        let (page, mut load) = fixture();
        load.requests.pop();
        reconstruct(&page, &load, |_| false);
    }
}
