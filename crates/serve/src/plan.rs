//! Site serving plans.
//!
//! The crawl materializes a full `Page` per visit and
//! walks its resource tree through the browser loader. At serving
//! rates that is the wrong trade: the coalescing outcome of a visit is
//! a pure function of the site's *host topology* (which hosts, which
//! edges, which coalescing keys under each arm), so we compile that
//! topology once per site into a flat [`SitePlan`] and replay it per
//! visit with zero per-visit allocation. `O(sites)` memory, built
//! before serving starts, shared read-only by every worker shard.

use origin_webgen::dataset::ServiceRef;
use origin_webgen::{Dataset, SiteConfig};

/// Link classes for analytic visit costs, mirroring
/// `origin_browser::env::link_profile`: 0 = CDN edge, 1 = near
/// origin, 2 = far origin.
const RTT_MS: [f64; 3] = [32.0, 95.0, 210.0];
const MBPS: [f64; 3] = [60.0, 25.0, 18.0];

/// SplitMix64 finalizer for per-host deterministic variation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One host's serving profile within a site plan.
#[derive(Debug, Clone, Copy)]
pub struct HostPlan {
    /// Coalescing key when the terminating edge does NOT advertise
    /// ORIGIN (per-host / per-cert connections).
    pub control_key: u32,
    /// Coalescing key when it does (provider-wide ORIGIN set).
    pub origin_key: u32,
    /// Terminating edge — the unit of rollout assignment and of the
    /// session pool's per-edge cap.
    pub edge: u32,
    /// Requests this host serves per visit.
    pub requests: u32,
    /// Bytes this host serves per visit.
    pub bytes: u64,
    /// Link class index into the RTT/bandwidth tables.
    pub link_class: u8,
}

impl HostPlan {
    /// Round-trip time to this host, µs.
    pub fn rtt_us(&self) -> u64 {
        (RTT_MS[self.link_class as usize] * 1_000.0) as u64
    }

    /// Transfer time for this host's bytes at link bandwidth, µs.
    pub fn transfer_us(&self) -> u64 {
        (self.bytes as f64 * 8.0 / MBPS[self.link_class as usize]) as u64
    }
}

/// A compiled site: everything a visit needs, flat and allocation-free
/// to replay.
#[derive(Debug, Clone)]
pub struct SitePlan {
    /// Tranco rank of the site.
    pub rank: u32,
    /// Root + shards + services, in deterministic order (root first).
    pub hosts: Vec<HostPlan>,
    /// The provider edge whose rollout state decides this site's A/B
    /// arm (`None` = no provider involvement, always control).
    pub arm_edge: Option<u32>,
    /// Connections a cold visit needs under ideal IP coalescing.
    pub model_ip_tls: u32,
    /// Connections a cold visit needs under ideal ORIGIN coalescing.
    pub model_origin_tls: u32,
    /// Total requests per visit.
    pub total_requests: u32,
}

// Key-space layout (disjoint by construction):
//   named service i            ->                 i   (i < 2^24)
//   provider ORIGIN set p      ->  0x2000_0000 | p
//   tail service i             ->  0x4000_0000 | i
//   first-party of rank r      ->  0x8000_0000 | r·16 (+1+j per shard)
const PROVIDER_BIT: u32 = 0x2000_0000;
const TAIL_BIT: u32 = 0x4000_0000;
const FP_BIT: u32 = 0x8000_0000;

/// Compile one site. Pure in the site config — no RNG draws — so the
/// plan set is identical on every worker and every run.
pub fn compile_site(site: &SiteConfig) -> SitePlan {
    let rank = site.rank;
    let fp_base = FP_BIT | (rank * 16);
    let fp_edge = match site.provider {
        Some(p) => p as u32,
        None => FP_BIT | rank,
    };
    let fp_origin_key = match site.provider {
        Some(p) => PROVIDER_BIT | p as u32,
        None => fp_base,
    };
    // Distinct-connection counting for the ideal models uses a tiny
    // sorted scratch (host counts are ~tens); transient, build-time
    // only.
    let mut ip_keys: Vec<u64> = Vec::new();
    let mut origin_keys: Vec<u64> = Vec::new();
    let note = |set: &mut Vec<u64>, k: u64| {
        if !set.contains(&k) {
            set.push(k);
        }
    };

    let n_fp_hosts = 1 + site.shard_hosts.len();
    let n_hosts = n_fp_hosts + site.services.len();
    let total_requests = site.n_requests.max(1);
    let base_req = total_requests / n_hosts as u32;
    let rem = total_requests as usize % n_hosts;
    let requests_for = |i: usize| base_req + u32::from(i < rem);

    let mut hosts = Vec::with_capacity(n_hosts);
    let mut arm_edge = site.provider.map(|p| p as u32);
    for j in 0..n_fp_hosts {
        let control_key = if site.shards_share_ip {
            fp_base
        } else {
            fp_base + j as u32
        };
        // Under ideal IP coalescing first-party hosts merge only when
        // the shards share the root's address set; under ideal ORIGIN
        // the site's cert covers all of them regardless.
        note(&mut ip_keys, u64::from(control_key));
        note(&mut origin_keys, u64::from(fp_origin_key));
        let link_class = if site.provider.is_some() {
            0
        } else {
            1 + (site.asn % 2) as u8
        };
        let requests = requests_for(j);
        hosts.push(HostPlan {
            control_key,
            origin_key: fp_origin_key,
            edge: fp_edge,
            requests,
            bytes: host_bytes(site.page_seed, j, requests),
            link_class,
        });
    }
    for (k, svc) in site.services.iter().enumerate() {
        let i = n_fp_hosts + k;
        let (control_key, origin_key, edge, link_class) = match svc {
            ServiceRef::Named(s) => {
                let p = svc.provider().expect("named services have a provider") as u32;
                if arm_edge.is_none() {
                    arm_edge = Some(p);
                }
                (*s as u32, PROVIDER_BIT | p, p, 0u8)
            }
            ServiceRef::Tail(t) => {
                let key = TAIL_BIT | t;
                (key, key, key, 1 + (t % 2) as u8)
            }
        };
        // Provider-hosted services share the provider's edge address,
        // so ideal IP already merges them; ORIGIN matches that and
        // additionally pulls in provider-hosted first parties.
        let ip_key = match svc.provider() {
            Some(p) => u64::from(PROVIDER_BIT | p as u32) << 32,
            None => u64::from(control_key),
        };
        note(&mut ip_keys, ip_key);
        note(&mut origin_keys, u64::from(origin_key));
        let requests = requests_for(i);
        hosts.push(HostPlan {
            control_key,
            origin_key,
            edge,
            requests,
            bytes: host_bytes(site.page_seed, i, requests),
            link_class,
        });
    }
    SitePlan {
        rank,
        hosts,
        arm_edge,
        model_ip_tls: ip_keys.len() as u32,
        model_origin_tls: origin_keys.len() as u32,
        total_requests,
    }
}

/// Deterministic per-host payload size: requests × a host-stable
/// object size in [16 KiB, 48 KiB).
fn host_bytes(page_seed: u64, host_idx: usize, requests: u32) -> u64 {
    let object = 16_384 + mix(page_seed ^ (host_idx as u64) << 17) % 32_768;
    u64::from(requests) * object
}

/// Compile every successful site of a dataset, in rank order.
pub fn compile_dataset(dataset: &Dataset) -> Vec<SitePlan> {
    dataset.successful_sites().map(compile_site).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_webgen::DatasetConfig;

    fn small_dataset() -> Dataset {
        Dataset::generate(DatasetConfig {
            sites: 300,
            ..DatasetConfig::default()
        })
    }

    #[test]
    fn plans_cover_successful_sites_in_rank_order() {
        let ds = small_dataset();
        let plans = compile_dataset(&ds);
        assert_eq!(plans.len(), ds.successful_sites().count());
        assert!(plans.windows(2).all(|w| w[0].rank < w[1].rank));
        assert!(!plans.is_empty());
    }

    #[test]
    fn requests_are_conserved_across_hosts() {
        let ds = small_dataset();
        for plan in compile_dataset(&ds) {
            let sum: u32 = plan.hosts.iter().map(|h| h.requests).sum();
            assert_eq!(sum, plan.total_requests, "rank {}", plan.rank);
        }
    }

    #[test]
    fn origin_model_never_needs_more_connections_than_ip() {
        let ds = small_dataset();
        for plan in compile_dataset(&ds) {
            assert!(
                plan.model_origin_tls <= plan.model_ip_tls,
                "rank {}: origin {} > ip {}",
                plan.rank,
                plan.model_origin_tls,
                plan.model_ip_tls
            );
            assert!(plan.model_origin_tls >= 1);
        }
    }

    #[test]
    fn key_spaces_are_disjoint() {
        let ds = small_dataset();
        for plan in compile_dataset(&ds) {
            for h in &plan.hosts {
                let is_fp = h.control_key & FP_BIT != 0;
                let is_tail = h.control_key & TAIL_BIT != 0 && !is_fp;
                let is_named = h.control_key < PROVIDER_BIT;
                assert!(
                    is_fp || is_tail || is_named,
                    "rank {}: key {:#x} outside all spaces",
                    plan.rank,
                    h.control_key
                );
            }
        }
    }

    #[test]
    fn provider_hosted_sites_have_an_arm_edge() {
        let ds = small_dataset();
        let plans = compile_dataset(&ds);
        let with_arm = plans.iter().filter(|p| p.arm_edge.is_some()).count();
        assert!(with_arm > 0, "some sites must be rollout-eligible");
        for p in &plans {
            if let Some(e) = p.arm_edge {
                assert!(e < PROVIDER_BIT, "arm edge must be a provider edge");
            }
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let a = compile_dataset(&small_dataset());
        let b = compile_dataset(&small_dataset());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.model_ip_tls, y.model_ip_tls);
            assert_eq!(x.hosts.len(), y.hosts.len());
            for (hx, hy) in x.hosts.iter().zip(&y.hosts) {
                assert_eq!(hx.control_key, hy.control_key);
                assert_eq!(hx.bytes, hy.bytes);
            }
        }
    }
}
