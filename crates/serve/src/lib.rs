//! The open-loop serving engine (DESIGN.md §16).
//!
//! The paper evaluates best-case coalescing as a one-shot crawl: every
//! site visited exactly once, cold. Production traffic is nothing like
//! that — sessions arrive on their own clock (Poisson, diurnally
//! modulated), users make several visits with warm connection pools,
//! popularity is Zipf-skewed, and deployment changes roll out across
//! the edge fleet *while traffic is being served*. This crate replaces
//! the crawl with that workload:
//!
//! - [`plan`] — compiles each generated site into a flat [`SitePlan`]:
//!   per-host coalescing keys (control and ORIGIN arms), edge
//!   assignment, request/byte budgets, and the site's ideal-model
//!   connection counts. Built once, `O(sites)`, shared read-only by
//!   every worker.
//! - [`engine`] — the sharded event-loop driver: each worker owns
//!   `session_id % threads` and replays the identical arrival stream
//!   on its own calendar queue, so the merged output is byte-identical
//!   at any thread count.
//!
//! Per-visit work recycles a fixed set of scratch buffers (session
//! slab, pool slabs, [`origin_obs::VisitObs`]), so steady-state memory
//! is `O(sites) + O(windows) + O(active sessions)` — never
//! `O(visits)`. `crates/serve/tests/serve_alloc.rs` pins that with a
//! counting allocator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod plan;

pub use engine::{run_serve, ServeReport};
pub use plan::{HostPlan, SitePlan};

use origin_netsim::SimDuration;
use origin_webgen::DatasetConfig;

/// Configuration for one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The synthetic web to serve.
    pub dataset: DatasetConfig,
    /// Serving-side master seed (arrivals, sessions, rollout);
    /// independent of the dataset seed.
    pub seed: u64,
    /// Total visit budget: the run stops after exactly this many
    /// visits, truncating the last session if needed.
    pub visits: u64,
    /// Worker shards. Output is byte-identical at any value.
    pub threads: usize,
    /// Peak session arrival rate, per simulated second.
    pub peak_rate_per_sec: f64,
    /// Diurnal peak-to-trough swing in `[0, 1]` (0 = homogeneous).
    pub diurnal_amplitude: f64,
    /// Diurnal period (a simulated day by default).
    pub diurnal_period: SimDuration,
    /// Mean visits per session (geometric-ish, ≥ 1).
    pub session_visits_mean: f64,
    /// Zipf skew of site popularity.
    pub zipf_s: f64,
    /// Probability a non-first visit reloads the same site instead of
    /// drawing a fresh one (revisit skew).
    pub revisit_bias: f64,
    /// Mean think time between a session's visits.
    pub think_mean: SimDuration,
    /// Idle timeout for pooled session connections.
    pub idle_timeout: SimDuration,
    /// Max warm connections to a single edge per session.
    pub edge_cap: usize,
    /// Global per-session pool budget (0 disables pooling — every
    /// connection reopens; the BENCH_6 before-arm).
    pub pool_budget: usize,
    /// Timeline tumbling-window width.
    pub window: SimDuration,
    /// Bound each arm's live window map (`None` = unbounded).
    pub retain_windows: Option<u64>,
    /// Final share of edges advertising ORIGIN (0 = control only).
    pub rollout: f64,
    /// Sim time over which the rollout share ramps from 0 to target.
    pub rollout_ramp: SimDuration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            dataset: DatasetConfig::default(),
            seed: 0x5E17E,
            visits: 100_000,
            threads: 1,
            peak_rate_per_sec: 10.0,
            diurnal_amplitude: 0.6,
            diurnal_period: SimDuration::from_secs(86_400),
            session_visits_mean: 4.0,
            zipf_s: 1.1,
            revisit_bias: 0.4,
            think_mean: SimDuration::from_secs(30),
            idle_timeout: SimDuration::from_secs(60),
            edge_cap: 6,
            pool_budget: 32,
            window: SimDuration::from_secs(60),
            retain_windows: None,
            rollout: 0.0,
            rollout_ramp: SimDuration::from_secs(3_600),
        }
    }
}

impl ServeConfig {
    /// The rollout model this config describes. The seed is
    /// decorrelated from the arrival/session streams so changing the
    /// rollout target never perturbs the traffic itself.
    pub fn rollout_model(&self) -> origin_cdn::Rollout {
        origin_cdn::Rollout::new(self.rollout, self.rollout_ramp, self.seed ^ 0x0110_60C4)
    }
}
