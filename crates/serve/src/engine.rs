//! The sharded open-loop event-loop driver.
//!
//! ## Determinism under sharding
//!
//! Sessions are partitioned by `session_id % threads`. Every worker
//! regenerates the *identical* arrival stream (the arrival RNG is a
//! derived stream independent of all session RNGs) and walks it on its
//! own calendar queue, but only simulates the sessions it owns. Each
//! session's randomness is a pure function of `(seed, session_id)`, so
//! where a session runs cannot change what it does. All aggregation is
//! commutative and associative — window-keyed timeline merge, additive
//! registry counters, churn sums — so merging shard outputs in any
//! order yields byte-identical reports at any `--threads`.
//!
//! The global visit budget is enforced in arrival order: each worker
//! accounts every session's visit count (owned or not) against the
//! budget while walking the stream, so all workers truncate the same
//! final session at the same visit.
//!
//! ## Memory
//!
//! Per-visit state lives in recycled scratch: a session slab with a
//! free list (RNG + pool + cursor per active session), one
//! [`VisitObs`] per worker, and a per-visit key scratch. Steady state
//! is `O(sites) + O(windows) + O(active sessions)`.

use origin_browser::{PoolChurn, SessionPool};
use origin_cdn::Rollout;
use origin_metrics::Registry;
use origin_netsim::{EventQueue, SimDuration, SimRng, SimTime};
use origin_obs::{Timeline, VisitObs};
use origin_webgen::Dataset;

use crate::plan::{compile_dataset, SitePlan};
use crate::ServeConfig;

/// Base render/parse cost of a visit before network terms, µs.
const BASE_RENDER_US: u64 = 30_000;
/// Handshake cost in round trips (TCP + TLS 1.3).
const HANDSHAKE_RTTS: u64 = 2;
/// Cap on visits per session (tail guard on the geometric draw).
const MAX_SESSION_VISITS: u64 = 64;

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The per-session RNG: pure in `(seed, session_id)` so shard
/// placement cannot perturb a session's behaviour.
fn session_rng(seed: u64, id: u64) -> SimRng {
    SimRng::seed_from_u64(mix(seed ^ id.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Visits a session will make: 1 + geometric-ish tail with the
/// configured mean, capped. Drawn from the session RNG before any
/// visit randomness.
fn session_visit_budget(rng: &mut SimRng, mean: f64) -> u64 {
    let extra = rng.exponential((mean - 1.0).max(0.0) + f64::MIN_POSITIVE);
    (1 + extra as u64).min(MAX_SESSION_VISITS)
}

/// One live session's state in the worker slab.
struct Session {
    rng: SimRng,
    pool: SessionPool,
    /// Most recently visited site (plan index), for revisit bias.
    site: Option<u32>,
    /// Visits left, including the one being scheduled.
    remaining: u64,
}

/// Worker events on the calendar queue.
enum Ev {
    /// The next session materializes from the shared arrival stream.
    Arrival,
    /// An owned session performs its next visit.
    Visit { slot: u32 },
}

/// One worker shard's accumulated output.
struct ShardOut {
    control: Timeline,
    origin: Timeline,
    metrics: Registry,
    churn: PoolChurn,
    sessions: u64,
    visits: u64,
    sim_end: SimTime,
}

/// The merged result of a serving run.
pub struct ServeReport {
    /// Counter/phase metrics (`serve.*`).
    pub metrics: Registry,
    /// Timeline of visits served while the deciding edge did NOT
    /// advertise ORIGIN (plus all provider-free sites).
    pub control: Timeline,
    /// Timeline of visits served under an ORIGIN-advertising edge.
    pub origin: Timeline,
    /// Sessions simulated.
    pub sessions: u64,
    /// Visits simulated (== the configured budget).
    pub visits: u64,
    /// Simulated instant of the last processed event.
    pub sim_end: SimTime,
}

impl ServeReport {
    /// Both arms as one JSON document:
    /// `{"arms":{"control":…,"origin":…}}`.
    pub fn timeline_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"arms\": {\n\"control\": ");
        out.push_str(&self.control.to_json());
        out.push_str(",\n\"origin\": ");
        out.push_str(&self.origin.to_json());
        out.push_str("}\n}\n");
        out
    }

    /// Deterministic run summary (no wall-clock content), one
    /// `key: value` per line.
    pub fn summary(&self) -> String {
        let m = &self.metrics;
        let mut s = String::with_capacity(512);
        use std::fmt::Write as _;
        let _ = writeln!(s, "sessions: {}", self.sessions);
        let _ = writeln!(s, "visits: {}", self.visits);
        let _ = writeln!(s, "sim_end_ms: {}", self.sim_end.as_micros() / 1_000);
        for key in [
            "serve.requests",
            "serve.coalesced_requests",
            "serve.connections_opened",
            "serve.pool_reused",
            "serve.pool_idle_closed",
            "serve.pool_lru_evicted",
            "serve.pool_edge_evicted",
            "serve.arm_control_visits",
            "serve.arm_origin_visits",
        ] {
            let _ = writeln!(s, "{}: {}", key, m.counter(key));
        }
        let reuse = m.counter("serve.pool_reused") as f64
            / (m.counter("serve.pool_reused") + m.counter("serve.connections_opened")).max(1)
                as f64;
        let _ = writeln!(s, "pool_reuse_rate: {reuse:.4}");
        s
    }
}

/// Run the serving engine to completion.
///
/// Generates the dataset, compiles site plans, runs `threads` worker
/// shards over the shared arrival stream, and merges their outputs.
/// Panics on a zero thread count or a zero visit budget.
pub fn run_serve(cfg: &ServeConfig) -> ServeReport {
    assert!(cfg.threads > 0, "need at least one worker");
    assert!(cfg.visits > 0, "need a visit budget");
    let dataset = Dataset::generate(cfg.dataset);
    let plans = compile_dataset(&dataset);
    run_serve_on(cfg, &plans)
}

/// [`run_serve`] over pre-compiled plans (reused by benches/tests to
/// amortize dataset generation).
pub fn run_serve_on(cfg: &ServeConfig, plans: &[SitePlan]) -> ServeReport {
    assert!(!plans.is_empty(), "no successful sites to serve");
    let shards: Vec<ShardOut> = if cfg.threads == 1 {
        vec![run_shard(cfg, plans, 0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.threads)
                .map(|shard| scope.spawn(move || run_shard(cfg, plans, shard)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("serve worker panicked"))
                .collect()
        })
    };
    let mut iter = shards.into_iter();
    let mut first = iter.next().expect("at least one shard");
    for s in iter {
        first.control.merge(&s.control);
        first.origin.merge(&s.origin);
        first.metrics.merge(&s.metrics);
        first.churn.merge(&s.churn);
        first.sessions += s.sessions;
        first.visits += s.visits;
        first.sim_end = first.sim_end.max(s.sim_end);
    }
    ServeReport {
        metrics: first.metrics,
        control: first.control,
        origin: first.origin,
        sessions: first.sessions,
        visits: first.visits,
        sim_end: first.sim_end,
    }
}

fn mk_timeline(cfg: &ServeConfig) -> Timeline {
    let t = Timeline::new(cfg.window, origin_obs::window::DEFAULT_SPACING);
    match cfg.retain_windows {
        Some(n) => t.with_retention(n),
        None => t,
    }
}

fn run_shard(cfg: &ServeConfig, plans: &[SitePlan], shard: usize) -> ShardOut {
    let rollout = cfg.rollout_model();
    let master = SimRng::seed_from_u64(cfg.seed);
    let mut arrivals = origin_netsim::ArrivalProcess::new(
        master.derive("arrivals"),
        cfg.peak_rate_per_sec,
        cfg.diurnal_amplitude,
        cfg.diurnal_period,
    );

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut slab: Vec<Session> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut out = ShardOut {
        control: mk_timeline(cfg),
        origin: mk_timeline(cfg),
        metrics: Registry::new(),
        churn: PoolChurn::default(),
        sessions: 0,
        visits: 0,
        sim_end: SimTime::ZERO,
    };
    // Materialize every serve key on every shard so the merged key set
    // never depends on which shard saw which traffic.
    for key in [
        "serve.sessions",
        "serve.visits",
        "serve.requests",
        "serve.coalesced_requests",
        "serve.connections_opened",
        "serve.pool_reused",
        "serve.pool_idle_closed",
        "serve.pool_lru_evicted",
        "serve.pool_edge_evicted",
        "serve.arm_control_visits",
        "serve.arm_origin_visits",
    ] {
        out.metrics.add(key, 0);
    }

    let mut budget = cfg.visits;
    let mut next_id: u64 = 0;
    let mut visit_keys: Vec<u32> = Vec::with_capacity(64);
    let mut obs = VisitObs::default();

    queue.schedule(arrivals.next_arrival(), Ev::Arrival);
    while let Some((now, ev)) = queue.next() {
        out.sim_end = now;
        match ev {
            Ev::Arrival => {
                let id = next_id;
                next_id += 1;
                let mut rng = session_rng(cfg.seed, id);
                let wanted = session_visit_budget(&mut rng, cfg.session_visits_mean);
                let take = wanted.min(budget);
                budget -= take;
                // The arrival chain keeps running until the global
                // budget is spent — identically on every shard.
                if budget > 0 {
                    queue.schedule(arrivals.next_arrival(), Ev::Arrival);
                }
                if take == 0 || id % cfg.threads as u64 != shard as u64 {
                    continue;
                }
                out.sessions += 1;
                out.metrics.inc("serve.sessions");
                let session = Session {
                    rng,
                    pool: SessionPool::new(),
                    site: None,
                    remaining: take,
                };
                let slot = match free.pop() {
                    Some(slot) => {
                        let s = &mut slab[slot as usize];
                        s.rng = session.rng;
                        s.pool.reset();
                        s.site = None;
                        s.remaining = session.remaining;
                        slot
                    }
                    None => {
                        slab.push(session);
                        (slab.len() - 1) as u32
                    }
                };
                queue.schedule(now, Ev::Visit { slot });
            }
            Ev::Visit { slot } => {
                let session = &mut slab[slot as usize];
                session
                    .pool
                    .sweep_idle(now, cfg.idle_timeout, &mut out.churn);
                let site_idx = match session.site {
                    Some(prev) if session.rng.chance(cfg.revisit_bias) => prev,
                    _ => session.rng.zipf(plans.len(), cfg.zipf_s) as u32,
                };
                session.site = Some(site_idx);
                let plan = &plans[site_idx as usize];

                obs.clear();
                visit_keys.clear();
                let origin_arm = simulate_visit(
                    plan,
                    session,
                    &rollout,
                    now,
                    cfg,
                    &mut visit_keys,
                    &mut obs,
                    &mut out.churn,
                );
                out.visits += 1;
                out.metrics.inc("serve.visits");
                out.metrics.add("serve.requests", obs.requests);
                out.metrics
                    .add("serve.coalesced_requests", obs.coalesced_requests);
                out.metrics
                    .add("serve.connections_opened", obs.connections_opened);
                if origin_arm {
                    out.metrics.inc("serve.arm_origin_visits");
                    out.origin.record_visit_at(now, &obs);
                } else {
                    out.metrics.inc("serve.arm_control_visits");
                    out.control.record_visit_at(now, &obs);
                }

                session.remaining -= 1;
                if session.remaining > 0 {
                    let think = SimDuration::from_micros(
                        session
                            .rng
                            .exponential(cfg.think_mean.as_micros() as f64)
                            .max(1.0) as u64,
                    );
                    queue.schedule(now + think, Ev::Visit { slot });
                } else {
                    free.push(slot);
                }
            }
        }
    }
    // Pool-churn counters accumulate across the shard; publish once.
    out.metrics.add("serve.pool_reused", out.churn.reused);
    out.metrics
        .add("serve.pool_idle_closed", out.churn.idle_closed);
    out.metrics
        .add("serve.pool_lru_evicted", out.churn.lru_evicted);
    out.metrics
        .add("serve.pool_edge_evicted", out.churn.edge_evicted);
    out
}

/// Replay one visit of `plan` against the session pool, filling `obs`.
/// Returns whether the visit ran in the ORIGIN arm.
#[allow(clippy::too_many_arguments)]
fn simulate_visit(
    plan: &SitePlan,
    session: &mut Session,
    rollout: &Rollout,
    now: SimTime,
    cfg: &ServeConfig,
    visit_keys: &mut Vec<u32>,
    obs: &mut VisitObs,
    churn: &mut PoolChurn,
) -> bool {
    let origin_arm = plan
        .arm_edge
        .map(|e| rollout.origin_enabled(e, now))
        .unwrap_or(false);
    obs.rank = plan.rank;
    obs.requests = u64::from(plan.total_requests);
    obs.model_ip_tls = u64::from(plan.model_ip_tls);
    obs.model_origin_tls = u64::from(plan.model_origin_tls);

    // Critical path: first-party hosts load sequentially, third-party
    // hosts in parallel (their slowest sets the term).
    let mut fp_us: u64 = 0;
    let mut svc_max_us: u64 = 0;
    let mut handshake_total: u64 = 0;
    for host in &plan.hosts {
        // Per-host arm resolution: ORIGIN only helps where the
        // terminating edge advertises it at this instant.
        let key = if rollout.origin_enabled(host.edge, now) {
            host.origin_key
        } else {
            host.control_key
        };
        let mut host_us = host.transfer_us() + host.rtt_us();
        if visit_keys.contains(&key) {
            // Coalesced onto a connection this visit already used.
            obs.coalesced_requests += u64::from(host.requests);
        } else {
            visit_keys.push(key);
            let reused =
                session
                    .pool
                    .acquire(key, host.edge, now, cfg.edge_cap, cfg.pool_budget, churn);
            obs.dns_queries += 1;
            if reused {
                obs.dns_cache_hits += 1;
            } else {
                obs.dns_cache_misses += 1;
                obs.connections_opened += 1;
                obs.measured_tls += 1;
                let handshake = (session
                    .rng
                    .log_normal((host.rtt_us() * HANDSHAKE_RTTS) as f64, 0.08))
                    as u64;
                let offset = fp_us.max(svc_max_us);
                obs.handshakes.push((offset, handshake, 0));
                handshake_total += handshake;
                host_us += handshake;
            }
        }
        let offset = fp_us.max(svc_max_us) + host_us;
        obs.bytes.push((offset, host.bytes, 0));
        let is_first_party = host.control_key & 0x8000_0000 != 0;
        if is_first_party {
            fp_us += host_us;
        } else {
            svc_max_us = svc_max_us.max(host_us);
        }
    }
    let jitter = session.rng.log_normal(1.0, 0.05);
    let plt = ((BASE_RENDER_US + fp_us + svc_max_us) as f64 * jitter) as u64;
    obs.plt_us = plt;
    // Ideal models: scale out the handshakes the model's coalescing
    // would have avoided on a cold load of this site.
    let opens = obs.connections_opened;
    let avg_handshake = handshake_total.checked_div(opens).unwrap_or(0);
    let saved_ip = opens.saturating_sub(u64::from(plan.model_ip_tls));
    let saved_origin = opens.saturating_sub(u64::from(plan.model_origin_tls));
    obs.plt_ideal_ip_us = plt.saturating_sub(avg_handshake * saved_ip);
    obs.plt_ideal_origin_us = plt.saturating_sub(avg_handshake * saved_origin);
    origin_arm
}
