//! Byte-identity of the serving engine across thread counts, and
//! engine-level invariants the CLI gate relies on.

use origin_netsim::SimDuration;
use origin_serve::{run_serve, ServeConfig};
use origin_webgen::DatasetConfig;

fn base_cfg() -> ServeConfig {
    ServeConfig {
        dataset: DatasetConfig {
            sites: 1_000,
            ..DatasetConfig::default()
        },
        visits: 10_000,
        ..ServeConfig::default()
    }
}

fn outputs(cfg: &ServeConfig) -> (String, String, String) {
    let r = run_serve(cfg);
    (r.summary(), r.timeline_json(), r.metrics.to_json())
}

#[test]
fn byte_identical_across_thread_counts() {
    let one = outputs(&base_cfg());
    for threads in [2, 3, 8] {
        let cfg = ServeConfig {
            threads,
            ..base_cfg()
        };
        let t = outputs(&cfg);
        assert_eq!(one.0, t.0, "summary differs at {threads} threads");
        assert_eq!(one.1, t.1, "timeline differs at {threads} threads");
        assert_eq!(one.2, t.2, "metrics differ at {threads} threads");
    }
}

#[test]
fn byte_identical_with_rollout_and_retention() {
    let cfg1 = ServeConfig {
        rollout: 0.5,
        rollout_ramp: SimDuration::from_secs(600),
        retain_windows: Some(32),
        ..base_cfg()
    };
    let one = outputs(&cfg1);
    for threads in [2, 8] {
        let cfg = ServeConfig {
            threads,
            ..cfg1.clone()
        };
        let t = outputs(&cfg);
        assert_eq!(one.0, t.0, "summary differs at {threads} threads");
        assert_eq!(one.1, t.1, "timeline differs at {threads} threads");
        assert_eq!(one.2, t.2, "metrics differ at {threads} threads");
    }
}

#[test]
fn visit_budget_is_exact() {
    let r = run_serve(&base_cfg());
    assert_eq!(r.visits, 10_000);
    assert_eq!(r.metrics.counter("serve.visits"), 10_000);
    assert_eq!(
        r.metrics.counter("serve.arm_control_visits")
            + r.metrics.counter("serve.arm_origin_visits"),
        10_000
    );
}

#[test]
fn rollout_populates_both_arms() {
    let cfg = ServeConfig {
        rollout: 0.6,
        rollout_ramp: SimDuration::from_secs(300),
        ..base_cfg()
    };
    let r = run_serve(&cfg);
    let origin = r.metrics.counter("serve.arm_origin_visits");
    let control = r.metrics.counter("serve.arm_control_visits");
    assert!(origin > 0, "ramped rollout must reach the origin arm");
    assert!(control > 0, "control arm must keep provider-free sites");
    assert_eq!(r.origin.total_visits(), origin);
    assert_eq!(r.control.total_visits(), control);
}

#[test]
fn zero_rollout_keeps_origin_arm_empty() {
    let r = run_serve(&base_cfg());
    assert_eq!(r.metrics.counter("serve.arm_origin_visits"), 0);
    assert_eq!(r.origin.total_visits(), 0);
}

#[test]
fn disabled_pool_reopens_every_connection() {
    let cfg = ServeConfig {
        pool_budget: 0,
        ..base_cfg()
    };
    let r = run_serve(&cfg);
    assert_eq!(r.metrics.counter("serve.pool_reused"), 0);
    assert_eq!(r.metrics.counter("serve.pool_idle_closed"), 0);
    // Pooled serving opens strictly fewer connections for the same
    // traffic.
    let pooled = run_serve(&base_cfg());
    assert!(
        pooled.metrics.counter("serve.connections_opened")
            < r.metrics.counter("serve.connections_opened")
    );
}

#[test]
fn retention_bounds_live_windows() {
    let cfg = ServeConfig {
        retain_windows: Some(16),
        visits: 20_000,
        ..base_cfg()
    };
    let r = run_serve(&cfg);
    assert!(r.control.num_windows() <= 16);
    assert_eq!(r.control.total_visits() + r.origin.total_visits(), 20_000);
}

#[test]
fn churn_counters_are_exposed() {
    let r = run_serve(&base_cfg());
    assert!(r.metrics.counter("serve.pool_reused") > 0);
    assert!(r.metrics.counter("serve.pool_idle_closed") > 0);
    assert!(r.metrics.counter("serve.connections_opened") > 0);
    // Summary carries the same numbers the metrics do.
    assert!(r.summary().contains(&format!(
        "serve.pool_reused: {}",
        r.metrics.counter("serve.pool_reused")
    )));
}
