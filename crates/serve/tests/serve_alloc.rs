//! Counting-allocator proof that serving memory is O(sites)+O(windows),
//! not O(visits).
//!
//! Two runs over the same plans — 60k visits and 120k visits — differ
//! only in steady-state serving work. If per-visit state leaked (a
//! `Vec<VisitResult>`, un-recycled sessions, unbounded windows), the
//! longer run would allocate proportionally more. The test asserts the
//! *marginal* allocations of the extra 60k visits stay under a small
//! per-visit ceiling: the only allowed growth is new timeline windows
//! (O(sim horizon)), sketch buckets (bounded), and slab warm-up.
//!
//! Allocation counts are only meaningful if no other test mutates the
//! counters concurrently, so this file holds exactly one `#[test]`.

use origin_serve::plan::compile_dataset;
use origin_serve::{engine::run_serve_on, ServeConfig};
use origin_webgen::{Dataset, DatasetConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;

// SAFETY: delegates every operation to `System`; the counter is a
// side effect only.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(p, l, n) }
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Marginal allocations per steady-state visit. Measured well under 1
/// (the hot path is allocation-free; the only growth is new timeline
/// windows amortized over thousands of visits); the ceiling leaves
/// room for BTreeMap node sizes, not for per-visit state.
const MAX_MARGINAL_ALLOCS_PER_VISIT: f64 = 4.0;

fn run(plans: &[origin_serve::SitePlan], visits: u64) -> u64 {
    let cfg = ServeConfig {
        dataset: DatasetConfig {
            sites: 2_000,
            ..DatasetConfig::default()
        },
        visits,
        retain_windows: Some(256),
        ..ServeConfig::default()
    };
    let before = allocs();
    let report = run_serve_on(&cfg, plans);
    assert_eq!(report.visits, visits);
    allocs() - before
}

#[test]
fn steady_state_serving_allocations_stay_flat() {
    let dataset = Dataset::generate(DatasetConfig {
        sites: 2_000,
        ..DatasetConfig::default()
    });
    let plans = compile_dataset(&dataset);

    // Warm up once so one-time lazy init (service host interning etc.)
    // doesn't land in either measurement.
    run(&plans, 1_000);

    let short = run(&plans, 60_000);
    let long = run(&plans, 120_000);
    let marginal = long.saturating_sub(short) as f64 / 60_000.0;
    assert!(
        marginal <= MAX_MARGINAL_ALLOCS_PER_VISIT,
        "steady-state serving allocated {marginal:.2} allocs/visit \
         (short run {short}, long run {long}); per-visit state is leaking"
    );
}
