//! Calibrated distribution samplers.
//!
//! Every constant here is tied to a published marginal; the
//! `calibration` integration test asserts the generated dataset stays
//! inside tolerance bands of the paper's numbers (EXPERIMENTS.md
//! records the final values).

use origin_netsim::SimRng;
use origin_web::Protocol;

/// Per-page subrequest count: log-normal with the paper's median 81 /
/// mean 113 (σ chosen so mean/median = e^(σ²/2) ≈ 1.395 → σ ≈ 0.816),
/// clamped to a sane range.
pub fn sample_request_count(rng: &mut SimRng) -> u32 {
    let x = rng.log_normal(81.0, 0.816);
    (x.round() as u32).clamp(3, 900)
}

/// Number of distinct ASes a page touches (Figure 1): point masses at
/// 1 (6.5%) and 2 (14%) with a log-normal body whose median lands the
/// CDF's 50% crossing at 6 ASes and whose tail reaches ~10².
pub fn sample_as_count(rng: &mut SimRng, request_count: u32) -> u32 {
    let u = rng.unit();
    if u < 0.065 {
        return 1;
    }
    if u < 0.205 {
        return 2;
    }
    // Bigger pages touch more ASes; couple the median mildly to the
    // request count around the global median of 81.
    let scale = (request_count as f64 / 81.0).powf(0.35);
    let x = rng.log_normal(6.6 * scale, 0.62);
    (x.round() as u32).clamp(3, 140)
}

/// Number of sharded first-party subdomains (beyond the root host).
/// Sharding was an HTTP/1.1-era optimization (§1); most sites carry
/// one to three shards.
pub fn sample_shard_count(rng: &mut SimRng) -> u32 {
    let u = rng.unit();
    match () {
        _ if u < 0.30 => 0,
        _ if u < 0.62 => 1,
        _ if u < 0.85 => 2,
        _ if u < 0.96 => 3,
        _ => 4,
    }
}

/// Existing certificate SAN-entry counts (Table 8 "Measured" column,
/// normalized to its top-10 plus a long tail). Returns the number of
/// DNS SAN entries in the site's current certificate.
pub fn sample_existing_san_count(rng: &mut SimRng) -> u32 {
    // (count, probability) from Table 8 counts / 315,796, with the
    // remaining ~4.8% spread over a tail reaching the >250 regime
    // (230 sites above 250 in the paper).
    const POINTS: [(u32, f64); 10] = [
        (2, 0.4529),
        (3, 0.2315),
        (1, 0.0959),
        (0, 0.0352),
        (8, 0.0264),
        (4, 0.0229),
        (9, 0.0202),
        (6, 0.0131),
        (5, 0.0100),
        (10, 0.0081),
    ];
    let mut u = rng.unit();
    for (v, p) in POINTS {
        if u < p {
            return v;
        }
        u -= p;
    }
    // Long tail: 11 .. ~2000, Zipf-flavored, ≲0.1% above 250 (the
    // paper saw 230/315,796 sites above 250).
    rng.zipf(1940, 1.8) as u32 + 11
}

/// Protocol negotiated for requests to a host. Request-level marginals
/// (Table 3): H2 73.64%, H1.1 19.09%, H3 0.34%, QUIC 0.07%, H1.0
/// 0.03%, H0.9 trace, N/A 6.8%. N/A is drawn per-request (failed
/// requests), so the per-host draw renormalizes the rest.
pub fn sample_host_protocol(rng: &mut SimRng, big_provider: bool) -> Protocol {
    // CDN-hosted services are H2 nearly always; the H1.1 share lives
    // in the self-hosted tail.
    let u = rng.unit();
    if big_provider {
        match () {
            _ if u < 0.955 => Protocol::H2,
            _ if u < 0.990 => Protocol::H11,
            _ if u < 0.9945 => Protocol::H3Q050,
            _ if u < 0.9955 => Protocol::Quic,
            _ => Protocol::H11,
        }
    } else {
        match () {
            _ if u < 0.62 => Protocol::H2,
            _ if u < 0.992 => Protocol::H11,
            _ if u < 0.9924 => Protocol::H10,
            _ if u < 0.99244 => Protocol::H09,
            _ => Protocol::H11,
        }
    }
}

/// Probability a request record has no protocol (aborted/failed):
/// Table 3's 6.8% "N/A" row.
pub const REQUEST_NA_RATE: f64 = 0.068;

/// Probability a request is plain HTTP (Table 3: 1.47% insecure).
pub const REQUEST_INSECURE_RATE: f64 = 0.0147;

/// Crawl success rate per rank bucket (Table 1): non-200s and
/// CAPTCHAs removed ~36.5% of sites, mildly rank-dependent.
pub fn success_rate_for_rank(rank: u32, tranco_total: u32) -> f64 {
    let frac = rank as f64 / tranco_total.max(1) as f64; // 0 = most popular
                                                         // 68.2% at the top bucket declining to ~60.2% at the bottom.
    0.682 - 0.08 * frac
}

/// Server think time (HAR "wait"), ms: log-normal around 55 ms
/// (folds in redirect chains and backend work).
pub fn sample_wait_ms(rng: &mut SimRng) -> f64 {
    rng.log_normal(55.0, 0.8).clamp(4.0, 4_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(0xCAFE)
    }

    fn median_u32(mut xs: Vec<u32>) -> u32 {
        xs.sort_unstable();
        xs[xs.len() / 2]
    }

    #[test]
    fn request_count_median_near_81() {
        let mut r = rng();
        let xs: Vec<u32> = (0..20_000).map(|_| sample_request_count(&mut r)).collect();
        let med = median_u32(xs.clone());
        assert!((75..=87).contains(&med), "median={med}");
        let mean = xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64;
        assert!((100.0..=128.0).contains(&mean), "mean={mean}");
    }

    #[test]
    fn as_count_point_masses_and_median() {
        let mut r = rng();
        let xs: Vec<u32> = (0..20_000).map(|_| sample_as_count(&mut r, 81)).collect();
        let ones = xs.iter().filter(|&&x| x == 1).count() as f64 / xs.len() as f64;
        let twos = xs.iter().filter(|&&x| x == 2).count() as f64 / xs.len() as f64;
        assert!((0.05..=0.08).contains(&ones), "P(1)={ones}");
        assert!((0.12..=0.16).contains(&twos), "P(2)={twos}");
        let med = median_u32(xs);
        assert!((5..=8).contains(&med), "median={med}");
    }

    #[test]
    fn san_count_top_is_two() {
        let mut r = rng();
        let xs: Vec<u32> = (0..50_000)
            .map(|_| sample_existing_san_count(&mut r))
            .collect();
        let twos = xs.iter().filter(|&&x| x == 2).count() as f64 / xs.len() as f64;
        assert!((0.43..=0.48).contains(&twos), "P(2)={twos}");
        let zeros = xs.iter().filter(|&&x| x == 0).count() as f64 / xs.len() as f64;
        assert!((0.03..=0.04).contains(&zeros), "P(0)={zeros}");
        // Long tail exists but is rare.
        let big = xs.iter().filter(|&&x| x > 250).count() as f64 / xs.len() as f64;
        assert!(big > 0.0 && big < 0.004, "P(>250)={big}");
    }

    #[test]
    fn protocol_mix_shapes() {
        let mut r = rng();
        let big: Vec<Protocol> = (0..10_000)
            .map(|_| sample_host_protocol(&mut r, true))
            .collect();
        let h2 = big.iter().filter(|&&p| p == Protocol::H2).count() as f64 / big.len() as f64;
        assert!(h2 > 0.93, "big-provider H2 share {h2}");
        let small: Vec<Protocol> = (0..10_000)
            .map(|_| sample_host_protocol(&mut r, false))
            .collect();
        let h11 = small.iter().filter(|&&p| p == Protocol::H11).count() as f64 / small.len() as f64;
        assert!(h11 > 0.3, "tail H1.1 share {h11}");
    }

    #[test]
    fn success_rate_declines_with_rank() {
        assert!(success_rate_for_rank(0, 500_000) > success_rate_for_rank(499_999, 500_000));
        let top = success_rate_for_rank(50_000, 500_000);
        assert!((0.60..=0.70).contains(&top));
    }

    #[test]
    fn shard_count_in_range() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert!(sample_shard_count(&mut r) <= 4);
        }
    }

    #[test]
    fn wait_ms_positive_and_bounded() {
        let mut r = rng();
        for _ in 0..1_000 {
            let w = sample_wait_ms(&mut r);
            assert!((2.0..=3_000.0).contains(&w));
        }
    }
}
