//! Site and page generation.

use crate::dist;
use crate::services::{
    tail_service_content, tail_service_host, tail_service_weight, SERVICES, TAIL_SERVICE_COUNT,
};
use crate::universe::{tail_asn, ProviderDef, Universe, PROVIDERS};
use origin_dns::name::name;
use origin_dns::record::Rotation;
use origin_dns::DnsName;
use origin_netsim::SimRng;
use origin_tls::KnownIssuer;
use origin_web::{ContentType, FetchMode, Page, Protocol, Resource};

/// Dataset generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Number of Tranco ranks to generate (the paper used 500K; the
    /// default here is a laptop-scale 20K that preserves all shapes).
    pub sites: u32,
    /// The nominal Tranco list size rank buckets are scaled against.
    pub tranco_total: u32,
    /// Master seed.
    pub seed: u64,
    /// Share of sites in `[0, 1]` that are *legacy*: their origin
    /// never deployed h2, so ALPN negotiates `http/1.1`, first-party
    /// assets are domain-sharded across the site's shard hosts, and
    /// none of their connections coalesce. Assignment is a pure hash
    /// of `(seed, rank)` — no RNG draws — so `legacy_share = 0.0`
    /// (the default) generates a byte-identical dataset to one that
    /// has never heard of the knob.
    pub legacy_share: f64,
    /// Share of non-legacy sites in `[0, 1]` whose origins deploy
    /// HTTP/3: every host behind the site's certificates advertises
    /// `alt-svc: h3`, so visits upgrade eligible connections to QUIC.
    /// Assigned by the same draw-free `(seed, rank)` hash as
    /// [`legacy_share`] under a distinct salt, so `h3_share = 0.0`
    /// (the default) is byte-identical to a build without the knob.
    /// Legacy sites never deploy h3 (no h2, let alone QUIC).
    ///
    /// [`legacy_share`]: Self::legacy_share
    pub h3_share: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            sites: 20_000,
            tranco_total: 500_000,
            seed: 0x0516,
            legacy_share: 0.0,
            h3_share: 0.0,
        }
    }
}

/// Deterministic legacy assignment: splitmix64 over `(seed, rank)`
/// mapped to `[0, 1)` and compared against the share. Consuming no
/// RNG draws keeps every existing draw sequence — and therefore every
/// committed report — untouched at any share.
fn is_legacy_site(seed: u64, rank: u32, legacy_share: f64) -> bool {
    if legacy_share <= 0.0 {
        return false;
    }
    let mut z = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < legacy_share
}

/// Deterministic h3 deployment assignment: the same draw-free hash as
/// [`is_legacy_site`] under a distinct seed salt, so the two
/// populations are independent and neither perturbs any RNG stream.
fn is_h3_site(seed: u64, rank: u32, h3_share: f64) -> bool {
    if h3_share <= 0.0 {
        return false;
    }
    let mut z = (seed ^ 0x4833_5F51_C0A1_E5CE) ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < h3_share
}

/// A reference to a third-party service used by a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceRef {
    /// Index into [`SERVICES`].
    Named(usize),
    /// Generated tail service index.
    Tail(u32),
}

impl ServiceRef {
    /// The service hostname.
    ///
    /// The catalog is finite (named + tail entries), and `page_for`
    /// asks for the same hostnames millions of times per crawl, so
    /// the `DnsName`s are interned once process-wide and cloned
    /// (an `Arc` bump) thereafter.
    pub fn host(self) -> DnsName {
        static HOSTS: std::sync::OnceLock<Vec<DnsName>> = std::sync::OnceLock::new();
        let hosts = HOSTS.get_or_init(|| {
            SERVICES
                .iter()
                .map(|s| name(s.host))
                .chain((0..TAIL_SERVICE_COUNT).map(|i| name(&tail_service_host(i))))
                .collect()
        });
        match self {
            ServiceRef::Named(i) => hosts[i].clone(),
            ServiceRef::Tail(i) => hosts[SERVICES.len() + i as usize].clone(),
        }
    }

    /// The AS serving it.
    pub fn asn(self) -> u32 {
        match self {
            ServiceRef::Named(i) => PROVIDERS[SERVICES[i].provider].asn,
            ServiceRef::Tail(i) => tail_asn(i % crate::universe::TAIL_AS_COUNT),
        }
    }

    /// Index into [`PROVIDERS`] when hosted by a named provider.
    pub fn provider(self) -> Option<usize> {
        match self {
            ServiceRef::Named(i) => Some(SERVICES[i].provider),
            ServiceRef::Tail(_) => None,
        }
    }

    /// Dominant content type.
    pub fn content(self) -> ContentType {
        match self {
            ServiceRef::Named(i) => SERVICES[i].content,
            ServiceRef::Tail(i) => tail_service_content(i),
        }
    }

    /// Fetch mode of this service's resources.
    pub fn fetch(self) -> FetchMode {
        match self {
            ServiceRef::Named(i) => SERVICES[i].fetch,
            ServiceRef::Tail(i) => {
                if i % 5 == 0 {
                    FetchMode::XhrFetch
                } else {
                    FetchMode::Normal
                }
            }
        }
    }
}

/// One generated site's static configuration.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// Tranco rank (1-based).
    pub rank: u32,
    /// Root document host.
    pub root_host: DnsName,
    /// Sharded first-party subdomains.
    pub shard_hosts: Vec<DnsName>,
    /// Hosting provider index (None = self-hosted in a tail AS).
    pub provider: Option<usize>,
    /// The AS serving the first-party hosts.
    pub asn: u32,
    /// Whether the crawl of this site failed (non-200/CAPTCHA);
    /// failed sites are excluded from the dataset like the paper's
    /// 36.5%.
    pub failed: bool,
    /// Third-party services this page uses.
    pub services: Vec<ServiceRef>,
    /// Subresource request budget.
    pub n_requests: u32,
    /// Per-page RNG seed for lazy page materialization.
    pub page_seed: u64,
    /// Whether the first-party shards share the root's address set
    /// (the IP-coalescible configuration).
    pub shards_share_ip: bool,
    /// Whether the origin is legacy (HTTP/1.1-only ALPN, sharded
    /// asset layout). See [`DatasetConfig::legacy_share`].
    pub legacy: bool,
    /// Whether the origin deploys HTTP/3 (advertises `alt-svc: h3`).
    /// See [`DatasetConfig::h3_share`]; always false for legacy sites.
    pub h3: bool,
}

impl SiteConfig {
    /// All first-party hosts (root first).
    pub fn first_party_hosts(&self) -> Vec<DnsName> {
        let mut v = vec![self.root_host.clone()];
        v.extend(self.shard_hosts.iter().cloned());
        v
    }
}

/// A generated dataset: the universe plus per-site configurations.
pub struct Dataset {
    /// Generation parameters.
    pub config: DatasetConfig,
    /// Shared network state (zones, certs, AS attribution).
    pub universe: Universe,
    sites: Vec<SiteConfig>,
}

impl Dataset {
    /// Generate a dataset.
    pub fn generate(config: DatasetConfig) -> Dataset {
        let rng = SimRng::seed_from_u64(config.seed);
        let mut universe = Universe::new(&mut rng.derive("universe"));
        let mut site_rng = rng.derive("sites");
        let mut sites = Vec::with_capacity(config.sites as usize);
        for rank in 1..=config.sites {
            let cfg = Self::generate_site(rank, config, &mut universe, &mut site_rng);
            sites.push(cfg);
        }
        Dataset {
            config,
            universe,
            sites,
        }
    }

    /// All sites (including failed crawls).
    pub fn sites(&self) -> &[SiteConfig] {
        &self.sites
    }

    /// Sites whose crawl succeeded (the measurement population).
    pub fn successful_sites(&self) -> impl Iterator<Item = &SiteConfig> {
        self.sites.iter().filter(|s| !s.failed)
    }

    fn generate_site(
        rank: u32,
        config: DatasetConfig,
        universe: &mut Universe,
        rng: &mut SimRng,
    ) -> SiteConfig {
        let root_host = name(&format!("site-{rank:06}.com"));
        // Scale the rank into the nominal Tranco space so the success
        // rate gradient matches Table 1 regardless of dataset size.
        let scaled_rank =
            (rank as u64 * config.tranco_total as u64 / config.sites.max(1) as u64) as u32;
        let failed = !rng.chance(dist::success_rate_for_rank(
            scaled_rank,
            config.tranco_total,
        ));

        // Hosting: walk the named providers' shares, else self-host.
        let mut provider: Option<usize> = None;
        let mut u = rng.unit();
        for (i, p) in PROVIDERS.iter().enumerate() {
            if u < p.hosting_share {
                provider = Some(i);
                break;
            }
            u -= p.hosting_share;
        }
        let asn = match provider {
            Some(i) => PROVIDERS[i].asn,
            None => 70_000 + rank, // each self-hosted site is its own AS
        };

        // First-party addressing.
        let net = match provider {
            Some(i) => PROVIDERS[i].net,
            None => 170 + (rank % 60) as u8,
        };
        let n_addrs = if provider.is_some() {
            2
        } else {
            1 + rng.index(2)
        };
        let root_addrs: Vec<std::net::IpAddr> = (0..n_addrs)
            .map(|_| {
                if provider.is_some() {
                    // CDN-fronted sites share the provider's VIP pool.
                    universe.provider_vip(net, asn, rng)
                } else {
                    universe.alloc_ip(net, asn, rng)
                }
            })
            .collect();
        let rotation = if provider.is_some() {
            Rotation::RoundRobin
        } else {
            Rotation::Fixed
        };
        universe.register_host(root_host.clone(), root_addrs.clone(), asn, rotation);

        // Shards.
        const SHARD_LABELS: [&str; 5] = ["www", "static", "img", "cdn", "assets"];
        let n_shards = dist::sample_shard_count(rng) as usize;
        let shards_share_ip = rng.chance(0.45);
        let mut shard_hosts = Vec::with_capacity(n_shards);
        for label in SHARD_LABELS.iter().take(n_shards) {
            let h = name(&format!("{label}.{root_host}"));
            let addrs = if shards_share_ip {
                root_addrs.clone()
            } else {
                (0..n_addrs)
                    .map(|_| {
                        if provider.is_some() {
                            universe.provider_vip(net, asn, rng)
                        } else {
                            universe.alloc_ip(net, asn, rng)
                        }
                    })
                    .collect()
            };
            universe.register_host(h.clone(), addrs, asn, rotation);
            shard_hosts.push(h);
        }

        // Certificate with a Table 8-matched SAN count.
        let target_sans = dist::sample_existing_san_count(rng) as usize;
        let mut issuer = match provider {
            Some(i) => PROVIDERS[i].issuer,
            None => sample_tail_issuer(rng),
        };
        // Certificates beyond the common 100-name limit come from the
        // high-limit issuers the paper observed (Comodo, cPanel, DFN).
        if target_sans > issuer.san_limit() {
            issuer = KnownIssuer::Comodo;
        }
        let target_sans = target_sans.min(issuer.san_limit() - 1);
        let mut sans: Vec<DnsName> = Vec::new();
        // Not every operator maintains a wildcard: ~60% of multi-SAN
        // certificates carry one; the rest enumerate hostnames and
        // frequently miss shards — the gap the §4.3 planner fills.
        let has_wildcard = target_sans >= 2 && rng.chance(0.60);
        if has_wildcard {
            sans.push(name(&format!("*.{root_host}")));
        } else if target_sans >= 2 {
            // Enumerated certs list *some* shards explicitly.
            for h in shard_hosts.iter().take(target_sans.saturating_sub(1)) {
                if rng.chance(0.6) {
                    sans.push(h.clone());
                }
            }
        }
        // Pad with plausible operator names (mail, api, alternate
        // TLDs) to hit the measured SAN size.
        let mut i = 0;
        while sans.len() + 1 < target_sans {
            sans.push(name(&format!("alt-{i}.{root_host}")));
            i += 1;
        }
        if target_sans == 0 {
            // A CN-only certificate (11,131 sites in the paper).
            let cert = universe.issue_cert(issuer, root_host.clone(), &[]);
            let mut cert = cert;
            cert.sans.clear();
            universe.set_cert(root_host.clone(), cert);
        } else {
            let cert = universe.issue_cert(issuer, root_host.clone(), &sans);
            universe.set_cert(root_host.clone(), cert);
        }

        // Request budget and third-party services.
        let n_requests = dist::sample_request_count(rng);
        let target_as = dist::sample_as_count(rng, n_requests);
        let services = pick_services(rng, target_as);
        // Register any tail services this page introduced.
        for s in &services {
            if let ServiceRef::Tail(t) = s {
                let host = s.host();
                if universe.asn_of_host(&host) == 0 {
                    let svc_asn = s.asn();
                    let svc_net = 200 + (t % 50) as u8;
                    let addrs: Vec<std::net::IpAddr> = (0..2)
                        .map(|_| universe.alloc_ip(svc_net, svc_asn, rng))
                        .collect();
                    universe.register_host(host.clone(), addrs, svc_asn, Rotation::RoundRobin);
                    let issuer = sample_tail_issuer(rng);
                    let cert = universe.issue_cert(issuer, host.clone(), &[]);
                    universe.set_cert(host, cert);
                }
            }
        }

        SiteConfig {
            rank,
            root_host,
            shard_hosts,
            provider,
            asn,
            failed,
            services,
            n_requests,
            page_seed: rng.next_u64(),
            shards_share_ip,
            legacy: is_legacy_site(config.seed, rank, config.legacy_share),
            h3: !is_legacy_site(config.seed, rank, config.legacy_share)
                && is_h3_site(config.seed, rank, config.h3_share),
        }
    }

    /// Materialize the page for a site (deterministic per site).
    pub fn page_for(&self, site: &SiteConfig) -> Page {
        self.page_for_with(site, &mut PageScratch::new())
    }

    /// [`Dataset::page_for`] with caller-owned scratch buffers.
    ///
    /// Materialization is a pure function of the site: the scratch
    /// only recycles buffer capacity (host slots, ordering vectors,
    /// resource path strings) across calls, so the returned page is
    /// byte-identical to [`Dataset::page_for`]'s. Crawl workers hold
    /// one scratch each and [`PageScratch::recycle`] finished pages
    /// back into it.
    pub fn page_for_with(&self, site: &SiteConfig, scratch: &mut PageScratch) -> Page {
        use std::fmt::Write as _;
        let mut rng = SimRng::seed_from_u64(site.page_seed);

        // Hosts and their request weights: first-party carries ~40% of
        // requests (sites serve much of their own content), services
        // split the rest by popularity weight.
        let slots = &mut scratch.slots;
        slots.clear();
        let n_fp = 1 + site.shard_hosts.len();
        let fp_weight_total = 40.0;
        for (i, h) in std::iter::once(&site.root_host)
            .chain(site.shard_hosts.iter())
            .enumerate()
        {
            // Root slightly heavier than shards.
            let w = fp_weight_total / n_fp as f64 * if i == 0 { 1.3 } else { 0.9 };
            slots.push(HostSlot {
                host: h.clone(),
                weight: w,
                content: HostContent::FirstParty,
                fetch: FetchMode::Normal,
            });
        }
        let svc_weight_total: f64 = site
            .services
            .iter()
            .map(|s| match s {
                ServiceRef::Named(i) => SERVICES[*i].weight as f64,
                ServiceRef::Tail(i) => tail_service_weight(*i) as f64,
            })
            .sum();
        for s in &site.services {
            let w = match s {
                ServiceRef::Named(i) => SERVICES[*i].weight as f64,
                ServiceRef::Tail(i) => tail_service_weight(*i) as f64,
            };
            slots.push(HostSlot {
                host: s.host(),
                weight: 60.0 * w / svc_weight_total.max(1.0),
                content: HostContent::Service(s.content()),
                fetch: s.fetch(),
            });
        }

        // AS group of each slot (first-party slots share the site AS).
        let slot_asns = &mut scratch.slot_asns;
        slot_asns.clear();
        for i in 0..slots.len() {
            slot_asns.push(if i < n_fp {
                site.asn
            } else {
                site.services[i - n_fp].asn()
            });
        }

        // Per-host protocol (hosts keep one protocol for the load).
        let protocols = &mut scratch.protocols;
        protocols.clear();
        for i in 0..slots.len() {
            let big = if i < n_fp {
                site.provider.is_some()
            } else {
                !matches!(site.services.get(i - n_fp), Some(ServiceRef::Tail(_)))
            };
            protocols.push(dist::sample_host_protocol(&mut rng, big));
        }

        // Distribute the request budget: every host gets at least one
        // request, the rest go by weight.
        let n = site.n_requests.max(slots.len() as u32) as usize;
        let per_host = &mut scratch.per_host;
        per_host.clear();
        per_host.resize(slots.len(), 1usize);
        let total_w: f64 = slots.iter().map(|s| s.weight).sum();
        for _ in slots.len()..n {
            let mut pick = rng.unit() * total_w;
            let mut chosen = 0;
            for (i, s) in slots.iter().enumerate() {
                if pick < s.weight {
                    chosen = i;
                    break;
                }
                pick -= s.weight;
            }
            per_host[chosen] += 1;
        }

        // Emit resources in an interleaved (shuffled) order so
        // discovery chains cross hostnames the way real pages do
        // (script on host A pulls CSS from host B pulls a font from
        // host C). CSS resources are remembered so fonts can be
        // discovered through them (the crossorigin chain of §5.3).
        let order = &mut scratch.order;
        order.clear();
        for (slot_idx, &count) in per_host.iter().enumerate() {
            for j in 0..count {
                order.push((slot_idx, j));
            }
        }
        rng.shuffle(order);
        // Head-of-document pattern: pages reference one resource from
        // each provider group early (tag manager, analytics, fonts
        // CSS, first-party app bundle), then the long tail of
        // subresources follows. Pull one first-contact per AS group
        // to the front of the discovery order.
        {
            let seen_groups = &mut scratch.seen_groups;
            seen_groups.clear();
            let front = &mut scratch.front;
            let rest = &mut scratch.rest;
            front.clear();
            rest.clear();
            for &(slot_idx, j) in order.iter() {
                let group = slot_asns[slot_idx];
                if j == 0 && seen_groups.insert(group) {
                    front.push((slot_idx, j));
                } else {
                    rest.push((slot_idx, j));
                }
            }
            front.extend(rest.iter().copied());
            std::mem::swap(order, front);
        }
        let css_indices = &mut scratch.css_indices;
        css_indices.clear();
        let seen_slots = &mut scratch.seen_slots;
        seen_slots.clear();
        seen_slots.resize(slots.len(), false);
        // Recycled resource storage: slot 0 is the root document, the
        // emit loop overwrites (or appends) one entry per ordered
        // resource, and the tail of a larger previous page is
        // truncated away. Path strings re-fill their old capacity.
        let mut resources = std::mem::take(&mut scratch.resources);
        let spare = &mut scratch.spare;
        write_resource(
            &mut resources,
            spare,
            0,
            &site.root_host,
            ContentType::Html,
            14_000,
        );
        resources[0].path.push('/');
        // The discovery backbone: each newly-contacted host is found
        // by parsing content fetched from the previously-discovered
        // one (script loads script loads beacon…), so host
        // first-contacts form a serial chain through the page — the
        // critical-path shape that makes connection setup removable
        // in the §4.1 reconstruction.
        let mut last_first_contact: Option<usize> = None;
        let seen_groups_emit = &mut scratch.seen_groups_emit;
        seen_groups_emit.clear();
        for (emitted, &(slot_idx, j)) in order.iter().enumerate() {
            let slot = &slots[slot_idx];
            let idx = emitted + 1;
            {
                let content = match &slot.content {
                    HostContent::FirstParty => sample_first_party_content(&mut rng),
                    HostContent::Service(ct) => {
                        if rng.chance(0.75) {
                            *ct
                        } else {
                            sample_first_party_content(&mut rng)
                        }
                    }
                };
                let size = (rng.log_normal(content.typical_size() as f64, 0.9) as u64)
                    .clamp(200, 6_000_000);
                let r = write_resource(&mut resources, spare, idx, &slot.host, content, size);
                let _ = write!(
                    r.path,
                    "/{}/r{}-{}.{}",
                    slot.host.as_str().split('.').next().unwrap_or("x"),
                    slot_idx,
                    j,
                    ext_of(content)
                );
                r.fetch_mode = if content.is_font() {
                    FetchMode::CorsAnonymous
                } else {
                    slot.fetch
                };
                r.protocol = if rng.chance(dist::REQUEST_NA_RATE) {
                    Protocol::NA
                } else {
                    protocols[slot_idx]
                };
                r.secure = !rng.chance(dist::REQUEST_INSECURE_RATE);
                // Discovery structure: fonts hang off a CSS resource;
                // other resources chain off the immediately preceding
                // resource (long sequential discovery chains, the
                // critical-path shape WProf documented) or off a
                // random earlier one, else off the root document.
                let first_contact = !seen_slots[slot_idx];
                seen_slots[slot_idx] = true;
                let group_seen = seen_groups_emit.contains(&slot_asns[slot_idx]);
                seen_groups_emit.insert(slot_asns[slot_idx]);
                if content.is_font() && !css_indices.is_empty() {
                    r.discovered_by = Some(*rng.choose(css_indices));
                } else if first_contact && group_seen && rng.chance(0.95) {
                    // Same-ecosystem discovery (a Google tag loads the
                    // next Google host, a CDN bundle pulls its sibling
                    // asset host): chains into the backbone. These are
                    // exactly the coalescable setups of §4.
                    r.discovered_by = last_first_contact;
                } else if first_contact && rng.chance(0.45) {
                    // Independent third-party ecosystems mostly load
                    // in parallel (async script tags), occasionally
                    // chained.
                    r.discovered_by = last_first_contact;
                } else if emitted > 0 && rng.chance(0.70) {
                    r.discovered_by = Some(emitted); // chain off previous
                } else if emitted > 0 && rng.chance(0.20) {
                    r.discovered_by = Some(1 + rng.index(emitted));
                }
                debug_assert!(r.discovered_by.is_none_or(|p| p < idx));
                if first_contact {
                    last_first_contact = Some(idx);
                }
                if content == ContentType::Css {
                    css_indices.push(idx);
                }
            }
        }
        // Park (don't drop) the unused tail of a larger previous
        // page: the next page that outgrows this one re-adopts those
        // entries — and their path-string capacity — from the spare
        // pool instead of allocating fresh ones.
        spare.extend(resources.drain(order.len() + 1..));
        if site.legacy {
            apply_legacy_layout(site, &mut resources);
        }
        Page {
            rank: site.rank,
            root_host: site.root_host.clone(),
            resources,
            legacy: site.legacy,
            h3: site.h3,
        }
    }
}

/// The legacy-site transform, a draw-free post-pass over a fully
/// materialized page (so the RNG draw sequence is identical to the
/// modern rendering of the same site):
///
/// - every first-party resource is served over HTTP/1.1 — the origin
///   never deployed h2, so ALPN settles on `http/1.1`;
/// - first-party *assets* are re-spread round-robin across the
///   site's shard hosts — the classic domain-sharding workaround for
///   the 6-connections-per-host limit (third-party services keep
///   their own, independently sampled protocols).
fn apply_legacy_layout(site: &SiteConfig, resources: &mut [Resource]) {
    if let Some(root) = resources.first_mut() {
        root.protocol = Protocol::H11;
    }
    let shards = &site.shard_hosts;
    let mut fp_seen = 0usize;
    for r in resources.iter_mut().skip(1) {
        let first_party = r.host == site.root_host || shards.contains(&r.host);
        if !first_party {
            continue;
        }
        if r.protocol != Protocol::NA {
            r.protocol = Protocol::H11;
        }
        if !shards.is_empty() {
            r.host = shards[fp_seen % shards.len()].clone();
            fp_seen += 1;
        }
    }
}

/// One host slot in a materializing page (see
/// [`Dataset::page_for_with`]).
struct HostSlot {
    host: DnsName,
    weight: f64,
    content: HostContent,
    fetch: FetchMode,
}

enum HostContent {
    FirstParty,
    Service(ContentType),
}

/// Reset entry `idx` of `resources` for reuse (or adopt one from the
/// `spare` pool, or append a fresh one) and return it with an empty
/// path, defaulted discovery/fetch fields and the given identity —
/// the recycled-buffer analogue of [`Resource::new`].
fn write_resource<'a>(
    resources: &'a mut Vec<Resource>,
    spare: &mut Vec<Resource>,
    idx: usize,
    host: &DnsName,
    content: ContentType,
    size: u64,
) -> &'a mut Resource {
    if idx >= resources.len() {
        debug_assert_eq!(idx, resources.len());
        resources.push(
            spare
                .pop()
                .unwrap_or_else(|| Resource::new(host.clone(), String::new(), content, size)),
        );
    }
    let r = &mut resources[idx];
    r.host = host.clone();
    r.path.clear();
    r.content_type = content;
    r.size = size;
    r.discovered_by = None;
    r.fetch_mode = FetchMode::Normal;
    r.protocol = Protocol::H2;
    r.secure = true;
    r
}

/// Reusable buffers for [`Dataset::page_for_with`]: everything a page
/// materialization allocates, kept warm across a worker's visits.
///
/// Holding one per crawl worker (never shared — materialization is
/// single-threaded per scratch) turns the ~300 heap allocations of a
/// cold `page_for` into a handful of capacity-retained writes.
#[derive(Default)]
pub struct PageScratch {
    slots: Vec<HostSlot>,
    slot_asns: Vec<u32>,
    protocols: Vec<Protocol>,
    per_host: Vec<usize>,
    order: Vec<(usize, usize)>,
    front: Vec<(usize, usize)>,
    rest: Vec<(usize, usize)>,
    css_indices: Vec<usize>,
    seen_slots: Vec<bool>,
    seen_groups: origin_intern::FxHashSet<u32>,
    seen_groups_emit: origin_intern::FxHashSet<u32>,
    resources: Vec<Resource>,
    /// Parked resource entries from pages larger than the current one
    /// (their path strings keep their capacity).
    spare: Vec<Resource>,
}

impl PageScratch {
    /// Empty scratch (first use allocates, later uses recycle).
    pub fn new() -> Self {
        Self::default()
    }

    /// Return a finished page's resource storage to the scratch so the
    /// next [`Dataset::page_for_with`] call reuses its capacity
    /// (including every resource's path-string allocation).
    pub fn recycle(&mut self, page: Page) {
        // Normally `resources` is empty (page_for_with took it); if
        // the caller recycles twice, park the older entries instead
        // of dropping them.
        let old = std::mem::replace(&mut self.resources, page.resources);
        self.spare.extend(old);
    }
}

fn ext_of(ct: ContentType) -> &'static str {
    match ct {
        ContentType::Javascript | ContentType::TextJavascript | ContentType::XJavascript => "js",
        ContentType::Jpeg => "jpg",
        ContentType::Png => "png",
        ContentType::Html => "html",
        ContentType::Gif => "gif",
        ContentType::Css => "css",
        ContentType::Json => "json",
        ContentType::Woff2 => "woff2",
        ContentType::Webp => "webp",
        ContentType::Plain => "txt",
        ContentType::Other => "bin",
    }
}

/// First-party content mix: images, CSS, JS, HTML fragments — tuned
/// with the service catalog to land Table 5's global shares.
fn sample_first_party_content(rng: &mut SimRng) -> ContentType {
    let u = rng.unit();
    match () {
        _ if u < 0.17 => ContentType::Javascript,
        _ if u < 0.33 => ContentType::Jpeg,
        _ if u < 0.46 => ContentType::Png,
        _ if u < 0.56 => ContentType::Html,
        _ if u < 0.64 => ContentType::Gif,
        _ if u < 0.74 => ContentType::Css,
        _ if u < 0.78 => ContentType::Json,
        _ if u < 0.81 => ContentType::Woff2,
        _ if u < 0.85 => ContentType::Webp,
        _ if u < 0.88 => ContentType::Plain,
        _ if u < 0.93 => ContentType::XJavascript,
        _ => ContentType::Other,
    }
}

/// Issuers for self-hosted sites, ∝ Table 4 with the provider-tied
/// issuers (Google/Amazon/Cloudflare) removed.
fn sample_tail_issuer(rng: &mut SimRng) -> KnownIssuer {
    let u = rng.unit();
    match () {
        _ if u < 0.30 => KnownIssuer::LetsEncrypt,
        _ if u < 0.48 => KnownIssuer::Sectigo,
        _ if u < 0.62 => KnownIssuer::DigiCertHighAssurance,
        _ if u < 0.74 => KnownIssuer::DigiCertSecureServer,
        _ if u < 0.83 => KnownIssuer::GoDaddy,
        _ if u < 0.90 => KnownIssuer::DigiCertTlsRsa,
        _ if u < 0.96 => KnownIssuer::GeoTrust,
        _ => KnownIssuer::Comodo,
    }
}

/// Choose services until the page's distinct third-party AS count
/// reaches `target_as - 1` (the first-party AS is the remaining one).
fn pick_services(rng: &mut SimRng, target_as: u32) -> Vec<ServiceRef> {
    let needed = target_as.saturating_sub(1);
    let mut services: Vec<ServiceRef> = Vec::new();
    let mut ases: origin_intern::FxHashSet<u32> = origin_intern::FxHashSet::default();
    let mut guard = 0;
    while (ases.len() as u32) < needed && guard < needed * 10 + 50 {
        guard += 1;
        let s = if rng.chance(0.55) {
            ServiceRef::Named(rng.zipf(SERVICES.len(), 1.05))
        } else {
            ServiceRef::Tail(rng.zipf(TAIL_SERVICE_COUNT as usize, 1.02) as u32)
        };
        if services.contains(&s) {
            continue;
        }
        services.push(s);
        ases.insert(s.asn());
    }
    // Pages use several hostnames per provider (fonts.googleapis.com
    // + fonts.gstatic.com + analytics + ad exchanges all in AS15169):
    // add extra services drawn from the ASes already in the set, so
    // distinct hostnames land near the paper's ~13 while the page's
    // AS spread stays at its Figure 1 target.
    if needed > 0 {
        let candidates: Vec<usize> = SERVICES
            .iter()
            .enumerate()
            .filter(|(_, svc)| ases.contains(&PROVIDERS[svc.provider].asn))
            .map(|(i, _)| i)
            .collect();
        if !candidates.is_empty() {
            let extras = 5 + rng.index(4);
            let mut guard = 0;
            while guard < extras * 8 {
                guard += 1;
                let s = ServiceRef::Named(candidates[rng.zipf(candidates.len(), 0.8)]);
                if services.contains(&s) {
                    continue;
                }
                services.push(s);
                if services.len() >= needed as usize + extras {
                    break;
                }
            }
        }
    }
    services
}

/// Re-export for universe provider access in doc examples.
pub use crate::universe::PROVIDERS as PROVIDER_TABLE;

#[allow(unused_imports)]
use ProviderDef as _ProviderDefUsed;

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        Dataset::generate(DatasetConfig {
            sites: 300,
            tranco_total: 500_000,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.sites().len(), b.sites().len());
        for (x, y) in a.sites().iter().zip(b.sites()) {
            assert_eq!(x.root_host, y.root_host);
            assert_eq!(x.n_requests, y.n_requests);
            assert_eq!(x.page_seed, y.page_seed);
            assert_eq!(x.services, y.services);
        }
        let pa = a.page_for(&a.sites()[0]);
        let pb = b.page_for(&b.sites()[0]);
        assert_eq!(pa, pb);
    }

    #[test]
    fn success_rate_plausible() {
        let d = small();
        let ok = d.successful_sites().count();
        let rate = ok as f64 / d.sites().len() as f64;
        assert!((0.55..=0.75).contains(&rate), "success rate {rate}");
    }

    #[test]
    fn hosting_shares_roughly_match() {
        let d = Dataset::generate(DatasetConfig {
            sites: 3_000,
            tranco_total: 500_000,
            seed: 7,
            ..Default::default()
        });
        let cf = d.sites().iter().filter(|s| s.provider == Some(1)).count() as f64
            / d.sites().len() as f64;
        assert!((0.21..=0.29).contains(&cf), "cloudflare share {cf}");
        let self_hosted = d.sites().iter().filter(|s| s.provider.is_none()).count() as f64
            / d.sites().len() as f64;
        assert!(self_hosted > 0.4, "self-hosted share {self_hosted}");
    }

    #[test]
    fn pages_have_root_and_budgeted_requests() {
        let d = small();
        let site = d.sites().iter().find(|s| !s.failed).unwrap();
        let page = d.page_for(site);
        assert_eq!(page.resources[0].content_type, ContentType::Html);
        assert_eq!(page.resources[0].host, site.root_host);
        // Budget is approximate (hosts each get ≥1) but close.
        let n = page.subrequest_count() as u32;
        assert!(
            n >= site.n_requests.min(3),
            "n={n} budget={}",
            site.n_requests
        );
    }

    #[test]
    fn page_hosts_resolve_in_universe() {
        let mut d = small();
        let site = d.sites().iter().find(|s| !s.failed).unwrap().clone();
        let page = d.page_for(&site);
        let mut rng = SimRng::seed_from_u64(1);
        for r in &page.resources {
            let ans = d.universe.zones.resolve(&r.host, &mut rng);
            assert!(ans.is_some(), "unresolvable host {}", r.host);
            assert_ne!(d.universe.asn_of_host(&r.host), 0);
        }
    }

    #[test]
    fn site_certs_cover_root() {
        let d = small();
        for site in d.successful_sites().take(50) {
            let cert = d.universe.cert_for(&site.root_host).expect("site cert");
            // Sites with SAN-less certs (Table 8's zero bucket) exist.
            if cert.san_count() > 0 {
                assert!(cert.covers(&site.root_host));
            }
        }
    }

    #[test]
    fn fonts_are_cors_anonymous_in_pages() {
        let d = small();
        let mut seen_font = false;
        for site in d.successful_sites().take(40) {
            let page = d.page_for(site);
            for r in &page.resources {
                if r.content_type.is_font() {
                    seen_font = true;
                    assert_eq!(r.fetch_mode, FetchMode::CorsAnonymous);
                }
            }
        }
        assert!(seen_font, "no fonts generated in 40 pages");
    }

    #[test]
    fn discovery_order_leads_with_group_heads() {
        // The head-of-document pattern: the first requests contact
        // each AS group once before the long tail of subresources.
        let d = small();
        for site in d.successful_sites().take(20) {
            let page = d.page_for(site);
            let mut groups_seen = std::collections::HashSet::new();
            let mut all_groups = std::collections::HashSet::new();
            for r in &page.resources {
                all_groups.insert(d.universe.asn_of_host(&r.host));
            }
            let prefix = all_groups.len() + 2;
            for r in page.resources.iter().take(prefix) {
                groups_seen.insert(d.universe.asn_of_host(&r.host));
            }
            assert!(
                groups_seen.len() >= all_groups.len().saturating_sub(1),
                "rank {}: {} of {} groups in the first {prefix} requests",
                site.rank,
                groups_seen.len(),
                all_groups.len()
            );
        }
    }

    #[test]
    fn pages_have_discovery_chains() {
        // Deep discovery chains are what make setup time removable on
        // the critical path; the generator must produce them.
        let d = small();
        let mut max_depth = 0;
        for site in d.successful_sites().take(20) {
            let page = d.page_for(site);
            for i in 0..page.resources.len() {
                max_depth = max_depth.max(page.depth_of(i));
            }
        }
        assert!(max_depth >= 5, "max discovery depth {max_depth}");
    }

    #[test]
    fn fonts_discovered_through_css() {
        let d = small();
        let mut checked = 0;
        for site in d.successful_sites().take(30) {
            let page = d.page_for(site);
            for r in &page.resources {
                if r.content_type.is_font() {
                    if let Some(p) = r.discovered_by {
                        if page.resources[p].content_type == ContentType::Css {
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 0, "no css→font discovery chains generated");
    }

    #[test]
    fn service_as_targets_respected() {
        let mut rng = SimRng::seed_from_u64(9);
        let svcs = pick_services(&mut rng, 6);
        let ases: std::collections::HashSet<u32> = svcs.iter().map(|s| s.asn()).collect();
        assert!(
            ases.len() >= 4,
            "wanted ~5 third-party ASes, got {}",
            ases.len()
        );
        assert!(pick_services(&mut rng, 1).is_empty());
    }

    /// Scratch reuse must be observationally invisible: pages built
    /// through one recycled [`PageScratch`] are identical to pages
    /// built with a fresh scratch each call (which is what
    /// [`Dataset::page_for`] does).
    #[test]
    fn scratch_reuse_is_output_invisible() {
        let d = small();
        let mut scratch = PageScratch::new();
        for site in d.sites().iter().filter(|s| !s.failed).take(25) {
            let fresh = d.page_for(site);
            let reused = d.page_for_with(site, &mut scratch);
            assert_eq!(reused, fresh, "site {}", site.rank);
            scratch.recycle(reused);
        }
    }
}
