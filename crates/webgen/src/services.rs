//! The third-party service catalog.
//!
//! Table 7 lists the most-requested subresource hostnames; Table 9
//! groups the ones each big provider could add to its customers'
//! certificates. The named entries below reproduce those hostnames
//! with popularity weights proportional to the paper's request
//! shares; a generated tail of smaller services (analytics, ad
//! exchanges, widget CDNs) fills out the remaining AS diversity.

use origin_web::{ContentType, FetchMode};

/// A third-party service: one hostname, hosted at one provider.
#[derive(Debug, Clone, Copy)]
pub struct ServiceDef {
    /// Hostname.
    pub host: &'static str,
    /// Index into [`crate::universe::PROVIDERS`].
    pub provider: usize,
    /// Dominant content type served.
    pub content: ContentType,
    /// Popularity weight (∝ Table 7 request shares ×100).
    pub weight: u32,
    /// Default fetch mode for this service's resources.
    pub fetch: FetchMode,
}

/// Named services matching Tables 7 and 9.
///
/// Provider indices: 0 Google, 1 Cloudflare, 2 Amazon-02, 3 Amazon
/// AES, 4 Fastly, 5 Akamai, 6 Facebook, 7 Akamai Intl, 8 OVH,
/// 9 Hetzner.
pub const SERVICES: [ServiceDef; 24] = [
    // Table 7 top-10.
    ServiceDef {
        host: "fonts.gstatic.com",
        provider: 0,
        content: ContentType::Woff2,
        weight: 223,
        fetch: FetchMode::CorsAnonymous,
    },
    ServiceDef {
        host: "www.google-analytics.com",
        provider: 0,
        content: ContentType::TextJavascript,
        weight: 167,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "www.facebook.com",
        provider: 6,
        content: ContentType::Javascript,
        weight: 158,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "www.google.com",
        provider: 0,
        content: ContentType::Html,
        weight: 152,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "tpc.googlesyndication.com",
        provider: 0,
        content: ContentType::Html,
        weight: 121,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "cm.g.doubleclick.net",
        provider: 0,
        content: ContentType::Gif,
        weight: 118,
        fetch: FetchMode::XhrFetch,
    },
    ServiceDef {
        host: "googleads.g.doubleclick.net",
        provider: 0,
        content: ContentType::TextJavascript,
        weight: 115,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "pagead2.googlesyndication.com",
        provider: 0,
        content: ContentType::TextJavascript,
        weight: 112,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "fonts.googleapis.com",
        provider: 0,
        content: ContentType::Css,
        weight: 97,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "cdn.shopify.com",
        provider: 1,
        content: ContentType::Jpeg,
        weight: 87,
        fetch: FetchMode::Normal,
    },
    // Table 9 provider-grouped services.
    ServiceDef {
        host: "cdnjs.cloudflare.com",
        provider: 1,
        content: ContentType::Javascript,
        weight: 80,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "ajax.cloudflare.com",
        provider: 1,
        content: ContentType::Javascript,
        weight: 55,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "cdn.jsdelivr.net",
        provider: 1,
        content: ContentType::Javascript,
        weight: 43,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "sni.cloudflaressl.com",
        provider: 1,
        content: ContentType::Other,
        weight: 38,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "d1.cloudfront.net",
        provider: 2,
        content: ContentType::Jpeg,
        weight: 50,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "d2.cloudfront.net",
        provider: 2,
        content: ContentType::Javascript,
        weight: 35,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "static.hotjar.com",
        provider: 2,
        content: ContentType::Javascript,
        weight: 37,
        fetch: FetchMode::XhrFetch,
    },
    ServiceDef {
        host: "assets.s3.amazonaws.com",
        provider: 2,
        content: ContentType::Png,
        weight: 30,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "www.googletagmanager.com",
        provider: 0,
        content: ContentType::TextJavascript,
        weight: 83,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "connect.facebook.net",
        provider: 6,
        content: ContentType::Javascript,
        weight: 48,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "static.fastly.net",
        provider: 4,
        content: ContentType::Css,
        weight: 36,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "assets.akamaized.net",
        provider: 5,
        content: ContentType::Webp,
        weight: 33,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "media.akamai.net",
        provider: 7,
        content: ContentType::Jpeg,
        weight: 20,
        fetch: FetchMode::Normal,
    },
    ServiceDef {
        host: "pixel.ovh.net",
        provider: 8,
        content: ContentType::Gif,
        weight: 12,
        fetch: FetchMode::XhrFetch,
    },
];

/// Number of generated tail services (small analytics/widget/ad
/// hosts, each in its own tail AS).
pub const TAIL_SERVICE_COUNT: u32 = 360;

/// Hostname of tail service `i`.
pub fn tail_service_host(i: u32) -> String {
    format!("tag{i}.widget-net-{}.net", i % 97)
}

/// Popularity weight of tail service `i` (Zipf-flavored decay).
pub fn tail_service_weight(i: u32) -> u32 {
    (40.0 / (1.0 + i as f64 * 0.12)).ceil() as u32
}

/// Content type of tail service `i`.
pub fn tail_service_content(i: u32) -> ContentType {
    match i % 7 {
        0 | 1 => ContentType::Javascript,
        2 => ContentType::Gif,
        3 => ContentType::Json,
        4 => ContentType::Png,
        5 => ContentType::Jpeg,
        _ => ContentType::Plain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_hosts_present_in_order() {
        assert_eq!(SERVICES[0].host, "fonts.gstatic.com");
        assert_eq!(SERVICES[9].host, "cdn.shopify.com");
        // Weights decay through the Table 7 block.
        for w in SERVICES[..10].windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn fonts_are_cors_anonymous() {
        let fonts = SERVICES
            .iter()
            .find(|s| s.host == "fonts.gstatic.com")
            .unwrap();
        assert_eq!(fonts.fetch, FetchMode::CorsAnonymous);
        assert_eq!(fonts.content, ContentType::Woff2);
    }

    #[test]
    fn provider_indices_in_range() {
        for s in SERVICES.iter() {
            assert!(s.provider < 10, "{} provider {}", s.host, s.provider);
        }
    }

    #[test]
    fn tail_services_valid() {
        for i in [0, 1, 100, TAIL_SERVICE_COUNT - 1] {
            let h = tail_service_host(i);
            assert!(origin_dns::DnsName::parse(&h).is_ok(), "{h}");
            assert!(tail_service_weight(i) >= 1);
        }
        // Weight decays.
        assert!(tail_service_weight(0) > tail_service_weight(200));
    }
}
