//! Synthetic web universe and Tranco-like dataset generator.
//!
//! The paper's dataset — 315,796 successfully crawled pages from the
//! Tranco top-500K — is not redistributable, so this crate generates
//! a *statistically matched* synthetic universe instead (DESIGN.md
//! §2 records the substitution argument):
//!
//! - an AS/provider topology whose request-share concentration matches
//!   Table 2 (top-10 ASes ≈ 64% of requests, ~51 ASes for 80%);
//! - a third-party service catalog matching Table 7's top subresource
//!   hostnames and Table 9's provider groupings;
//! - per-site certificates whose SAN-size distribution matches
//!   Table 8's measured column and whose issuer mix matches Table 4;
//! - per-page resource trees whose request counts, content types
//!   (Tables 5–6), protocol mix (Table 3), sharding and AS spread
//!   (Figure 1) match the published marginals.
//!
//! Everything is generated deterministically from a seed: the same
//! [`DatasetConfig`] always yields byte-identical pages, and pages
//! are materialized lazily so half-million-site datasets don't need
//! half a million resident HARs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod dist;
pub mod services;
pub mod universe;

pub use dataset::{Dataset, DatasetConfig, PageScratch, SiteConfig};
pub use services::{ServiceDef, SERVICES};
pub use universe::{ProviderDef, Universe, PROVIDERS};
