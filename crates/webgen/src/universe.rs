//! The provider/AS topology and per-host network state.

use crate::services::SERVICES;
use origin_dns::record::{v4, RecordSet, Rotation};
use origin_dns::{DnsName, ZoneSet};
use origin_intern::FxHashMap;
use origin_netsim::SimRng;
use origin_tls::{Certificate, CertificateAuthority, CtLogSet, KnownIssuer};
use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Arc;

/// A hosting/CDN provider in the synthetic topology.
#[derive(Debug, Clone, Copy)]
pub struct ProviderDef {
    /// Organization name (Table 2 vocabulary).
    pub org: &'static str,
    /// Autonomous system number.
    pub asn: u32,
    /// First octet of the provider's synthetic /8 (for IP→AS
    /// attribution).
    pub net: u8,
    /// Default certificate issuer for sites hosted here.
    pub issuer: KnownIssuer,
    /// Fraction of sites hosted by this provider (Table 9: Cloudflare
    /// 24.74%, Amazon 7.75%, Google 5.09%, …). Zero for pure
    /// third-party-only ASes like Facebook.
    pub hosting_share: f64,
}

/// The top-10 destination ASes of Table 2 (plus their Table 9 hosting
/// shares). Tail ASes are generated on top of these.
pub const PROVIDERS: [ProviderDef; 10] = [
    ProviderDef {
        org: "Google",
        asn: 15169,
        net: 8,
        issuer: KnownIssuer::GoogleTrustServices,
        hosting_share: 0.0509,
    },
    ProviderDef {
        org: "Cloudflare",
        asn: 13335,
        net: 104,
        issuer: KnownIssuer::CloudflareEcc,
        hosting_share: 0.2474,
    },
    ProviderDef {
        org: "Amazon 02",
        asn: 16509,
        net: 52,
        issuer: KnownIssuer::Amazon,
        hosting_share: 0.0775,
    },
    ProviderDef {
        org: "Amazon AES",
        asn: 14618,
        net: 54,
        issuer: KnownIssuer::Amazon,
        hosting_share: 0.022,
    },
    ProviderDef {
        org: "Fastly",
        asn: 54113,
        net: 151,
        issuer: KnownIssuer::DigiCertHighAssurance,
        hosting_share: 0.030,
    },
    ProviderDef {
        org: "Akamai AS",
        asn: 16625,
        net: 23,
        issuer: KnownIssuer::DigiCertSecureServer,
        hosting_share: 0.024,
    },
    ProviderDef {
        org: "Facebook",
        asn: 32934,
        net: 157,
        issuer: KnownIssuer::DigiCertHighAssurance,
        hosting_share: 0.0,
    },
    ProviderDef {
        org: "Akamai Intl. B.V.",
        asn: 20940,
        net: 92,
        issuer: KnownIssuer::DigiCertSecureServer,
        hosting_share: 0.012,
    },
    ProviderDef {
        org: "OVH SAS",
        asn: 16276,
        net: 141,
        issuer: KnownIssuer::LetsEncrypt,
        hosting_share: 0.028,
    },
    ProviderDef {
        org: "Hetzner Online GmbH",
        asn: 24940,
        net: 88,
        issuer: KnownIssuer::LetsEncrypt,
        hosting_share: 0.024,
    },
];

/// Number of synthetic tail ASes (small hosts, regional ISPs,
/// universities) beyond the named providers. The paper observed
/// 13,316 distinct ASes; the tail here is scaled down but preserves
/// the concentration shape (top-10 ≈ 64% of requests).
pub const TAIL_AS_COUNT: u32 = 400;

/// ASN assigned to tail AS index `i`.
pub fn tail_asn(i: u32) -> u32 {
    60_000 + i
}

/// The shared network state of the synthetic web: DNS zones, server
/// certificates, IP→AS attribution, and per-host provider mapping.
pub struct Universe {
    /// Authoritative DNS for everything.
    pub zones: ZoneSet,
    // Hot read-side maps: string-keyed (so suffix walks borrow
    // instead of allocating) with the deterministic Fx hasher. None
    // of these maps is ever iterated, so the hasher swap cannot
    // change any output.
    // Certificates are Arc-shared: the browser pool keeps a reference
    // on every pooled connection, so handing out a refcount bump
    // instead of a deep clone (SAN list + issuer string) is the
    // difference between one allocation per issuance and one per
    // connection.
    certs: FxHashMap<String, Arc<Certificate>>,
    ip_asn: FxHashMap<IpAddr, u32>,
    host_asn: FxHashMap<String, u32>,
    cas: HashMap<KnownIssuer, CertificateAuthority>,
    /// Shared front-end (anycast/VIP) address pools per provider AS.
    /// Big CDNs terminate many hostnames on few addresses — the
    /// phenomenon that makes IP-based coalescing possible at all and
    /// that §5.2's single-address alignment exploits deliberately.
    vip_pools: FxHashMap<u32, Vec<IpAddr>>,
    /// CT logs receiving all issuance.
    pub ct_logs: CtLogSet,
}

impl Universe {
    /// An empty universe with the service catalog's hosts registered.
    pub fn new(rng: &mut SimRng) -> Self {
        let mut u = Universe {
            zones: ZoneSet::new(),
            certs: FxHashMap::default(),
            ip_asn: FxHashMap::default(),
            host_asn: FxHashMap::default(),
            cas: HashMap::new(),
            vip_pools: FxHashMap::default(),
            ct_logs: CtLogSet::default_operators(),
        };
        u.register_services(rng);
        u
    }

    /// Allocate an IP inside a provider's /8 and record its AS.
    pub fn alloc_ip(&mut self, net: u8, asn: u32, rng: &mut SimRng) -> IpAddr {
        loop {
            let ip = v4(
                net,
                rng.range_u64(0, 256) as u8,
                rng.range_u64(0, 256) as u8,
                rng.range_u64(1, 255) as u8,
            );
            if let std::collections::hash_map::Entry::Vacant(e) = self.ip_asn.entry(ip) {
                e.insert(asn);
                return ip;
            }
        }
    }

    /// Number of shared front-end addresses per provider pool.
    pub const VIP_POOL_SIZE: usize = 24;

    /// Draw an address from a provider's shared front-end pool
    /// (created on first use). Distinct hostnames on the same provider
    /// frequently land on the same VIP.
    pub fn provider_vip(&mut self, net: u8, asn: u32, rng: &mut SimRng) -> IpAddr {
        if !self.vip_pools.contains_key(&asn) {
            let pool: Vec<IpAddr> = (0..Self::VIP_POOL_SIZE)
                .map(|_| self.alloc_ip(net, asn, rng))
                .collect();
            self.vip_pools.insert(asn, pool);
        }
        *rng.choose(&self.vip_pools[&asn])
    }

    /// The origin AS of an address (0 if unknown).
    pub fn asn_of_ip(&self, ip: &IpAddr) -> u32 {
        self.ip_asn.get(ip).copied().unwrap_or(0)
    }

    /// The AS serving a hostname (0 if unknown).
    pub fn asn_of_host(&self, host: &DnsName) -> u32 {
        self.host_asn.get(host.as_str()).copied().unwrap_or(0)
    }

    /// The certificate a server presents for connections to `host`.
    /// Falls back through parent domains so sharded subdomains find
    /// their site certificate. The walk borrows successive suffixes
    /// of the name — no per-level allocation.
    pub fn cert_for(&self, host: &DnsName) -> Option<&Certificate> {
        self.cert_shared_ref(host).map(|a| a.as_ref())
    }

    /// [`Universe::cert_for`] returning the shared handle — a clone is
    /// a refcount bump, not a certificate copy.
    pub fn cert_shared(&self, host: &DnsName) -> Option<Arc<Certificate>> {
        self.cert_shared_ref(host).cloned()
    }

    fn cert_shared_ref(&self, host: &DnsName) -> Option<&Arc<Certificate>> {
        let mut cursor = host.as_str();
        loop {
            if let Some(c) = self.certs.get(cursor) {
                return Some(c);
            }
            match cursor.split_once('.') {
                Some((_, rest)) => cursor = rest,
                None => return None,
            }
        }
    }

    /// Replace the certificate presented for `host` (the §5 reissue
    /// path).
    pub fn set_cert(&mut self, host: DnsName, cert: Certificate) {
        self.certs.insert(host.as_str().to_string(), Arc::new(cert));
    }

    /// Register a host: DNS records plus AS attribution.
    pub fn register_host(
        &mut self,
        host: DnsName,
        addresses: Vec<IpAddr>,
        asn: u32,
        rotation: Rotation,
    ) {
        let rs = RecordSet::new(addresses, 300).with_rotation(rotation);
        self.host_asn.insert(host.as_str().to_string(), asn);
        self.zones.insert(host, rs);
    }

    /// Issue a certificate from a provider's CA, logging to CT.
    pub fn issue_cert(
        &mut self,
        issuer: KnownIssuer,
        subject: DnsName,
        extra_sans: &[DnsName],
    ) -> Certificate {
        let ca = self
            .cas
            .entry(issuer)
            .or_insert_with(|| CertificateAuthority::new(issuer));
        ca.issue(subject, extra_sans, 0, &mut self.ct_logs)
            .expect("generator stays within SAN limits")
    }

    /// Total certificates issued across all CAs.
    pub fn certs_issued(&self) -> u64 {
        self.cas.values().map(|ca| ca.issued_count()).sum()
    }

    /// Register the fixed third-party service catalog: every service
    /// hostname gets 2–4 addresses in its provider's space, wildcard
    /// DNS coverage, and a provider-issued certificate (services are
    /// professionally operated; their own certs are in order).
    fn register_services(&mut self, rng: &mut SimRng) {
        // Group service hosts by their certificate parent so services
        // sharing a cert (e.g. *.googlesyndication.com) get one.
        for svc in SERVICES.iter() {
            let provider = &PROVIDERS[svc.provider];
            let host = origin_dns::name::name(svc.host);
            let n_addrs = 2 + (rng.range_u64(0, 3) as usize);
            let addrs: Vec<IpAddr> = (0..n_addrs)
                .map(|_| self.provider_vip(provider.net, provider.asn, rng))
                .collect();
            // Services rotate answers (load balancing) — the behaviour
            // that defeats Chromium's strict IP matching (§2.3).
            self.register_host(host.clone(), addrs, provider.asn, Rotation::RoundRobin);
            let cert = self.issue_cert(
                provider.issuer,
                host.clone(),
                &[origin_dns::name::name(&format!("*.{}", host.registrable()))],
            );
            self.set_cert(host, cert);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    fn universe() -> (Universe, SimRng) {
        let mut rng = SimRng::seed_from_u64(0x0516);
        let u = Universe::new(&mut rng);
        (u, rng)
    }

    #[test]
    fn services_registered_with_dns_and_certs() {
        let (mut u, mut rng) = universe();
        let host = name("cdnjs.cloudflare.com");
        let ans = u.zones.resolve(&host, &mut rng).expect("service resolves");
        assert!(!ans.addresses.is_empty());
        assert_eq!(u.asn_of_host(&host), 13335);
        for ip in &ans.addresses {
            assert_eq!(u.asn_of_ip(ip), 13335);
        }
        let cert = u.cert_for(&host).expect("service cert");
        assert!(cert.covers(&host));
    }

    #[test]
    fn cert_fallback_walks_parents() {
        let (mut u, _) = universe();
        let cert = u.issue_cert(
            KnownIssuer::LetsEncrypt,
            name("site.com"),
            &[name("*.site.com")],
        );
        u.set_cert(name("site.com"), cert);
        let c = u.cert_for(&name("static.site.com")).expect("fallback cert");
        assert_eq!(c.subject, name("site.com"));
        assert!(u.cert_for(&name("unrelated.net")).is_none());
    }

    #[test]
    fn alloc_ip_unique_and_attributed() {
        let (mut u, mut rng) = universe();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let ip = u.alloc_ip(8, 15169, &mut rng);
            assert!(seen.insert(ip), "duplicate ip {ip}");
            assert_eq!(u.asn_of_ip(&ip), 15169);
        }
    }

    #[test]
    fn provider_table_matches_paper_top10() {
        assert_eq!(PROVIDERS[0].org, "Google");
        assert_eq!(PROVIDERS[0].asn, 15169);
        assert_eq!(PROVIDERS[1].asn, 13335);
        assert!((PROVIDERS[1].hosting_share - 0.2474).abs() < 1e-9);
        assert_eq!(PROVIDERS.len(), 10);
        // Facebook hosts no third-party sites.
        assert_eq!(PROVIDERS[6].hosting_share, 0.0);
    }

    #[test]
    fn certs_are_ct_logged() {
        let (u, _) = universe();
        assert!(u.certs_issued() > 0);
        assert_eq!(u.ct_logs.total_entries(), u.certs_issued() * 3);
    }
}
