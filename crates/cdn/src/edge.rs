//! An edge server terminating real `origin-h2` connections.
//!
//! The paper's deployment integrated "a custom connection-termination
//! process, with ORIGIN support, into the production environment".
//! [`EdgeServer`] is that process: it accepts sans-IO HTTP/2
//! connections, presents the per-customer certificate, advertises the
//! treatment's origin set on stream 0, serves configured authorities,
//! and answers `421 Misdirected Request` for anything else.

use crate::sample::{SampleSite, Treatment, CONTROL_DECOY_HOST, THIRD_PARTY_HOST};
use origin_h2::conn::{authority_of, ServerConfig};
use origin_h2::{Connection, Event, OriginSet, Settings};
use origin_netsim::{FaultProfile, SimRng};
use origin_tls::Certificate;

/// One edge process configured for a sample site's connection.
pub struct EdgeServer {
    /// The underlying protocol endpoint.
    pub conn: Connection,
    /// The certificate presented during the (modelled) TLS handshake.
    pub cert: Certificate,
    /// Requests served so far.
    pub served: u64,
    /// 421 responses issued.
    pub misdirected: u64,
    /// The site's primary authority — never misdirected, even degraded.
    primary: String,
    /// Degraded-mode state: the injected profile and its dedicated RNG
    /// (`None` for a healthy edge).
    degraded: Option<(FaultProfile, SimRng)>,
}

impl EdgeServer {
    /// Configure an edge connection for `site`: the site's reissued
    /// certificate, an origin set matching the treatment (when
    /// `origin_frames` is on), and an authority list covering the
    /// site plus the third party (the §5.3 deployment serves the
    /// third party from the same process; the control decoy is
    /// *advertised but unreachable*, exercising fail-open behaviour).
    pub fn for_site(site: &SampleSite, origin_frames: bool) -> EdgeServer {
        let mut authorized = vec![site.host.to_string(), THIRD_PARTY_HOST.to_string()];
        // Wildcard shard coverage.
        authorized.push(format!("www.{}", site.host));
        let origin_set = origin_frames.then(|| {
            let extra = match site.treatment {
                Treatment::Experiment => THIRD_PARTY_HOST,
                Treatment::Control => CONTROL_DECOY_HOST,
            };
            OriginSet::from_hosts([site.host.as_str(), extra])
        });
        let conn = Connection::server(ServerConfig {
            settings: Settings::default(),
            origin_set,
            authorized,
        });
        EdgeServer {
            conn,
            cert: site.cert.clone(),
            served: 0,
            misdirected: 0,
            primary: site.host.to_string(),
            degraded: None,
        }
    }

    /// Put the edge into the degraded state the loader's 421 recovery
    /// exists for: routing inside the CDN has gone stale, so requests
    /// for *coalesced* (non-primary) authorities land on a process
    /// that answers `421 Misdirected Request` at the profile's
    /// per-authority skewed rate ([`FaultProfile::h421_for`]) even
    /// though the authority is nominally configured. The primary
    /// authority is always served — a client on a dedicated
    /// connection never sees the fault.
    pub fn degrade(&mut self, profile: FaultProfile, seed: u64) {
        self.degraded = Some((profile, SimRng::seed_from_u64(seed)));
    }

    /// Would this edge misdirect a request for `authority` right now?
    /// Draws from the degraded-mode RNG, so calls consume fate.
    fn misdirects(&mut self, authority: &str) -> bool {
        if authority.eq_ignore_ascii_case(&self.primary) {
            return false;
        }
        match &mut self.degraded {
            Some((profile, rng)) => rng.chance(profile.h421_for(authority)),
            None => false,
        }
    }

    /// Feed client bytes; serve any complete requests; return the
    /// protocol events observed.
    pub fn handle(&mut self, bytes: &[u8]) -> Result<Vec<Event>, origin_h2::H2Error> {
        let events = self.conn.recv(bytes)?;
        for ev in &events {
            if let Event::Headers {
                stream, headers, ..
            } = ev
            {
                match authority_of(headers) {
                    Some(authority) if self.conn.is_authorized(authority) => {
                        if self.misdirects(authority) {
                            self.conn.send_misdirected(*stream);
                            self.misdirected += 1;
                        } else {
                            self.conn.send_response(*stream, 200, b"{\"ok\":true}");
                            self.served += 1;
                        }
                    }
                    _ => {
                        self.conn.send_misdirected(*stream);
                        self.misdirected += 1;
                    }
                }
            }
        }
        Ok(events)
    }

    /// Drain bytes for the client.
    pub fn take_outgoing(&mut self) -> bytes::Bytes {
        self.conn.take_outgoing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleGroup;
    use origin_h2::conn::{request_headers, status_of};
    use origin_h2::Settings;
    use origin_netsim::SimRng;

    fn site(treatment: Treatment) -> SampleSite {
        let mut rng = SimRng::seed_from_u64(0xED6E);
        let g = SampleGroup::build(50, &mut rng);
        g.sites
            .into_iter()
            .find(|s| s.treatment == treatment)
            .expect("site")
    }

    /// Pump client and edge to quiescence.
    fn pump(client: &mut Connection, edge: &mut EdgeServer) -> Vec<Event> {
        let mut client_events = Vec::new();
        loop {
            let c_out = client.take_outgoing();
            let e_out = edge.take_outgoing();
            if c_out.is_empty() && e_out.is_empty() {
                break;
            }
            if !c_out.is_empty() {
                edge.handle(&c_out).expect("edge recv");
            }
            if !e_out.is_empty() {
                client_events.extend(client.recv(&e_out).expect("client recv"));
            }
        }
        client_events
    }

    #[test]
    fn experiment_edge_advertises_third_party_on_the_wire() {
        let s = site(Treatment::Experiment);
        let mut edge = EdgeServer::for_site(&s, true);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        let events = pump(&mut client, &mut edge);
        let origins = events
            .iter()
            .find_map(|e| match e {
                Event::OriginReceived { origins } => Some(origins.clone()),
                _ => None,
            })
            .expect("ORIGIN frame received");
        assert!(origins.contains(&format!("https://{THIRD_PARTY_HOST}")));
        assert!(client.origin_allows(THIRD_PARTY_HOST));
        // The client also checks the certificate before coalescing.
        assert!(edge.cert.covers(&origin_dns::name::name(THIRD_PARTY_HOST)));
    }

    #[test]
    fn control_edge_advertises_decoy_only() {
        let s = site(Treatment::Control);
        let mut edge = EdgeServer::for_site(&s, true);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        pump(&mut client, &mut edge);
        assert!(!client.origin_allows(THIRD_PARTY_HOST));
        assert!(client.origin_allows(CONTROL_DECOY_HOST));
    }

    #[test]
    fn coalesced_request_is_served_on_same_connection() {
        let s = site(Treatment::Experiment);
        let mut edge = EdgeServer::for_site(&s, true);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        pump(&mut client, &mut edge);
        // Root request, then a coalesced third-party request.
        client.send_request(&request_headers("GET", s.host.as_str(), "/"), true);
        client.send_request(
            &request_headers("GET", THIRD_PARTY_HOST, "/ajax/libs/x.js"),
            true,
        );
        let events = pump(&mut client, &mut edge);
        let statuses: Vec<u16> = events
            .iter()
            .filter_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .collect();
        assert_eq!(statuses, vec![200, 200]);
        assert_eq!(edge.served, 2);
        assert_eq!(edge.misdirected, 0);
        assert_eq!(client.streams_opened(), 2);
    }

    #[test]
    fn unconfigured_authority_gets_421() {
        let s = site(Treatment::Control);
        let mut edge = EdgeServer::for_site(&s, true);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        pump(&mut client, &mut edge);
        // The decoy is advertised but not actually served: a client
        // that tried to use it gets 421 and must fail open.
        client.send_request(&request_headers("GET", CONTROL_DECOY_HOST, "/x"), true);
        let events = pump(&mut client, &mut edge);
        let status = events
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .expect("response");
        assert_eq!(status, 421);
        assert_eq!(edge.misdirected, 1);
    }

    #[test]
    fn degraded_edge_misdirects_coalesced_authorities_only() {
        let s = site(Treatment::Experiment);
        let mut edge = EdgeServer::for_site(&s, true);
        // h421=1 with the maximum skew still clamps to certainty: every
        // coalesced request misdirects, the primary never does.
        edge.degrade(FaultProfile::parse("h421=1").unwrap(), 0xDE6);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        pump(&mut client, &mut edge);
        client.send_request(&request_headers("GET", s.host.as_str(), "/"), true);
        client.send_request(&request_headers("GET", THIRD_PARTY_HOST, "/lib.js"), true);
        let events = pump(&mut client, &mut edge);
        let statuses: Vec<u16> = events
            .iter()
            .filter_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .collect();
        assert_eq!(statuses, vec![200, 421]);
        assert_eq!((edge.served, edge.misdirected), (1, 1));
    }

    #[test]
    fn misdirected_client_replays_on_a_dedicated_connection() {
        // The full wire-level recovery the loader models: a coalesced
        // request draws 421 from a degraded edge, so the client evicts
        // the mapping, opens a dedicated connection to the authority's
        // own edge, and replays — same bytes, fresh stream, 200.
        let s = site(Treatment::Experiment);
        let mut edge = EdgeServer::for_site(&s, true);
        edge.degrade(FaultProfile::parse("h421=1").unwrap(), 0xDE6);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        pump(&mut client, &mut edge);
        let headers = request_headers("GET", THIRD_PARTY_HOST, "/ajax/libs/x.js");
        client.send_request(&headers, true);
        let events = pump(&mut client, &mut edge);
        let status = events
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .expect("421 response");
        assert_eq!(status, 421);

        // Recovery: a dedicated connection, authority as its primary.
        let mut dedicated_site = s.clone();
        dedicated_site.host = origin_dns::name::name(THIRD_PARTY_HOST);
        let mut dedicated = EdgeServer::for_site(&dedicated_site, true);
        // Even a degraded edge serves its own primary authority.
        dedicated.degrade(FaultProfile::parse("h421=1").unwrap(), 0xDE6);
        let mut retry = Connection::client(THIRD_PARTY_HOST, Settings::default());
        pump(&mut retry, &mut dedicated);
        retry.send_request(&headers, true);
        let events = pump(&mut retry, &mut dedicated);
        let status = events
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .expect("replay response");
        assert_eq!(status, 200);
        assert_eq!(dedicated.misdirected, 0);
    }

    #[test]
    fn pre_deployment_edge_sends_no_origin_frame() {
        let s = site(Treatment::Experiment);
        let mut edge = EdgeServer::for_site(&s, false);
        let mut client = Connection::client(s.host.as_str(), Settings::default());
        let events = pump(&mut client, &mut edge);
        assert!(!events
            .iter()
            .any(|e| matches!(e, Event::OriginReceived { .. })));
        assert_eq!(edge.conn.origin_frames, 0);
    }
}
