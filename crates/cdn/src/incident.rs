//! The §6.7 non-compliant middlebox incident.
//!
//! During the ORIGIN deployment, an antivirus vendor's network agent
//! tore down TLS connections carrying the unknown ORIGIN frame type
//! instead of ignoring it as RFC 7540 §4.1 requires. The failure was
//! observed as elevated failed-connection rates on experiment sites,
//! diagnosed collaboratively, disclosure was limited, testing paused,
//! and the vendor shipped a fix months later.
//!
//! This module reproduces the mechanics: a population of clients,
//! some behind a non-compliant middlebox, connecting to edges that
//! may or may not send ORIGIN frames.

use crate::sample::{SampleGroup, Treatment};
use origin_netsim::fault::{
    CompliantMiddlebox, Middlebox, MiddleboxVerdict, NonCompliantMiddlebox,
};
use origin_netsim::SimRng;

/// The ORIGIN frame's wire type code (RFC 8336).
const ORIGIN_FRAME_TYPE: u8 = 0x0c;

/// Parameters of the incident scenario.
#[derive(Debug, Clone)]
pub struct MiddleboxIncident {
    /// Fraction of clients whose traffic crosses the buggy agent.
    pub affected_client_share: f64,
    /// Whether the vendor's fix has shipped (§6.7: September 2022).
    pub vendor_fixed: bool,
}

impl Default for MiddleboxIncident {
    fn default() -> Self {
        MiddleboxIncident {
            affected_client_share: 0.03,
            vendor_fixed: false,
        }
    }
}

/// Connection-level outcome counts for one simulated population.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentReport {
    /// Connections attempted.
    pub attempts: u64,
    /// Connections torn down by the middlebox.
    pub torn_down: u64,
    /// Connections that completed.
    pub completed: u64,
}

impl IncidentReport {
    /// Failed-connection rate.
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.torn_down as f64 / self.attempts as f64
        }
    }
}

impl MiddleboxIncident {
    /// Simulate `connections` client connections to the sample group
    /// with ORIGIN frames `enabled` server-side. Returns per-arm
    /// reports `(experiment, control)`.
    ///
    /// Note: both arms send *an* ORIGIN frame when the deployment is
    /// live (the control frame carries the decoy), so the §6.7 bug
    /// hits both arms equally — exactly how the incident surfaced as
    /// a deployment-wide signal rather than a treatment effect.
    pub fn simulate(
        &self,
        group: &SampleGroup,
        connections: u64,
        origin_enabled: bool,
        rng: &mut SimRng,
    ) -> (IncidentReport, IncidentReport) {
        let buggy = NonCompliantMiddlebox::default();
        let clean = CompliantMiddlebox;
        let mut exp = IncidentReport::default();
        let mut ctl = IncidentReport::default();
        for _ in 0..connections {
            let site = &group.sites[rng.index(group.sites.len())];
            let report = match site.treatment {
                Treatment::Experiment => &mut exp,
                Treatment::Control => &mut ctl,
            };
            report.attempts += 1;
            let behind_buggy = !self.vendor_fixed && rng.chance(self.affected_client_share);
            // Frames crossing the path during connection setup: the
            // server's SETTINGS (0x04) always; ORIGIN (0x0c) when the
            // deployment is live.
            let mut verdict = MiddleboxVerdict::Forward;
            let frames: &[u8] = if origin_enabled {
                &[0x04, ORIGIN_FRAME_TYPE]
            } else {
                &[0x04]
            };
            for &ft in frames {
                let v = if behind_buggy {
                    buggy.inspect(ft)
                } else {
                    clean.inspect(ft)
                };
                if v == MiddleboxVerdict::TearDown {
                    verdict = v;
                    break;
                }
            }
            if verdict == MiddleboxVerdict::TearDown {
                report.torn_down += 1;
            } else {
                report.completed += 1;
            }
        }
        (exp, ctl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(0x1bc1);
        SampleGroup::build(500, &mut rng)
    }

    #[test]
    fn no_origin_no_failures() {
        let g = group();
        let mut rng = SimRng::seed_from_u64(1);
        let inc = MiddleboxIncident::default();
        let (exp, ctl) = inc.simulate(&g, 20_000, false, &mut rng);
        assert_eq!(exp.torn_down, 0);
        assert_eq!(ctl.torn_down, 0);
        assert_eq!(exp.completed, exp.attempts);
    }

    #[test]
    fn origin_deployment_surfaces_the_bug_in_both_arms() {
        let g = group();
        let mut rng = SimRng::seed_from_u64(2);
        let inc = MiddleboxIncident {
            affected_client_share: 0.03,
            vendor_fixed: false,
        };
        let (exp, ctl) = inc.simulate(&g, 40_000, true, &mut rng);
        // Failure rate ≈ affected share, in both arms.
        assert!(
            (0.02..=0.045).contains(&exp.failure_rate()),
            "{}",
            exp.failure_rate()
        );
        assert!(
            (0.02..=0.045).contains(&ctl.failure_rate()),
            "{}",
            ctl.failure_rate()
        );
    }

    #[test]
    fn vendor_fix_clears_failures() {
        let g = group();
        let mut rng = SimRng::seed_from_u64(3);
        let inc = MiddleboxIncident {
            affected_client_share: 0.03,
            vendor_fixed: true,
        };
        let (exp, ctl) = inc.simulate(&g, 20_000, true, &mut rng);
        assert_eq!(exp.torn_down + ctl.torn_down, 0);
    }

    #[test]
    fn failure_rate_scales_with_prevalence() {
        let g = group();
        let mut rng = SimRng::seed_from_u64(4);
        let low = MiddleboxIncident {
            affected_client_share: 0.01,
            vendor_fixed: false,
        };
        let high = MiddleboxIncident {
            affected_client_share: 0.20,
            vendor_fixed: false,
        };
        let (e1, c1) = low.simulate(&g, 30_000, true, &mut rng);
        let (e2, c2) = high.simulate(&g, 30_000, true, &mut rng);
        let total_low = (e1.torn_down + c1.torn_down) as f64 / (e1.attempts + c1.attempts) as f64;
        let total_high = (e2.torn_down + c2.torn_down) as f64 / (e2.attempts + c2.attempts) as f64;
        assert!(total_high > total_low * 5.0);
    }
}
