//! Server-side passive measurement (§5.2 / §5.3).
//!
//! The paper's pipeline sampled 1% of HTTP requests at the edge and
//! logged, per request: a connection identifier, the Referer
//! truncated to its domain, the treatment label, the arrival order
//! within the connection, and a flag bit set when the HTTP `Host`
//! differed from the TLS SNI — the signal that a request was
//! *coalesced* onto a connection opened for another hostname.
//!
//! This module reproduces the pipeline as a concurrent system: edge
//! worker threads process visits and push sampled log records over a
//! channel to a collector, exactly the shape of a production logging
//! path.

use crate::env::DeploymentMode;
use crate::sample::{SampleGroup, Treatment, THIRD_PARTY_HOST};
use origin_netsim::SimRng;
use origin_web::FetchMode;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

/// One sampled log record (the paper's privacy-reduced schema).
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Unique connection identifier.
    pub conn_id: u64,
    /// Referer truncated at the domain (no subpages — §5.1 privacy).
    pub referer_domain: String,
    /// TLS SNI of the carrying connection.
    pub sni: String,
    /// HTTP Host requested.
    pub host: String,
    /// Arrival order of this request within its connection (1-based).
    pub arrival_order: u32,
    /// Treatment arm of the referring site.
    pub treatment: Treatment,
    /// The §5.2 flag bit: HTTP Host ≠ TLS SNI.
    pub host_differs_from_sni: bool,
    /// Event time in seconds from the window start.
    pub t_secs: f64,
}

/// Traffic-model parameters for the visit simulator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Total visits across the window.
    pub visits: u64,
    /// Measurement window length in seconds.
    pub window_secs: f64,
    /// Request sampling rate (paper: 1%).
    pub sample_rate: f64,
    /// Share of clients whose stack coalesces given the §5.2 IP
    /// alignment (any IP-matching HTTP/2 browser).
    pub ip_capable_share: f64,
    /// Share of clients supporting client-side ORIGIN (Firefox only;
    /// passive §5.3 data was additionally filtered to Firefox UAs, so
    /// this is the in-population support share after filtering).
    pub origin_capable_share: f64,
    /// Worker threads in the pipeline.
    pub workers: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            visits: 200_000,
            window_secs: 14.0 * 86_400.0,
            sample_rate: 0.01,
            ip_capable_share: 0.80,
            origin_capable_share: 0.75,
            workers: 4,
        }
    }
}

/// Aggregated pipeline output.
#[derive(Debug, Clone, Default)]
pub struct PassiveReport {
    /// Sampled log records kept.
    pub sampled_records: u64,
    /// Distinct new TLS connections to the third party attributed to
    /// experiment-arm referers.
    pub experiment_tp_connections: u64,
    /// Same for control-arm referers.
    pub control_tp_connections: u64,
    /// Distinct coalesced connections observed (flag bit set, arrival
    /// order ≥ 2, each connection counted once).
    pub coalesced_connections: u64,
    /// Visits processed per arm (for rate normalization).
    pub experiment_visits: u64,
    /// Control-arm visits.
    pub control_visits: u64,
}

impl PassiveReport {
    /// The headline number: relative reduction in the rate of new TLS
    /// connections to the third party, experiment vs control
    /// (paper: 56% for §5.2, ≈50% for §5.3).
    pub fn tp_connection_reduction(&self) -> f64 {
        if self.control_tp_connections == 0 || self.control_visits == 0 {
            return 0.0;
        }
        let exp_rate = self.experiment_tp_connections as f64 / self.experiment_visits.max(1) as f64;
        let ctl_rate = self.control_tp_connections as f64 / self.control_visits as f64;
        1.0 - exp_rate / ctl_rate
    }

    /// Emit the report's aggregates as trace instants on a dedicated
    /// logical process. The pipeline's worker/collector interleaving
    /// is nondeterministic, so the *aggregates* — which are not — are
    /// traced post-hoc rather than per record; whole-run traces stay
    /// byte-identical across thread counts.
    pub fn record_trace(&self, tracer: &mut origin_trace::Tracer, pid: u64) {
        tracer.begin_visit(pid, "cdn passive pipeline");
        tracer.set_now_us(0);
        tracer.instant(
            "passive.sampled_records",
            "cdn",
            vec![("count", self.sampled_records.into())],
        );
        tracer.instant(
            "passive.tp_connections",
            "cdn",
            vec![
                ("experiment", self.experiment_tp_connections.into()),
                ("control", self.control_tp_connections.into()),
            ],
        );
        tracer.instant(
            "passive.coalesced_connections",
            "cdn",
            vec![("count", self.coalesced_connections.into())],
        );
    }

    /// Export the pipeline's counters into a metrics registry under
    /// `cdn.passive.*`.
    pub fn record_into(&self, metrics: &mut origin_metrics::Registry) {
        metrics.add("cdn.passive.sampled_records", self.sampled_records);
        metrics.add(
            "cdn.passive.experiment_tp_connections",
            self.experiment_tp_connections,
        );
        metrics.add(
            "cdn.passive.control_tp_connections",
            self.control_tp_connections,
        );
        metrics.add(
            "cdn.passive.coalesced_connections",
            self.coalesced_connections,
        );
        metrics.add(
            "cdn.passive.visits",
            self.experiment_visits + self.control_visits,
        );
    }
}

/// The passive pipeline: visit simulation + sampling + collection.
pub struct PassivePipeline {
    /// Deployment under measurement.
    pub mode: DeploymentMode,
    /// Traffic model.
    pub config: TrafficConfig,
}

impl PassivePipeline {
    /// Build for a deployment mode with default traffic.
    pub fn new(mode: DeploymentMode) -> Self {
        PassivePipeline {
            mode,
            config: TrafficConfig::default(),
        }
    }

    /// Does a single visit coalesce its third-party requests?
    pub(crate) fn visit_coalesces(
        &self,
        treatment: Treatment,
        fetch: FetchMode,
        rng: &mut SimRng,
    ) -> bool {
        if treatment != Treatment::Experiment {
            return false; // control cert/ORIGIN never authorizes the third party
        }
        if fetch != FetchMode::Normal {
            return false; // §5.3: anonymous + XHR/fetch pools don't coalesce
        }
        match self.mode {
            DeploymentMode::Baseline => false,
            DeploymentMode::IpAligned => rng.chance(self.config.ip_capable_share),
            DeploymentMode::OriginFrames => rng.chance(self.config.origin_capable_share),
        }
    }

    /// Run the pipeline over the sample group. Deterministic for a
    /// given seed regardless of worker count (visits are partitioned
    /// by index and each visit derives its own RNG).
    pub fn run(&self, group: &SampleGroup, seed: u64) -> PassiveReport {
        let report = Arc::new(Mutex::new(PassiveReport::default()));
        let (tx, rx) = mpsc::channel::<LogRecord>();

        // Collector thread: consumes sampled records and aggregates —
        // the paper's restricted-access query side.
        let collector_report = Arc::clone(&report);
        let collector = thread::spawn(move || {
            let mut seen_coalesced_conns = std::collections::HashSet::new();
            for rec in rx {
                let mut r = collector_report
                    .lock()
                    .expect("passive report lock poisoned by a worker panic");
                r.sampled_records += 1;
                if rec.host == THIRD_PARTY_HOST {
                    if rec.host_differs_from_sni {
                        // Coalesced request: count the connection once.
                        if rec.arrival_order >= 2 && seen_coalesced_conns.insert(rec.conn_id) {
                            r.coalesced_connections += 1;
                        }
                    } else if rec.arrival_order == 1 {
                        // First request on a dedicated third-party
                        // connection = one new TLS connection.
                        match rec.treatment {
                            Treatment::Experiment => r.experiment_tp_connections += 1,
                            Treatment::Control => r.control_tp_connections += 1,
                        }
                    }
                }
            }
        });

        // Edge workers: partition visits by index.
        let visits = self.config.visits;
        let workers = self.config.workers.max(1);
        thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let report = Arc::clone(&report);
                let group_sites = &group.sites;
                let pipeline = &*self;
                scope.spawn(move || {
                    let mut conn_counter: u64 = (w as u64) << 48;
                    for v in (w as u64..visits).step_by(workers) {
                        let mut rng =
                            SimRng::seed_from_u64(seed ^ v.wrapping_mul(0x9e3779b97f4a7c15));
                        let site = &group_sites[rng.index(group_sites.len())];
                        let t = rng.unit() * pipeline.config.window_secs;
                        {
                            let mut r = report
                                .lock()
                                .expect("passive report lock poisoned by a worker panic");
                            match site.treatment {
                                Treatment::Experiment => r.experiment_visits += 1,
                                Treatment::Control => r.control_visits += 1,
                            }
                        }
                        // The site connection itself.
                        conn_counter += 1;
                        let site_conn = conn_counter;
                        let coalesces = pipeline.visit_coalesces(
                            site.treatment,
                            site.third_party_fetch,
                            &mut rng,
                        );
                        let mut site_arrivals: u32 = 1;
                        let emit = |rec: LogRecord, rng: &mut SimRng| {
                            if rng.chance(pipeline.config.sample_rate) {
                                let _ = tx.send(rec);
                            }
                        };
                        emit(
                            LogRecord {
                                conn_id: site_conn,
                                referer_domain: site.host.to_string(),
                                sni: site.host.to_string(),
                                host: site.host.to_string(),
                                arrival_order: site_arrivals,
                                treatment: site.treatment,
                                host_differs_from_sni: false,
                                t_secs: t,
                            },
                            &mut rng,
                        );
                        // Third-party requests.
                        if coalesces {
                            for _ in 0..site.third_party_requests {
                                site_arrivals += 1;
                                emit(
                                    LogRecord {
                                        conn_id: site_conn,
                                        referer_domain: site.host.to_string(),
                                        sni: site.host.to_string(),
                                        host: THIRD_PARTY_HOST.to_string(),
                                        arrival_order: site_arrivals,
                                        treatment: site.treatment,
                                        host_differs_from_sni: true,
                                        t_secs: t,
                                    },
                                    &mut rng,
                                );
                            }
                        } else {
                            conn_counter += 1;
                            let tp_conn = conn_counter;
                            for k in 0..site.third_party_requests {
                                emit(
                                    LogRecord {
                                        conn_id: tp_conn,
                                        referer_domain: site.host.to_string(),
                                        sni: THIRD_PARTY_HOST.to_string(),
                                        host: THIRD_PARTY_HOST.to_string(),
                                        arrival_order: k + 1,
                                        treatment: site.treatment,
                                        host_differs_from_sni: false,
                                        t_secs: t,
                                    },
                                    &mut rng,
                                );
                            }
                        }
                    }
                    drop(tx);
                });
            }
            drop(tx);
        });
        collector.join().expect("collector thread");
        Arc::try_unwrap(report)
            .expect("all workers done")
            .into_inner()
            .expect("report lock not poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(0x9A55);
        SampleGroup::build(2_000, &mut rng)
    }

    fn config(visits: u64) -> TrafficConfig {
        TrafficConfig {
            visits,
            sample_rate: 0.05,
            ..Default::default()
        }
    }

    #[test]
    fn ip_alignment_reduces_tp_connections_substantially() {
        let g = group();
        let mut p = PassivePipeline::new(DeploymentMode::IpAligned);
        p.config = config(60_000);
        let r = p.run(&g, 1);
        let red = r.tp_connection_reduction();
        // Paper §5.2: 56% reduction across all browsers.
        assert!((0.45..=0.68).contains(&red), "reduction {red}");
        assert!(r.coalesced_connections > 0);
        assert!(r.sampled_records > 0);
    }

    #[test]
    fn origin_mode_reduces_about_half() {
        let g = group();
        let mut p = PassivePipeline::new(DeploymentMode::OriginFrames);
        p.config = config(60_000);
        let r = p.run(&g, 2);
        let red = r.tp_connection_reduction();
        // Paper §5.3: ≈50% (capped by XHR/fetch + crossorigin usage).
        assert!((0.40..=0.62).contains(&red), "reduction {red}");
    }

    #[test]
    fn baseline_shows_no_reduction() {
        let g = group();
        let mut p = PassivePipeline::new(DeploymentMode::Baseline);
        p.config = config(40_000);
        let r = p.run(&g, 3);
        let red = r.tp_connection_reduction();
        assert!(red.abs() < 0.08, "baseline reduction {red}");
        assert_eq!(r.coalesced_connections, 0);
    }

    #[test]
    fn sampling_rate_controls_volume() {
        let g = group();
        let mut p = PassivePipeline::new(DeploymentMode::Baseline);
        p.config = TrafficConfig {
            visits: 40_000,
            sample_rate: 0.01,
            ..Default::default()
        };
        let r1 = p.run(&g, 4);
        p.config.sample_rate = 0.10;
        let r10 = p.run(&g, 4);
        assert!(r10.sampled_records > r1.sampled_records * 5);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = group();
        let mut p = PassivePipeline::new(DeploymentMode::OriginFrames);
        p.config = TrafficConfig {
            visits: 20_000,
            workers: 1,
            ..config(20_000)
        };
        let a = p.run(&g, 5);
        p.config.workers = 8;
        let b = p.run(&g, 5);
        // Aggregates identical: per-visit RNG derivation is
        // partition-independent.
        assert_eq!(a.experiment_tp_connections, b.experiment_tp_connections);
        assert_eq!(a.control_tp_connections, b.control_tp_connections);
        assert_eq!(a.sampled_records, b.sampled_records);
    }
}
