//! Per-edge ORIGIN rollout state for the serving engine's live A/B.
//!
//! The paper's §5.3 deployment flipped ORIGIN support on for a fixed
//! treatment group before measurement started. A production rollout is
//! messier: support ramps across the edge fleet *while traffic is
//! being served*, and the interesting series is per-arm behaviour as
//! the ramp progresses (DESIGN.md §16). [`Rollout`] models that ramp
//! as a deterministic pure function of `(edge, time)` so every worker
//! shard — and every rerun — sees the identical assignment without
//! any shared mutable state.

use origin_netsim::{SimDuration, SimTime};

/// SplitMix64 finalizer, used as a stateless per-edge hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A linear ramp of ORIGIN-frame advertisement across the edge fleet.
///
/// Each edge hashes to a stable "eagerness" score in `[0, 1)`; an edge
/// advertises ORIGIN at time `t` iff its score falls below the current
/// rollout share `share(t) = target · min(1, t / ramp)`. Because the
/// share is non-decreasing, edges join the treatment arm and never
/// leave it — matching how real fleet config pushes behave and keeping
/// per-arm series monotone in membership.
#[derive(Debug, Clone, Copy)]
pub struct Rollout {
    /// Final fraction of edges advertising ORIGIN, in `[0, 1]`.
    target: f64,
    /// Sim time over which the share ramps from 0 to `target`; a zero
    /// ramp means the full target is live from `t = 0`.
    ramp: SimDuration,
    /// Seed decorrelating edge assignment from every other stream.
    seed: u64,
}

impl Rollout {
    /// Create a rollout reaching `target` share over `ramp`. Panics
    /// when `target` is outside `[0, 1]`.
    pub fn new(target: f64, ramp: SimDuration, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&target),
            "rollout target must be in [0, 1]"
        );
        Rollout { target, ramp, seed }
    }

    /// The rollout share at `t`: the fraction of the fleet advertising
    /// ORIGIN.
    pub fn share(&self, t: SimTime) -> f64 {
        if self.target == 0.0 {
            return 0.0;
        }
        let ramp_us = self.ramp.as_micros();
        if ramp_us == 0 {
            return self.target;
        }
        let progress = (t.as_micros() as f64 / ramp_us as f64).min(1.0);
        self.target * progress
    }

    /// The final rollout share once the ramp completes.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Whether edge `edge` advertises ORIGIN at time `t`.
    ///
    /// Pure in `(edge, t)`: no state, so any shard, thread, or rerun
    /// computes the identical assignment. Monotone in `t`: once an
    /// edge's score clears the share it stays in the treatment arm.
    pub fn origin_enabled(&self, edge: u32, t: SimTime) -> bool {
        if self.target == 0.0 {
            return false;
        }
        let score = mix(self.seed ^ u64::from(edge)) as f64 / (u64::MAX as f64 + 1.0);
        score < self.share(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_ramps_linearly_to_target() {
        let r = Rollout::new(0.5, SimDuration::from_secs(100), 1);
        assert_eq!(r.share(SimTime::ZERO), 0.0);
        let mid = r.share(SimTime::from_secs(50));
        assert!((mid - 0.25).abs() < 1e-12);
        assert_eq!(r.share(SimTime::from_secs(100)), 0.5);
        assert_eq!(r.share(SimTime::from_secs(5_000)), 0.5, "clamps at target");
    }

    #[test]
    fn zero_ramp_is_live_immediately() {
        let r = Rollout::new(0.3, SimDuration::ZERO, 1);
        assert_eq!(r.share(SimTime::ZERO), 0.3);
    }

    #[test]
    fn membership_is_monotone_per_edge() {
        let r = Rollout::new(1.0, SimDuration::from_secs(1_000), 0x0517);
        for edge in 0..200u32 {
            let mut joined = false;
            for s in 0..=20u64 {
                let on = r.origin_enabled(edge, SimTime::from_secs(s * 50));
                assert!(on || !joined, "edge {edge} left the treatment arm");
                joined |= on;
            }
            assert!(joined, "full rollout must eventually cover edge {edge}");
        }
    }

    #[test]
    fn final_coverage_tracks_target() {
        let r = Rollout::new(0.4, SimDuration::from_secs(10), 0xFEED);
        let t = SimTime::from_secs(10);
        let on = (0..10_000u32).filter(|&e| r.origin_enabled(e, t)).count();
        // Binomial(10k, 0.4): σ ≈ 49, allow ±5σ.
        assert!((3_750..4_250).contains(&on), "coverage {on}");
    }

    #[test]
    fn disabled_rollout_never_advertises() {
        let r = Rollout::new(0.0, SimDuration::ZERO, 9);
        assert!(!r.origin_enabled(0, SimTime::from_secs(1_000_000)));
        assert_eq!(r.share(SimTime::from_secs(1_000_000)), 0.0);
    }
}
