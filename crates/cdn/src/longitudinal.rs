//! Figure 8: longitudinal view of new TLS connections to the
//! coalesced subresource.
//!
//! The paper plots daily new-TLS-connection rates to the third party
//! for control and experiment groups across January–February 2022:
//! the two-week ORIGIN deployment window shows the experiment arm at
//! roughly half the control's rate, with both arms equal before and
//! after.

use crate::env::DeploymentMode;
use crate::passive::PassivePipeline;
use crate::sample::{SampleGroup, Treatment};
use origin_netsim::SimRng;
use origin_stats::TimeSeries;

/// A longitudinal run: day-bucketed connection rates per arm.
pub struct LongitudinalRun {
    /// Days in the full observation window.
    pub days: u32,
    /// First day of the deployment (inclusive).
    pub deploy_start_day: u32,
    /// Day the deployment ends (exclusive).
    pub deploy_end_day: u32,
    /// Visits simulated per day.
    pub visits_per_day: u64,
}

/// The two series of Figure 8.
pub struct LongitudinalSeries {
    /// Experiment arm: new TLS connections per day bucket.
    pub experiment: TimeSeries,
    /// Control arm.
    pub control: TimeSeries,
}

impl LongitudinalRun {
    /// The paper's window: ~8 weeks observed, two-week deployment in
    /// the middle.
    pub fn paper_window() -> Self {
        LongitudinalRun {
            days: 56,
            deploy_start_day: 21,
            deploy_end_day: 35,
            visits_per_day: 4_000,
        }
    }

    /// Simulate the window. Deployment mode applies only inside the
    /// deployment days; before/after is the baseline.
    pub fn run(&self, group: &SampleGroup, mode: DeploymentMode, seed: u64) -> LongitudinalSeries {
        let day = 86_400.0;
        let horizon = self.days as f64 * day;
        let mut experiment = TimeSeries::new(horizon, day);
        let mut control = TimeSeries::new(horizon, day);
        let mut rng = SimRng::seed_from_u64(seed);
        let active_pipeline = PassivePipeline::new(mode);
        let baseline_pipeline = PassivePipeline::new(DeploymentMode::Baseline);
        for d in 0..self.days {
            let in_window = (self.deploy_start_day..self.deploy_end_day).contains(&d);
            let pipeline = if in_window {
                &active_pipeline
            } else {
                &baseline_pipeline
            };
            for _ in 0..self.visits_per_day {
                let site = &group.sites[rng.index(group.sites.len())];
                let t = d as f64 * day + rng.unit() * day;
                let coalesces =
                    pipeline.visit_coalesces(site.treatment, site.third_party_fetch, &mut rng);
                if !coalesces {
                    // One new TLS connection to the third party.
                    match site.treatment {
                        Treatment::Experiment => experiment.record(t),
                        Treatment::Control => control.record(t),
                    }
                }
            }
        }
        LongitudinalSeries {
            experiment,
            control,
        }
    }
}

impl LongitudinalSeries {
    /// Mean daily rates inside a day range: `(experiment, control)`.
    pub fn mean_rates(&self, start_day: u32, end_day: u32) -> (f64, f64) {
        let e = self
            .experiment
            .mean_rate(start_day as usize, end_day as usize);
        let c = self.control.mean_rate(start_day as usize, end_day as usize);
        (e * 86_400.0, c * 86_400.0)
    }

    /// Relative reduction of experiment vs control over a window.
    pub fn reduction(&self, start_day: u32, end_day: u32) -> f64 {
        let (e, c) = self.mean_rates(start_day, end_day);
        if c == 0.0 {
            0.0
        } else {
            1.0 - e / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(0x1046);
        SampleGroup::build(1_500, &mut rng)
    }

    #[test]
    fn reduction_only_inside_deployment_window() {
        let g = group();
        let run = LongitudinalRun {
            days: 30,
            deploy_start_day: 10,
            deploy_end_day: 20,
            visits_per_day: 2_000,
        };
        let s = run.run(&g, DeploymentMode::OriginFrames, 7);
        let before = s.reduction(0, 10);
        let during = s.reduction(10, 20);
        let after = s.reduction(20, 30);
        assert!(before.abs() < 0.1, "before {before}");
        assert!((0.35..=0.65).contains(&during), "during {during}");
        assert!(after.abs() < 0.1, "after {after}");
    }

    #[test]
    fn experiment_halves_during_window() {
        let g = group();
        let run = LongitudinalRun {
            days: 12,
            deploy_start_day: 2,
            deploy_end_day: 10,
            visits_per_day: 2_000,
        };
        let s = run.run(&g, DeploymentMode::OriginFrames, 9);
        let (e, c) = s.mean_rates(2, 10);
        assert!(e < c * 0.7, "exp {e} ctl {c}");
        assert!(e > 0.0);
    }

    #[test]
    fn series_cover_every_day() {
        let g = group();
        let run = LongitudinalRun {
            days: 5,
            deploy_start_day: 1,
            deploy_end_day: 3,
            visits_per_day: 500,
        };
        let s = run.run(&g, DeploymentMode::IpAligned, 11);
        assert_eq!(s.experiment.len(), 5);
        assert_eq!(s.control.len(), 5);
        assert!(s.control.total() > 0);
    }
}
