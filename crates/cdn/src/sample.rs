//! The sample group and the Figure 6 certificate setup.

use origin_dns::name::name;
use origin_dns::DnsName;
use origin_netsim::SimRng;
use origin_tls::{Certificate, CertificateAuthority, CtLogSet, KnownIssuer};
use origin_web::{ContentType, FetchMode, Page, Resource};

/// The coalesced third-party domain. In the paper this is a domain
/// "used by ∼50% of the top 1M websites … over 5 Billion daily
/// requests" hosted by the deployment CDN — i.e. the cdnjs service.
pub const THIRD_PARTY_HOST: &str = "cdnjs.cloudflare.com";

/// The control group's decoy: a valid, unused domain with exactly the
/// same byte length as [`THIRD_PARTY_HOST`] so both treatment groups'
/// certificates grow by the same number of bytes (Figure 6).
pub const CONTROL_DECOY_HOST: &str = "cdnj0.cloudflare.com";

/// Treatment assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Treatment {
    /// Certificate (and, in §5.3, ORIGIN frame) carries the real
    /// third-party domain.
    Experiment,
    /// Certificate carries the equal-length decoy.
    Control,
}

/// One domain in the sample group.
#[derive(Debug, Clone)]
pub struct SampleSite {
    /// The customer domain.
    pub host: DnsName,
    /// Treatment arm.
    pub treatment: Treatment,
    /// The certificate currently served (reissued at setup).
    pub cert: Certificate,
    /// How this page requests the third party. The §5.3 discovery:
    /// `crossorigin=anonymous` and XHR/fetch subresource requests do
    /// not coalesce.
    pub third_party_fetch: FetchMode,
    /// Number of third-party subresources the page requests.
    pub third_party_requests: u32,
    /// Per-site RNG seed for page materialization.
    pub page_seed: u64,
}

impl SampleSite {
    /// Build this site's page: root + a few first-party resources +
    /// its third-party requests.
    pub fn page(&self) -> Page {
        let mut rng = SimRng::seed_from_u64(self.page_seed);
        let mut page = Page::new(1, self.host.clone(), 12_000);
        let n_fp = 3 + rng.index(6);
        for i in 0..n_fp {
            let ct = if i == 0 {
                ContentType::Css
            } else {
                ContentType::Javascript
            };
            page.push(Resource::new(
                self.host.clone(),
                format!("/assets/fp{i}.bin"),
                ct,
                8_000 + i as u64 * 1_000,
            ));
        }
        // A tail of sites never fires the third-party tag from the
        // landing page (consent banners, lazy loading) — the source
        // of the paper's ~9%/6% zero-connection *control* visits.
        let tag_blocked = rng.chance(0.08);
        for j in 0..self.third_party_requests {
            // Secondary requests occasionally go through a different
            // fetch path (a beacon via fetch() next to the script
            // tag), which lands in another connection pool partition.
            let fetch = if j > 0 && rng.chance(0.12) {
                FetchMode::XhrFetch
            } else {
                self.third_party_fetch
            };
            let mut r = Resource::new(
                name(THIRD_PARTY_HOST),
                format!("/ajax/libs/lib{j}.min.js"),
                ContentType::Javascript,
                15_000,
            )
            .discovered_by(1)
            .fetch_mode(fetch);
            if tag_blocked {
                r.protocol = origin_web::Protocol::NA;
            }
            page.push(r);
        }
        page
    }
}

/// The assembled sample group.
pub struct SampleGroup {
    /// Sites in the study (after the subpage-only filter).
    pub sites: Vec<SampleSite>,
    /// Sites removed because only their subpages request the third
    /// party (the paper dropped 22%).
    pub removed_subpage_only: u32,
    /// CT logs that received the reissues.
    pub ct_logs: CtLogSet,
}

impl SampleGroup {
    /// Build the sample: `n` candidate domains (paper: 5000), the
    /// subpage-only filter, random treatment assignment, and the
    /// equal-byte certificate reissue.
    pub fn build(n: u32, rng: &mut SimRng) -> SampleGroup {
        let mut ca = CertificateAuthority::new(KnownIssuer::CloudflareEcc);
        let mut ct = CtLogSet::default_operators();
        let mut sites = Vec::new();
        let mut removed = 0;
        for i in 0..n {
            // 22% of candidates only request the third party from
            // subpages; active measurement can't trigger those.
            if rng.chance(0.22) {
                removed += 1;
                continue;
            }
            let host = name(&format!("sample-{i:05}.example"));
            let treatment = if rng.chance(0.5) {
                Treatment::Experiment
            } else {
                Treatment::Control
            };
            let added = match treatment {
                Treatment::Experiment => name(THIRD_PARTY_HOST),
                Treatment::Control => name(CONTROL_DECOY_HOST),
            };
            let cert = ca
                .issue(
                    host.clone(),
                    &[name(&format!("*.{host}")), added],
                    0,
                    &mut ct,
                )
                .expect("sample certs stay small");
            // Fetch-mode mix: most pages embed the third party as a
            // plain script; a tail uses XHR/fetch or anonymous mode
            // (the §5.3 obstruction).
            let u = rng.unit();
            let third_party_fetch = if u < 0.75 {
                FetchMode::Normal
            } else if u < 0.88 {
                FetchMode::XhrFetch
            } else {
                FetchMode::CorsAnonymous
            };
            sites.push(SampleSite {
                host,
                treatment,
                cert,
                third_party_fetch,
                third_party_requests: 1 + rng.index(3) as u32,
                page_seed: rng.next_u64(),
            });
        }
        SampleGroup {
            sites,
            removed_subpage_only: removed,
            ct_logs: ct,
        }
    }

    /// Sites in one arm.
    pub fn arm(&self, treatment: Treatment) -> impl Iterator<Item = &SampleSite> {
        self.sites.iter().filter(move |s| s.treatment == treatment)
    }

    /// Verify the Figure 6 integrity property: every certificate in
    /// both arms grew by the same number of SAN bytes.
    pub fn equal_byte_check(&self) -> bool {
        assert_eq!(THIRD_PARTY_HOST.len(), CONTROL_DECOY_HOST.len());
        let mut sizes: Vec<u64> = Vec::new();
        for s in &self.sites {
            let added: u64 = s
                .cert
                .sans
                .iter()
                .filter(|n| n.as_str() == THIRD_PARTY_HOST || n.as_str() == CONTROL_DECOY_HOST)
                .map(|n| n.wire_len() as u64 + 2)
                .sum();
            sizes.push(added);
        }
        sizes.windows(2).all(|w| w[0] == w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(0x5A11);
        SampleGroup::build(1_000, &mut rng)
    }

    #[test]
    fn decoy_matches_length() {
        assert_eq!(THIRD_PARTY_HOST.len(), CONTROL_DECOY_HOST.len());
        assert_ne!(THIRD_PARTY_HOST, CONTROL_DECOY_HOST);
    }

    #[test]
    fn subpage_filter_removes_about_22_percent() {
        let g = group();
        let frac = g.removed_subpage_only as f64 / 1_000.0;
        assert!((0.18..=0.26).contains(&frac), "removed {frac}");
    }

    #[test]
    fn arms_are_roughly_balanced() {
        let g = group();
        let exp = g.arm(Treatment::Experiment).count();
        let ctl = g.arm(Treatment::Control).count();
        let ratio = exp as f64 / (exp + ctl) as f64;
        assert!((0.45..=0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn certificates_cover_their_arm_domain() {
        let g = group();
        for s in &g.sites {
            assert!(s.cert.covers(&s.host));
            match s.treatment {
                Treatment::Experiment => {
                    assert!(s.cert.covers(&name(THIRD_PARTY_HOST)));
                    assert!(!s.cert.covers(&name(CONTROL_DECOY_HOST)));
                }
                Treatment::Control => {
                    assert!(s.cert.covers(&name(CONTROL_DECOY_HOST)));
                    assert!(!s.cert.covers(&name(THIRD_PARTY_HOST)));
                }
            }
        }
    }

    #[test]
    fn equal_byte_property_holds() {
        assert!(group().equal_byte_check());
    }

    #[test]
    fn reissues_land_in_ct_logs() {
        let g = group();
        // Every site's cert in all three logs.
        assert_eq!(g.ct_logs.total_entries(), g.sites.len() as u64 * 3);
    }

    #[test]
    fn pages_request_the_third_party() {
        let g = group();
        let s = &g.sites[0];
        let page = s.page();
        let tp = page
            .resources
            .iter()
            .filter(|r| r.host.as_str() == THIRD_PARTY_HOST)
            .count() as u32;
        assert_eq!(tp, s.third_party_requests);
        assert_eq!(page.resources[0].host, s.host);
        // Deterministic regeneration.
        assert_eq!(s.page(), page);
    }

    #[test]
    fn fetch_mode_mix_present() {
        let g = group();
        let normal = g
            .sites
            .iter()
            .filter(|s| s.third_party_fetch == FetchMode::Normal)
            .count();
        let frac = normal as f64 / g.sites.len() as f64;
        assert!((0.63..=0.77).contains(&frac), "normal fetch share {frac}");
    }
}
