//! Client-side active measurement (Figures 7a / 7b).
//!
//! The paper repeated its §3 crawl methodology against the sample
//! set: scripted Firefox page loads (v91 for the IP experiment, v96
//! for ORIGIN — the only browser with client-side ORIGIN support),
//! counting new TLS connections to the third-party domain. Zero new
//! connections means the request coalesced.

use crate::edge::EdgeServer;
use crate::env::{CdnEnv, DeploymentMode};
use crate::sample::{SampleGroup, Treatment, THIRD_PARTY_HOST};
use origin_browser::{BrowserKind, PageLoader};
use origin_dns::name::name;
use origin_metrics::Registry;
use origin_netsim::SimRng;
use origin_stats::{Cdf, Histogram};
use origin_web::Page;

/// Outcome of one arm of the active measurement.
#[derive(Debug, Clone)]
pub struct ActiveResult {
    /// Distribution of new connections to the third party per visit.
    pub new_connections: Histogram,
    /// Page load times across the arm's visits (Figure 9 bottom).
    pub plt_ms: Vec<f64>,
    /// Work counters for the arm (`cdn.active.*`, `browser.*`,
    /// `sim.*`); every field merges commutatively.
    pub metrics: Registry,
}

impl ActiveResult {
    fn empty() -> Self {
        ActiveResult {
            new_connections: Histogram::new(),
            plt_ms: Vec::new(),
            metrics: Registry::new(),
        }
    }

    /// Fold another shard's arm results into this one. PLTs
    /// concatenate in call order, so merging visit-ordered shards in
    /// order reproduces the sequential series; the histogram and
    /// metrics registry are commutative counters.
    pub fn merge(&mut self, other: ActiveResult) {
        self.new_connections.merge(&other.new_connections);
        self.plt_ms.extend(other.plt_ms);
        self.metrics.merge(&other.metrics);
    }

    fn record_visit(&mut self, page: &Page, load: &origin_web::PageLoad) {
        self.metrics.inc("cdn.active.visits");
        let coalesced_bytes: u64 = load
            .requests
            .iter()
            .filter(|r| r.coalesced)
            .map(|r| page.resources[r.resource_index].size)
            .sum();
        self.metrics
            .add("cdn.active.coalesced_bytes", coalesced_bytes);
    }

    /// Fraction of visits with exactly `n` new connections.
    pub fn fraction_with(&self, n: u64) -> f64 {
        self.new_connections.fraction(n)
    }

    /// CDF over new-connection counts (the Figure 7 series).
    pub fn cdf(&self) -> Cdf {
        let samples: Vec<u64> = self
            .new_connections
            .bins()
            .flat_map(|(v, c)| std::iter::repeat_n(v, c as usize))
            .collect();
        Cdf::from_u64(&samples)
    }

    /// Largest observed new-connection count.
    pub fn max_connections(&self) -> u64 {
        self.new_connections
            .bins()
            .map(|(v, _)| v)
            .max()
            .unwrap_or(0)
    }

    /// Median PLT for the arm.
    pub fn median_plt(&self) -> f64 {
        origin_stats::median(&self.plt_ms).unwrap_or(0.0)
    }
}

/// The active-measurement harness.
pub struct ActiveMeasurement {
    /// Deployment under test.
    pub mode: DeploymentMode,
    /// Browser model (Firefox v91 for §5.2, Firefox+ORIGIN v96 for
    /// §5.3).
    pub browser: BrowserKind,
}

impl ActiveMeasurement {
    /// The §5.2 configuration.
    pub fn ip_experiment() -> Self {
        ActiveMeasurement {
            mode: DeploymentMode::IpAligned,
            browser: BrowserKind::Firefox,
        }
    }

    /// The §5.3 configuration.
    pub fn origin_experiment() -> Self {
        ActiveMeasurement {
            mode: DeploymentMode::OriginFrames,
            browser: BrowserKind::FirefoxOrigin,
        }
    }

    /// Visit every site in one arm once with a fresh browser session
    /// and count new connections to the third party.
    pub fn run(&self, group: &SampleGroup, treatment: Treatment, seed: u64) -> ActiveResult {
        let mut env = CdnEnv::new(group, self.mode);
        let loader = PageLoader::new(self.browser);
        let mut result = ActiveResult::empty();
        let third_party = name(THIRD_PARTY_HOST);
        for site in group.arm(treatment) {
            let page = site.page();
            let mut rng = SimRng::seed_from_u64(seed ^ site.page_seed);
            let load =
                loader.load_instrumented(&page, &mut env, &mut rng, Some(&mut result.metrics));
            result
                .new_connections
                .add(load.new_connections_to(&third_party));
            result.plt_ms.push(load.plt());
            result.record_visit(&page, &load);
        }
        result
    }

    /// Run both arms.
    pub fn run_both(&self, group: &SampleGroup, seed: u64) -> (ActiveResult, ActiveResult) {
        (
            self.run(group, Treatment::Experiment, seed),
            self.run(group, Treatment::Control, seed),
        )
    }

    /// Like [`ActiveMeasurement::run`] but sharded over `threads`
    /// worker threads. Each visit runs in a fresh browser session with
    /// an RNG seeded only from `seed ^ site.page_seed`, so sites are
    /// independent; workers claim contiguous visit-ordered chunks and
    /// the chunks merge back in order — the result is byte-identical
    /// to the sequential run for any thread count.
    pub fn run_threads(
        &self,
        group: &SampleGroup,
        treatment: Treatment,
        seed: u64,
        threads: usize,
    ) -> ActiveResult {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let threads = threads.max(1);
        let sites: Vec<_> = group.arm(treatment).collect();
        let n_chunks = (threads * 4).min(sites.len()).max(1);
        let chunk_size = sites.len().div_ceil(n_chunks);
        let next_chunk = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ActiveResult>>> =
            (0..n_chunks).map(|_| Mutex::new(None)).collect();
        let third_party = name(THIRD_PARTY_HOST);

        std::thread::scope(|scope| {
            for _ in 0..threads.min(n_chunks) {
                scope.spawn(|| {
                    let mut env = CdnEnv::new(group, self.mode);
                    let loader = PageLoader::new(self.browser);
                    loop {
                        let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                        if chunk >= n_chunks {
                            break;
                        }
                        // Ceil-sized chunks can overrun the tail:
                        // clamp, leaving trailing chunks empty
                        // (merge identity).
                        let start = (chunk * chunk_size).min(sites.len());
                        let end = (start + chunk_size).min(sites.len());
                        let mut result = ActiveResult::empty();
                        for site in &sites[start..end] {
                            let page = site.page();
                            let mut rng = SimRng::seed_from_u64(seed ^ site.page_seed);
                            let load = loader.load_instrumented(
                                &page,
                                &mut env,
                                &mut rng,
                                Some(&mut result.metrics),
                            );
                            result
                                .new_connections
                                .add(load.new_connections_to(&third_party));
                            result.plt_ms.push(load.plt());
                            result.record_visit(&page, &load);
                        }
                        *slots[chunk]
                            .lock()
                            .expect("active-measurement shard slot poisoned by a worker panic") =
                            Some(result);
                    }
                });
            }
        });

        let mut total = ActiveResult::empty();
        for slot in slots {
            let r = slot
                .into_inner()
                .expect("active-measurement shard slot poisoned by a worker panic")
                .expect("every chunk completed");
            total.merge(r);
        }
        total
    }

    /// Run both arms sharded over `threads` worker threads; see
    /// [`ActiveMeasurement::run_threads`].
    pub fn run_both_threads(
        &self,
        group: &SampleGroup,
        seed: u64,
        threads: usize,
    ) -> (ActiveResult, ActiveResult) {
        (
            self.run_threads(group, Treatment::Experiment, seed, threads),
            self.run_threads(group, Treatment::Control, seed, threads),
        )
    }

    /// Wire-level spot check: for `n` sites per arm, run a real
    /// `origin-h2` exchange against an [`EdgeServer`] and verify the
    /// client's resulting origin state matches what the analytic
    /// environment advertises — the consistency the paper relied on
    /// when it "could test and confirm that ORIGIN is either ignored
    /// or handled correctly" before deploying globally (§5.3).
    ///
    /// Returns the number of sites whose wire behaviour matched.
    pub fn wire_spot_check(&self, group: &SampleGroup, n: usize) -> usize {
        self.wire_spot_check_metrics(group, n, None)
    }

    /// Like [`ActiveMeasurement::wire_spot_check`] but also folds the
    /// client- and edge-side h2 frame work into `metrics` — the only
    /// place real ORIGIN frames cross a wire in the pipeline, and thus
    /// the source of the registry's `h2.*` counters.
    pub fn wire_spot_check_metrics(
        &self,
        group: &SampleGroup,
        n: usize,
        metrics: Option<&mut Registry>,
    ) -> usize {
        self.wire_spot_check_inner(group, n, metrics, None)
    }

    /// Like [`ActiveMeasurement::wire_spot_check_metrics`] but also
    /// traces the client side of every exchange: one logical process
    /// per checked site (in the reserved `pid` band above real Tranco
    /// ranks), with `h2.frame` / `h2.origin.accept` instants from
    /// [`origin_h2::Connection::recv_traced`] stamped by wire round.
    /// The loop is sequential and rank-ordered, so the trace is
    /// independent of `--threads`.
    pub fn wire_spot_check_traced(
        &self,
        group: &SampleGroup,
        n: usize,
        metrics: Option<&mut Registry>,
        tracer: &mut origin_trace::Tracer,
    ) -> usize {
        self.wire_spot_check_inner(group, n, metrics, Some(tracer))
    }

    /// Logical-process base for wire-check trace events; site ranks
    /// stay far below this.
    pub const WIRE_PID_BASE: u64 = 1 << 22;

    /// Like [`ActiveMeasurement::wire_spot_check_metrics`] but also
    /// appends one `h2.wire` flight event per checked connection side
    /// to `flight`, attributed to the check's reserved visit band.
    /// The loop is sequential and rank-ordered, so the recorder's
    /// contents are independent of `--threads`.
    pub fn wire_spot_check_observed(
        &self,
        group: &SampleGroup,
        n: usize,
        metrics: Option<&mut Registry>,
        flight: &mut origin_obs::FlightRecorder,
    ) -> usize {
        self.wire_spot_check_full(group, n, metrics, None, Some(flight))
    }

    fn wire_spot_check_inner(
        &self,
        group: &SampleGroup,
        n: usize,
        metrics: Option<&mut Registry>,
        tracer: Option<&mut origin_trace::Tracer>,
    ) -> usize {
        self.wire_spot_check_full(group, n, metrics, tracer, None)
    }

    fn wire_spot_check_full(
        &self,
        group: &SampleGroup,
        n: usize,
        mut metrics: Option<&mut Registry>,
        mut tracer: Option<&mut origin_trace::Tracer>,
        mut flight: Option<&mut origin_obs::FlightRecorder>,
    ) -> usize {
        use origin_h2::{Connection, Settings};
        let origin_mode = self.mode == DeploymentMode::OriginFrames;
        let mut matched = 0;
        for (site_no, site) in group.sites.iter().take(n).enumerate() {
            let mut edge = EdgeServer::for_site(site, origin_mode);
            let mut client = Connection::client(site.host.as_str(), Settings::default());
            if let Some(t) = tracer.as_deref_mut() {
                t.begin_visit(
                    Self::WIRE_PID_BASE + site_no as u64,
                    &format!("wire {}", site.host.as_str()),
                );
            }
            let mut round = 0u64;
            loop {
                let c = client.take_outgoing();
                let e = edge.take_outgoing();
                if c.is_empty() && e.is_empty() {
                    break;
                }
                if !c.is_empty() {
                    edge.handle(&c).expect("edge recv");
                }
                if !e.is_empty() {
                    match tracer.as_deref_mut() {
                        Some(t) => {
                            // No simulated clock on this path: stamp
                            // events with the exchange round, which is
                            // equally deterministic.
                            t.set_now_us(round);
                            client.recv_traced(&e, t).expect("client recv")
                        }
                        None => client.recv(&e).expect("client recv"),
                    };
                }
                round += 1;
            }
            let wire_allows = client.origin_allows(THIRD_PARTY_HOST);
            let expected = origin_mode && site.treatment == Treatment::Experiment;
            // The browser model additionally checks the certificate.
            let cert_covers = site.cert.covers(&name(THIRD_PARTY_HOST));
            if wire_allows == expected && cert_covers == (site.treatment == Treatment::Experiment) {
                matched += 1;
            }
            if let Some(metrics) = metrics.as_deref_mut() {
                client.record_metrics(metrics);
                edge.conn.record_metrics(metrics);
                metrics.inc("cdn.wire_checks");
            }
            if let Some(rec) = flight.as_deref_mut() {
                rec.begin_visit((Self::WIRE_PID_BASE + site_no as u64) as u32);
                // Stamp with the final exchange round, matching the
                // traced variant's clock.
                client.record_flight(round, rec);
                edge.conn.record_flight(round, rec);
            }
        }
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(0xAC71);
        SampleGroup::build(1_200, &mut rng)
    }

    #[test]
    fn ip_experiment_coalesces_experiment_arm() {
        let g = group();
        let (exp, ctl) = ActiveMeasurement::ip_experiment().run_both(&g, 42);
        // Figure 7a shapes: experiment ≈70% zero; control ≈9% zero
        // with ≈83% exactly one.
        let exp_zero = exp.fraction_with(0);
        let ctl_zero = ctl.fraction_with(0);
        let ctl_one = ctl.fraction_with(1);
        assert!(exp_zero > 0.55, "experiment zero-conn fraction {exp_zero}");
        assert!(ctl_zero < 0.2, "control zero-conn fraction {ctl_zero}");
        assert!(ctl_one > 0.6, "control one-conn fraction {ctl_one}");
        assert!(exp_zero > ctl_zero + 0.4);
    }

    #[test]
    fn origin_experiment_coalesces_without_ip_alignment() {
        let g = group();
        let (exp, ctl) = ActiveMeasurement::origin_experiment().run_both(&g, 43);
        let exp_zero = exp.fraction_with(0);
        let ctl_zero = ctl.fraction_with(0);
        assert!(exp_zero > 0.5, "experiment zero-conn fraction {exp_zero}");
        assert!(ctl_zero < 0.2, "control zero-conn fraction {ctl_zero}");
        // None of the visits should need more than a handful of
        // connections (paper: ≤4).
        assert!(exp.max_connections() <= 4, "max {}", exp.max_connections());
    }

    #[test]
    fn baseline_shows_no_treatment_effect() {
        let g = group();
        let m = ActiveMeasurement {
            mode: DeploymentMode::Baseline,
            browser: BrowserKind::Firefox,
        };
        let (exp, ctl) = m.run_both(&g, 44);
        // Without alignment or ORIGIN frames both arms open real
        // connections to the third party.
        assert!(exp.fraction_with(0) < 0.15);
        assert!(ctl.fraction_with(0) < 0.15);
    }

    #[test]
    fn plt_no_worse_with_origin() {
        // §6.1: "our preliminary evidence suggests 'no worse' is
        // appropriate" — experiment PLT within a few percent of
        // control.
        let g = group();
        let (exp, ctl) = ActiveMeasurement::origin_experiment().run_both(&g, 45);
        let (e, c) = (exp.median_plt(), ctl.median_plt());
        assert!(e <= c * 1.03, "experiment {e} vs control {c}");
    }

    #[test]
    fn wire_spot_check_agrees_with_model() {
        let g = group();
        let m = ActiveMeasurement::origin_experiment();
        assert_eq!(m.wire_spot_check(&g, 60), 60);
        // Pre-deployment: no ORIGIN frames on the wire either.
        let m = ActiveMeasurement {
            mode: DeploymentMode::Baseline,
            browser: BrowserKind::Firefox,
        };
        assert_eq!(m.wire_spot_check(&g, 60), 60);
    }

    #[test]
    fn cdf_is_complete() {
        let g = group();
        let (exp, _) = ActiveMeasurement::origin_experiment().run_both(&g, 46);
        let cdf = exp.cdf();
        assert_eq!(cdf.len() as u64, exp.new_connections.total());
        assert_eq!(cdf.eval(exp.max_connections() as f64), 1.0);
    }
}
