//! The §5 CDN deployment simulator.
//!
//! The paper validated its model by deploying ORIGIN frame support at
//! a large CDN: 5000 certificates reissued with a popular third-party
//! domain added to the SAN, an experiment/control split with
//! equal-byte certificate changes (Figure 6), and both passive
//! (sampled production logs) and active (scripted page loads)
//! measurements of IP-based (§5.2) and ORIGIN-based (§5.3)
//! coalescing. This crate rebuilds that deployment end to end:
//!
//! - [`sample`] — the 5000-domain sample group, the subpage-only
//!   filter (−22%), random treatment assignment, and the equal-byte
//!   certificate reissue of Figure 6.
//! - [`edge`] — an edge server terminating real `origin-h2`
//!   connections, configured with per-deployment certificates and
//!   origin sets; answers 421 for unconfigured authorities.
//! - [`mod@env`] — the deployment [`origin_browser::WebEnv`]: DNS
//!   aligned to a single address for the §5.2 IP experiment, or an
//!   isolated anycast address with ORIGIN frames for §5.3.
//! - [`active`] — the client-side active measurement (Figures 7a/7b):
//!   Firefox page loads counting new connections to the third party.
//! - [`passive`] — the server-side passive pipeline: 1 % sampling,
//!   the SNI≠Host flag bit, referer attribution, arrival-order
//!   labels, and the experiment/control rate comparison.
//! - [`longitudinal`] — the Figure 8 time series (before / during /
//!   after deployment).
//! - [`incident`] — the §6.7 non-compliant middlebox incident and its
//!   disclosure timeline.
//! - [`rollout`] — per-edge ORIGIN rollout state for the serving
//!   engine's live A/B ramp (DESIGN.md §16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod edge;
pub mod env;
pub mod incident;
pub mod longitudinal;
pub mod passive;
pub mod rollout;
pub mod sample;

pub use active::{ActiveMeasurement, ActiveResult};
pub use edge::EdgeServer;
pub use env::{CdnEnv, DeploymentMode};
pub use incident::{IncidentReport, MiddleboxIncident};
pub use longitudinal::LongitudinalRun;
pub use passive::{PassivePipeline, PassiveReport};
pub use rollout::Rollout;
pub use sample::{SampleGroup, SampleSite, Treatment, CONTROL_DECOY_HOST, THIRD_PARTY_HOST};
