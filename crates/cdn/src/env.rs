//! The deployment environment the browsers load sample pages against.

use crate::sample::{SampleGroup, SampleSite, Treatment, CONTROL_DECOY_HOST, THIRD_PARTY_HOST};
use origin_browser::WebEnv;
use origin_dns::name::name;
use origin_dns::{DnsName, QueryAnswer};
use origin_h2::{OriginEntry, OriginSet};
use origin_netsim::{LinkProfile, SimDuration, SimRng, SimTime};
use origin_tls::{Certificate, CertificateAuthority, CtLogSet, KnownIssuer};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};

/// Which §5 deployment is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentMode {
    /// Pre-deployment: sample domains and the third party on their
    /// ordinary separate addresses, no ORIGIN frames.
    Baseline,
    /// §5.2: DNS aligned — one single address serves all sample
    /// domains *and* the third party (limited to two datacenters in
    /// the paper; address alignment is what matters here).
    IpAligned,
    /// §5.3: DNS reverted; sample group moved to an isolated anycast
    /// address; edges send ORIGIN frames matching each certificate.
    OriginFrames,
}

/// The CDN-side world state for the experiment.
pub struct CdnEnv<'a> {
    group: &'a SampleGroup,
    /// Active deployment mode.
    pub mode: DeploymentMode,
    site_index: HashMap<DnsName, usize>,
    third_party_cert: Certificate,
    /// The shared address of the §5.2 alignment.
    shared_ip: IpAddr,
    /// The isolated anycast address of the §5.3 deployment.
    anycast_ip: IpAddr,
    /// Per-domain ordinary addresses (baseline/§5.3 third party).
    ordinary_ips: HashMap<DnsName, IpAddr>,
    /// DNS queries observed (privacy accounting).
    pub dns_queries: u64,
}

/// The deployment CDN's AS (Cloudflare in the paper's Table 2).
pub const CDN_ASN: u32 = 13335;

impl<'a> CdnEnv<'a> {
    /// Wire up the environment for a sample group.
    pub fn new(group: &'a SampleGroup, mode: DeploymentMode) -> Self {
        let mut ca = CertificateAuthority::new(KnownIssuer::CloudflareEcc);
        let mut ct = CtLogSet::default_operators();
        let third_party_cert = ca
            .issue(
                name(THIRD_PARTY_HOST),
                &[name("*.cloudflare.com")],
                0,
                &mut ct,
            )
            .expect("third-party cert");
        let mut site_index = HashMap::new();
        let mut ordinary_ips = HashMap::new();
        for (i, s) in group.sites.iter().enumerate() {
            site_index.insert(s.host.clone(), i);
            // Deterministic ordinary per-domain VIPs.
            let d = (i % 200) as u8;
            ordinary_ips.insert(
                s.host.clone(),
                IpAddr::V4(Ipv4Addr::new(104, 16, 1 + (i / 200) as u8, d)),
            );
        }
        ordinary_ips.insert(
            name(THIRD_PARTY_HOST),
            IpAddr::V4(Ipv4Addr::new(104, 17, 0, 1)),
        );
        CdnEnv {
            group,
            mode,
            site_index,
            third_party_cert,
            shared_ip: IpAddr::V4(Ipv4Addr::new(104, 18, 0, 1)),
            anycast_ip: IpAddr::V4(Ipv4Addr::new(104, 19, 0, 1)),
            ordinary_ips,
            dns_queries: 0,
        }
    }

    fn site_of(&self, host: &DnsName) -> Option<&SampleSite> {
        self.site_index.get(host).map(|&i| &self.group.sites[i])
    }

    /// The address a hostname resolves to under the current mode.
    pub fn address_of(&self, host: &DnsName) -> Option<IpAddr> {
        let is_third_party = host.as_str() == THIRD_PARTY_HOST;
        let is_sample = self.site_index.contains_key(host);
        if !is_third_party && !is_sample {
            return None;
        }
        Some(match self.mode {
            DeploymentMode::Baseline => self.ordinary_ips[host],
            DeploymentMode::IpAligned => self.shared_ip,
            DeploymentMode::OriginFrames => {
                if is_sample {
                    self.anycast_ip
                } else {
                    self.ordinary_ips[host]
                }
            }
        })
    }
}

impl WebEnv for CdnEnv<'_> {
    fn resolve(&mut self, host: &DnsName, _now: SimTime, rng: &mut SimRng) -> Option<QueryAnswer> {
        let addr = self.address_of(host)?;
        self.dns_queries += 1;
        Some(QueryAnswer {
            addresses: std::sync::Arc::new([addr]),
            from_cache: false,
            latency: SimDuration::from_millis_f64(12.0 + rng.exponential(8.0)),
        })
    }

    fn cert_for(&self, host: &DnsName) -> Option<&Certificate> {
        if host.as_str() == THIRD_PARTY_HOST {
            return Some(&self.third_party_cert);
        }
        self.site_of(host).map(|s| &s.cert)
    }

    fn asn_of_ip(&self, _ip: &IpAddr) -> u32 {
        CDN_ASN
    }

    fn asn_of_host(&self, _host: &DnsName) -> u32 {
        CDN_ASN
    }

    fn colocated(&self, _conn_host: &DnsName, _new_host: &DnsName) -> bool {
        // One CDN serves the whole sample; edges are configured for
        // every sample authority, so no coalescing attempt 421s.
        true
    }

    fn origin_set_for(&self, host: &DnsName) -> Option<OriginSet> {
        if self.mode != DeploymentMode::OriginFrames {
            return None;
        }
        // ORIGIN frames are "populated with either the third party or
        // control domain to match the sample's certificate" (§5.3).
        let site = self.site_of(host)?;
        let mut set = OriginSet::from_hosts([host.as_str()]);
        match site.treatment {
            Treatment::Experiment => set.add(OriginEntry::https(THIRD_PARTY_HOST)),
            Treatment::Control => set.add(OriginEntry::https(CONTROL_DECOY_HOST)),
        }
        Some(set)
    }

    fn link_for(&self, _host: &DnsName) -> LinkProfile {
        LinkProfile::new(22.0, 60.0).with_jitter(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group() -> SampleGroup {
        let mut rng = SimRng::seed_from_u64(7);
        SampleGroup::build(200, &mut rng)
    }

    #[test]
    fn baseline_separate_addresses() {
        let g = group();
        let env = CdnEnv::new(&g, DeploymentMode::Baseline);
        let site = &g.sites[0];
        let a = env.address_of(&site.host).unwrap();
        let tp = env.address_of(&name(THIRD_PARTY_HOST)).unwrap();
        assert_ne!(a, tp);
    }

    #[test]
    fn ip_aligned_shares_one_address() {
        let g = group();
        let env = CdnEnv::new(&g, DeploymentMode::IpAligned);
        let a = env.address_of(&g.sites[0].host).unwrap();
        let b = env.address_of(&g.sites[1].host).unwrap();
        let tp = env.address_of(&name(THIRD_PARTY_HOST)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, tp);
    }

    #[test]
    fn origin_mode_reverts_dns_and_isolates_sample() {
        let g = group();
        let env = CdnEnv::new(&g, DeploymentMode::OriginFrames);
        let a = env.address_of(&g.sites[0].host).unwrap();
        let b = env.address_of(&g.sites[1].host).unwrap();
        let tp = env.address_of(&name(THIRD_PARTY_HOST)).unwrap();
        assert_eq!(a, b, "sample group on one isolated anycast address");
        assert_ne!(a, tp, "third party restored to its own addressing");
    }

    #[test]
    fn origin_sets_match_treatment() {
        let g = group();
        let env = CdnEnv::new(&g, DeploymentMode::OriginFrames);
        for s in &g.sites {
            let set = env
                .origin_set_for(&s.host)
                .expect("origin set in §5.3 mode");
            match s.treatment {
                Treatment::Experiment => {
                    assert!(set.allows_https_host(THIRD_PARTY_HOST));
                    assert!(!set.allows_https_host(CONTROL_DECOY_HOST));
                }
                Treatment::Control => {
                    assert!(set.allows_https_host(CONTROL_DECOY_HOST));
                    assert!(!set.allows_https_host(THIRD_PARTY_HOST));
                }
            }
        }
        // No ORIGIN frames outside §5.3.
        let env = CdnEnv::new(&g, DeploymentMode::IpAligned);
        assert!(env.origin_set_for(&g.sites[0].host).is_none());
    }

    #[test]
    fn unknown_hosts_do_not_resolve() {
        let g = group();
        let mut env = CdnEnv::new(&g, DeploymentMode::Baseline);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(env
            .resolve(&name("unrelated.example"), SimTime::ZERO, &mut rng)
            .is_none());
    }

    #[test]
    fn third_party_cert_covers_itself() {
        let g = group();
        let env = CdnEnv::new(&g, DeploymentMode::Baseline);
        let c = env.cert_for(&name(THIRD_PARTY_HOST)).unwrap();
        assert!(c.covers(&name(THIRD_PARTY_HOST)));
    }
}
