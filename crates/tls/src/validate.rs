//! Client-side certificate validation.
//!
//! The paper's "certificate validations" metric counts the number of
//! times a client cryptographically validates a server certificate —
//! once per new TLS connection. [`Validator`] performs the structural
//! checks a browser would (trust, validity window, name coverage) and
//! counts them, so experiment harnesses can report the validation
//! reductions of Figure 3 / §4.2.

use crate::cert::Certificate;
use origin_dns::DnsName;
use std::collections::HashSet;
use std::fmt;

/// Why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The issuer is not in the client trust store.
    UntrustedIssuer(String),
    /// The certificate is outside its validity window.
    Expired {
        /// Day the check ran.
        today: u32,
        /// Certificate's last valid day.
        not_after_day: u32,
    },
    /// Not yet valid.
    NotYetValid {
        /// Day the check ran.
        today: u32,
        /// Certificate's first valid day.
        not_before_day: u32,
    },
    /// No SAN entry covers the requested name.
    NameMismatch(DnsName),
    /// The certificate has been revoked (OCSP-style check, §6.2).
    Revoked(u64),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UntrustedIssuer(i) => write!(f, "untrusted issuer {i:?}"),
            ValidationError::Expired {
                today,
                not_after_day,
            } => {
                write!(f, "expired: today={today} not_after={not_after_day}")
            }
            ValidationError::NotYetValid {
                today,
                not_before_day,
            } => {
                write!(
                    f,
                    "not yet valid: today={today} not_before={not_before_day}"
                )
            }
            ValidationError::NameMismatch(n) => write!(f, "no SAN covers {n}"),
            ValidationError::Revoked(serial) => write!(f, "certificate {serial} revoked"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A client-side validator: a trust store, a revocation list, and a
/// counter of validations performed.
pub struct Validator {
    trusted_issuers: HashSet<String>,
    revoked_serials: HashSet<u64>,
    validations: u64,
}

impl Validator {
    /// A validator trusting the given issuer display names.
    pub fn new<I: IntoIterator<Item = String>>(trusted: I) -> Self {
        Validator {
            trusted_issuers: trusted.into_iter().collect(),
            revoked_serials: HashSet::new(),
            validations: 0,
        }
    }

    /// A validator trusting every Table 4 issuer — what a stock
    /// browser trust store amounts to for this model.
    pub fn trust_all_known() -> Self {
        Validator::new(
            crate::ca::KnownIssuer::all()
                .iter()
                .map(|i| i.display_name().to_string()),
        )
    }

    /// Add an issuer to the trust store.
    pub fn trust(&mut self, issuer: &str) {
        self.trusted_issuers.insert(issuer.to_string());
    }

    /// Mark a serial as revoked (OCSP response, §6.2).
    pub fn revoke(&mut self, serial: u64) {
        self.revoked_serials.insert(serial);
    }

    /// Number of validations performed so far (success or failure —
    /// the client does the cryptographic work either way).
    pub fn validations(&self) -> u64 {
        self.validations
    }

    /// Reset the counter.
    pub fn reset_validations(&mut self) {
        self.validations = 0;
    }

    /// Validate `cert` for `name` on `today`. Increments the
    /// validation counter.
    pub fn validate(
        &mut self,
        cert: &Certificate,
        name: &DnsName,
        today: u32,
    ) -> Result<(), ValidationError> {
        self.validations += 1;
        if !self.trusted_issuers.contains(&cert.issuer) {
            return Err(ValidationError::UntrustedIssuer(cert.issuer.clone()));
        }
        if today < cert.not_before_day {
            return Err(ValidationError::NotYetValid {
                today,
                not_before_day: cert.not_before_day,
            });
        }
        if today > cert.not_after_day {
            return Err(ValidationError::Expired {
                today,
                not_after_day: cert.not_after_day,
            });
        }
        if self.revoked_serials.contains(&cert.serial) {
            return Err(ValidationError::Revoked(cert.serial));
        }
        if !cert.covers(name) {
            return Err(ValidationError::NameMismatch(name.clone()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::KnownIssuer;
    use crate::cert::CertificateBuilder;
    use origin_dns::name::name;

    fn cert() -> Certificate {
        CertificateBuilder::new(name("www.example.com"))
            .san(name("*.cdn.example.com"))
            .issuer(KnownIssuer::CloudflareEcc.display_name())
            .validity(10, 100)
            .serial(77)
            .build()
    }

    #[test]
    fn valid_cert_passes_and_counts() {
        let mut v = Validator::trust_all_known();
        assert!(v.validate(&cert(), &name("www.example.com"), 50).is_ok());
        assert!(v
            .validate(&cert(), &name("img.cdn.example.com"), 50)
            .is_ok());
        assert_eq!(v.validations(), 2);
    }

    #[test]
    fn untrusted_issuer_fails() {
        let mut v = Validator::new(vec![]);
        let err = v
            .validate(&cert(), &name("www.example.com"), 50)
            .unwrap_err();
        assert!(matches!(err, ValidationError::UntrustedIssuer(_)));
        // Failure still counts as a validation performed.
        assert_eq!(v.validations(), 1);
    }

    #[test]
    fn validity_window_checked() {
        let mut v = Validator::trust_all_known();
        assert!(matches!(
            v.validate(&cert(), &name("www.example.com"), 5),
            Err(ValidationError::NotYetValid { .. })
        ));
        assert!(matches!(
            v.validate(&cert(), &name("www.example.com"), 101),
            Err(ValidationError::Expired { .. })
        ));
    }

    #[test]
    fn name_mismatch_fails() {
        let mut v = Validator::trust_all_known();
        let err = v.validate(&cert(), &name("other.com"), 50).unwrap_err();
        assert_eq!(err, ValidationError::NameMismatch(name("other.com")));
    }

    #[test]
    fn revocation_checked() {
        let mut v = Validator::trust_all_known();
        v.revoke(77);
        assert_eq!(
            v.validate(&cert(), &name("www.example.com"), 50),
            Err(ValidationError::Revoked(77))
        );
    }

    #[test]
    fn reset_counter() {
        let mut v = Validator::trust_all_known();
        v.validate(&cert(), &name("www.example.com"), 50).ok();
        v.reset_validations();
        assert_eq!(v.validations(), 0);
    }

    #[test]
    fn manual_trust() {
        let mut v = Validator::new(vec![]);
        v.trust(KnownIssuer::CloudflareEcc.display_name());
        assert!(v.validate(&cert(), &name("www.example.com"), 50).is_ok());
    }
}
