//! §6.5: SAN, ORIGIN, or Secondary Certificates?
//!
//! The paper weighs three ways an operator can make names coalescable
//! and the wire costs of each:
//!
//! 1. **Least-effort SAN additions** — add only the coalescable names
//!    each site actually needs (the paper's recommendation; ≤7 names
//!    covers 75% of sites).
//! 2. **One giant SAN certificate** — a single certificate carrying
//!    every hosted name. Permitted by IETF standards but rejected:
//!    beyond one 16 KB TLS record the handshake grows extra flights,
//!    and browsers fail outright on extreme certs
//!    (`10000-sans.badssl.com`).
//! 3. **Secondary certificate frames**
//!    (draft-ietf-httpbis-http2-secondary-certs) — keep the base
//!    certificate small and send additional certificates on stream 0
//!    on demand. Saves the base handshake but retransmits a complete
//!    X.509 (key + signature, the largest fields) per extra scope.
//!
//! This module prices all three so the trade-off is quantitative.

use crate::cert::{Certificate, CertificateBuilder, KeyType};
use origin_dns::DnsName;

/// One 16 KB TLS record (RFC 8446 §5.1) — the §6.5 threshold.
pub const TLS_RECORD_BYTES: u64 = 16 * 1024;

/// How an operator makes extra names coalescable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertStrategy {
    /// Add only the needed names to the existing certificate.
    LeastEffortSan,
    /// One certificate carrying every hosted name.
    GiantSan,
    /// Small base certificate + secondary CERTIFICATE frames on
    /// demand.
    SecondaryCerts,
}

/// Wire-cost breakdown of a strategy for one connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCost {
    /// Bytes of certificate material in the TLS handshake itself.
    pub handshake_cert_bytes: u64,
    /// Bytes of certificate material sent post-handshake (secondary
    /// certificate frames).
    pub post_handshake_bytes: u64,
    /// Extra TLS record flights in the handshake beyond the first.
    pub extra_flights: u32,
    /// Whether real browsers are known to fail on this configuration
    /// (the `10000-sans.badssl.com` SSL-protocol-error regime).
    pub browser_breakage_risk: bool,
}

impl StrategyCost {
    /// Total certificate bytes moved for the connection.
    pub fn total_bytes(&self) -> u64 {
        self.handshake_cert_bytes + self.post_handshake_bytes
    }
}

/// Fixed per-certificate overhead a secondary certificate re-transmits
/// (public key + signature + skeleton) even when it carries one name.
fn base_cert_bytes(key: KeyType) -> u64 {
    CertificateBuilder::new(origin_dns::name::name("x.example"))
        .key_type(key)
        .build()
        .wire_size()
}

/// Price a strategy for a site that needs `needed_names` coalescable
/// names beyond its base certificate, on an infrastructure hosting
/// `total_hosted_names` (the giant-cert denominator). `used_fraction`
/// is the share of secondary scopes a typical connection actually
/// requests (secondary certs are on-demand).
pub fn cost(
    strategy: CertStrategy,
    base_cert: &Certificate,
    needed_names: &[DnsName],
    total_hosted_names: u64,
    used_fraction: f64,
) -> StrategyCost {
    let per_name: u64 = needed_names
        .iter()
        .map(|n| n.wire_len() as u64 + 2)
        .sum::<u64>()
        / needed_names.len().max(1) as u64;
    match strategy {
        CertStrategy::LeastEffortSan => {
            let added: u64 = needed_names.iter().map(|n| n.wire_len() as u64 + 2).sum();
            let size = base_cert.wire_size() + added;
            StrategyCost {
                handshake_cert_bytes: size,
                post_handshake_bytes: 0,
                extra_flights: extra_flights(size),
                browser_breakage_risk: false,
            }
        }
        CertStrategy::GiantSan => {
            // Average name length from the needed set, scaled to the
            // whole infrastructure.
            let per = per_name.max(20);
            let size = base_cert.wire_size() + per * total_hosted_names;
            StrategyCost {
                handshake_cert_bytes: size,
                post_handshake_bytes: 0,
                extra_flights: extra_flights(size),
                // Browsers present SSL protocol errors on extreme
                // certificates (§6.5, 10000-sans.badssl.com).
                browser_breakage_risk: total_hosted_names >= 5_000,
            }
        }
        CertStrategy::SecondaryCerts => {
            let base = base_cert.wire_size();
            // Each used scope costs a complete certificate: skeleton +
            // key + signature + its names.
            let scopes = (needed_names.len() as f64 * used_fraction).ceil() as u64;
            let per_secondary = base_cert_bytes(base_cert.key_type) + per_name;
            StrategyCost {
                handshake_cert_bytes: base,
                post_handshake_bytes: scopes * per_secondary,
                extra_flights: extra_flights(base),
                browser_breakage_risk: false,
            }
        }
    }
}

fn extra_flights(cert_bytes: u64) -> u32 {
    if cert_bytes == 0 {
        0
    } else {
        ((cert_bytes - 1) / TLS_RECORD_BYTES) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    fn base() -> Certificate {
        CertificateBuilder::new(name("site.example"))
            .san(name("*.site.example"))
            .build()
    }

    fn needed() -> Vec<DnsName> {
        vec![
            name("cdnjs.cloudflare.com"),
            name("fonts.gstatic.com"),
            name("www.google-analytics.com"),
        ]
    }

    #[test]
    fn least_effort_stays_in_one_record() {
        let c = cost(
            CertStrategy::LeastEffortSan,
            &base(),
            &needed(),
            1_000_000,
            1.0,
        );
        assert_eq!(c.extra_flights, 0);
        assert!(!c.browser_breakage_risk);
        assert!(c.total_bytes() < TLS_RECORD_BYTES);
        assert_eq!(c.post_handshake_bytes, 0);
    }

    #[test]
    fn giant_san_blows_the_record_budget() {
        // A CDN hosting a million names cannot ship one certificate
        // (§4.3: "a single large certificate with all hosted names …
        // is unreasonable").
        let c = cost(CertStrategy::GiantSan, &base(), &needed(), 1_000_000, 1.0);
        assert!(c.extra_flights > 100);
        assert!(c.browser_breakage_risk);
        // Even a 1000-name cert exceeds one record.
        let c = cost(CertStrategy::GiantSan, &base(), &needed(), 1_000, 1.0);
        assert!(c.extra_flights >= 1, "flights {}", c.extra_flights);
    }

    #[test]
    fn secondary_certs_keep_handshake_small_but_pay_per_scope() {
        let c = cost(
            CertStrategy::SecondaryCerts,
            &base(),
            &needed(),
            1_000_000,
            1.0,
        );
        assert_eq!(c.extra_flights, 0, "base handshake stays one record");
        assert!(c.post_handshake_bytes > 0);
        // Each secondary carries a full key+signature: more expensive
        // per name than SAN additions (§6.5's criticism).
        let san = cost(
            CertStrategy::LeastEffortSan,
            &base(),
            &needed(),
            1_000_000,
            1.0,
        );
        let san_added = san.handshake_cert_bytes - base().wire_size();
        assert!(
            c.post_handshake_bytes > san_added * 3,
            "secondary {} vs san-added {san_added}",
            c.post_handshake_bytes
        );
    }

    #[test]
    fn on_demand_fraction_scales_secondary_cost() {
        let all = cost(CertStrategy::SecondaryCerts, &base(), &needed(), 0, 1.0);
        let some = cost(CertStrategy::SecondaryCerts, &base(), &needed(), 0, 0.34);
        assert!(some.post_handshake_bytes < all.post_handshake_bytes);
        assert!(some.post_handshake_bytes > 0);
    }

    #[test]
    fn crossover_point_exists() {
        // For small infrastructures a giant SAN is fine; the
        // crossover where it exceeds one record sits in the hundreds
        // of names — matching §6.5's observed CA limits (100–2000).
        let mut crossover = None;
        for n in (50..3_000).step_by(50) {
            let c = cost(CertStrategy::GiantSan, &base(), &needed(), n, 1.0);
            if c.extra_flights > 0 {
                crossover = Some(n);
                break;
            }
        }
        let n = crossover.expect("crossover in range");
        assert!((200..=1_000).contains(&n), "crossover at {n}");
    }
}
