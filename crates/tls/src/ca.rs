//! Certificate authorities and issuance policy.

use crate::cert::{Certificate, KeyType};
use crate::ctlog::CtLogSet;
use origin_dns::DnsName;
use std::fmt;

/// The certificate issuers the paper's Table 4 observes, with their
/// documented SAN-count issuance limits (§6.5): Let's Encrypt,
/// DigiCert and GoDaddy cap at 100 names per certificate, Comodo at
/// 2000, and a few CAs (cPanel, DFN-Verein, GlobalSign CloudSSL) are
/// observed issuing >800-name certificates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnownIssuer {
    /// Google Trust Services CA 101.
    GoogleTrustServices,
    /// Let's Encrypt (R3).
    LetsEncrypt,
    /// Amazon.
    Amazon,
    /// Cloudflare Inc ECC CA-3 — the deployment CDN's issuer.
    CloudflareEcc,
    /// DigiCert SHA2 High Assurance Server CA.
    DigiCertHighAssurance,
    /// DigiCert SHA2 Secure Server CA.
    DigiCertSecureServer,
    /// Sectigo RSA DV Secure Server CA.
    Sectigo,
    /// GoDaddy Secure Certificate Authority - G2.
    GoDaddy,
    /// DigiCert TLS RSA SHA256 2020 CA1.
    DigiCertTlsRsa,
    /// GeoTrust RSA CA 2018.
    GeoTrust,
    /// Comodo (2000-name SAN limit).
    Comodo,
}

impl KnownIssuer {
    /// Display name matching the paper's Table 4 rows.
    pub fn display_name(self) -> &'static str {
        match self {
            KnownIssuer::GoogleTrustServices => "Google Trust Services CA 101",
            KnownIssuer::LetsEncrypt => "Let's Encrypt (R3)",
            KnownIssuer::Amazon => "Amazon",
            KnownIssuer::CloudflareEcc => "Cloudflare Inc ECC CA-3",
            KnownIssuer::DigiCertHighAssurance => "DigiCert SHA2 High Assurance Server CA",
            KnownIssuer::DigiCertSecureServer => "DigiCert SHA2 Secure Server CA",
            KnownIssuer::Sectigo => "Sectigo RSA DV Secure Server CA",
            KnownIssuer::GoDaddy => "GoDaddy Secure Certificate Authority - G2",
            KnownIssuer::DigiCertTlsRsa => "DigiCert TLS RSA SHA256 2020 CA1",
            KnownIssuer::GeoTrust => "GeoTrust RSA CA 2018",
            KnownIssuer::Comodo => "Comodo RSA Domain Validation Secure Server CA",
        }
    }

    /// Maximum DNS names per issued certificate.
    pub fn san_limit(self) -> usize {
        match self {
            KnownIssuer::LetsEncrypt
            | KnownIssuer::DigiCertHighAssurance
            | KnownIssuer::DigiCertSecureServer
            | KnownIssuer::DigiCertTlsRsa
            | KnownIssuer::GoDaddy => 100,
            KnownIssuer::Comodo => 2_000,
            // Others are unobserved in the paper's limit table; use a
            // generous ceiling comparable to the observed >800 issuers.
            _ => 4_096,
        }
    }

    /// Default key type for leaves from this issuer.
    pub fn key_type(self) -> KeyType {
        match self {
            KnownIssuer::CloudflareEcc | KnownIssuer::GoogleTrustServices => KeyType::EcdsaP256,
            _ => KeyType::Rsa2048,
        }
    }

    /// All issuers in Table 4 order.
    pub fn all() -> &'static [KnownIssuer] {
        &[
            KnownIssuer::GoogleTrustServices,
            KnownIssuer::LetsEncrypt,
            KnownIssuer::Amazon,
            KnownIssuer::CloudflareEcc,
            KnownIssuer::DigiCertHighAssurance,
            KnownIssuer::DigiCertSecureServer,
            KnownIssuer::Sectigo,
            KnownIssuer::GoDaddy,
            KnownIssuer::DigiCertTlsRsa,
            KnownIssuer::GeoTrust,
        ]
    }
}

/// Issuance errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaError {
    /// The request exceeds the CA's SAN-count limit.
    TooManySans {
        /// Names requested.
        requested: usize,
        /// The CA's limit.
        limit: usize,
    },
    /// No names requested.
    NoNames,
}

impl fmt::Display for CaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaError::TooManySans { requested, limit } => {
                write!(f, "requested {requested} SANs exceeds CA limit of {limit}")
            }
            CaError::NoNames => write!(f, "certificate request contains no names"),
        }
    }
}

impl std::error::Error for CaError {}

/// A certificate authority: issues and reissues leaf certificates,
/// logging each issuance to Certificate Transparency.
pub struct CertificateAuthority {
    issuer: KnownIssuer,
    next_serial: u64,
    issued: u64,
    /// Validity period for new leaves, in days (90 = Let's Encrypt
    /// style).
    pub validity_days: u32,
}

impl CertificateAuthority {
    /// New CA for a known issuer.
    pub fn new(issuer: KnownIssuer) -> Self {
        CertificateAuthority {
            issuer,
            next_serial: 1,
            issued: 0,
            validity_days: 90,
        }
    }

    /// The issuer identity.
    pub fn issuer(&self) -> KnownIssuer {
        self.issuer
    }

    /// Total certificates issued (including reissues).
    pub fn issued_count(&self) -> u64 {
        self.issued
    }

    /// Issue a certificate for `subject` with additional SANs, valid
    /// from `today`. Every issuance is appended to the CT logs.
    pub fn issue(
        &mut self,
        subject: DnsName,
        extra_sans: &[DnsName],
        today: u32,
        ct: &mut CtLogSet,
    ) -> Result<Certificate, CaError> {
        let mut sans = vec![subject.clone()];
        for n in extra_sans {
            if !sans.contains(n) {
                sans.push(n.clone());
            }
        }
        if sans.is_empty() {
            return Err(CaError::NoNames);
        }
        let limit = self.issuer.san_limit();
        if sans.len() > limit {
            return Err(CaError::TooManySans {
                requested: sans.len(),
                limit,
            });
        }
        let cert = Certificate {
            serial: self.next_serial,
            subject,
            sans,
            issuer: self.issuer.display_name().to_string(),
            not_before_day: today,
            not_after_day: today + self.validity_days,
            key_type: self.issuer.key_type(),
        };
        self.next_serial += 1;
        self.issued += 1;
        ct.log(&cert);
        Ok(cert)
    }

    /// Reissue an existing certificate with additional SAN entries —
    /// the §5.1 operation ("certificates were renewed with the third
    /// party domain added to the SAN"). The subject and existing SANs
    /// are preserved; a fresh serial and validity window are assigned.
    pub fn reissue_with_sans(
        &mut self,
        cert: &Certificate,
        additional: &[DnsName],
        today: u32,
        ct: &mut CtLogSet,
    ) -> Result<Certificate, CaError> {
        let extra: Vec<DnsName> = cert.sans[1..]
            .iter()
            .chain(additional.iter())
            .cloned()
            .collect();
        self.issue(cert.subject.clone(), &extra, today, ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    #[test]
    fn issue_assigns_serial_and_logs() {
        let mut ca = CertificateAuthority::new(KnownIssuer::LetsEncrypt);
        let mut ct = CtLogSet::default_operators();
        let c1 = ca.issue(name("a.com"), &[], 0, &mut ct).unwrap();
        let c2 = ca.issue(name("b.com"), &[], 0, &mut ct).unwrap();
        assert_eq!(c1.serial, 1);
        assert_eq!(c2.serial, 2);
        assert_eq!(ca.issued_count(), 2);
        // Each issuance is submitted to all three default CT logs.
        assert_eq!(ct.total_entries(), 6);
        assert_eq!(c1.issuer, "Let's Encrypt (R3)");
    }

    #[test]
    fn san_limit_enforced() {
        let mut ca = CertificateAuthority::new(KnownIssuer::LetsEncrypt);
        let mut ct = CtLogSet::default_operators();
        let sans: Vec<DnsName> = (0..100).map(|i| name(&format!("h{i}.a.com"))).collect();
        let err = ca.issue(name("a.com"), &sans, 0, &mut ct).unwrap_err();
        assert_eq!(
            err,
            CaError::TooManySans {
                requested: 101,
                limit: 100
            }
        );
    }

    #[test]
    fn comodo_allows_large_certs() {
        let mut ca = CertificateAuthority::new(KnownIssuer::Comodo);
        let mut ct = CtLogSet::default_operators();
        let sans: Vec<DnsName> = (0..1_500).map(|i| name(&format!("h{i}.a.com"))).collect();
        let c = ca.issue(name("a.com"), &sans, 0, &mut ct).unwrap();
        assert_eq!(c.san_count(), 1_501);
    }

    #[test]
    fn reissue_preserves_and_extends() {
        let mut ca = CertificateAuthority::new(KnownIssuer::CloudflareEcc);
        let mut ct = CtLogSet::default_operators();
        let orig = ca
            .issue(name("site.com"), &[name("*.site.com")], 10, &mut ct)
            .unwrap();
        let re = ca
            .reissue_with_sans(&orig, &[name("cdnjs.cloudflare.com")], 20, &mut ct)
            .unwrap();
        assert!(re.covers(&name("site.com")));
        assert!(re.covers(&name("www.site.com")));
        assert!(re.covers(&name("cdnjs.cloudflare.com")));
        assert_ne!(re.serial, orig.serial);
        assert_eq!(re.not_before_day, 20);
    }

    #[test]
    fn reissue_dedupes() {
        let mut ca = CertificateAuthority::new(KnownIssuer::CloudflareEcc);
        let mut ct = CtLogSet::default_operators();
        let orig = ca
            .issue(name("site.com"), &[name("x.com")], 0, &mut ct)
            .unwrap();
        let re = ca
            .reissue_with_sans(&orig, &[name("x.com")], 0, &mut ct)
            .unwrap();
        assert_eq!(re.san_count(), 2);
    }

    #[test]
    fn issuer_catalog_matches_table4() {
        assert_eq!(KnownIssuer::all().len(), 10);
        assert_eq!(
            KnownIssuer::GoogleTrustServices.display_name(),
            "Google Trust Services CA 101"
        );
        assert_eq!(KnownIssuer::LetsEncrypt.san_limit(), 100);
        assert_eq!(KnownIssuer::Comodo.san_limit(), 2_000);
    }

    #[test]
    fn cloudflare_issues_ecdsa() {
        assert_eq!(KnownIssuer::CloudflareEcc.key_type(), KeyType::EcdsaP256);
        assert_eq!(KnownIssuer::LetsEncrypt.key_type(), KeyType::Rsa2048);
    }
}
