//! Certificate and TLS model.
//!
//! Everything the paper asks of "certificates" is structural: which
//! DNS names a certificate covers (SAN membership and RFC 6125
//! wildcard matching), who issued it, how big it is on the wire (the
//! §6.5 16 KB-TLS-record discussion), how issuance load lands on
//! Certificate Transparency logs (§6.4), and how clients validate
//! chains. This crate models exactly that — no real cryptography, but
//! the full decision surface, so the §4 certificate-modification
//! planner and the §5 reissue experiment run against the same checks
//! real clients perform.
//!
//! - [`san`] — name matching per RFC 6125 (wildcards cover exactly one
//!   left-most label).
//! - [`alpn`] — RFC 7301 application-protocol negotiation (server
//!   preference), the switch between h2 and the HTTP/1.1 fallback in
//!   the mixed-protocol universe.
//! - [`cert`] — [`Certificate`] with SAN list, issuer, validity,
//!   serial, and a DER-calibrated wire-size estimator.
//! - [`ca`] — [`CertificateAuthority`] with per-CA SAN-count limits
//!   (Let's Encrypt 100, Comodo 2000, …) and reissue support.
//! - [`ctlog`] — append-only Certificate Transparency ledger with
//!   per-operator load accounting.
//! - [`validate`] — trust-store chain validation and a validation
//!   counter (the paper's "certificate validations" metric).
//! - [`resumption`] — TLS 1.3 session-ticket cache with per-policy
//!   redemption scope (exact host vs certificate-wide, Sy et al.).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpn;
pub mod ca;
pub mod cert;
pub mod ctlog;
pub mod resumption;
pub mod san;
pub mod strategy;
pub mod validate;

pub use alpn::{negotiate as alpn_negotiate, AlpnProtocol};
pub use ca::{CaError, CertificateAuthority, KnownIssuer};
pub use cert::{Certificate, CertificateBuilder, KeyType};
pub use ctlog::{CtLog, CtLogSet};
pub use resumption::{ResumptionScope, SessionTicket, SessionTicketCache};
pub use san::{covers, wildcard_matches};
pub use strategy::{cost as strategy_cost, CertStrategy, StrategyCost};
pub use validate::{ValidationError, Validator};
