//! TLS 1.3 session-ticket cache with configurable resumption scope.
//!
//! Sy et al. ("Enhanced Performance for the encrypted Web through TLS
//! Resumption across Hostnames") observe that a client may resume a
//! session with any server that can prove authority over the ticket's
//! origin — in practice, any host covered by the same certificate.
//! That turns resumption into a coalescing-like treatment: the scope
//! at which tickets are shared is a policy knob, not a protocol
//! constant.
//!
//! [`SessionTicketCache`] models the client side of that policy. A
//! ticket is banked when a full TLS 1.3 (or QUIC 1-RTT) handshake
//! completes, filed under a key derived from the configured
//! [`ResumptionScope`]; redeeming one removes it (tickets are
//! single-use, per RFC 8446 §C.4's reuse guidance), and a redemption
//! whose issuing host differs from the redeeming host is the
//! cross-hostname case the policy exists to enable.

use std::collections::HashMap;

/// How widely a banked session ticket may be redeemed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumptionScope {
    /// Classic behavior: a ticket resumes only the exact host that
    /// issued it.
    ExactHost,
    /// Cross-hostname resumption: a ticket resumes any host presenting
    /// the same certificate (keyed by serial), per Sy et al.
    Certificate,
}

/// Cache key under a given scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TicketKey {
    Host(String),
    Cert(u64),
}

/// One banked ticket: enough to tell who issued it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Host whose handshake issued the ticket.
    pub issuing_host: String,
}

/// A client-side session-ticket store.
#[derive(Debug, Clone)]
pub struct SessionTicketCache {
    scope: ResumptionScope,
    tickets: HashMap<TicketKey, Vec<SessionTicket>>,
    issued: u64,
    redeemed: u64,
}

impl SessionTicketCache {
    /// Empty cache with the given redemption scope.
    pub fn new(scope: ResumptionScope) -> Self {
        SessionTicketCache {
            scope,
            tickets: HashMap::new(),
            issued: 0,
            redeemed: 0,
        }
    }

    /// The configured scope.
    pub fn scope(&self) -> ResumptionScope {
        self.scope
    }

    fn key(&self, host: &str, cert_serial: u64) -> TicketKey {
        match self.scope {
            ResumptionScope::ExactHost => TicketKey::Host(host.to_string()),
            ResumptionScope::Certificate => TicketKey::Cert(cert_serial),
        }
    }

    /// Bank a ticket issued by a completed full handshake with `host`,
    /// which presented the certificate with `cert_serial`.
    pub fn issue(&mut self, host: &str, cert_serial: u64) {
        self.issued += 1;
        self.tickets
            .entry(self.key(host, cert_serial))
            .or_default()
            .push(SessionTicket {
                issuing_host: host.to_string(),
            });
    }

    /// Redeem (and consume) the most recently banked ticket usable for
    /// a handshake with `host` under `cert_serial`, if any.
    pub fn redeem(&mut self, host: &str, cert_serial: u64) -> Option<SessionTicket> {
        let key = self.key(host, cert_serial);
        let bucket = self.tickets.get_mut(&key)?;
        let ticket = bucket.pop()?;
        if bucket.is_empty() {
            self.tickets.remove(&key);
        }
        self.redeemed += 1;
        Some(ticket)
    }

    /// Tickets currently usable for `host` under `cert_serial`.
    pub fn available(&self, host: &str, cert_serial: u64) -> usize {
        self.tickets
            .get(&self.key(host, cert_serial))
            .map_or(0, Vec::len)
    }

    /// Tickets banked over the cache's lifetime.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Tickets redeemed over the cache's lifetime (≤ [`issued`]
    /// always — tickets are single-use).
    ///
    /// [`issued`]: Self::issued
    pub fn redeemed(&self) -> u64 {
        self.redeemed
    }

    /// Drop every banked ticket (counters persist).
    pub fn clear(&mut self) {
        self.tickets.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_host_scope_does_not_cross_hostnames() {
        let mut cache = SessionTicketCache::new(ResumptionScope::ExactHost);
        cache.issue("a.example.com", 7);
        assert_eq!(cache.available("b.example.com", 7), 0);
        assert!(cache.redeem("b.example.com", 7).is_none());
        let t = cache.redeem("a.example.com", 7).unwrap();
        assert_eq!(t.issuing_host, "a.example.com");
    }

    #[test]
    fn certificate_scope_resumes_across_hostnames_single_use() {
        let mut cache = SessionTicketCache::new(ResumptionScope::Certificate);
        cache.issue("a.example.com", 7);
        let t = cache.redeem("b.example.com", 7).unwrap();
        assert_eq!(t.issuing_host, "a.example.com");
        // Single-use: the ticket is gone.
        assert!(cache.redeem("b.example.com", 7).is_none());
        // Different certificate, different scope.
        cache.issue("a.example.com", 7);
        assert!(cache.redeem("a.example.com", 8).is_none());
        assert!(cache.redeemed() <= cache.issued());
    }
}
