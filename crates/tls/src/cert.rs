//! Leaf certificates and their wire-size model.

use crate::san;
use origin_dns::DnsName;

/// Subject public key algorithm. Key type dominates base certificate
/// size: RSA-2048 leaves are ≈400 bytes larger than ECDSA P-256 ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyType {
    /// RSA with 2048-bit modulus.
    Rsa2048,
    /// ECDSA over P-256 — what the deployment CDN issues by default.
    EcdsaP256,
}

/// A leaf (end-entity) certificate.
///
/// Validity is measured in abstract days since an epoch so the model
/// does not depend on wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Unique serial number assigned by the issuing CA.
    pub serial: u64,
    /// Subject common name.
    pub subject: DnsName,
    /// Subject Alternative Names (exact names and wildcard patterns).
    /// The subject CN is conventionally repeated here.
    pub sans: Vec<DnsName>,
    /// Display name of the issuing CA (Table 4 vocabulary).
    pub issuer: String,
    /// First valid day (inclusive).
    pub not_before_day: u32,
    /// Last valid day (inclusive).
    pub not_after_day: u32,
    /// Subject key algorithm.
    pub key_type: KeyType,
}

impl Certificate {
    /// Does this certificate cover `name` (exact or wildcard SAN)?
    pub fn covers(&self, name: &DnsName) -> bool {
        san::any_covers(&self.sans, name)
    }

    /// Is the certificate valid on `day`?
    pub fn valid_on(&self, day: u32) -> bool {
        (self.not_before_day..=self.not_after_day).contains(&day)
    }

    /// Number of DNS SAN entries.
    pub fn san_count(&self) -> usize {
        self.sans.len()
    }

    /// Estimated DER-encoded size in bytes.
    ///
    /// Calibrated against real leaf certificates: an ECDSA P-256 leaf
    /// with a handful of SANs is ≈1.0 KB, RSA-2048 ≈1.4 KB, and each
    /// SAN entry adds its dNSName encoding (wire length + 2 bytes of
    /// ASN.1 tag/length overhead). This is the quantity the §6.5
    /// 16 KB-record analysis needs: `10000-sans.badssl.com`-style
    /// certificates blow through multiple records.
    pub fn wire_size(&self) -> u64 {
        let base: u64 = match self.key_type {
            KeyType::Rsa2048 => 1_000,
            KeyType::EcdsaP256 => 600,
        };
        // tbsCertificate skeleton + signature + issuer/subject RDNs.
        let skeleton: u64 = 380;
        let san_bytes: u64 = self.sans.iter().map(|n| n.wire_len() as u64 + 2).sum();
        base + skeleton + san_bytes
    }

    /// Number of 16 KB TLS records the certificate alone occupies.
    pub fn tls_records(&self) -> u64 {
        self.wire_size().div_ceil(16 * 1024).max(1)
    }

    /// Byte length of the encoded SAN extension alone — what the §5.1
    /// equal-byte-padding experiment design controls for (Figure 6).
    pub fn san_bytes(&self) -> u64 {
        self.sans.iter().map(|n| n.wire_len() as u64 + 2).sum()
    }
}

/// Builder for certificates outside the CA issuance path (tests,
/// synthetic dataset bootstrap).
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    subject: DnsName,
    sans: Vec<DnsName>,
    issuer: String,
    not_before_day: u32,
    not_after_day: u32,
    key_type: KeyType,
    serial: u64,
}

impl CertificateBuilder {
    /// Start building a certificate for `subject`. The subject is
    /// automatically the first SAN.
    pub fn new(subject: DnsName) -> Self {
        CertificateBuilder {
            sans: vec![subject.clone()],
            subject,
            issuer: "Test CA".to_string(),
            not_before_day: 0,
            not_after_day: 90,
            key_type: KeyType::EcdsaP256,
            serial: 0,
        }
    }

    /// Add a SAN entry (deduplicated, order-preserving).
    pub fn san(mut self, name: DnsName) -> Self {
        if !self.sans.contains(&name) {
            self.sans.push(name);
        }
        self
    }

    /// Add many SAN entries.
    pub fn sans<I: IntoIterator<Item = DnsName>>(mut self, names: I) -> Self {
        for n in names {
            if !self.sans.contains(&n) {
                self.sans.push(n);
            }
        }
        self
    }

    /// Set the issuer display name.
    pub fn issuer(mut self, issuer: &str) -> Self {
        self.issuer = issuer.to_string();
        self
    }

    /// Set the validity window in days.
    pub fn validity(mut self, not_before_day: u32, not_after_day: u32) -> Self {
        assert!(not_before_day <= not_after_day, "inverted validity window");
        self.not_before_day = not_before_day;
        self.not_after_day = not_after_day;
        self
    }

    /// Set the key type.
    pub fn key_type(mut self, kt: KeyType) -> Self {
        self.key_type = kt;
        self
    }

    /// Set the serial number.
    pub fn serial(mut self, serial: u64) -> Self {
        self.serial = serial;
        self
    }

    /// Finish.
    pub fn build(self) -> Certificate {
        Certificate {
            serial: self.serial,
            subject: self.subject,
            sans: self.sans,
            issuer: self.issuer,
            not_before_day: self.not_before_day,
            not_after_day: self.not_after_day,
            key_type: self.key_type,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    fn cert() -> Certificate {
        CertificateBuilder::new(name("www.example.com"))
            .san(name("example.com"))
            .san(name("*.static.example.com"))
            .build()
    }

    #[test]
    fn subject_is_first_san() {
        let c = cert();
        assert_eq!(c.sans[0], name("www.example.com"));
        assert_eq!(c.san_count(), 3);
    }

    #[test]
    fn covers_exact_and_wildcard_sans() {
        let c = cert();
        assert!(c.covers(&name("www.example.com")));
        assert!(c.covers(&name("example.com")));
        assert!(c.covers(&name("img.static.example.com")));
        assert!(!c.covers(&name("static.example.com")));
        assert!(!c.covers(&name("evil.com")));
    }

    #[test]
    fn builder_dedupes_sans() {
        let c = CertificateBuilder::new(name("a.com"))
            .san(name("a.com"))
            .sans(vec![name("b.com"), name("b.com")])
            .build();
        assert_eq!(c.san_count(), 2);
    }

    #[test]
    fn validity_window() {
        let c = CertificateBuilder::new(name("a.com"))
            .validity(10, 100)
            .build();
        assert!(!c.valid_on(9));
        assert!(c.valid_on(10));
        assert!(c.valid_on(100));
        assert!(!c.valid_on(101));
    }

    #[test]
    #[should_panic(expected = "inverted validity")]
    fn inverted_validity_panics() {
        CertificateBuilder::new(name("a.com")).validity(5, 1);
    }

    #[test]
    fn wire_size_grows_with_sans() {
        let small = CertificateBuilder::new(name("a.com")).build();
        let big = CertificateBuilder::new(name("a.com"))
            .sans((0..100).map(|i| name(&format!("host{i}.a.com"))))
            .build();
        assert!(big.wire_size() > small.wire_size());
        assert!(small.wire_size() < 1_200);
    }

    #[test]
    fn rsa_larger_than_ecdsa() {
        let e = CertificateBuilder::new(name("a.com"))
            .key_type(KeyType::EcdsaP256)
            .build();
        let r = CertificateBuilder::new(name("a.com"))
            .key_type(KeyType::Rsa2048)
            .build();
        assert!(r.wire_size() > e.wire_size());
    }

    #[test]
    fn huge_san_cert_spans_multiple_records() {
        // ~800 SANs with ~27-byte names ≈ 23 KB: the §6.5 regime where
        // the certificate no longer fits one 16 KB TLS record.
        let big = CertificateBuilder::new(name("a.com"))
            .sans((0..800).map(|i| name(&format!("subdomain-label-{i:04}.a.com"))))
            .build();
        assert!(big.tls_records() >= 2, "records={}", big.tls_records());
        let small = CertificateBuilder::new(name("a.com")).build();
        assert_eq!(small.tls_records(), 1);
    }

    #[test]
    fn san_bytes_matches_equal_length_names() {
        // The §5.1 design: control and experiment add same-length
        // third-party names so SAN byte deltas are identical.
        let exp = CertificateBuilder::new(name("site.com"))
            .san(name("unpopular.resource.com"))
            .build();
        let ctl = CertificateBuilder::new(name("site.com"))
            .san(name("00popular.resource.com"))
            .build();
        assert_eq!(exp.san_bytes(), ctl.san_bytes());
    }
}
