//! ALPN (RFC 7301) protocol negotiation.
//!
//! The mixed-protocol universe decides *per connection* whether the
//! client speaks h2 or falls back to HTTP/1.1. Deployment intent
//! lives on the server side: a modern origin advertises
//! `h2, http/1.1`, a legacy origin only `http/1.1`. The client
//! always offers both. Negotiation follows RFC 7301 §3.2: the
//! **server's** preference order wins, and an empty intersection is
//! a fatal `no_application_protocol` alert (modelled as `None`).
//!
//! Everything here is pure computation — no RNG, no I/O — so running
//! negotiation on every simulated connection setup cannot perturb
//! deterministic outputs.

use std::fmt;

/// An application protocol name as carried in the ALPN extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlpnProtocol {
    /// `h2` — HTTP/2 over TLS (RFC 9113 §3.1).
    H2,
    /// `http/1.1` (RFC 9112).
    Http11,
}

impl AlpnProtocol {
    /// The exact protocol-name bytes from the IANA registry.
    pub fn wire_id(self) -> &'static [u8] {
        match self {
            AlpnProtocol::H2 => b"h2",
            AlpnProtocol::Http11 => b"http/1.1",
        }
    }
}

impl fmt::Display for AlpnProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AlpnProtocol::H2 => "h2",
            AlpnProtocol::Http11 => "http/1.1",
        })
    }
}

/// What every simulated client offers, in client preference order.
pub const CLIENT_OFFER: &[AlpnProtocol] = &[AlpnProtocol::H2, AlpnProtocol::Http11];

/// What a modern (h2-capable) origin advertises, server preference
/// order: h2 first.
pub const MODERN_ADVERTISEMENT: &[AlpnProtocol] = &[AlpnProtocol::H2, AlpnProtocol::Http11];

/// What a legacy origin advertises: HTTP/1.1 only.
pub const LEGACY_ADVERTISEMENT: &[AlpnProtocol] = &[AlpnProtocol::Http11];

/// The advertisement for an origin that serves the given protocol to
/// this universe. `h2_capable` is the deployment fact (derived
/// deterministically from the universe seed via the site's legacy
/// flag and the per-host protocol sample).
pub fn server_advertisement(h2_capable: bool) -> &'static [AlpnProtocol] {
    if h2_capable {
        MODERN_ADVERTISEMENT
    } else {
        LEGACY_ADVERTISEMENT
    }
}

/// RFC 7301 §3.2 negotiation: the first protocol in the **server's**
/// advertisement that the client also offered. `None` models the
/// fatal `no_application_protocol` alert.
pub fn negotiate(
    client_offer: &[AlpnProtocol],
    server_advertisement: &[AlpnProtocol],
) -> Option<AlpnProtocol> {
    server_advertisement
        .iter()
        .copied()
        .find(|p| client_offer.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_preference_wins() {
        // Client prefers http/1.1, server prefers h2: h2 is chosen.
        let client = [AlpnProtocol::Http11, AlpnProtocol::H2];
        assert_eq!(
            negotiate(&client, MODERN_ADVERTISEMENT),
            Some(AlpnProtocol::H2)
        );
    }

    #[test]
    fn legacy_advertisement_forces_fallback() {
        assert_eq!(
            negotiate(CLIENT_OFFER, LEGACY_ADVERTISEMENT),
            Some(AlpnProtocol::Http11)
        );
    }

    #[test]
    fn default_universe_negotiates_h2() {
        assert_eq!(
            negotiate(CLIENT_OFFER, server_advertisement(true)),
            Some(AlpnProtocol::H2)
        );
        assert_eq!(
            negotiate(CLIENT_OFFER, server_advertisement(false)),
            Some(AlpnProtocol::Http11)
        );
    }

    #[test]
    fn empty_intersection_is_fatal() {
        let h2_only_client = [AlpnProtocol::H2];
        assert_eq!(negotiate(&h2_only_client, LEGACY_ADVERTISEMENT), None);
        assert_eq!(negotiate(&[], MODERN_ADVERTISEMENT), None);
    }

    #[test]
    fn wire_ids_match_the_iana_registry() {
        assert_eq!(AlpnProtocol::H2.wire_id(), b"h2");
        assert_eq!(AlpnProtocol::Http11.wire_id(), b"http/1.1");
        assert_eq!(AlpnProtocol::Http11.to_string(), "http/1.1");
    }
}
