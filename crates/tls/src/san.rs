//! Subject Alternative Name matching (RFC 6125 rules).

use origin_dns::DnsName;

/// Does the wildcard `pattern` (e.g. `*.example.com`) match `name`?
///
/// RFC 6125 §6.4.3 rules as implemented by browsers:
/// - the wildcard covers exactly **one** left-most label
///   (`*.example.com` matches `www.example.com` but neither
///   `example.com` nor `a.b.example.com`);
/// - the wildcard must be the entire left-most label (enforced at
///   [`DnsName`] parse time);
/// - matching is case-insensitive (names are normalized lowercase).
pub fn wildcard_matches(pattern: &DnsName, name: &DnsName) -> bool {
    if !pattern.is_wildcard() {
        return false;
    }
    let Some(parent) = pattern.parent_str() else {
        return false;
    };
    match name.parent_str() {
        Some(name_parent) => name_parent == parent,
        None => false,
    }
}

/// Does `entry` (exact name or wildcard pattern) cover `name`?
pub fn covers(entry: &DnsName, name: &DnsName) -> bool {
    if entry.is_wildcard() {
        wildcard_matches(entry, name)
    } else {
        entry == name
    }
}

/// Does any entry of a SAN list cover `name`?
pub fn any_covers<'a, I: IntoIterator<Item = &'a DnsName>>(entries: I, name: &DnsName) -> bool {
    entries.into_iter().any(|e| covers(e, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use origin_dns::name::name;

    #[test]
    fn wildcard_matches_one_label() {
        let p = name("*.example.com");
        assert!(wildcard_matches(&p, &name("www.example.com")));
        assert!(wildcard_matches(&p, &name("api.example.com")));
    }

    #[test]
    fn wildcard_does_not_match_parent() {
        let p = name("*.example.com");
        assert!(!wildcard_matches(&p, &name("example.com")));
    }

    #[test]
    fn wildcard_does_not_match_nested() {
        let p = name("*.example.com");
        assert!(!wildcard_matches(&p, &name("a.b.example.com")));
    }

    #[test]
    fn wildcard_does_not_match_sibling() {
        let p = name("*.example.com");
        assert!(!wildcard_matches(&p, &name("www.example.org")));
        assert!(!wildcard_matches(&p, &name("www.badexample.com")));
    }

    #[test]
    fn non_wildcard_pattern_never_wildcard_matches() {
        assert!(!wildcard_matches(
            &name("www.example.com"),
            &name("www.example.com")
        ));
    }

    #[test]
    fn covers_exact_and_wildcard() {
        assert!(covers(&name("www.example.com"), &name("www.example.com")));
        assert!(!covers(&name("www.example.com"), &name("api.example.com")));
        assert!(covers(&name("*.example.com"), &name("api.example.com")));
    }

    #[test]
    fn any_covers_list() {
        let sans = vec![name("example.com"), name("*.example.com")];
        assert!(any_covers(&sans, &name("example.com")));
        assert!(any_covers(&sans, &name("cdn.example.com")));
        assert!(!any_covers(&sans, &name("x.cdn.example.com")));
        let empty: Vec<DnsName> = vec![];
        assert!(!any_covers(&empty, &name("example.com")));
    }
}
