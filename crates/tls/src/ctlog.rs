//! Certificate Transparency logging (§6.4).
//!
//! The paper argues that the one-time burst of certificate reissues
//! its plan implies (modifying 37.59% of website certificates) adds
//! 5–10% to daily CA issuance and is absorbable by CT infrastructure
//! (global rate ≈257,034 certs/hour). This module gives the
//! reproduction an append-only ledger with per-operator load so that
//! claim can be checked quantitatively.

use crate::cert::Certificate;

/// One append-only CT log run by some operator.
#[derive(Debug, Clone)]
pub struct CtLog {
    /// Operator display name (e.g. "Google Argon", "Cloudflare Nimbus").
    pub operator: String,
    entries: Vec<CtEntry>,
}

/// A logged (pre-)certificate record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtEntry {
    /// Serial of the logged certificate.
    pub serial: u64,
    /// Issuer display name.
    pub issuer: String,
    /// Number of DNS SANs in the logged certificate.
    pub san_count: usize,
    /// Log index (position in this log).
    pub index: u64,
}

impl CtLog {
    /// New empty log.
    pub fn new(operator: &str) -> Self {
        CtLog {
            operator: operator.to_string(),
            entries: Vec::new(),
        }
    }

    /// Append a certificate. CT logs are append-only; there is no
    /// removal API at all.
    pub fn append(&mut self, cert: &Certificate) -> u64 {
        let index = self.entries.len() as u64;
        self.entries.push(CtEntry {
            serial: cert.serial,
            issuer: cert.issuer.clone(),
            san_count: cert.san_count(),
            index,
        });
        index
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry at an index.
    pub fn get(&self, index: u64) -> Option<&CtEntry> {
        self.entries.get(index as usize)
    }
}

/// The set of CT logs a CA submits to. Real CAs submit each
/// certificate to multiple logs run by different operators; the
/// paper's §6.4 observation is that load distributes unevenly across
/// a few large operators.
#[derive(Debug, Clone)]
pub struct CtLogSet {
    logs: Vec<CtLog>,
}

/// Global certificate issuance rate the paper quotes (§6.4), in
/// certificates per hour.
pub const GLOBAL_ISSUANCE_PER_HOUR: u64 = 257_034;

impl CtLogSet {
    /// A log set with the operators the paper names as carrying most
    /// of the load (Cloudflare and Google) plus a smaller third.
    pub fn default_operators() -> Self {
        CtLogSet {
            logs: vec![
                CtLog::new("Google Argon"),
                CtLog::new("Cloudflare Nimbus"),
                CtLog::new("DigiCert Yeti"),
            ],
        }
    }

    /// Build from explicit logs.
    pub fn new(logs: Vec<CtLog>) -> Self {
        assert!(!logs.is_empty(), "a CA must submit to at least one log");
        CtLogSet { logs }
    }

    /// Submit a certificate to every log in the set (real CAs submit
    /// to several logs to gather enough SCTs).
    pub fn log(&mut self, cert: &Certificate) {
        for l in &mut self.logs {
            l.append(cert);
        }
    }

    /// Total entries across all logs.
    pub fn total_entries(&self) -> u64 {
        self.logs.iter().map(|l| l.len() as u64).sum()
    }

    /// Per-operator entry counts.
    pub fn per_operator(&self) -> Vec<(&str, u64)> {
        self.logs
            .iter()
            .map(|l| (l.operator.as_str(), l.len() as u64))
            .collect()
    }

    /// The §6.4 feasibility check: a one-time burst of `burst` reissued
    /// certificates expressed as a fraction of the global hourly
    /// issuance rate. The paper's position is that values around or
    /// below ~1 hour of global issuance (≈257K) "would not adversely
    /// affect CT log infrastructure".
    pub fn burst_as_hours_of_global_issuance(burst: u64) -> f64 {
        burst as f64 / GLOBAL_ISSUANCE_PER_HOUR as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cert::CertificateBuilder;
    use origin_dns::name::name;

    fn cert(serial: u64) -> Certificate {
        CertificateBuilder::new(name("a.com"))
            .serial(serial)
            .build()
    }

    #[test]
    fn append_only_indexing() {
        let mut log = CtLog::new("Test Log");
        assert!(log.is_empty());
        assert_eq!(log.append(&cert(10)), 0);
        assert_eq!(log.append(&cert(11)), 1);
        assert_eq!(log.len(), 2);
        assert_eq!(log.get(0).unwrap().serial, 10);
        assert_eq!(log.get(1).unwrap().serial, 11);
        assert!(log.get(2).is_none());
    }

    #[test]
    fn set_submits_to_all_operators() {
        let mut set = CtLogSet::default_operators();
        set.log(&cert(1));
        assert_eq!(set.total_entries(), 3);
        for (_, n) in set.per_operator() {
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn burst_feasibility_math() {
        // The paper's 5000-cert experiment is a rounding error.
        let h = CtLogSet::burst_as_hours_of_global_issuance(5_000);
        assert!(h < 0.02);
        // Modifying 120,103 certificates (37.59% of the dataset) is
        // under half an hour of global issuance.
        let h = CtLogSet::burst_as_hours_of_global_issuance(120_103);
        assert!(h < 0.5, "h={h}");
    }

    #[test]
    #[should_panic(expected = "at least one log")]
    fn empty_set_panics() {
        CtLogSet::new(vec![]);
    }
}
