//! TCP + TLS connection-establishment cost model.
//!
//! The paper's model (§4.1) removes exactly the DNS and
//! "Connect (TCP+TLS)" phases for coalesced requests, so the
//! reproduction needs an explicit account of where those round trips
//! come from. [`HandshakeModel`] turns a [`LinkProfile`] into the
//! blocking durations a browser would observe for each handshake
//! variant.

use crate::link::LinkProfile;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// TLS protocol versions with distinct handshake round-trip costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsVersion {
    /// TLS 1.2: 2 RTT full handshake.
    Tls12,
    /// TLS 1.3: 1 RTT full handshake.
    Tls13,
    /// TLS 1.3 with 0-RTT resumption (§6.6 discussion).
    Tls13ZeroRtt,
}

/// Cost breakdown of establishing a new connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectionCost {
    /// TCP three-way-handshake time (client-observed: one RTT).
    pub tcp: SimDuration,
    /// TLS handshake time after TCP is up.
    pub tls: SimDuration,
}

impl ConnectionCost {
    /// Total blocking connect time (the HAR "connect"+"ssl" phases).
    pub fn total(&self) -> SimDuration {
        self.tcp + self.tls
    }
}

/// Parameters of the handshake cost model.
#[derive(Debug, Clone)]
pub struct HandshakeModel {
    /// TLS version negotiated on new connections.
    pub tls: TlsVersion,
    /// Extra round trips incurred when the server certificate exceeds
    /// one TLS record flight (large-SAN certificates, §6.5). This is
    /// the per-flight cost multiplied by `extra_cert_flights`.
    pub extra_cert_flights: u32,
    /// Whether TCP Fast Open folds part of the TLS exchange into the
    /// SYN (§6.6), saving one RTT on repeat connections.
    pub tcp_fast_open: bool,
}

impl Default for HandshakeModel {
    fn default() -> Self {
        HandshakeModel {
            tls: TlsVersion::Tls13,
            extra_cert_flights: 0,
            tcp_fast_open: false,
        }
    }
}

impl HandshakeModel {
    /// Model for a certificate whose wire size is `cert_bytes`:
    /// certificates larger than one 16 KB TLS record add one flight
    /// per additional record (§6.5).
    pub fn for_certificate(tls: TlsVersion, cert_bytes: u64) -> Self {
        const TLS_RECORD: u64 = 16 * 1024;
        let flights = if cert_bytes == 0 {
            0
        } else {
            ((cert_bytes - 1) / TLS_RECORD) as u32
        };
        HandshakeModel {
            tls,
            extra_cert_flights: flights,
            tcp_fast_open: false,
        }
    }

    /// RTT multiplier for the TLS portion of the handshake.
    fn tls_rtts(&self) -> f64 {
        let base = match self.tls {
            TlsVersion::Tls12 => 2.0,
            TlsVersion::Tls13 => 1.0,
            TlsVersion::Tls13ZeroRtt => 0.0,
        };
        base + self.extra_cert_flights as f64
    }

    /// Cost of a fresh TCP+TLS connection over `link`, with jitter.
    pub fn connect(&self, link: &LinkProfile, rng: &mut SimRng) -> ConnectionCost {
        let tcp_rtts = if self.tcp_fast_open { 0.0 } else { 1.0 };
        let tcp = scale_rtt(link, tcp_rtts, rng);
        let tls = scale_rtt(link, self.tls_rtts(), rng);
        ConnectionCost { tcp, tls }
    }

    /// Deterministic (jitter-free) connect cost; used by the
    /// analytical model where the paper subtracts the *minimum*
    /// observed DNS/connect time.
    pub fn connect_nominal(&self, link: &LinkProfile) -> ConnectionCost {
        let tcp_rtts = if self.tcp_fast_open { 0.0 } else { 1.0 };
        ConnectionCost {
            tcp: scale_nominal(link, tcp_rtts),
            tls: scale_nominal(link, self.tls_rtts()),
        }
    }
}

fn scale_rtt(link: &LinkProfile, rtts: f64, rng: &mut SimRng) -> SimDuration {
    if rtts == 0.0 {
        return SimDuration::ZERO;
    }
    let base = SimDuration::from_millis_f64(link.rtt.as_millis_f64() * rtts);
    link.jittered(base, rng)
}

fn scale_nominal(link: &LinkProfile, rtts: f64) -> SimDuration {
    SimDuration::from_millis_f64(link.rtt.as_millis_f64() * rtts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkProfile {
        LinkProfile::new(20.0, 50.0)
    }

    #[test]
    fn tls13_is_one_rtt() {
        let m = HandshakeModel::default();
        let c = m.connect_nominal(&link());
        assert_eq!(c.tcp, SimDuration::from_millis(20));
        assert_eq!(c.tls, SimDuration::from_millis(20));
        assert_eq!(c.total(), SimDuration::from_millis(40));
    }

    #[test]
    fn tls12_is_two_rtt() {
        let m = HandshakeModel {
            tls: TlsVersion::Tls12,
            ..Default::default()
        };
        assert_eq!(m.connect_nominal(&link()).tls, SimDuration::from_millis(40));
    }

    #[test]
    fn zero_rtt_has_free_tls() {
        let m = HandshakeModel {
            tls: TlsVersion::Tls13ZeroRtt,
            ..Default::default()
        };
        assert_eq!(m.connect_nominal(&link()).tls, SimDuration::ZERO);
    }

    #[test]
    fn tcp_fast_open_skips_tcp_rtt() {
        let m = HandshakeModel {
            tcp_fast_open: true,
            ..Default::default()
        };
        assert_eq!(m.connect_nominal(&link()).tcp, SimDuration::ZERO);
    }

    #[test]
    fn small_cert_adds_no_flights() {
        let m = HandshakeModel::for_certificate(TlsVersion::Tls13, 4_000);
        assert_eq!(m.extra_cert_flights, 0);
    }

    #[test]
    fn oversized_cert_adds_flights() {
        // 40 KB certificate = 3 records = 2 extra flights.
        let m = HandshakeModel::for_certificate(TlsVersion::Tls13, 40 * 1024);
        assert_eq!(m.extra_cert_flights, 2);
        let c = m.connect_nominal(&link());
        assert_eq!(c.tls, SimDuration::from_millis(60));
    }

    #[test]
    fn cert_exactly_one_record_is_free() {
        let m = HandshakeModel::for_certificate(TlsVersion::Tls13, 16 * 1024);
        assert_eq!(m.extra_cert_flights, 0);
    }

    #[test]
    fn jittered_connect_within_bounds() {
        let l = LinkProfile::new(20.0, 50.0).with_jitter(0.2);
        let m = HandshakeModel::default();
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            let c = m.connect(&l, &mut rng);
            let total = c.total().as_millis_f64();
            assert!((32.0..=48.0).contains(&total), "total={total}");
        }
    }
}
