//! Fault injection.
//!
//! Two fault classes matter for the paper's deployment story:
//!
//! 1. Ordinary packet loss/corruption (kept for workload realism, in
//!    the spirit of smoltcp's `--drop-chance`/`--corrupt-chance`
//!    example options).
//! 2. The §6.7 incident: a non-compliant HTTP/2 middlebox (an
//!    antivirus network agent) that, instead of ignoring unknown frame
//!    types as RFC 7540 §4.1 requires, tears down the TLS connection
//!    when it sees an ORIGIN frame. [`Middlebox`] models any on-path
//!    device that inspects frame type codes.

use crate::rng::SimRng;

/// Probabilistic packet-level fault injection.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability a delivered packet is corrupted.
    pub corrupt_chance: f64,
}

impl FaultInjector {
    /// No faults.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }

    /// Construct with the given probabilities (each clamped [0,1]).
    pub fn new(drop_chance: f64, corrupt_chance: f64) -> Self {
        FaultInjector {
            drop_chance: drop_chance.clamp(0.0, 1.0),
            corrupt_chance: corrupt_chance.clamp(0.0, 1.0),
        }
    }

    /// Decide the fate of one packet.
    pub fn apply(&self, rng: &mut SimRng) -> PacketFate {
        if rng.chance(self.drop_chance) {
            PacketFate::Dropped
        } else if rng.chance(self.corrupt_chance) {
            PacketFate::Corrupted
        } else {
            PacketFate::Delivered
        }
    }
}

/// Outcome of passing one packet through a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered intact.
    Delivered,
    /// Silently dropped.
    Dropped,
    /// Delivered with corrupted payload.
    Corrupted,
}

/// Verdict from a middlebox observing an HTTP/2 frame on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleboxVerdict {
    /// Frame forwarded unchanged.
    Forward,
    /// Frame silently discarded (connection survives).
    DropFrame,
    /// Connection torn down — the §6.7 failure mode.
    TearDown,
}

/// An on-path device that observes HTTP/2 frame type codes.
///
/// Implementations are deliberately ignorant of frame payloads: real
/// interception stacks key off the one-byte type field, which is all
/// the §6.7 bug needed.
pub trait Middlebox {
    /// Inspect a frame type code (the raw `u8` on the wire) and decide
    /// what happens.
    fn inspect(&self, frame_type: u8) -> MiddleboxVerdict;

    /// Human-readable name for logs and incident reports.
    fn name(&self) -> &str;
}

/// A standards-compliant pass-through (RFC 7540 §4.1: implementations
/// must ignore and discard unknown frame types — middleboxes should
/// simply forward them).
#[derive(Debug, Clone, Default)]
pub struct CompliantMiddlebox;

impl Middlebox for CompliantMiddlebox {
    fn inspect(&self, _frame_type: u8) -> MiddleboxVerdict {
        MiddleboxVerdict::Forward
    }
    fn name(&self) -> &str {
        "compliant"
    }
}

/// The §6.7 bug: any frame type outside the RFC 7540 core set tears
/// the connection down. ORIGIN (0x0c) and ALTSVC (0x0a) are both
/// "unknown" to such a stack.
#[derive(Debug, Clone)]
pub struct NonCompliantMiddlebox {
    /// Highest frame type code the stack recognizes. RFC 7540 defines
    /// 0x00 (DATA) through 0x09 (CONTINUATION).
    pub max_known_type: u8,
}

impl Default for NonCompliantMiddlebox {
    fn default() -> Self {
        // Knows only the RFC 7540 core frames.
        NonCompliantMiddlebox {
            max_known_type: 0x09,
        }
    }
}

impl Middlebox for NonCompliantMiddlebox {
    fn inspect(&self, frame_type: u8) -> MiddleboxVerdict {
        if frame_type <= self.max_known_type {
            MiddleboxVerdict::Forward
        } else {
            MiddleboxVerdict::TearDown
        }
    }
    fn name(&self) -> &str {
        "non-compliant antivirus agent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN_FRAME_TYPE: u8 = 0x0c;
    const ALTSVC_FRAME_TYPE: u8 = 0x0a;
    const DATA_FRAME_TYPE: u8 = 0x00;

    #[test]
    fn no_faults_always_delivers() {
        let f = FaultInjector::none();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(f.apply(&mut rng), PacketFate::Delivered);
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let f = FaultInjector::new(1.0, 0.0);
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(f.apply(&mut rng), PacketFate::Dropped);
    }

    #[test]
    fn probabilities_clamped() {
        let f = FaultInjector::new(7.0, -3.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }

    #[test]
    fn drop_rate_close_to_p() {
        let f = FaultInjector::new(0.15, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| f.apply(&mut rng) == PacketFate::Dropped)
            .count();
        assert!((1_300..1_700).contains(&drops), "drops={drops}");
    }

    #[test]
    fn compliant_forwards_everything() {
        let m = CompliantMiddlebox;
        assert_eq!(m.inspect(DATA_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(ORIGIN_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(0xff), MiddleboxVerdict::Forward);
    }

    #[test]
    fn non_compliant_kills_origin_frames() {
        let m = NonCompliantMiddlebox::default();
        assert_eq!(m.inspect(DATA_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(0x09), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(ALTSVC_FRAME_TYPE), MiddleboxVerdict::TearDown);
        assert_eq!(m.inspect(ORIGIN_FRAME_TYPE), MiddleboxVerdict::TearDown);
    }

    #[test]
    fn middlebox_names() {
        assert_eq!(CompliantMiddlebox.name(), "compliant");
        assert!(NonCompliantMiddlebox::default()
            .name()
            .contains("non-compliant"));
    }
}
