//! Fault injection.
//!
//! Two fault classes matter for the paper's deployment story:
//!
//! 1. Ordinary packet loss/corruption (kept for workload realism, in
//!    the spirit of smoltcp's `--drop-chance`/`--corrupt-chance`
//!    example options).
//! 2. The §6.7 incident: a non-compliant HTTP/2 middlebox (an
//!    antivirus network agent) that, instead of ignoring unknown frame
//!    types as RFC 7540 §4.1 requires, tears down the TLS connection
//!    when it sees an ORIGIN frame. [`Middlebox`] models any on-path
//!    device that inspects frame type codes.

use crate::rng::SimRng;

/// Probabilistic packet-level fault injection.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability a packet is silently dropped.
    pub drop_chance: f64,
    /// Probability a delivered packet is corrupted.
    pub corrupt_chance: f64,
}

impl FaultInjector {
    /// No faults.
    pub fn none() -> Self {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
        }
    }

    /// Construct with the given probabilities (each sanitized to \[0,1\]).
    pub fn new(drop_chance: f64, corrupt_chance: f64) -> Self {
        FaultInjector {
            drop_chance: sanitize_probability(drop_chance),
            corrupt_chance: sanitize_probability(corrupt_chance),
        }
    }

    /// Decide the fate of one packet.
    pub fn apply(&self, rng: &mut SimRng) -> PacketFate {
        if rng.chance(self.drop_chance) {
            PacketFate::Dropped
        } else if rng.chance(self.corrupt_chance) {
            PacketFate::Corrupted
        } else {
            PacketFate::Delivered
        }
    }
}

/// Coerce a probability into \[0,1\]. `f64::clamp` propagates NaN, so a
/// NaN input would survive into `SimRng::chance` and poison every
/// comparison against it; treat NaN as "no fault".
fn sanitize_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// A named bundle of fault probabilities, parseable from the CLI
/// (`drop=0.01,h421=0.005,middlebox=0.1`). One profile drives an entire
/// crawl; each page visit derives its own fault RNG from the site seed,
/// so a fixed profile yields byte-identical results at any thread count
/// and the all-zero profile is indistinguishable from a clean run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProfile {
    /// Probability a response transfer loses a packet (retransmit + backoff).
    pub drop: f64,
    /// Probability a response transfer is corrupted in flight.
    pub corrupt: f64,
    /// Base probability that a coalesced request draws `421 Misdirected
    /// Request` (edge authority-list skew). Scaled per authority by
    /// [`FaultProfile::h421_for`].
    pub h421: f64,
    /// Probability a new connection's path crosses the §6.7
    /// non-compliant middlebox, which tears down TLS on seeing an
    /// ORIGIN frame.
    pub middlebox: f64,
}

impl FaultProfile {
    /// The all-zero profile: injects nothing.
    pub fn none() -> Self {
        FaultProfile::default()
    }

    /// True when every probability is zero, i.e. the profile cannot
    /// perturb a crawl.
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.h421 == 0.0 && self.middlebox == 0.0
    }

    /// Parse a comma-separated `key=value` spec, e.g.
    /// `drop=0.01,h421=0.005,middlebox=0.1`. Keys: `drop`, `corrupt`,
    /// `h421`, `middlebox`; omitted keys default to 0. Unknown keys and
    /// malformed values are errors; out-of-range values are sanitized
    /// into \[0,1\].
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut profile = FaultProfile::none();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault `{key}` has non-numeric value `{value}`"))?;
            let p = sanitize_probability(p);
            match key.trim() {
                "drop" => profile.drop = p,
                "corrupt" => profile.corrupt = p,
                "h421" => profile.h421 = p,
                "middlebox" => profile.middlebox = p,
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(profile)
    }

    /// Render in the same `key=value` form [`FaultProfile::parse`] accepts.
    pub fn spec(&self) -> String {
        format!(
            "drop={},corrupt={},h421={},middlebox={}",
            self.drop, self.corrupt, self.h421, self.middlebox
        )
    }

    /// Per-authority 421 rate. Authority-list skew at an edge is not
    /// uniform — a missing SAN hits every request for that name — so
    /// the base rate is scaled by a deterministic per-authority factor
    /// in [0.5, 1.5) derived from an FNV-1a hash of the name.
    pub fn h421_for(&self, authority: &str) -> f64 {
        if self.h421 == 0.0 {
            return 0.0;
        }
        let scale = 0.5 + (fnv1a(authority.as_bytes()) % 1024) as f64 / 1024.0;
        sanitize_probability(self.h421 * scale)
    }

    /// Packet-level injector for this profile's drop/corrupt rates.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.drop, self.corrupt)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Outcome of passing one packet through a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered intact.
    Delivered,
    /// Silently dropped.
    Dropped,
    /// Delivered with corrupted payload.
    Corrupted,
}

/// Verdict from a middlebox observing an HTTP/2 frame on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiddleboxVerdict {
    /// Frame forwarded unchanged.
    Forward,
    /// Frame silently discarded (connection survives).
    DropFrame,
    /// Connection torn down — the §6.7 failure mode.
    TearDown,
}

/// An on-path device that observes HTTP/2 frame type codes.
///
/// Implementations are deliberately ignorant of frame payloads: real
/// interception stacks key off the one-byte type field, which is all
/// the §6.7 bug needed.
pub trait Middlebox {
    /// Inspect a frame type code (the raw `u8` on the wire) and decide
    /// what happens.
    fn inspect(&self, frame_type: u8) -> MiddleboxVerdict;

    /// Human-readable name for logs and incident reports.
    fn name(&self) -> &str;
}

/// A standards-compliant pass-through (RFC 7540 §4.1: implementations
/// must ignore and discard unknown frame types — middleboxes should
/// simply forward them).
#[derive(Debug, Clone, Default)]
pub struct CompliantMiddlebox;

impl Middlebox for CompliantMiddlebox {
    fn inspect(&self, _frame_type: u8) -> MiddleboxVerdict {
        MiddleboxVerdict::Forward
    }
    fn name(&self) -> &str {
        "compliant"
    }
}

/// The §6.7 bug: any frame type outside the RFC 7540 core set tears
/// the connection down. ORIGIN (0x0c) and ALTSVC (0x0a) are both
/// "unknown" to such a stack.
#[derive(Debug, Clone)]
pub struct NonCompliantMiddlebox {
    /// Highest frame type code the stack recognizes. RFC 7540 defines
    /// 0x00 (DATA) through 0x09 (CONTINUATION).
    pub max_known_type: u8,
}

impl Default for NonCompliantMiddlebox {
    fn default() -> Self {
        // Knows only the RFC 7540 core frames.
        NonCompliantMiddlebox {
            max_known_type: 0x09,
        }
    }
}

impl Middlebox for NonCompliantMiddlebox {
    fn inspect(&self, frame_type: u8) -> MiddleboxVerdict {
        if frame_type <= self.max_known_type {
            MiddleboxVerdict::Forward
        } else {
            MiddleboxVerdict::TearDown
        }
    }
    fn name(&self) -> &str {
        "non-compliant antivirus agent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN_FRAME_TYPE: u8 = 0x0c;
    const ALTSVC_FRAME_TYPE: u8 = 0x0a;
    const DATA_FRAME_TYPE: u8 = 0x00;

    #[test]
    fn no_faults_always_delivers() {
        let f = FaultInjector::none();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(f.apply(&mut rng), PacketFate::Delivered);
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let f = FaultInjector::new(1.0, 0.0);
        let mut rng = SimRng::seed_from_u64(2);
        assert_eq!(f.apply(&mut rng), PacketFate::Dropped);
    }

    #[test]
    fn probabilities_clamped() {
        let f = FaultInjector::new(7.0, -3.0);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }

    #[test]
    fn drop_rate_close_to_p() {
        let f = FaultInjector::new(0.15, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let drops = (0..10_000)
            .filter(|_| f.apply(&mut rng) == PacketFate::Dropped)
            .count();
        assert!((1_300..1_700).contains(&drops), "drops={drops}");
    }

    #[test]
    fn nan_probability_sanitized_to_zero() {
        let f = FaultInjector::new(f64::NAN, f64::NAN);
        assert_eq!(f.drop_chance, 0.0);
        assert_eq!(f.corrupt_chance, 0.0);
        let mut rng = SimRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(f.apply(&mut rng), PacketFate::Delivered);
        }
    }

    #[test]
    fn profile_parse_full_spec() {
        let p = FaultProfile::parse("drop=0.01,h421=0.005,middlebox=0.1").unwrap();
        assert_eq!(p.drop, 0.01);
        assert_eq!(p.corrupt, 0.0);
        assert_eq!(p.h421, 0.005);
        assert_eq!(p.middlebox, 0.1);
        assert!(!p.is_zero());
    }

    #[test]
    fn profile_parse_round_trips_through_spec() {
        let p = FaultProfile::parse("drop=0.25,corrupt=0.5,h421=1,middlebox=0").unwrap();
        assert_eq!(FaultProfile::parse(&p.spec()).unwrap(), p);
    }

    #[test]
    fn profile_parse_rejects_garbage() {
        assert!(FaultProfile::parse("drop").is_err());
        assert!(FaultProfile::parse("drop=abc").is_err());
        assert!(FaultProfile::parse("jitter=0.5").is_err());
    }

    #[test]
    fn profile_parse_sanitizes_range_and_nan() {
        let p = FaultProfile::parse("drop=7,corrupt=-1,h421=NaN").unwrap();
        assert_eq!(p.drop, 1.0);
        assert_eq!(p.corrupt, 0.0);
        assert_eq!(p.h421, 0.0);
    }

    #[test]
    fn zero_profile_is_zero_and_empty_spec_parses() {
        assert!(FaultProfile::none().is_zero());
        assert!(FaultProfile::parse("").unwrap().is_zero());
        assert!(FaultProfile::parse("drop=0,corrupt=0,h421=0,middlebox=0")
            .unwrap()
            .is_zero());
    }

    #[test]
    fn per_authority_rate_is_deterministic_and_scaled() {
        let p = FaultProfile::parse("h421=0.01").unwrap();
        let a = p.h421_for("img.example.com");
        assert_eq!(a, p.h421_for("img.example.com"));
        assert!((0.005..0.015).contains(&a), "rate {a} outside [0.5p, 1.5p)");
        // Different authorities should generally see different rates.
        assert_ne!(a, p.h421_for("cdn.example.net"));
        // Zero base rate stays zero, and full rate clamps at 1.
        assert_eq!(FaultProfile::none().h421_for("x"), 0.0);
        let full = FaultProfile::parse("h421=1").unwrap();
        for host in ["a", "bb", "ccc"] {
            assert!(full.h421_for(host) >= 0.5);
            assert!(full.h421_for(host) <= 1.0);
        }
    }

    #[test]
    fn profile_injector_carries_drop_and_corrupt() {
        let p = FaultProfile::parse("drop=1").unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(p.injector().apply(&mut rng), PacketFate::Dropped);
    }

    #[test]
    fn compliant_forwards_everything() {
        let m = CompliantMiddlebox;
        assert_eq!(m.inspect(DATA_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(ORIGIN_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(0xff), MiddleboxVerdict::Forward);
    }

    #[test]
    fn non_compliant_kills_origin_frames() {
        let m = NonCompliantMiddlebox::default();
        assert_eq!(m.inspect(DATA_FRAME_TYPE), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(0x09), MiddleboxVerdict::Forward);
        assert_eq!(m.inspect(ALTSVC_FRAME_TYPE), MiddleboxVerdict::TearDown);
        assert_eq!(m.inspect(ORIGIN_FRAME_TYPE), MiddleboxVerdict::TearDown);
    }

    #[test]
    fn middlebox_names() {
        assert_eq!(CompliantMiddlebox.name(), "compliant");
        assert!(NonCompliantMiddlebox::default()
            .name()
            .contains("non-compliant"));
    }
}
