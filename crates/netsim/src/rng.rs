//! Seeded randomness plumbing.
//!
//! Every stochastic decision in the reproduction (latency jitter,
//! sampling, group assignment, fault injection) draws from a
//! [`SimRng`] derived from an explicit seed, so whole experiments are
//! reproducible and sub-components can be given independent streams.
//!
//! The generator is a self-contained xoshiro256++ seeded through a
//! SplitMix64 expansion, so the repo carries no external RNG
//! dependency and the streams are identical on every platform.

/// A deterministic RNG with support for deriving independent
/// sub-streams by label, so adding randomness in one component never
/// perturbs another.
pub struct SimRng {
    s: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Create from an explicit seed.
    ///
    /// The 64-bit seed is expanded into the 256-bit xoshiro state with
    /// SplitMix64, the seeding scheme its authors recommend; a
    /// xoshiro state of all zeroes (unreachable this way) would be a
    /// fixed point.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(x);
        }
        SimRng { s, seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream for a labelled component.
    ///
    /// Mixing uses FNV-1a over the label followed by a SplitMix64
    /// finalizer; distinct labels give uncorrelated streams.
    pub fn derive(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mixed = splitmix64(self.seed ^ h);
        SimRng::seed_from_u64(mixed)
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of the 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with raw output.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform f64 in [0, 1), using the top 53 bits of a draw.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform integer in `[lo, hi)`. Panics when `lo >= hi`.
    ///
    /// Unbiased via Lemire's multiply-shift rejection.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform usize in `[0, n)`. Panics when n == 0.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + self.unit() * (hi - lo)
    }

    /// A sample from an exponential distribution with the given mean.
    /// Used for long-tailed latency jitter and inter-arrival times.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = 1.0 - self.unit(); // avoid ln(0)
        -mean * u.ln()
    }

    /// A sample from a log-normal distribution parameterized by the
    /// *median* and sigma of the underlying normal. Web latencies and
    /// page-resource counts are classically log-normal; the paper's
    /// long-tailed PLT/size distributions are modelled this way.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "median must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        let z = self.standard_normal();
        median * (sigma * z).exp()
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit();
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A Zipf-like rank draw over `[0, n)` with skew `s`: rank 0 is the
    /// most popular. Used for popularity-weighted choices (hostnames,
    /// services, providers).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "empty range");
        // Inverse-CDF on the truncated harmonic series would be exact
        // but O(n); rejection from the continuous bounding curve is
        // O(1) amortized and close enough for workload generation.
        if n == 1 {
            return 0;
        }
        loop {
            let u = self.unit();
            // Continuous inverse-CDF over ranks [1, n]:
            // x = (n^(1-s) * u + (1-u))^(1/(1-s)), so x ∈ [1, n].
            let x = if (s - 1.0).abs() < 1e-9 {
                (n as f64).powf(u)
            } else {
                let t = (n as f64).powf(1.0 - s);
                (t * u + (1.0 - u)).powf(1.0 / (1.0 - s))
            };
            // Rank 1 (most popular) maps to index 0.
            let k = x.floor() as usize - 1;
            if k < n {
                return k;
            }
        }
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(8);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_stable_and_label_dependent() {
        let root = SimRng::seed_from_u64(42);
        let mut d1 = root.derive("dns");
        let mut d1b = root.derive("dns");
        let mut d2 = root.derive("tls");
        assert_eq!(d1.next_u64(), d1b.next_u64());
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_roughly_p() {
        let mut r = SimRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean={mean}");
    }

    #[test]
    fn log_normal_median() {
        let mut r = SimRng::seed_from_u64(4);
        let mut xs: Vec<f64> = (0..20_001).map(|_| r.log_normal(100.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 100.0).abs() < 8.0, "median={med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let k = r.zipf(10, 1.1);
            counts[k] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn zipf_single_element() {
        let mut r = SimRng::seed_from_u64(6);
        assert_eq!(r.zipf(1, 1.2), 0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::seed_from_u64(7);
        let mut xs: Vec<u32> = (0..16).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(xs, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn range_and_choose() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = r.range_u64(5, 10);
            assert!((5..10).contains(&v));
        }
        let xs = [1, 2, 3];
        assert!(xs.contains(r.choose(&xs)));
    }

    #[test]
    fn fill_bytes_deterministic_and_full() {
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }
}
