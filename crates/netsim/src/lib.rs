//! Deterministic discrete-event network simulator.
//!
//! The paper's measurements ran against the real Internet; this crate
//! is the substitute substrate (see DESIGN.md §2). It follows the
//! sans-IO, event-driven idiom: protocol models never touch sockets or
//! the wall clock — a [`SimTime`] owned by an [`EventQueue`] is the
//! only notion of time, so every experiment is exactly reproducible
//! from a seed.
//!
//! Components:
//!
//! - [`SimTime`]/[`SimDuration`] — microsecond-resolution simulated
//!   time.
//! - [`EventQueue`] — a monotonic priority queue of timed events with
//!   FIFO tie-breaking.
//! - [`ArrivalProcess`] — open-loop Poisson session arrivals with a
//!   diurnal rate profile, for the serving engine.
//! - [`LinkProfile`] — per-path latency/bandwidth model with a
//!   slow-start-aware transfer-time estimator.
//! - [`tcp`] — TCP + TLS connection-establishment cost model
//!   (handshake RTT accounting, happy-eyeballs raceable).
//! - [`fault`] — fault injection: probabilistic packet drops and the
//!   §6.7 non-compliant middlebox that tears down connections carrying
//!   unknown HTTP/2 frame types.
//! - [`rng`] — seeded RNG plumbing so all randomness is reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod event;
pub mod fault;
pub mod link;
pub mod rng;
pub mod tcp;
pub mod time;

pub use arrival::ArrivalProcess;
pub use event::EventQueue;
pub use fault::{FaultInjector, FaultProfile, Middlebox, MiddleboxVerdict, PacketFate};
pub use link::LinkProfile;
pub use rng::SimRng;
pub use tcp::{ConnectionCost, HandshakeModel, TlsVersion};
pub use time::{SimDuration, SimTime};
