//! Simulated time.
//!
//! All simulation time is an integer count of microseconds so that
//! event ordering is exact and runs are bit-for-bit reproducible —
//! floating-point time would make event order depend on summation
//! order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (fractional).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the epoch (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since an earlier instant; saturates to zero when
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Index of the tumbling window of width `width` containing this
    /// instant (window `i` covers `[i·width, (i+1)·width)`). Panics on
    /// a zero-width window.
    pub const fn window_index(self, width: SimDuration) -> u64 {
        assert!(width.0 > 0, "zero-width window");
        self.0 / width.0
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from fractional milliseconds (rounded to whole µs).
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(
            ms >= 0.0 && ms.is_finite(),
            "negative or non-finite duration"
        );
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiply by an integer factor (e.g. N round trips).
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2_000.0);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // saturating when "earlier" is later
        assert_eq!(
            SimTime::from_millis(1) - SimTime::from_millis(9),
            SimDuration::ZERO
        );
    }

    #[test]
    fn window_index_tumbles() {
        let w = SimDuration::from_millis(4);
        assert_eq!(SimTime::ZERO.window_index(w), 0);
        assert_eq!(SimTime::from_micros(3_999).window_index(w), 0);
        assert_eq!(SimTime::from_micros(4_000).window_index(w), 1);
        assert_eq!(SimTime::from_millis(41).window_index(w), 10);
    }

    #[test]
    fn duration_ops() {
        let d = SimDuration::from_millis(3).times(4);
        assert_eq!(d, SimDuration::from_millis(12));
        assert_eq!(
            d.saturating_sub(SimDuration::from_millis(20)),
            SimDuration::ZERO
        );
        let total: SimDuration = [SimDuration::from_millis(1), SimDuration::from_millis(2)]
            .into_iter()
            .sum();
        assert_eq!(total, SimDuration::from_millis(3));
    }

    #[test]
    fn display_formats_ms() {
        assert_eq!(SimTime::from_micros(1234).to_string(), "1.234ms");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_panics() {
        SimDuration::from_millis_f64(-1.0);
    }
}
