//! Open-loop session arrival processes.
//!
//! The serving engine (DESIGN.md §16) replaces the one-shot crawl with
//! an open-loop workload: sessions arrive on their own clock,
//! independent of how fast the system drains them. Arrivals are a
//! Poisson process whose rate is modulated by a diurnal (daily sine)
//! profile, sampled by thinning: candidate gaps are drawn from the
//! exponential of the *peak* rate and accepted with probability
//! `rate(t) / peak`, which yields an exact non-homogeneous Poisson
//! process without any discretization of the rate curve.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A non-homogeneous Poisson arrival process with a diurnal rate
/// profile.
///
/// The instantaneous rate is
///
/// ```text
/// rate(t) = peak · (1 − a/2 · (1 + cos(2π·t / period)))
/// ```
///
/// so the trough sits at `t = 0` (and every whole period), the peak at
/// half-period, and `a` (the amplitude in `[0, 1]`) is the
/// peak-to-trough swing as a fraction of the peak: `a = 0` is a
/// homogeneous process, `a = 1` silences the trough entirely.
pub struct ArrivalProcess {
    rng: SimRng,
    /// Mean candidate gap at peak rate, in µs.
    peak_gap_us: f64,
    amplitude: f64,
    period_us: f64,
    now: SimTime,
}

impl ArrivalProcess {
    /// Create a process emitting `peak_rate_per_sec` arrivals per
    /// simulated second at peak, modulated by `amplitude` over
    /// `period`. Panics on a non-positive rate, an amplitude outside
    /// `[0, 1]`, or a zero period with a non-zero amplitude.
    pub fn new(rng: SimRng, peak_rate_per_sec: f64, amplitude: f64, period: SimDuration) -> Self {
        assert!(
            peak_rate_per_sec > 0.0 && peak_rate_per_sec.is_finite(),
            "peak rate must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&amplitude),
            "amplitude must be in [0, 1]"
        );
        assert!(
            amplitude == 0.0 || period > SimDuration::ZERO,
            "diurnal modulation needs a period"
        );
        ArrivalProcess {
            rng,
            peak_gap_us: 1_000_000.0 / peak_rate_per_sec,
            amplitude,
            period_us: period.as_micros() as f64,
            now: SimTime::ZERO,
        }
    }

    /// The instantaneous rate at `t` as a fraction of the peak rate,
    /// in `(0, 1]`.
    fn rate_factor(&self, t: SimTime) -> f64 {
        if self.amplitude == 0.0 {
            return 1.0;
        }
        let phase = std::f64::consts::TAU * (t.as_micros() as f64 / self.period_us);
        1.0 - self.amplitude / 2.0 * (1.0 + phase.cos())
    }

    /// Advance to and return the next arrival instant (thinning).
    ///
    /// Every candidate advances time by at least 1 µs, so the stream
    /// is strictly increasing and cannot stall.
    pub fn next_arrival(&mut self) -> SimTime {
        loop {
            let gap = self.rng.exponential(self.peak_gap_us).max(1.0);
            self.now += SimDuration::from_micros(gap.round() as u64);
            if self.rng.chance(self.rate_factor(self.now)) {
                return self.now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_in(process: &mut ArrivalProcess, from: SimTime, to: SimTime) -> usize {
        let mut n = 0;
        loop {
            let t = process.next_arrival();
            if t >= to {
                return n;
            }
            if t >= from {
                n += 1;
            }
        }
    }

    #[test]
    fn homogeneous_rate_matches_mean() {
        let rng = SimRng::seed_from_u64(0x0ab1);
        let mut p = ArrivalProcess::new(rng, 100.0, 0.0, SimDuration::ZERO);
        // 100/s over 200 s ⇒ expect ~20k arrivals; Poisson σ ≈ 141.
        let n = count_in(&mut p, SimTime::ZERO, SimTime::from_secs(200));
        assert!((19_300..20_700).contains(&n), "got {n}");
    }

    #[test]
    fn diurnal_trough_is_quieter_than_peak() {
        let rng = SimRng::seed_from_u64(0x0ab2);
        let period = SimDuration::from_secs(1_000);
        let mut p = ArrivalProcess::new(rng, 50.0, 0.8, period);
        // Trough (t=0) rate is peak·(1−a) = 10/s; peak (t=period/2)
        // is 50/s. Count 100-second slices centred on each.
        let trough = count_in(&mut p, SimTime::ZERO, SimTime::from_secs(100));
        let rng2 = SimRng::seed_from_u64(0x0ab2);
        let mut p2 = ArrivalProcess::new(rng2, 50.0, 0.8, period);
        let peak = count_in(&mut p2, SimTime::from_secs(450), SimTime::from_secs(550));
        assert!(
            peak as f64 > 2.5 * trough as f64,
            "peak {peak} vs trough {trough}"
        );
    }

    #[test]
    fn stream_is_deterministic_and_strictly_increasing() {
        let mk = || {
            ArrivalProcess::new(
                SimRng::seed_from_u64(7),
                1_000.0,
                0.6,
                SimDuration::from_secs(60),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let mut prev = SimTime::ZERO;
        for _ in 0..10_000 {
            let t = a.next_arrival();
            assert_eq!(t, b.next_arrival());
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn amplitude_one_silences_the_trough() {
        let rng = SimRng::seed_from_u64(0x0ab3);
        let period = SimDuration::from_secs(1_000);
        let mut p = ArrivalProcess::new(rng, 20.0, 1.0, period);
        // rate(0) = 0: essentially nothing lands in the first seconds
        // compared to the half-period window.
        let trough = count_in(&mut p, SimTime::ZERO, SimTime::from_secs(20));
        assert!(trough < 10, "trough nearly silent, got {trough}");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn rejects_out_of_range_amplitude() {
        ArrivalProcess::new(
            SimRng::seed_from_u64(1),
            1.0,
            1.5,
            SimDuration::from_secs(1),
        );
    }
}
