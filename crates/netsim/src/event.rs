//! Timed event queue.
//!
//! A classic discrete-event scheduler: events are popped in time
//! order, and events scheduled for the same instant are delivered in
//! insertion (FIFO) order so runs are deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: `Reverse`-ordered by `(time, seq)`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulated time: popping an event
/// advances the clock to that event's timestamp. Scheduling an event
/// in the past is a logic error and panics — a simulation that does
/// so would silently reorder causality otherwise.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// New queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // by-value Option pair, not an Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.time >= self.now, "heap produced an out-of-order event");
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drain and deliver every event to `handler`, which may schedule
    /// more events. Runs until the queue is empty or `max_events` is
    /// hit (a runaway-loop backstop); returns the number delivered.
    pub fn run<F: FnMut(&mut EventQueue<E>, SimTime, E)>(
        &mut self,
        max_events: u64,
        mut handler: F,
    ) -> u64 {
        let mut delivered = 0;
        while delivered < max_events {
            // Pop manually so the handler can reschedule through us.
            let Some(s) = self.heap.pop() else { break };
            self.now = s.time;
            self.processed += 1;
            delivered += 1;
            handler(self, s.time, s.event);
        }
        delivered
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.next().unwrap().1, "a");
        assert_eq!(q.next().unwrap().1, "b");
        assert_eq!(q.next().unwrap().1, "c");
        assert!(q.next().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.next().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.next();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.next();
        q.schedule(SimTime::from_millis(5), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 0);
        q.next();
        q.schedule_in(SimDuration::from_millis(5), 1);
        let (t, e) = q.next().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(e, 1);
    }

    #[test]
    fn run_drains_with_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let delivered = q.run(100, |q, _t, n| {
            if n < 4 {
                q.schedule_in(SimDuration::from_millis(1), n + 1);
            }
        });
        assert_eq!(delivered, 5);
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn run_respects_max_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        // Infinite self-rescheduling loop capped by the backstop.
        let delivered = q.run(50, |q, _t, n| {
            q.schedule_in(SimDuration::from_millis(1), n + 1);
        });
        assert_eq!(delivered, 50);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
