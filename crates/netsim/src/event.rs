//! Timed event queue.
//!
//! A classic discrete-event scheduler: events are popped in time
//! order, and events scheduled for the same instant are delivered in
//! insertion (FIFO) order so runs are deterministic.
//!
//! The production implementation is a *calendar queue* (a bucketed
//! timing wheel, Brown 1988): events hash into `O(1)`-addressable
//! day-width buckets, so `schedule`/`next` run in amortised constant
//! time instead of the `O(log n)` of a binary heap, and — unlike a
//! heap — same-instant events need no sifting to keep FIFO order.
//! [`ReferenceHeapQueue`] preserves the original heap implementation
//! as a test-only oracle: a seeded property test drives both with the
//! same randomized schedule and asserts identical pop sequences.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry: `Reverse`-ordered by `(time, seq)`.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Smallest bucket count the calendar keeps (power of two).
const MIN_BUCKETS: usize = 16;
/// Largest bucket count the calendar grows to (power of two).
const MAX_BUCKETS: usize = 1 << 16;
/// Initial bucket width: 2^10 µs ≈ 1 ms, a good match for the
/// millisecond-scale handshake/transfer events the simulations post.
const INITIAL_SHIFT: u32 = 10;

/// The calendar proper: a ring of buckets, each a `VecDeque` holding
/// its events sorted *ascending* by `(time, seq)` — the bucket
/// minimum pops from the front in `O(1)`, and the dominant insertion
/// pattern (monotonically later times, FIFO bursts at one instant)
/// appends to the back in `O(1)`. Only an insertion that lands
/// between already-queued entries pays a shift, and the resize policy
/// keeps buckets at `O(1)` occupancy.
///
/// An event at time `t` lives in bucket `day(t) % n` where
/// `day(t) = t.micros >> shift` — all events of one "day" share one
/// bucket, which is what makes the cursor scan in [`Calendar::min_bucket`]
/// correct: the first cursor day whose bucket holds an event of that
/// day owns the global minimum.
struct Calendar<E> {
    buckets: Vec<std::collections::VecDeque<Scheduled<E>>>,
    /// `log2` of the bucket width in microseconds.
    shift: u32,
    /// Lower bound on the day of the earliest queued event. Pops
    /// tighten it to the exact minimum day; pushes relax it downward.
    cursor_day: u64,
    len: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            shift: INITIAL_SHIFT,
            cursor_day: 0,
            len: 0,
        }
    }

    #[inline]
    fn day(&self, t: SimTime) -> u64 {
        t.as_micros() >> self.shift
    }

    #[inline]
    fn bucket_of_day(&self, day: u64) -> usize {
        (day as usize) & (self.buckets.len() - 1)
    }

    fn push(&mut self, s: Scheduled<E>) {
        let day = self.day(s.time);
        if self.len == 0 || day < self.cursor_day {
            self.cursor_day = day;
        }
        let b = self.bucket_of_day(day);
        let bucket = &mut self.buckets[b];
        // Ascending (time, seq): seq grows monotonically, so FIFO
        // bursts at one instant and later-time schedules both append.
        match bucket.back() {
            Some(back) if (back.time, back.seq) > (s.time, s.seq) => {
                let pos = bucket.partition_point(|e| (e.time, e.seq) < (s.time, s.seq));
                bucket.insert(pos, s);
            }
            _ => bucket.push_back(s),
        }
        self.len += 1;
        if self.len > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.resize();
        }
    }

    /// Bucket index and day of the earliest queued event, or `None`
    /// when empty.
    ///
    /// Scans days from `cursor_day`: the first day whose bucket's
    /// front (= bucket minimum) belongs to that day holds the global
    /// minimum. If a full ring passes without a hit, every event is at
    /// least one full rotation ahead — fall back to comparing bucket
    /// minima directly and jump the calendar to the winner.
    fn min_bucket(&self) -> Option<(usize, u64)> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        for step in 0..n as u64 {
            let day = self.cursor_day + step;
            let b = self.bucket_of_day(day);
            if let Some(front) = self.buckets[b].front() {
                if self.day(front.time) == day {
                    return Some((b, day));
                }
            }
        }
        // Sparse horizon: global minimum over bucket minima.
        let (b, front) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.front().map(|t| (i, t)))
            .min_by_key(|(_, t)| (t.time, t.seq))
            .expect("len > 0 implies a non-empty bucket");
        Some((b, self.day(front.time)))
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        let (b, day) = self.min_bucket()?;
        self.cursor_day = day;
        let s = self.buckets[b]
            .pop_front()
            .expect("min_bucket found an event");
        self.len -= 1;
        if self.len * 4 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize();
        }
        Some(s)
    }

    fn peek(&self) -> Option<&Scheduled<E>> {
        let (b, _) = self.min_bucket()?;
        self.buckets[b].front()
    }

    /// Rebuild the ring for the current population: bucket count
    /// tracks `len` (one event per bucket on average) and the bucket
    /// width tracks the mean gap between queued events, so both
    /// clustered and sparse schedules keep `O(1)` operations. Events
    /// re-insert in globally sorted order, so every re-insert is a
    /// back append.
    fn resize(&mut self) {
        let mut events: Vec<Scheduled<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            events.extend(bucket.drain(..));
        }
        events.sort_unstable_by_key(|s| (s.time, s.seq));
        let n = events
            .len()
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != n {
            self.buckets.resize_with(n, std::collections::VecDeque::new);
            // Shrinks drop tail buckets (empty after the drain above);
            // keep the allocation for the survivors.
            self.buckets.truncate(n);
        }
        if let (Some(first), Some(last)) = (events.first(), events.last()) {
            let span = last.time.as_micros() - first.time.as_micros();
            let mean_gap = (span / events.len() as u64).max(1);
            // Width = next power of two above the mean inter-event
            // gap, so one "day" holds O(1) events.
            self.shift = 64 - mean_gap.leading_zeros();
            self.cursor_day = self.day(first.time);
        }
        self.len = events.len();
        for s in events {
            let day = self.day(s.time);
            let b = self.bucket_of_day(day);
            self.buckets[b].push_back(s);
        }
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current simulated time: popping an event
/// advances the clock to that event's timestamp. Scheduling an event
/// in the past is a logic error and panics — a simulation that does
/// so would silently reorder causality otherwise.
pub struct EventQueue<E> {
    calendar: Calendar<E>,
    now: SimTime,
    seq: u64,
    processed: u64,
}

impl<E> EventQueue<E> {
    /// New queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            calendar: Calendar::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn pending(&self) -> usize {
        self.calendar.len
    }

    /// True when no events are waiting.
    pub fn is_empty(&self) -> bool {
        self.calendar.len == 0
    }

    /// Total events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time. This is a
    /// plain `assert!` — release builds reject causality violations
    /// too, and the message carries both timestamps.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.calendar.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)] // by-value Option pair, not an Iterator
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let s = self.calendar.pop()?;
        debug_assert!(
            s.time >= self.now,
            "calendar queue produced an out-of-order event: event time {} is behind now={}",
            s.time,
            self.now
        );
        self.now = s.time;
        self.processed += 1;
        Some((s.time, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.calendar.peek().map(|s| s.time)
    }

    /// Drain and deliver every event to `handler`, which may schedule
    /// more events. Runs until the queue is empty or `max_events` is
    /// hit (a runaway-loop backstop); returns the number delivered.
    pub fn run<F: FnMut(&mut EventQueue<E>, SimTime, E)>(
        &mut self,
        max_events: u64,
        mut handler: F,
    ) -> u64 {
        let mut delivered = 0;
        while delivered < max_events {
            // Pop manually so the handler can reschedule through us.
            let Some(s) = self.calendar.pop() else { break };
            self.now = s.time;
            self.processed += 1;
            delivered += 1;
            handler(self, s.time, s.event);
        }
        delivered
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap` scheduler, kept verbatim as the ordering
/// oracle for the calendar queue: property tests drive both with the
/// same schedule and assert identical `(time, event)` pop sequences,
/// and the `event_queue` bench compares their throughput.
///
/// Not part of the public API surface — test and bench use only.
#[doc(hidden)]
pub struct ReferenceHeapQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    seq: u64,
}

#[doc(hidden)]
impl<E> ReferenceHeapQueue<E> {
    /// New queue at t = 0.
    pub fn new() -> Self {
        ReferenceHeapQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `at` (panics on the past,
    /// like [`EventQueue::schedule`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.heap.push(Scheduled {
            time: at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }
}

impl<E> Default for ReferenceHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        assert_eq!(q.next().unwrap().1, "a");
        assert_eq!(q.next().unwrap().1, "b");
        assert_eq!(q.next().unwrap().1, "c");
        assert!(q.next().is_none());
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.next().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.next();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), ());
        q.next();
        q.schedule(SimTime::from_millis(5), ());
    }

    /// The past-scheduling guard is a plain `assert!` (not debug-only)
    /// and its message names both timestamps — the report a user needs
    /// to find the offending call site deterministically.
    #[test]
    fn scheduling_past_rejected_with_both_timestamps() {
        let result = std::panic::catch_unwind(|| {
            let mut q = EventQueue::new();
            q.schedule(SimTime::from_micros(2_000), ());
            q.next();
            q.schedule(SimTime::from_micros(500), ());
        });
        let err = result.expect_err("past scheduling must panic, even with debug_assertions off");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is the formatted assert message");
        assert!(msg.contains("now=2.000ms") || msg.contains("now="), "{msg}");
        assert!(msg.contains("at="), "{msg}");
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 0);
        q.next();
        q.schedule_in(SimDuration::from_millis(5), 1);
        let (t, e) = q.next().unwrap();
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(e, 1);
    }

    #[test]
    fn run_drains_with_rescheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        let delivered = q.run(100, |q, _t, n| {
            if n < 4 {
                q.schedule_in(SimDuration::from_millis(1), n + 1);
            }
        });
        assert_eq!(delivered, 5);
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn run_respects_max_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 0u32);
        // Infinite self-rescheduling loop capped by the backstop.
        let delivered = q.run(50, |q, _t, n| {
            q.schedule_in(SimDuration::from_millis(1), n + 1);
        });
        assert_eq!(delivered, 50);
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        assert_eq!(q.now(), SimTime::ZERO);
    }

    #[test]
    fn far_future_horizon_jump() {
        // Events far beyond one full ring rotation exercise the
        // sparse-horizon fallback in `Calendar::min_bucket`.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(u64::from(u32::MAX)), 1u32);
        q.schedule(SimTime::from_micros(5), 0u32);
        assert_eq!(q.next().unwrap().1, 0);
        assert_eq!(q.next().unwrap().1, 1);
        assert!(q.next().is_none());
    }

    #[test]
    fn growth_and_shrink_preserve_order() {
        // Push enough to force several resizes, then drain and check
        // global order — including FIFO among same-time entries.
        let mut q = EventQueue::new();
        let mut rng = SimRng::seed_from_u64(0xCA1E);
        let mut expected: Vec<(u64, u32)> = Vec::new();
        for i in 0..500u32 {
            // Deliberately collide times so FIFO ties appear.
            let t = rng.range_u64(0, 50) * 100;
            q.schedule(SimTime::from_micros(t), i);
            expected.push((t, i));
        }
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, e)) = q.next() {
            got.push((t.as_micros(), e));
        }
        assert_eq!(got, expected);
    }

    /// Property test: the calendar queue's pop order is identical to
    /// the binary-heap oracle's over randomized interleaved
    /// schedule/pop workloads, including same-timestamp FIFO ties.
    #[test]
    fn matches_heap_oracle_on_random_schedules() {
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(0x0E0E ^ seed);
            let mut cal = EventQueue::new();
            let mut heap = ReferenceHeapQueue::new();
            let mut popped = Vec::new();
            let mut oracle = Vec::new();
            let mut id = 0u32;
            for _ in 0..400 {
                if rng.chance(0.6) || cal.pending() == 0 {
                    // Cluster times aggressively: ~1/3 of pushes share
                    // a timestamp with an earlier one.
                    let base = cal.now().as_micros();
                    let dt = if rng.chance(0.33) {
                        0
                    } else {
                        rng.range_u64(0, 4_000)
                    };
                    let at = SimTime::from_micros(base + dt);
                    cal.schedule(at, id);
                    heap.schedule(at, id);
                    id += 1;
                } else {
                    popped.push(cal.next().expect("pending > 0"));
                    oracle.push(heap.next().expect("queues stay in lockstep"));
                }
            }
            while let Some(e) = cal.next() {
                popped.push(e);
                oracle.push(heap.next().expect("same length"));
            }
            assert!(heap.next().is_none());
            assert_eq!(popped, oracle, "divergence with seed {seed}");
        }
    }

    /// Property test for the serving horizon: diurnal arrival gaps put
    /// events *hours* apart in sim time, exercising the sparse
    /// fallback and bucket-array resizes far more than the dense
    /// crawl ever does. Seeded sweep of mixed dense/sparse workloads
    /// cross-checked against the binary-heap oracle.
    #[test]
    fn matches_heap_oracle_on_sparse_far_future_schedules() {
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from_u64(0x5AAF ^ seed);
            let mut cal = EventQueue::new();
            let mut heap = ReferenceHeapQueue::new();
            let mut popped = Vec::new();
            let mut oracle = Vec::new();
            let mut id = 0u32;
            for _ in 0..300 {
                if rng.chance(0.55) || cal.pending() == 0 {
                    let base = cal.now().as_micros();
                    // Trimodal gaps: dense (sub-ms), diurnal think
                    // times (tens of seconds), and far-future troughs
                    // (up to ~6 h of sim time in one hop).
                    let dt = match rng.index(3) {
                        0 => rng.range_u64(0, 1_000),
                        1 => rng.range_u64(1_000_000, 60_000_000),
                        _ => rng.range_u64(3_600_000_000, 21_600_000_000),
                    };
                    let at = SimTime::from_micros(base + dt);
                    cal.schedule(at, id);
                    heap.schedule(at, id);
                    id += 1;
                } else {
                    popped.push(cal.next().expect("pending > 0"));
                    oracle.push(heap.next().expect("queues stay in lockstep"));
                }
            }
            while let Some(e) = cal.next() {
                popped.push(e);
                oracle.push(heap.next().expect("same length"));
            }
            assert!(heap.next().is_none());
            assert_eq!(popped, oracle, "sparse divergence with seed {seed}");
            assert_eq!(cal.now(), heap.now(), "clock divergence with seed {seed}");
        }
    }
}
