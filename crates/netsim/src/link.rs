//! Path latency/bandwidth model.
//!
//! The browser loader and the CDN experiment need plausible per-path
//! costs for DNS lookups, TCP/TLS handshakes and body transfers. A
//! [`LinkProfile`] captures one client↔server path; its transfer
//! estimator models TCP slow start (initial cwnd of 10 MSS doubling
//! each RTT) so that many-small-objects vs one-coalesced-connection
//! trade-offs discussed in §6.1 of the paper actually appear.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Sender maximum segment size used by the transfer estimator.
pub const MSS: u64 = 1460;
/// Initial congestion window in segments (RFC 6928).
pub const INIT_CWND: u64 = 10;

/// A one-way network path profile between a client and a server.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Round-trip time.
    pub rtt: SimDuration,
    /// Bottleneck bandwidth in bytes per second.
    pub bandwidth_bps: u64,
    /// Multiplicative jitter amplitude in [0, 1): each sampled delay is
    /// scaled by a factor drawn from [1 − jitter, 1 + jitter].
    pub jitter: f64,
}

impl LinkProfile {
    /// A profile with the given RTT in milliseconds and bandwidth in
    /// megabits per second, no jitter.
    pub fn new(rtt_ms: f64, bandwidth_mbps: f64) -> Self {
        assert!(rtt_ms > 0.0, "rtt must be positive");
        assert!(bandwidth_mbps > 0.0, "bandwidth must be positive");
        LinkProfile {
            rtt: SimDuration::from_millis_f64(rtt_ms),
            bandwidth_bps: (bandwidth_mbps * 1_000_000.0 / 8.0) as u64,
            jitter: 0.0,
        }
    }

    /// Set multiplicative jitter (0.0 ..= 0.9).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..0.95).contains(&jitter), "jitter out of range");
        self.jitter = jitter;
        self
    }

    /// A typical broadband client → nearby CDN edge path: 20 ms RTT,
    /// 50 Mbps. Matches the unthrottled datacenter vantage of §3.1
    /// closely enough for shape reproduction.
    pub fn broadband_edge() -> Self {
        LinkProfile::new(20.0, 50.0)
    }

    /// A farther origin-server path: 80 ms RTT, 20 Mbps.
    pub fn distant_origin() -> Self {
        LinkProfile::new(80.0, 20.0)
    }

    /// Sample a concrete delay around `base` with this profile's
    /// jitter. With zero jitter this returns `base` unchanged.
    pub fn jittered(&self, base: SimDuration, rng: &mut SimRng) -> SimDuration {
        if self.jitter == 0.0 {
            return base;
        }
        let factor = rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter);
        SimDuration::from_millis_f64(base.as_millis_f64() * factor)
    }

    /// One round trip with jitter applied.
    pub fn rtt_sample(&self, rng: &mut SimRng) -> SimDuration {
        self.jittered(self.rtt, rng)
    }

    /// Estimated time to transfer `bytes` of response body over an
    /// established connection, starting from congestion window
    /// `cwnd_segments`.
    ///
    /// Models slow start: each RTT delivers `cwnd` segments, then the
    /// window doubles, capped by the bandwidth-delay product. A warm
    /// (coalesced) connection passes a large `cwnd_segments` and skips
    /// the ramp — this is the §6.1 "bytes in steady state on one
    /// connection vs slow-start on many" effect.
    pub fn transfer_time(&self, bytes: u64, cwnd_segments: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let rtt_s = self.rtt.as_secs_f64();
        // Max segments in flight per RTT permitted by the pipe.
        let bdp_segments = ((self.bandwidth_bps as f64 * rtt_s) / MSS as f64).max(1.0) as u64;
        let mut cwnd = cwnd_segments.max(1).min(bdp_segments.max(1));
        let mut remaining = bytes.div_ceil(MSS); // segments left
        let mut rtts = 0u64;
        while remaining > 0 {
            rtts += 1;
            remaining = remaining.saturating_sub(cwnd);
            cwnd = (cwnd * 2).min(bdp_segments);
            if rtts > 10_000 {
                break; // defensive cap; unreachable for sane inputs
            }
        }
        // Serialization time at the bottleneck plus the RTT rounds.
        let serialize = bytes as f64 / self.bandwidth_bps as f64;
        SimDuration::from_millis_f64(
            rtts as f64 * self.rtt.as_millis_f64() * 0.5 + serialize * 1_000.0,
        )
    }

    /// Congestion window (in segments) a connection reaches after
    /// transferring `bytes` — lets callers carry warm-connection state
    /// between coalesced requests.
    pub fn cwnd_after(&self, bytes: u64, cwnd_segments: u64) -> u64 {
        let rtt_s = self.rtt.as_secs_f64();
        let bdp_segments = ((self.bandwidth_bps as f64 * rtt_s) / MSS as f64).max(1.0) as u64;
        let mut cwnd = cwnd_segments.max(1).min(bdp_segments.max(1));
        let mut remaining = bytes.div_ceil(MSS);
        while remaining > 0 {
            remaining = remaining.saturating_sub(cwnd);
            cwnd = (cwnd * 2).min(bdp_segments);
            if cwnd == bdp_segments && remaining > 0 {
                break;
            }
        }
        cwnd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        let l = LinkProfile::new(20.0, 50.0);
        assert_eq!(l.transfer_time(0, INIT_CWND), SimDuration::ZERO);
    }

    #[test]
    fn small_object_fits_one_window() {
        let l = LinkProfile::new(20.0, 50.0);
        // 10 KB < 10 segments: one delivery round (half RTT) + serialization.
        let t = l.transfer_time(10_000, INIT_CWND);
        assert!(t >= SimDuration::from_millis(10));
        assert!(t < SimDuration::from_millis(15), "t={t}");
    }

    #[test]
    fn cold_transfer_slower_than_warm() {
        let l = LinkProfile::new(40.0, 50.0);
        let cold = l.transfer_time(500_000, INIT_CWND);
        let warm = l.transfer_time(500_000, 10_000);
        assert!(cold > warm, "cold={cold} warm={warm}");
    }

    #[test]
    fn more_bytes_take_longer() {
        let l = LinkProfile::new(20.0, 10.0);
        let a = l.transfer_time(10_000, INIT_CWND);
        let b = l.transfer_time(1_000_000, INIT_CWND);
        assert!(b > a);
    }

    #[test]
    fn faster_link_is_faster() {
        let slow = LinkProfile::new(20.0, 5.0);
        let fast = LinkProfile::new(20.0, 100.0);
        let big = 2_000_000;
        assert!(fast.transfer_time(big, INIT_CWND) < slow.transfer_time(big, INIT_CWND));
    }

    #[test]
    fn cwnd_grows_with_bytes() {
        let l = LinkProfile::new(50.0, 100.0);
        let after_small = l.cwnd_after(10_000, INIT_CWND);
        let after_big = l.cwnd_after(5_000_000, INIT_CWND);
        assert!(after_big >= after_small);
        assert!(after_small >= INIT_CWND);
    }

    #[test]
    fn jitter_bounds() {
        let l = LinkProfile::new(20.0, 50.0).with_jitter(0.25);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..200 {
            let s = l.rtt_sample(&mut rng).as_millis_f64();
            assert!((15.0..=25.0).contains(&s), "s={s}");
        }
    }

    #[test]
    fn no_jitter_is_exact() {
        let l = LinkProfile::new(20.0, 50.0);
        let mut rng = SimRng::seed_from_u64(10);
        assert_eq!(l.rtt_sample(&mut rng), SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "rtt must be positive")]
    fn zero_rtt_panics() {
        LinkProfile::new(0.0, 1.0);
    }
}
