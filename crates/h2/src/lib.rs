//! A from-scratch HTTP/2 framing layer with RFC 8336 ORIGIN support.
//!
//! This crate is the reproduction's counterpart of the paper's
//! server-side ORIGIN frame implementation (the authors patched the
//! golang `net/http2` stack; we implement the protocol natively).
//! It is **sans-IO** in the smoltcp style: [`Connection`] consumes
//! bytes and emits bytes/events, and never touches sockets, clocks,
//! or threads — the discrete-event simulator (or a real transport)
//! drives it.
//!
//! ## Feature inventory
//!
//! Implemented:
//! - Complete frame codec for the RFC 7540 core frames (DATA,
//!   HEADERS, PRIORITY, RST_STREAM, SETTINGS, PUSH_PROMISE, PING,
//!   GOAWAY, WINDOW_UPDATE, CONTINUATION) plus the extension frames
//!   ALTSVC (RFC 7838) and ORIGIN (RFC 8336).
//! - Incremental, partial-input-tolerant frame decoding
//!   ([`frame::FrameDecoder`]).
//! - Full HPACK (RFC 7541): static + dynamic tables, Huffman coding,
//!   all four literal representations, dynamic table size updates.
//! - Stream state machine (RFC 7540 §5.1) and connection-level +
//!   stream-level flow control.
//! - Client and server [`Connection`] endpoints: preface exchange,
//!   SETTINGS negotiation and acknowledgement, request/response
//!   exchange, GOAWAY, PING.
//! - RFC 8336 ORIGIN semantics: servers advertise a configured
//!   origin set on stream 0; clients maintain the origin set per
//!   §2.3 of the RFC (full replacement on each ORIGIN frame) and
//!   expose the coalescing check ([`origin::OriginSet::allows`]).
//! - 421 Misdirected Request generation for authorities outside the
//!   server's configured origin set (RFC 7540 §9.1.2).
//!
//! - RFC 7540 §5.3 priority tree ([`priority::PriorityTree`]) — the
//!   single-connection scheduler behind the paper's §6.1 argument
//!   that coalescing preserves intended resource ordering.
//!
//! Omitted (not needed by any experiment): server push payload
//! delivery, CONNECT.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conn;
pub mod error;
pub mod frame;
pub mod hpack;
pub mod origin;
pub mod priority;
pub mod settings;
pub mod stream;

pub use conn::{ConnStats, Connection, Event, Role};
pub use error::{ErrorCode, FrameError, H2Error, Recovery};
pub use frame::{Frame, FrameDecoder, FrameHeader, FrameType};
pub use origin::{OriginEntry, OriginSet};
pub use priority::PriorityTree;
pub use settings::Settings;
pub use stream::{StreamId, StreamState};

/// The 24-octet client connection preface (RFC 7540 §3.5).
pub const CLIENT_PREFACE: &[u8] = b"PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n";
