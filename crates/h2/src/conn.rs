//! Sans-IO HTTP/2 connection endpoints.
//!
//! A [`Connection`] is fed raw bytes with [`Connection::recv`] and
//! produces protocol [`Event`]s plus outgoing bytes retrievable with
//! [`Connection::take_outgoing`]. It never blocks, sleeps, or touches
//! sockets — transports (the discrete-event simulator, or a real
//! socket loop) move the bytes.
//!
//! The server side implements the paper's contribution: a configured
//! [`OriginSet`] is advertised in an ORIGIN frame on stream 0
//! immediately after the server SETTINGS, and requests for
//! authorities the server is not configured to serve are answered
//! with `421 Misdirected Request` (RFC 7540 §9.1.2).

use crate::error::{ErrorCode, H2Error};
use crate::frame::{encode_continuation, encode_headers, Frame, FrameDecoder};
use crate::hpack::{Decoder as HpackDecoder, Encoder as HpackEncoder, Header};
use crate::origin::{ClientOriginState, OriginEntry, OriginSet};
use crate::priority::PriorityTree;
use crate::settings::Settings;
use crate::stream::{StreamId, StreamState};
use crate::CLIENT_PREFACE;
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;

/// Which end of the connection this endpoint is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Client endpoint: sends the preface, opens odd streams.
    Client,
    /// Server endpoint: expects the preface, answers requests.
    Server,
}

/// Protocol events surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The peer's SETTINGS arrived (and was acknowledged).
    SettingsReceived,
    /// The peer acknowledged our SETTINGS.
    SettingsAcked,
    /// A complete header block arrived (request on servers, response
    /// on clients).
    Headers {
        /// Carrying stream.
        stream: StreamId,
        /// Decoded header list.
        headers: Vec<Header>,
        /// Whether the sender half-closed.
        end_stream: bool,
    },
    /// Body bytes arrived.
    Data {
        /// Carrying stream.
        stream: StreamId,
        /// The bytes.
        data: Bytes,
        /// Whether the sender half-closed.
        end_stream: bool,
    },
    /// The peer reset a stream.
    StreamReset {
        /// The stream.
        stream: StreamId,
        /// Error code.
        code: ErrorCode,
    },
    /// An ORIGIN frame arrived (clients only; servers ignore it). The
    /// connection's origin state has already been updated.
    OriginReceived {
        /// Raw ASCII entries as received.
        origins: Vec<String>,
    },
    /// An ALTSVC frame arrived.
    AltSvcReceived {
        /// Origin field.
        origin: String,
        /// Alt-Svc value.
        value: String,
    },
    /// PING answered automatically; surfaced for observability.
    PingReceived,
    /// Our PING was acknowledged.
    PongReceived,
    /// Peer is going away.
    GoAway {
        /// Error code.
        code: ErrorCode,
        /// Highest stream the peer will process.
        last_stream: StreamId,
    },
    /// A frame of unknown type was ignored per RFC 7540 §4.1;
    /// surfaced so tests can assert fail-open behaviour.
    UnknownFrameIgnored {
        /// The raw type octet.
        kind: u8,
    },
}

struct StreamRec {
    state: StreamState,
    send_window: i64,
    recv_window: i64,
}

/// Body bytes waiting for flow-control window.
struct PendingData {
    stream: StreamId,
    data: Bytes,
    end_stream: bool,
}

/// Pending header-block accumulation across CONTINUATION frames.
struct PendingHeaders {
    stream: StreamId,
    fragment: BytesMut,
    end_stream: bool,
}

/// Server behaviour configuration.
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Our SETTINGS.
    pub settings: Settings,
    /// Origin set to advertise via ORIGIN frame right after SETTINGS
    /// (None = no ORIGIN frame — pre-deployment behaviour).
    pub origin_set: Option<OriginSet>,
    /// Authorities this server will actually serve. Requests for
    /// others get `421 Misdirected Request`. Empty = serve anything
    /// (a wildcard edge).
    pub authorized: Vec<String>,
}

/// Frame-level work counters for one connection.
///
/// Plain monotonic `u64`s so shard merges stay commutative; the
/// loader and edge harnesses fold these into an
/// [`origin_metrics::Registry`] via [`Connection::record_metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Frames written to the outgoing buffer.
    pub frames_encoded: u64,
    /// Frames parsed from the peer.
    pub frames_decoded: u64,
    /// ORIGIN frames this endpoint sent (servers).
    pub origin_frames_sent: u64,
    /// ORIGIN frames this (client) endpoint accepted into its origin
    /// set. Servers ignore ORIGIN (RFC 8336 §2), so theirs stay 0.
    pub origin_frames_received: u64,
}

/// A sans-IO HTTP/2 connection endpoint.
pub struct Connection {
    role: Role,
    decoder: FrameDecoder,
    recv_buf: BytesMut,
    send_buf: BytesMut,
    hpack_enc: HpackEncoder,
    hpack_dec: HpackDecoder,
    /// Reused header-block staging buffer: HPACK encodes into it and
    /// the HEADERS/CONTINUATION frames copy straight from it into
    /// `send_buf` — no per-request `Vec`/`Bytes` round trip. Carries
    /// capacity only across requests.
    hpack_block: Vec<u8>,
    local_settings: Settings,
    remote_settings: Settings,
    streams: HashMap<StreamId, StreamRec>,
    next_stream_id: u32,
    preface_remaining: usize,
    pending_headers: Option<PendingHeaders>,
    pending_data: Vec<PendingData>,
    conn_send_window: i64,
    conn_recv_window: i64,
    goaway_sent: bool,
    goaway_received: bool,
    // Client-side origin tracking.
    origin_state: Option<ClientOriginState>,
    // Server-side config.
    server: Option<ServerConfig>,
    /// Count of ORIGIN frames sent (server) or received (client);
    /// the passive-measurement pipeline reads this.
    pub origin_frames: u64,
    /// Frame-level work counters (metrics export).
    pub stats: ConnStats,
    /// Stream priority tree (RFC 7540 §5.3), fed by PRIORITY frames
    /// and HEADERS priority fields; servers consult it to order
    /// response transmission (the §6.1 scheduling opportunity).
    pub priorities: PriorityTree,
}

impl Connection {
    /// Create a client endpoint for a TLS connection whose SNI was
    /// `authority`. Writes the connection preface and initial SETTINGS.
    pub fn client(authority: &str, settings: Settings) -> Self {
        let mut c = Connection::new(Role::Client, settings);
        c.origin_state = Some(ClientOriginState::connect_https(authority));
        c.send_buf.extend_from_slice(CLIENT_PREFACE);
        c.send_settings();
        c
    }

    /// Create a server endpoint. Writes initial SETTINGS followed by
    /// an ORIGIN frame when an origin set is configured — the frame
    /// ordering the paper's deployment used (origin set advertised as
    /// early as possible on stream 0).
    pub fn server(config: ServerConfig) -> Self {
        let mut c = Connection::new(Role::Server, config.settings.clone());
        c.preface_remaining = CLIENT_PREFACE.len();
        c.send_settings();
        if let Some(set) = &config.origin_set {
            set.to_frame().encode(&mut c.send_buf);
            c.origin_frames += 1;
            c.stats.frames_encoded += 1;
            c.stats.origin_frames_sent += 1;
        }
        c.server = Some(config);
        c
    }

    fn new(role: Role, settings: Settings) -> Self {
        Connection {
            role,
            decoder: FrameDecoder::new(settings.max_frame_size as usize),
            recv_buf: BytesMut::new(),
            send_buf: BytesMut::new(),
            hpack_enc: HpackEncoder::new(),
            hpack_dec: HpackDecoder::new(),
            hpack_block: Vec::new(),
            local_settings: settings,
            remote_settings: Settings::default(),
            streams: HashMap::new(),
            next_stream_id: if role == Role::Client { 1 } else { 2 },
            preface_remaining: 0,
            pending_headers: None,
            pending_data: Vec::new(),
            conn_send_window: 65_535,
            conn_recv_window: 65_535,
            goaway_sent: false,
            goaway_received: false,
            origin_state: None,
            server: None,
            origin_frames: 0,
            stats: ConnStats::default(),
            priorities: PriorityTree::new(),
        }
    }

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Client-side origin state (None on servers).
    pub fn origin_state(&self) -> Option<&ClientOriginState> {
        self.origin_state.as_ref()
    }

    /// May this (client) connection be coalesced for `host` on the
    /// basis of ORIGIN state alone? Certificate coverage is checked
    /// separately by the browser model.
    pub fn origin_allows(&self, host: &str) -> bool {
        self.origin_state
            .as_ref()
            .map(|s| s.allows(&OriginEntry::https(host)))
            .unwrap_or(false)
    }

    /// Has the peer told us to go away (or have we)?
    pub fn is_closing(&self) -> bool {
        self.goaway_sent || self.goaway_received
    }

    /// State of a stream (Idle if unknown).
    pub fn stream_state(&self, id: StreamId) -> StreamState {
        self.streams
            .get(&id)
            .map(|s| s.state)
            .unwrap_or(StreamState::Idle)
    }

    /// Streams currently open (not closed) from this endpoint's view.
    pub fn open_streams(&self) -> u32 {
        self.streams
            .values()
            .filter(|r| r.state != StreamState::Closed)
            .count() as u32
    }

    /// Number of streams this endpoint has opened.
    pub fn streams_opened(&self) -> u32 {
        (self.next_stream_id - if self.role == Role::Client { 1 } else { 2 }) / 2
    }

    /// Drain bytes queued for the peer.
    pub fn take_outgoing(&mut self) -> Bytes {
        self.send_buf.split().freeze()
    }

    /// Bytes currently queued for the peer.
    pub fn pending_outgoing(&self) -> usize {
        self.send_buf.len()
    }

    /// Fold this connection's frame and HPACK work into a metrics
    /// registry under `h2.*`.
    pub fn record_metrics(&self, metrics: &mut origin_metrics::Registry) {
        metrics.add("h2.frames_encoded", self.stats.frames_encoded);
        metrics.add("h2.frames_decoded", self.stats.frames_decoded);
        metrics.add("h2.origin_frames_sent", self.stats.origin_frames_sent);
        metrics.add(
            "h2.origin_frames_accepted",
            self.stats.origin_frames_received,
        );
        metrics.add(
            "h2.hpack_evictions",
            self.hpack_enc.evictions() + self.hpack_dec.evictions(),
        );
    }

    /// Append this connection's wire totals to a flight recorder as a
    /// single `h2.wire` event: value is frames decoded, detail is the
    /// endpoint role.
    pub fn record_flight(&self, t_us: u64, rec: &mut origin_obs::FlightRecorder) {
        let role = match self.role {
            Role::Client => "client",
            Role::Server => "server",
        };
        rec.record(t_us, "h2.wire", self.stats.frames_decoded, role);
    }

    fn send_settings(&mut self) {
        Frame::Settings {
            ack: false,
            params: self.local_settings.to_params(),
        }
        .encode(&mut self.send_buf);
        self.stats.frames_encoded += 1;
    }

    // ---- sending ----

    /// Client: send a request. Returns the new stream id.
    ///
    /// `headers` must include the pseudo-headers (`:method`,
    /// `:scheme`, `:authority`, `:path`). `end_stream` is true for
    /// bodyless requests (GET).
    pub fn send_request(&mut self, headers: &[Header], end_stream: bool) -> StreamId {
        assert_eq!(self.role, Role::Client, "only clients send requests");
        assert!(
            !self.goaway_received,
            "peer sent GOAWAY; new streams would be discarded (RFC 7540 §6.8)"
        );
        if let Some(limit) = self.remote_settings.max_concurrent_streams {
            assert!(
                self.open_streams() < limit,
                "SETTINGS_MAX_CONCURRENT_STREAMS ({limit}) reached"
            );
        }
        let id = StreamId(self.next_stream_id);
        self.next_stream_id += 2;
        let mut block = std::mem::take(&mut self.hpack_block);
        block.clear();
        self.hpack_enc.encode_into(headers, &mut block);
        self.write_header_block(id, &block, end_stream);
        self.hpack_block = block;
        self.streams.insert(
            id,
            StreamRec {
                state: StreamState::Idle.on_send_headers(end_stream),
                send_window: self.remote_settings.initial_window_size as i64,
                recv_window: self.local_settings.initial_window_size as i64,
            },
        );
        id
    }

    /// Send a header block on an existing stream (responses, trailers).
    /// Blocks larger than the peer's SETTINGS_MAX_FRAME_SIZE are split
    /// into HEADERS + CONTINUATION frames (RFC 7540 §6.10).
    pub fn send_headers(&mut self, stream: StreamId, headers: &[Header], end_stream: bool) {
        let mut block = std::mem::take(&mut self.hpack_block);
        block.clear();
        self.hpack_enc.encode_into(headers, &mut block);
        self.write_header_block(stream, &block, end_stream);
        self.hpack_block = block;
        let rec = self.streams.entry(stream).or_insert_with(|| StreamRec {
            state: StreamState::Idle,
            send_window: self.remote_settings.initial_window_size as i64,
            recv_window: self.local_settings.initial_window_size as i64,
        });
        rec.state = rec.state.on_send_headers(end_stream);
    }

    fn write_header_block(&mut self, stream: StreamId, fragment: &[u8], end_stream: bool) {
        let max = self.remote_settings.max_frame_size as usize;
        if fragment.len() <= max {
            encode_headers(&mut self.send_buf, stream, fragment, end_stream, true, None);
            self.stats.frames_encoded += 1;
            return;
        }
        let (first, mut rest) = fragment.split_at(max);
        encode_headers(&mut self.send_buf, stream, first, end_stream, false, None);
        self.stats.frames_encoded += 1;
        while rest.len() > max {
            let (chunk, tail) = rest.split_at(max);
            encode_continuation(&mut self.send_buf, stream, chunk, false);
            self.stats.frames_encoded += 1;
            rest = tail;
        }
        encode_continuation(&mut self.send_buf, stream, rest, true);
        self.stats.frames_encoded += 1;
    }

    /// Server: send a complete response in one HEADERS (+ optional
    /// DATA) exchange.
    pub fn send_response(&mut self, stream: StreamId, status: u16, body: &[u8]) {
        assert_eq!(self.role, Role::Server, "only servers send responses");
        let headers = vec![
            Header::new(":status", &status.to_string()),
            Header::new("content-length", &body.len().to_string()),
        ];
        if body.is_empty() {
            self.send_headers(stream, &headers, true);
        } else {
            self.send_headers(stream, &headers, false);
            self.send_data(stream, body, true);
        }
    }

    /// Server: answer `421 Misdirected Request` (RFC 7540 §9.1.2) —
    /// what a client provokes when it coalesces onto a server that is
    /// not configured for the authority.
    pub fn send_misdirected(&mut self, stream: StreamId) {
        self.send_response(stream, 421, b"");
    }

    /// Send body bytes, respecting connection- and stream-level
    /// flow-control windows (RFC 7540 §6.9): bytes beyond the current
    /// windows are queued and flushed automatically when the peer's
    /// WINDOW_UPDATE frames arrive.
    pub fn send_data(&mut self, stream: StreamId, data: &[u8], end_stream: bool) {
        let rec = self.streams.get(&stream).expect("unknown stream");
        assert!(rec.state.can_send(), "stream {stream} not writable");
        self.pending_data.push(PendingData {
            stream,
            data: Bytes::copy_from_slice(data),
            end_stream,
        });
        self.flush_pending_data();
    }

    /// Bytes queued awaiting flow-control window.
    pub fn queued_data(&self) -> usize {
        self.pending_data.iter().map(|p| p.data.len()).sum()
    }

    fn flush_pending_data(&mut self) {
        let max_frame = self.remote_settings.max_frame_size as usize;
        let mut queue = std::mem::take(&mut self.pending_data);
        let mut blocked: Vec<PendingData> = Vec::new();
        for mut item in queue.drain(..) {
            // Head-of-line per stream: keep order within the queue.
            if blocked.iter().any(|b| b.stream == item.stream) {
                blocked.push(item);
                continue;
            }
            let rec = self.streams.get_mut(&item.stream).expect("stream exists");
            loop {
                let window = rec.send_window.min(self.conn_send_window).max(0) as usize;
                if item.data.is_empty() {
                    if item.end_stream {
                        // Zero-length END_STREAM always fits.
                        Frame::Data {
                            stream: item.stream,
                            data: Bytes::new(),
                            end_stream: true,
                        }
                        .encode(&mut self.send_buf);
                        self.stats.frames_encoded += 1;
                        rec.state = rec.state.on_send_end_stream();
                    }
                    break;
                }
                if window == 0 {
                    blocked.push(item);
                    break;
                }
                let n = item.data.len().min(window).min(max_frame);
                let chunk = item.data.split_to(n);
                let last = item.data.is_empty();
                rec.send_window -= n as i64;
                self.conn_send_window -= n as i64;
                Frame::Data {
                    stream: item.stream,
                    data: chunk,
                    end_stream: item.end_stream && last,
                }
                .encode(&mut self.send_buf);
                self.stats.frames_encoded += 1;
                if last {
                    if item.end_stream {
                        rec.state = rec.state.on_send_end_stream();
                    }
                    break;
                }
            }
        }
        self.pending_data = blocked;
    }

    /// Send a PING.
    pub fn send_ping(&mut self, payload: [u8; 8]) {
        Frame::Ping {
            ack: false,
            payload,
        }
        .encode(&mut self.send_buf);
        self.stats.frames_encoded += 1;
    }

    /// Send GOAWAY and mark the connection closing.
    pub fn send_goaway(&mut self, code: ErrorCode) {
        let last = StreamId(self.next_stream_id.saturating_sub(2));
        Frame::GoAway {
            last_stream: last,
            code,
            debug: Bytes::new(),
        }
        .encode(&mut self.send_buf);
        self.stats.frames_encoded += 1;
        self.goaway_sent = true;
    }

    /// Server: advertise a new origin set mid-connection (RFC 8336
    /// allows ORIGIN at any point in the connection lifetime).
    pub fn send_origin_set(&mut self, set: &OriginSet) {
        assert_eq!(self.role, Role::Server, "only servers send ORIGIN");
        set.to_frame().encode(&mut self.send_buf);
        self.origin_frames += 1;
        self.stats.frames_encoded += 1;
        self.stats.origin_frames_sent += 1;
    }

    /// Is `authority` one this server is configured to serve?
    pub fn is_authorized(&self, authority: &str) -> bool {
        match &self.server {
            None => false,
            Some(cfg) => {
                cfg.authorized.is_empty()
                    || cfg
                        .authorized
                        .iter()
                        .any(|a| a.eq_ignore_ascii_case(authority))
            }
        }
    }

    // ---- receiving ----

    /// Feed bytes from the peer; returns the protocol events they
    /// produced. Automatic replies (SETTINGS acks, PING acks, WINDOW
    /// updates) are queued into the outgoing buffer.
    pub fn recv(&mut self, bytes: &[u8]) -> Result<Vec<Event>, H2Error> {
        self.recv_inner(bytes, None)
    }

    /// [`Connection::recv`] plus frame-level trace events at the
    /// tracer's current time cursor: one `h2.frame` instant per decoded
    /// frame, an `h2.origin.accept` instant when a client folds an
    /// ORIGIN frame into its origin set, and an `h2.hpack.eviction`
    /// instant per dynamic-table eviction the frame caused.
    pub fn recv_traced(
        &mut self,
        bytes: &[u8],
        tracer: &mut origin_trace::Tracer,
    ) -> Result<Vec<Event>, H2Error> {
        self.recv_inner(bytes, Some(tracer))
    }

    fn recv_inner(
        &mut self,
        bytes: &[u8],
        mut tracer: Option<&mut origin_trace::Tracer>,
    ) -> Result<Vec<Event>, H2Error> {
        self.recv_buf.extend_from_slice(bytes);
        if self.preface_remaining > 0 {
            let take = self.preface_remaining.min(self.recv_buf.len());
            let expect_off = CLIENT_PREFACE.len() - self.preface_remaining;
            if self.recv_buf[..take] != CLIENT_PREFACE[expect_off..expect_off + take] {
                return Err(H2Error::BadPreface);
            }
            let _ = self.recv_buf.split_to(take);
            self.preface_remaining -= take;
            if self.preface_remaining > 0 {
                return Ok(Vec::new());
            }
        }
        let mut events = Vec::new();
        while let Some(frame) = self.decoder.decode(&mut self.recv_buf)? {
            self.stats.frames_decoded += 1;
            let kind = frame.frame_type();
            let is_client_origin =
                kind == crate::frame::FrameType::Origin && self.role == Role::Client;
            let origins_before = events.len();
            let evictions_before = self.hpack_dec.evictions();
            self.handle_frame(frame, &mut events)?;
            if let Some(tracer) = tracer.as_deref_mut() {
                tracer.instant("h2.frame", "h2", vec![("type", kind.name().into())]);
                if is_client_origin {
                    // handle_frame pushed exactly one OriginReceived.
                    if let Some(Event::OriginReceived { origins }) = events[origins_before..]
                        .iter()
                        .find(|e| matches!(e, Event::OriginReceived { .. }))
                    {
                        tracer.instant(
                            "h2.origin.accept",
                            "h2",
                            vec![
                                ("origins", (origins.len() as u64).into()),
                                ("set", origins.join(" ").into()),
                            ],
                        );
                    }
                }
                for _ in evictions_before..self.hpack_dec.evictions() {
                    tracer.instant("h2.hpack.eviction", "h2", vec![("table", "decoder".into())]);
                }
            }
        }
        Ok(events)
    }

    fn handle_frame(&mut self, frame: Frame, events: &mut Vec<Event>) -> Result<(), H2Error> {
        // A CONTINUATION sequence must not be interleaved with other
        // frames (RFC 7540 §6.2).
        if self.pending_headers.is_some() && !matches!(frame, Frame::Continuation { .. }) {
            return Err(H2Error::Connection(
                ErrorCode::ProtocolError,
                "non-CONTINUATION frame inside header block",
            ));
        }
        match frame {
            Frame::Settings { ack, params } => {
                if ack {
                    events.push(Event::SettingsAcked);
                } else {
                    self.remote_settings.apply(&params);
                    self.hpack_enc
                        .set_max_table_size(self.remote_settings.header_table_size as usize);
                    Frame::Settings {
                        ack: true,
                        params: vec![],
                    }
                    .encode(&mut self.send_buf);
                    self.stats.frames_encoded += 1;
                    events.push(Event::SettingsReceived);
                }
            }
            Frame::Ping { ack, payload } => {
                if ack {
                    events.push(Event::PongReceived);
                } else {
                    Frame::Ping { ack: true, payload }.encode(&mut self.send_buf);
                    self.stats.frames_encoded += 1;
                    events.push(Event::PingReceived);
                }
            }
            Frame::Headers {
                stream,
                fragment,
                end_stream,
                end_headers,
                priority,
            } => {
                if let Some(spec) = priority {
                    self.priorities.apply(stream, spec);
                }
                if end_headers {
                    self.complete_headers(stream, &fragment, end_stream, events)?;
                } else {
                    self.pending_headers = Some(PendingHeaders {
                        stream,
                        fragment: BytesMut::from(&fragment[..]),
                        end_stream,
                    });
                }
            }
            Frame::Continuation {
                stream,
                fragment,
                end_headers,
            } => {
                let Some(mut pending) = self.pending_headers.take() else {
                    return Err(H2Error::Connection(
                        ErrorCode::ProtocolError,
                        "CONTINUATION without open header block",
                    ));
                };
                if pending.stream != stream {
                    return Err(H2Error::Connection(
                        ErrorCode::ProtocolError,
                        "CONTINUATION on wrong stream",
                    ));
                }
                pending.fragment.extend_from_slice(&fragment);
                if end_headers {
                    let frag = pending.fragment.freeze();
                    self.complete_headers(stream, &frag, pending.end_stream, events)?;
                } else {
                    self.pending_headers = Some(pending);
                }
            }
            Frame::Data {
                stream,
                data,
                end_stream,
            } => {
                let Some(rec) = self.streams.get_mut(&stream) else {
                    return Err(H2Error::Stream(
                        stream,
                        ErrorCode::StreamClosed,
                        "DATA on unknown stream",
                    ));
                };
                if !rec.state.can_recv() {
                    return Err(H2Error::Stream(
                        stream,
                        ErrorCode::StreamClosed,
                        "DATA on non-readable stream",
                    ));
                }
                rec.recv_window -= data.len() as i64;
                self.conn_recv_window -= data.len() as i64;
                if end_stream {
                    rec.state = rec.state.on_recv_end_stream();
                }
                // Replenish windows once half-consumed.
                let init = self.local_settings.initial_window_size as i64;
                if rec.recv_window < init / 2 {
                    let inc = (init - rec.recv_window) as u32;
                    rec.recv_window = init;
                    Frame::WindowUpdate {
                        stream,
                        increment: inc,
                    }
                    .encode(&mut self.send_buf);
                    self.stats.frames_encoded += 1;
                }
                if self.conn_recv_window < 32_768 {
                    let inc = (65_535 - self.conn_recv_window) as u32;
                    self.conn_recv_window = 65_535;
                    Frame::WindowUpdate {
                        stream: StreamId::CONNECTION,
                        increment: inc,
                    }
                    .encode(&mut self.send_buf);
                    self.stats.frames_encoded += 1;
                }
                events.push(Event::Data {
                    stream,
                    data,
                    end_stream,
                });
            }
            Frame::RstStream { stream, code } => {
                if let Some(rec) = self.streams.get_mut(&stream) {
                    rec.state = rec.state.on_reset();
                }
                self.priorities.remove(stream);
                events.push(Event::StreamReset { stream, code });
            }
            Frame::WindowUpdate { stream, increment } => {
                if stream.is_connection() {
                    self.conn_send_window += increment as i64;
                } else if let Some(rec) = self.streams.get_mut(&stream) {
                    rec.send_window += increment as i64;
                }
                self.flush_pending_data();
            }
            Frame::GoAway {
                last_stream, code, ..
            } => {
                self.goaway_received = true;
                events.push(Event::GoAway { code, last_stream });
            }
            Frame::Origin { origins } => {
                // RFC 8336 §2: clients update the origin set; servers
                // (and h2c endpoints) ignore the frame entirely.
                if self.role == Role::Client {
                    if let Some(st) = self.origin_state.as_mut() {
                        st.on_origin_frame(&origins);
                    }
                    self.origin_frames += 1;
                    self.stats.origin_frames_received += 1;
                    events.push(Event::OriginReceived { origins });
                }
            }
            Frame::AltSvc { origin, value, .. } => {
                events.push(Event::AltSvcReceived {
                    origin: String::from_utf8_lossy(&origin).into_owned(),
                    value: String::from_utf8_lossy(&value).into_owned(),
                });
            }
            Frame::PushPromise { promised, .. } => {
                // Push bodies are not modelled; refuse the stream so a
                // compliant peer stops.
                Frame::RstStream {
                    stream: promised,
                    code: ErrorCode::RefusedStream,
                }
                .encode(&mut self.send_buf);
                self.stats.frames_encoded += 1;
            }
            Frame::Priority { stream, spec } => {
                self.priorities.apply(stream, spec);
            }
            Frame::Unknown { kind, .. } => {
                // RFC 7540 §4.1: implementations MUST ignore and
                // discard frames of unknown type. This is the
                // "fail-open" rule the §6.7 middlebox violated.
                events.push(Event::UnknownFrameIgnored { kind });
            }
        }
        Ok(())
    }

    fn complete_headers(
        &mut self,
        stream: StreamId,
        fragment: &[u8],
        end_stream: bool,
        events: &mut Vec<Event>,
    ) -> Result<(), H2Error> {
        let headers = self
            .hpack_dec
            .decode(fragment)
            .map_err(|_| H2Error::Connection(ErrorCode::CompressionError, "HPACK decode failed"))?;
        let rec = self.streams.entry(stream).or_insert_with(|| StreamRec {
            state: StreamState::Idle,
            send_window: self.remote_settings.initial_window_size as i64,
            recv_window: self.local_settings.initial_window_size as i64,
        });
        rec.state = rec.state.on_recv_headers(end_stream);
        events.push(Event::Headers {
            stream,
            headers,
            end_stream,
        });
        Ok(())
    }
}

/// Build the standard request pseudo-header set.
pub fn request_headers(method: &str, authority: &str, path: &str) -> Vec<Header> {
    vec![
        Header::new(":method", method),
        Header::new(":scheme", "https"),
        Header::new(":authority", authority),
        Header::new(":path", path),
    ]
}

/// Extract the `:authority` pseudo-header from a decoded request.
pub fn authority_of(headers: &[Header]) -> Option<&str> {
    headers
        .iter()
        .find(|h| h.name == ":authority")
        .map(|h| h.value.as_str())
}

/// Extract the `:status` pseudo-header from a decoded response.
pub fn status_of(headers: &[Header]) -> Option<u16> {
    headers
        .iter()
        .find(|h| h.name == ":status")
        .and_then(|h| h.value.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pump bytes both ways until quiescent; collect events per side.
    fn pump(a: &mut Connection, b: &mut Connection) -> (Vec<Event>, Vec<Event>) {
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        loop {
            let out_a = a.take_outgoing();
            let out_b = b.take_outgoing();
            if out_a.is_empty() && out_b.is_empty() {
                break;
            }
            if !out_a.is_empty() {
                eb.extend(b.recv(&out_a).expect("b.recv"));
            }
            if !out_b.is_empty() {
                ea.extend(a.recv(&out_b).expect("a.recv"));
            }
        }
        (ea, eb)
    }

    fn pair() -> (Connection, Connection) {
        let client = Connection::client("www.example.com", Settings::default());
        let server = Connection::server(ServerConfig {
            authorized: vec!["www.example.com".into()],
            ..Default::default()
        });
        (client, server)
    }

    #[test]
    fn handshake_exchanges_settings() {
        let (mut c, mut s) = pair();
        let (ce, se) = pump(&mut c, &mut s);
        assert!(ce.contains(&Event::SettingsReceived));
        assert!(ce.contains(&Event::SettingsAcked));
        assert!(se.contains(&Event::SettingsReceived));
        assert!(se.contains(&Event::SettingsAcked));
    }

    #[test]
    fn bad_preface_rejected() {
        let mut s = Connection::server(ServerConfig::default());
        let err = s.recv(b"GET / HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, H2Error::BadPreface);
    }

    #[test]
    fn preface_accepted_in_pieces() {
        let mut s = Connection::server(ServerConfig::default());
        let preface = CLIENT_PREFACE;
        assert!(s.recv(&preface[..10]).unwrap().is_empty());
        assert!(s.recv(&preface[10..]).unwrap().is_empty());
    }

    #[test]
    fn request_response_exchange() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let stream = c.send_request(&request_headers("GET", "www.example.com", "/"), true);
        assert_eq!(stream, StreamId(1));
        let (_, se) = pump(&mut c, &mut s);
        let req = se
            .iter()
            .find_map(|e| match e {
                Event::Headers {
                    stream,
                    headers,
                    end_stream,
                } => Some((*stream, headers.clone(), *end_stream)),
                _ => None,
            })
            .expect("server saw request");
        assert_eq!(req.0, StreamId(1));
        assert!(req.2);
        assert_eq!(authority_of(&req.1), Some("www.example.com"));

        s.send_response(stream, 200, b"hello");
        let (ce, _) = pump(&mut c, &mut s);
        let status = ce
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .expect("client saw response headers");
        assert_eq!(status, 200);
        let body: Vec<u8> = ce
            .iter()
            .filter_map(|e| match e {
                Event::Data { data, .. } => Some(data.to_vec()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(body, b"hello");
        assert_eq!(c.stream_state(stream), StreamState::Closed);
        assert_eq!(s.stream_state(stream), StreamState::Closed);
    }

    #[test]
    fn server_advertises_configured_origin_set() {
        let mut c = Connection::client("shop.example", Settings::default());
        let mut s = Connection::server(ServerConfig {
            origin_set: Some(OriginSet::from_hosts([
                "shop.example",
                "cdnjs.cloudflare.com",
            ])),
            ..Default::default()
        });
        let (ce, _) = pump(&mut c, &mut s);
        let got = ce
            .iter()
            .find_map(|e| match e {
                Event::OriginReceived { origins } => Some(origins.clone()),
                _ => None,
            })
            .expect("client received ORIGIN frame");
        assert_eq!(
            got,
            vec!["https://shop.example", "https://cdnjs.cloudflare.com"]
        );
        // Client origin state updated: coalescing now allowed for the
        // third-party host.
        assert!(c.origin_allows("cdnjs.cloudflare.com"));
        assert!(c.origin_allows("shop.example"));
        assert!(!c.origin_allows("evil.example"));
        assert_eq!(s.origin_frames, 1);
        assert_eq!(c.origin_frames, 1);
    }

    #[test]
    fn no_origin_frame_means_implicit_state() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        assert!(!c.origin_state().unwrap().is_explicit());
        assert!(c.origin_allows("www.example.com"));
        assert!(!c.origin_allows("static.example.com"));
    }

    #[test]
    fn misdirected_request_gets_421() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let stream = c.send_request(
            &request_headers("GET", "unconfigured.example", "/x.js"),
            true,
        );
        let (_, se) = pump(&mut c, &mut s);
        let (req_stream, headers) = se
            .iter()
            .find_map(|e| match e {
                Event::Headers {
                    stream, headers, ..
                } => Some((*stream, headers.clone())),
                _ => None,
            })
            .unwrap();
        let authority = authority_of(&headers).unwrap();
        assert!(!s.is_authorized(authority));
        s.send_misdirected(req_stream);
        let (ce, _) = pump(&mut c, &mut s);
        let status = ce
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => status_of(headers),
                _ => None,
            })
            .unwrap();
        assert_eq!(status, 421);
        assert_eq!(stream, req_stream);
    }

    #[test]
    fn wildcard_server_authorizes_everything() {
        let s = Connection::server(ServerConfig::default());
        assert!(s.is_authorized("anything.example"));
    }

    #[test]
    fn ping_is_auto_acked() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        c.send_ping([9; 8]);
        let (ce, se) = pump(&mut c, &mut s);
        assert!(se.contains(&Event::PingReceived));
        assert!(ce.contains(&Event::PongReceived));
    }

    #[test]
    fn goaway_marks_closing() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        s.send_goaway(ErrorCode::NoError);
        let (ce, _) = pump(&mut c, &mut s);
        assert!(matches!(
            ce.last(),
            Some(Event::GoAway {
                code: ErrorCode::NoError,
                ..
            })
        ));
        assert!(c.is_closing());
        assert!(s.is_closing());
    }

    #[test]
    fn unknown_frames_ignored_fail_open() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        // Hand-craft an unknown frame type 0x42 and feed it to the client.
        let f = Frame::Unknown {
            kind: 0x42,
            flags: 0,
            stream: StreamId(0),
            payload: Bytes::from_static(b"???"),
        };
        let ev = c.recv(&f.to_bytes()).unwrap();
        assert_eq!(ev, vec![Event::UnknownFrameIgnored { kind: 0x42 }]);
        // Connection still works.
        let id = c.send_request(&request_headers("GET", "www.example.com", "/"), true);
        let (_, se) = pump(&mut c, &mut s);
        assert!(se.iter().any(|e| matches!(e, Event::Headers { .. })));
        assert_eq!(id, StreamId(1));
    }

    #[test]
    fn server_ignores_origin_frames() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let f = OriginSet::from_hosts(["spoof.example"]).to_frame();
        let ev = s.recv(&f.to_bytes()).unwrap();
        assert!(ev.is_empty(), "server must ignore ORIGIN: {ev:?}");
        assert_eq!(s.origin_frames, 0);
    }

    #[test]
    fn multiple_requests_use_odd_stream_ids() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let ids: Vec<StreamId> = (0..3)
            .map(|i| {
                c.send_request(
                    &request_headers("GET", "www.example.com", &format!("/{i}")),
                    true,
                )
            })
            .collect();
        assert_eq!(ids, vec![StreamId(1), StreamId(3), StreamId(5)]);
        assert_eq!(c.streams_opened(), 3);
        let (_, se) = pump(&mut c, &mut s);
        let seen: Vec<StreamId> = se
            .iter()
            .filter_map(|e| match e {
                Event::Headers { stream, .. } => Some(*stream),
                _ => None,
            })
            .collect();
        assert_eq!(seen, ids);
    }

    #[test]
    fn large_body_split_into_frames_and_window_updates_flow() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let stream = c.send_request(&request_headers("GET", "www.example.com", "/big"), true);
        pump(&mut c, &mut s);
        let body = vec![0xAB; 40_000]; // > 2 frames at 16 KB
        s.send_response(stream, 200, &body);
        let (ce, _) = pump(&mut c, &mut s);
        let got: usize = ce
            .iter()
            .filter_map(|e| match e {
                Event::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(got, 40_000);
        // The client must have replenished its windows.
        assert!(
            ce.iter()
                .filter(|e| matches!(e, Event::Data { .. }))
                .count()
                >= 3
        );
    }

    #[test]
    fn rst_stream_surfaces_and_closes() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        let stream = c.send_request(&request_headers("GET", "www.example.com", "/"), true);
        pump(&mut c, &mut s);
        // Server refuses.
        Frame::RstStream {
            stream,
            code: ErrorCode::RefusedStream,
        }
        .encode(&mut s.send_buf);
        let (ce, _) = pump(&mut c, &mut s);
        assert!(ce.contains(&Event::StreamReset {
            stream,
            code: ErrorCode::RefusedStream
        }));
        assert_eq!(c.stream_state(stream), StreamState::Closed);
    }

    #[test]
    fn mid_connection_origin_update_replaces_set() {
        let mut c = Connection::client("a.example", Settings::default());
        let mut s = Connection::server(ServerConfig {
            origin_set: Some(OriginSet::from_hosts(["a.example", "b.example"])),
            ..Default::default()
        });
        pump(&mut c, &mut s);
        assert!(c.origin_allows("b.example"));
        s.send_origin_set(&OriginSet::from_hosts(["a.example"]));
        pump(&mut c, &mut s);
        assert!(!c.origin_allows("b.example"));
        assert_eq!(s.origin_frames, 2);
    }

    #[test]
    fn continuation_frames_reassemble() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        // Hand-encode a header block split across HEADERS+CONTINUATION.
        let mut enc = HpackEncoder::new();
        let block = enc.encode(&request_headers("GET", "www.example.com", "/split"));
        let (h1, h2) = block.split_at(block.len() / 2);
        Frame::Headers {
            stream: StreamId(1),
            fragment: Bytes::copy_from_slice(h1),
            end_stream: true,
            end_headers: false,
            priority: None,
        }
        .encode(&mut c.send_buf);
        Frame::Continuation {
            stream: StreamId(1),
            fragment: Bytes::copy_from_slice(h2),
            end_headers: true,
        }
        .encode(&mut c.send_buf);
        let (_, se) = pump(&mut c, &mut s);
        let headers = se
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => Some(headers.clone()),
                _ => None,
            })
            .expect("reassembled headers");
        assert_eq!(authority_of(&headers), Some("www.example.com"));
    }

    #[test]
    #[should_panic(expected = "GOAWAY")]
    fn requests_after_goaway_panic() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        s.send_goaway(ErrorCode::NoError);
        pump(&mut c, &mut s);
        c.send_request(&request_headers("GET", "www.example.com", "/"), true);
    }

    #[test]
    #[should_panic(expected = "MAX_CONCURRENT_STREAMS")]
    fn concurrency_limit_enforced() {
        let mut c = Connection::client("www.example.com", Settings::default());
        let mut s = Connection::server(ServerConfig {
            settings: Settings {
                max_concurrent_streams: Some(2),
                ..Default::default()
            },
            ..Default::default()
        });
        pump(&mut c, &mut s);
        // Two requests allowed; the third overruns the advertised cap
        // (responses are withheld, so streams stay open).
        c.send_request(&request_headers("GET", "www.example.com", "/1"), true);
        c.send_request(&request_headers("GET", "www.example.com", "/2"), true);
        c.send_request(&request_headers("GET", "www.example.com", "/3"), true);
    }

    #[test]
    fn flow_control_queues_and_resumes_on_window_update() {
        // Server with a tiny initial window: a large body must queue
        // and drain as the client's auto-replenish WINDOW_UPDATEs
        // arrive.
        let mut c = Connection::client("www.example.com", Settings::default());
        let mut s = Connection::server(ServerConfig::default());
        pump(&mut c, &mut s);
        let stream = c.send_request(&request_headers("GET", "www.example.com", "/big"), true);
        pump(&mut c, &mut s);
        // 200 KB ≫ the 64 KB connection window.
        let body = vec![0x5A; 200_000];
        s.send_response(stream, 200, &body);
        assert!(s.queued_data() > 0, "body beyond the window must queue");
        let (ce, _) = pump(&mut c, &mut s);
        let got: usize = ce
            .iter()
            .filter_map(|e| match e {
                Event::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(got, 200_000, "window updates must drain the queue");
        assert_eq!(s.queued_data(), 0);
        assert_eq!(c.stream_state(stream), StreamState::Closed);
    }

    #[test]
    fn data_frames_respect_peer_window_sizes() {
        let mut c = Connection::client("www.example.com", Settings::default());
        let mut s = Connection::server(ServerConfig::default());
        pump(&mut c, &mut s);
        let stream = c.send_request(&request_headers("GET", "www.example.com", "/x"), true);
        pump(&mut c, &mut s);
        s.send_response(stream, 200, &vec![1u8; 100_000]);
        // Every emitted DATA frame must be within the 16 KB max frame
        // size and the first flight within the 64 KB window.
        let wire = s.take_outgoing();
        let dec = FrameDecoder::default();
        let mut buf = BytesMut::from(&wire[..]);
        let mut first_flight = 0usize;
        while let Some(f) = dec.decode(&mut buf).unwrap() {
            if let Frame::Data { data, .. } = f {
                assert!(data.len() <= 16_384);
                first_flight += data.len();
            }
        }
        assert!(first_flight <= 65_535, "first flight {first_flight}");
        // Feed it through; the rest drains via pump.
        c.recv(&wire).unwrap();
        let (ce, _) = pump(&mut c, &mut s);
        let got: usize = ce
            .iter()
            .filter_map(|e| match e {
                Event::Data { data, .. } => Some(data.len()),
                _ => None,
            })
            .sum();
        assert_eq!(got + first_flight, 100_000);
    }

    #[test]
    fn priority_frames_populate_the_tree() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        // The client expresses a dependency: stream 3 depends on 1.
        Frame::Priority {
            stream: StreamId(1),
            spec: crate::frame::PrioritySpec {
                exclusive: false,
                depends_on: StreamId(0),
                weight: 200,
            },
        }
        .encode(&mut c.send_buf);
        Frame::Priority {
            stream: StreamId(3),
            spec: crate::frame::PrioritySpec {
                exclusive: false,
                depends_on: StreamId(1),
                weight: 100,
            },
        }
        .encode(&mut c.send_buf);
        pump(&mut c, &mut s);
        let order = s.priorities.transmission_order();
        assert_eq!(order, vec![StreamId(1), StreamId(3)]);
        // RST removes from the tree.
        Frame::RstStream {
            stream: StreamId(1),
            code: ErrorCode::Cancel,
        }
        .encode(&mut c.send_buf);
        pump(&mut c, &mut s);
        assert_eq!(s.priorities.transmission_order(), vec![StreamId(3)]);
    }

    #[test]
    fn open_streams_tracks_lifecycle() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        assert_eq!(c.open_streams(), 0);
        let id = c.send_request(&request_headers("GET", "www.example.com", "/"), true);
        assert_eq!(c.open_streams(), 1);
        let (_, se) = pump(&mut c, &mut s);
        assert!(se.iter().any(|e| matches!(e, Event::Headers { .. })));
        s.send_response(id, 200, b"done");
        pump(&mut c, &mut s);
        assert_eq!(c.open_streams(), 0);
    }

    #[test]
    fn oversized_header_block_splits_into_continuations() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        // A cookie far larger than the 16 KB max frame size forces a
        // HEADERS + CONTINUATION sequence on the wire.
        let mut headers = request_headers("GET", "www.example.com", "/big");
        headers.push(Header::sensitive("cookie", &"x".repeat(40_000)));
        c.send_request(&headers, true);
        let (_, se) = pump(&mut c, &mut s);
        let got = se
            .iter()
            .find_map(|e| match e {
                Event::Headers { headers, .. } => Some(headers.clone()),
                _ => None,
            })
            .expect("server reassembles the split block");
        assert!(got
            .iter()
            .any(|h| h.name == "cookie" && h.value.len() == 40_000));
    }

    #[test]
    fn interleaved_frame_during_continuation_is_protocol_error() {
        let (mut c, mut s) = pair();
        pump(&mut c, &mut s);
        Frame::Headers {
            stream: StreamId(1),
            fragment: Bytes::from_static(&[0x82]),
            end_stream: true,
            end_headers: false,
            priority: None,
        }
        .encode(&mut c.send_buf);
        Frame::Ping {
            ack: false,
            payload: [0; 8],
        }
        .encode(&mut c.send_buf);
        let out = c.take_outgoing();
        let err = s.recv(&out).unwrap_err();
        assert!(matches!(
            err,
            H2Error::Connection(ErrorCode::ProtocolError, _)
        ));
    }
}
