//! Stream identifiers and the RFC 7540 §5.1 stream state machine.

use std::fmt;

/// A 31-bit stream identifier. Stream 0 is the connection itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// Stream 0: connection-scoped frames.
    pub const CONNECTION: StreamId = StreamId(0);

    /// True for stream 0.
    pub fn is_connection(self) -> bool {
        self.0 == 0
    }

    /// Client-initiated streams are odd (RFC 7540 §5.1.1).
    pub fn is_client_initiated(self) -> bool {
        self.0 % 2 == 1
    }

    /// Server-initiated (pushed) streams are even and non-zero.
    pub fn is_server_initiated(self) -> bool {
        self.0 != 0 && self.0.is_multiple_of(2)
    }

    /// The next stream id initiated by the same peer.
    pub fn next(self) -> StreamId {
        StreamId(self.0 + 2)
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// RFC 7540 §5.1 stream states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamState {
    /// Not yet used.
    Idle,
    /// Promised via PUSH_PROMISE, reserved by the local endpoint.
    ReservedLocal,
    /// Promised via PUSH_PROMISE, reserved by the remote endpoint.
    ReservedRemote,
    /// Both sides may send.
    Open,
    /// We sent END_STREAM; peer may still send.
    HalfClosedLocal,
    /// Peer sent END_STREAM; we may still send.
    HalfClosedRemote,
    /// Fully closed.
    Closed,
}

impl StreamState {
    /// Can the local endpoint still send DATA/HEADERS on this stream?
    pub fn can_send(self) -> bool {
        matches!(self, StreamState::Open | StreamState::HalfClosedRemote)
    }

    /// Can the remote endpoint still send on this stream?
    pub fn can_recv(self) -> bool {
        matches!(self, StreamState::Open | StreamState::HalfClosedLocal)
    }

    /// Transition when the local endpoint sends HEADERS
    /// (`end_stream` = END_STREAM flag).
    pub fn on_send_headers(self, end_stream: bool) -> StreamState {
        match (self, end_stream) {
            (StreamState::Idle, false) => StreamState::Open,
            (StreamState::Idle, true) => StreamState::HalfClosedLocal,
            (StreamState::ReservedLocal, false) => StreamState::HalfClosedRemote,
            (StreamState::ReservedLocal, true) => StreamState::Closed,
            (StreamState::Open, true) => StreamState::HalfClosedLocal,
            (StreamState::HalfClosedRemote, true) => StreamState::Closed,
            (s, _) => s,
        }
    }

    /// Transition when HEADERS is received.
    pub fn on_recv_headers(self, end_stream: bool) -> StreamState {
        match (self, end_stream) {
            (StreamState::Idle, false) => StreamState::Open,
            (StreamState::Idle, true) => StreamState::HalfClosedRemote,
            (StreamState::ReservedRemote, false) => StreamState::HalfClosedLocal,
            (StreamState::ReservedRemote, true) => StreamState::Closed,
            (StreamState::Open, true) => StreamState::HalfClosedRemote,
            (StreamState::HalfClosedLocal, true) => StreamState::Closed,
            (s, _) => s,
        }
    }

    /// Transition when the local endpoint sends DATA with END_STREAM.
    pub fn on_send_end_stream(self) -> StreamState {
        match self {
            StreamState::Open => StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote => StreamState::Closed,
            s => s,
        }
    }

    /// Transition when DATA with END_STREAM is received.
    pub fn on_recv_end_stream(self) -> StreamState {
        match self {
            StreamState::Open => StreamState::HalfClosedRemote,
            StreamState::HalfClosedLocal => StreamState::Closed,
            s => s,
        }
    }

    /// Transition on RST_STREAM (sent or received): immediate close.
    pub fn on_reset(self) -> StreamState {
        StreamState::Closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parity() {
        assert!(StreamId(1).is_client_initiated());
        assert!(StreamId(3).is_client_initiated());
        assert!(StreamId(2).is_server_initiated());
        assert!(!StreamId(0).is_server_initiated());
        assert!(StreamId::CONNECTION.is_connection());
        assert_eq!(StreamId(1).next(), StreamId(3));
    }

    #[test]
    fn request_response_lifecycle() {
        // Client sends a GET (END_STREAM on HEADERS), server responds.
        let mut client = StreamState::Idle;
        client = client.on_send_headers(true);
        assert_eq!(client, StreamState::HalfClosedLocal);
        assert!(!client.can_send());
        assert!(client.can_recv());
        // Response headers arrive…
        client = client.on_recv_headers(false);
        assert_eq!(client, StreamState::HalfClosedLocal);
        // …then final DATA.
        client = client.on_recv_end_stream();
        assert_eq!(client, StreamState::Closed);
    }

    #[test]
    fn server_view_of_request() {
        let mut server = StreamState::Idle;
        server = server.on_recv_headers(true);
        assert_eq!(server, StreamState::HalfClosedRemote);
        assert!(server.can_send());
        server = server.on_send_headers(false);
        assert_eq!(server, StreamState::HalfClosedRemote);
        server = server.on_send_end_stream();
        assert_eq!(server, StreamState::Closed);
    }

    #[test]
    fn post_with_body_lifecycle() {
        let mut s = StreamState::Idle;
        s = s.on_send_headers(false);
        assert_eq!(s, StreamState::Open);
        assert!(s.can_send() && s.can_recv());
        s = s.on_send_end_stream();
        assert_eq!(s, StreamState::HalfClosedLocal);
    }

    #[test]
    fn push_promise_states() {
        // Local endpoint reserved a push stream, then sends headers.
        let s = StreamState::ReservedLocal.on_send_headers(false);
        assert_eq!(s, StreamState::HalfClosedRemote);
        let s = StreamState::ReservedRemote.on_recv_headers(true);
        assert_eq!(s, StreamState::Closed);
    }

    #[test]
    fn reset_closes_from_any_state() {
        for s in [
            StreamState::Idle,
            StreamState::Open,
            StreamState::HalfClosedLocal,
            StreamState::HalfClosedRemote,
            StreamState::ReservedLocal,
        ] {
            assert_eq!(s.on_reset(), StreamState::Closed);
        }
    }

    #[test]
    fn closed_is_terminal() {
        let c = StreamState::Closed;
        assert_eq!(c.on_send_headers(true), c);
        assert_eq!(c.on_recv_headers(false), c);
        assert_eq!(c.on_send_end_stream(), c);
        assert_eq!(c.on_recv_end_stream(), c);
        assert!(!c.can_send());
        assert!(!c.can_recv());
    }
}
