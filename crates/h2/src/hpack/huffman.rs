//! HPACK Huffman coding (RFC 7541 §5.2 and Appendix B).
//!
//! The code table is canonical: within each bit length, codes are
//! assigned to symbols in increasing symbol order, and the first code
//! of each length extends the previous length's last code. A unit
//! test reconstructs the table from the bit lengths alone and asserts
//! equality, so a transcription error in any code value is caught
//! structurally; the RFC's Appendix C vectors pin the ASCII range.

use crate::error::HpackError;
use std::collections::HashMap;
use std::sync::OnceLock;

/// `(code, bit_length)` for symbols 0–255 plus EOS (index 256).
pub const TABLE: [(u32, u8); 257] = [
    (0x1ff8, 13),
    (0x7fffd8, 23),
    (0xfffffe2, 28),
    (0xfffffe3, 28),
    (0xfffffe4, 28),
    (0xfffffe5, 28),
    (0xfffffe6, 28),
    (0xfffffe7, 28),
    (0xfffffe8, 28),
    (0xffffea, 24),
    (0x3ffffffc, 30),
    (0xfffffe9, 28),
    (0xfffffea, 28),
    (0x3ffffffd, 30),
    (0xfffffeb, 28),
    (0xfffffec, 28),
    (0xfffffed, 28),
    (0xfffffee, 28),
    (0xfffffef, 28),
    (0xffffff0, 28),
    (0xffffff1, 28),
    (0xffffff2, 28),
    (0x3ffffffe, 30),
    (0xffffff3, 28),
    (0xffffff4, 28),
    (0xffffff5, 28),
    (0xffffff6, 28),
    (0xffffff7, 28),
    (0xffffff8, 28),
    (0xffffff9, 28),
    (0xffffffa, 28),
    (0xffffffb, 28),
    (0x14, 6),
    (0x3f8, 10),
    (0x3f9, 10),
    (0xffa, 12),
    (0x1ff9, 13),
    (0x15, 6),
    (0xf8, 8),
    (0x7fa, 11),
    (0x3fa, 10),
    (0x3fb, 10),
    (0xf9, 8),
    (0x7fb, 11),
    (0xfa, 8),
    (0x16, 6),
    (0x17, 6),
    (0x18, 6),
    (0x0, 5),
    (0x1, 5),
    (0x2, 5),
    (0x19, 6),
    (0x1a, 6),
    (0x1b, 6),
    (0x1c, 6),
    (0x1d, 6),
    (0x1e, 6),
    (0x1f, 6),
    (0x5c, 7),
    (0xfb, 8),
    (0x7ffc, 15),
    (0x20, 6),
    (0xffb, 12),
    (0x3fc, 10),
    (0x1ffa, 13),
    (0x21, 6),
    (0x5d, 7),
    (0x5e, 7),
    (0x5f, 7),
    (0x60, 7),
    (0x61, 7),
    (0x62, 7),
    (0x63, 7),
    (0x64, 7),
    (0x65, 7),
    (0x66, 7),
    (0x67, 7),
    (0x68, 7),
    (0x69, 7),
    (0x6a, 7),
    (0x6b, 7),
    (0x6c, 7),
    (0x6d, 7),
    (0x6e, 7),
    (0x6f, 7),
    (0x70, 7),
    (0x71, 7),
    (0x72, 7),
    (0xfc, 8),
    (0x73, 7),
    (0xfd, 8),
    (0x1ffb, 13),
    (0x7fff0, 19),
    (0x1ffc, 13),
    (0x3ffc, 14),
    (0x22, 6),
    (0x7ffd, 15),
    (0x3, 5),
    (0x23, 6),
    (0x4, 5),
    (0x24, 6),
    (0x5, 5),
    (0x25, 6),
    (0x26, 6),
    (0x27, 6),
    (0x6, 5),
    (0x74, 7),
    (0x75, 7),
    (0x28, 6),
    (0x29, 6),
    (0x2a, 6),
    (0x7, 5),
    (0x2b, 6),
    (0x76, 7),
    (0x2c, 6),
    (0x8, 5),
    (0x9, 5),
    (0x2d, 6),
    (0x77, 7),
    (0x78, 7),
    (0x79, 7),
    (0x7a, 7),
    (0x7b, 7),
    (0x7ffe, 15),
    (0x7fc, 11),
    (0x3ffd, 14),
    (0x1ffd, 13),
    (0xffffffc, 28),
    (0xfffe6, 20),
    (0x3fffd2, 22),
    (0xfffe7, 20),
    (0xfffe8, 20),
    (0x3fffd3, 22),
    (0x3fffd4, 22),
    (0x3fffd5, 22),
    (0x7fffd9, 23),
    (0x3fffd6, 22),
    (0x7fffda, 23),
    (0x7fffdb, 23),
    (0x7fffdc, 23),
    (0x7fffdd, 23),
    (0x7fffde, 23),
    (0xffffeb, 24),
    (0x7fffdf, 23),
    (0xffffec, 24),
    (0xffffed, 24),
    (0x3fffd7, 22),
    (0x7fffe0, 23),
    (0xffffee, 24),
    (0x7fffe1, 23),
    (0x7fffe2, 23),
    (0x7fffe3, 23),
    (0x7fffe4, 23),
    (0x1fffdc, 21),
    (0x3fffd8, 22),
    (0x7fffe5, 23),
    (0x3fffd9, 22),
    (0x7fffe6, 23),
    (0x7fffe7, 23),
    (0xffffef, 24),
    (0x3fffda, 22),
    (0x1fffdd, 21),
    (0xfffe9, 20),
    (0x3fffdb, 22),
    (0x3fffdc, 22),
    (0x7fffe8, 23),
    (0x7fffe9, 23),
    (0x1fffde, 21),
    (0x7fffea, 23),
    (0x3fffdd, 22),
    (0x3fffde, 22),
    (0xfffff0, 24),
    (0x1fffdf, 21),
    (0x3fffdf, 22),
    (0x7fffeb, 23),
    (0x7fffec, 23),
    (0x1fffe0, 21),
    (0x1fffe1, 21),
    (0x3fffe0, 22),
    (0x1fffe2, 21),
    (0x7fffed, 23),
    (0x3fffe1, 22),
    (0x7fffee, 23),
    (0x7fffef, 23),
    (0xfffea, 20),
    (0x3fffe2, 22),
    (0x3fffe3, 22),
    (0x3fffe4, 22),
    (0x7ffff0, 23),
    (0x3fffe5, 22),
    (0x3fffe6, 22),
    (0x7ffff1, 23),
    (0x3ffffe0, 26),
    (0x3ffffe1, 26),
    (0xfffeb, 20),
    (0x7fff1, 19),
    (0x3fffe7, 22),
    (0x7ffff2, 23),
    (0x3fffe8, 22),
    (0x1ffffec, 25),
    (0x3ffffe2, 26),
    (0x3ffffe3, 26),
    (0x3ffffe4, 26),
    (0x7ffffde, 27),
    (0x7ffffdf, 27),
    (0x3ffffe5, 26),
    (0xfffff1, 24),
    (0x1ffffed, 25),
    (0x7fff2, 19),
    (0x1fffe3, 21),
    (0x3ffffe6, 26),
    (0x7ffffe0, 27),
    (0x7ffffe1, 27),
    (0x3ffffe7, 26),
    (0x7ffffe2, 27),
    (0xfffff2, 24),
    (0x1fffe4, 21),
    (0x1fffe5, 21),
    (0x3ffffe8, 26),
    (0x3ffffe9, 26),
    (0xffffffd, 28),
    (0x7ffffe3, 27),
    (0x7ffffe4, 27),
    (0x7ffffe5, 27),
    (0xfffec, 20),
    (0xfffff3, 24),
    (0xfffed, 20),
    (0x1fffe6, 21),
    (0x3fffe9, 22),
    (0x1fffe7, 21),
    (0x1fffe8, 21),
    (0x7ffff3, 23),
    (0x3fffea, 22),
    (0x3fffeb, 22),
    (0x1ffffee, 25),
    (0x1ffffef, 25),
    (0xfffff4, 24),
    (0xfffff5, 24),
    (0x3ffffea, 26),
    (0x7ffff4, 23),
    (0x3ffffeb, 26),
    (0x7ffffe6, 27),
    (0x3ffffec, 26),
    (0x3ffffed, 26),
    (0x7ffffe7, 27),
    (0x7ffffe8, 27),
    (0x7ffffe9, 27),
    (0x7ffffea, 27),
    (0x7ffffeb, 27),
    (0xffffffe, 28),
    (0x7ffffec, 27),
    (0x7ffffed, 27),
    (0x7ffffee, 27),
    (0x7ffffef, 27),
    (0x7fffff0, 27),
    (0x3ffffee, 26),
    (0x3fffffff, 30),
];

/// Length in bytes of the Huffman encoding of `data`.
pub fn encoded_len(data: &[u8]) -> usize {
    let bits: u64 = data.iter().map(|&b| TABLE[b as usize].1 as u64).sum();
    (bits as usize).div_ceil(8)
}

/// Huffman-encode `data`, appending to `out`.
pub fn encode(data: &[u8], out: &mut Vec<u8>) {
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in data {
        let (code, len) = TABLE[b as usize];
        acc = (acc << len) | code as u64;
        nbits += len as u32;
        while nbits >= 8 {
            nbits -= 8;
            out.push((acc >> nbits) as u8);
        }
    }
    if nbits > 0 {
        // Pad with the EOS prefix (all ones).
        let pad = 8 - nbits;
        out.push(((acc << pad) as u8) | ((1u16 << pad) - 1) as u8);
    }
}

fn decode_map() -> &'static HashMap<(u32, u8), u16> {
    static MAP: OnceLock<HashMap<(u32, u8), u16>> = OnceLock::new();
    MAP.get_or_init(|| {
        let mut m = HashMap::with_capacity(257);
        for (sym, &(code, len)) in TABLE.iter().enumerate() {
            m.insert((code, len), sym as u16);
        }
        m
    })
}

/// Decode a Huffman-encoded string.
///
/// Errors on: a decoded EOS symbol, padding longer than 7 bits, or
/// padding that is not all-ones (RFC 7541 §5.2 requirements).
pub fn decode(data: &[u8]) -> Result<Vec<u8>, HpackError> {
    let map = decode_map();
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut code: u32 = 0;
    let mut len: u8 = 0;
    for &byte in data {
        for bit in (0..8).rev() {
            code = (code << 1) | ((byte >> bit) & 1) as u32;
            len += 1;
            if len > 30 {
                return Err(HpackError::BadHuffman);
            }
            if let Some(&sym) = map.get(&(code, len)) {
                if sym == 256 {
                    // EOS must not appear in the body.
                    return Err(HpackError::BadHuffman);
                }
                out.push(sym as u8);
                code = 0;
                len = 0;
            }
        }
    }
    // Remaining bits are padding: at most 7 bits, all ones.
    if len >= 8 {
        return Err(HpackError::BadHuffman);
    }
    if len > 0 && code != (1u32 << len) - 1 {
        return Err(HpackError::BadHuffman);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuild the canonical code from the bit lengths alone and check
    /// every constant. HPACK's table is canonical: sort symbols by
    /// (length, symbol); each code is previous+1 shifted up by the
    /// length difference.
    #[test]
    fn table_is_canonical() {
        let mut syms: Vec<usize> = (0..257).collect();
        syms.sort_by_key(|&s| (TABLE[s].1, s));
        let mut code: u64 = 0;
        let mut prev_len: u8 = 0;
        for &s in &syms {
            let len = TABLE[s].1;
            code <<= len - prev_len;
            assert_eq!(
                TABLE[s].0 as u64, code,
                "symbol {s} code mismatch: table={:#x} canonical={code:#x} len={len}",
                TABLE[s].0
            );
            code += 1;
            prev_len = len;
        }
        // Complete code: Kraft sum must be exactly 1.
        let kraft: f64 = TABLE.iter().map(|&(_, l)| 2f64.powi(-(l as i32))).sum();
        assert!((kraft - 1.0).abs() < 1e-12, "kraft={kraft}");
    }

    #[test]
    fn rfc7541_appendix_c_vectors() {
        let cases: &[(&str, &[u8])] = &[
            (
                "www.example.com",
                &[
                    0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff,
                ],
            ),
            ("no-cache", &[0xa8, 0xeb, 0x10, 0x64, 0x9c, 0xbf]),
            (
                "custom-key",
                &[0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xa9, 0x7d, 0x7f],
            ),
            (
                "custom-value",
                &[0x25, 0xa8, 0x49, 0xe9, 0x5b, 0xb8, 0xe8, 0xb4, 0xbf],
            ),
            ("private", &[0xae, 0xc3, 0x77, 0x1a, 0x4b]),
            (
                "Mon, 21 Oct 2013 20:13:21 GMT",
                &[
                    0xd0, 0x7a, 0xbe, 0x94, 0x10, 0x54, 0xd4, 0x44, 0xa8, 0x20, 0x05, 0x95, 0x04,
                    0x0b, 0x81, 0x66, 0xe0, 0x82, 0xa6, 0x2d, 0x1b, 0xff,
                ],
            ),
            (
                "https://www.example.com",
                &[
                    0x9d, 0x29, 0xad, 0x17, 0x18, 0x63, 0xc7, 0x8f, 0x0b, 0x97, 0xc8, 0xe9, 0xae,
                    0x82, 0xae, 0x43, 0xd3,
                ],
            ),
            ("gzip", &[0x9b, 0xd9, 0xab]),
        ];
        for (plain, wire) in cases {
            let mut enc = Vec::new();
            encode(plain.as_bytes(), &mut enc);
            assert_eq!(&enc, wire, "encoding {plain:?}");
            assert_eq!(
                decode(wire).unwrap(),
                plain.as_bytes(),
                "decoding {plain:?}"
            );
            assert_eq!(encoded_len(plain.as_bytes()), wire.len());
        }
    }

    #[test]
    fn roundtrip_all_symbols() {
        let all: Vec<u8> = (0..=255).collect();
        let mut enc = Vec::new();
        encode(&all, &mut enc);
        assert_eq!(decode(&enc).unwrap(), all);
    }

    #[test]
    fn empty_string() {
        let mut enc = Vec::new();
        encode(&[], &mut enc);
        assert!(enc.is_empty());
        assert_eq!(decode(&[]).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn bad_padding_rejected() {
        // 'a' = 00011 (5 bits) + 3 zero pad bits (must be ones).
        assert_eq!(decode(&[0b0001_1000]), Err(HpackError::BadHuffman));
        // Correct padding decodes.
        assert_eq!(decode(&[0b0001_1111]).unwrap(), b"a");
    }

    #[test]
    fn eos_in_body_rejected() {
        // EOS is 30 ones; a full byte run of 0xff × 4 contains it.
        assert_eq!(
            decode(&[0xff, 0xff, 0xff, 0xff]),
            Err(HpackError::BadHuffman)
        );
    }

    #[test]
    fn whole_byte_padding_rejected() {
        // 'a' then a full 0xff byte of padding (8 bits ≥ 8 → error).
        let mut enc = Vec::new();
        encode(b"a", &mut enc);
        enc.push(0xff);
        assert_eq!(decode(&enc), Err(HpackError::BadHuffman));
    }
}
