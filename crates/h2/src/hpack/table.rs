//! HPACK static and dynamic tables (RFC 7541 §2.3).

use std::collections::VecDeque;

/// The RFC 7541 Appendix A static table (1-indexed on the wire).
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// A header field as stored in the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Header name (lowercase).
    pub name: String,
    /// Header value.
    pub value: String,
}

impl Entry {
    /// RFC 7541 §4.1 size: name length + value length + 32 octets of
    /// bookkeeping overhead.
    pub fn size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// The FIFO dynamic table with size-based eviction.
#[derive(Debug, Clone)]
pub struct DynamicTable {
    entries: VecDeque<Entry>,
    size: usize,
    max_size: usize,
    evictions: u64,
}

impl DynamicTable {
    /// New table with the given capacity (SETTINGS_HEADER_TABLE_SIZE).
    pub fn new(max_size: usize) -> Self {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            evictions: 0,
        }
    }

    /// Number of entries dropped by size-based eviction over the
    /// table's lifetime (including RFC 7541 §4.4 whole-table clears).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current occupied size in octets.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current capacity.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resize (dynamic table size update); evicts as needed.
    pub fn set_max_size(&mut self, max_size: usize) {
        self.max_size = max_size;
        self.evict();
    }

    /// Insert at the head (index 1 of the dynamic section). An entry
    /// larger than the whole table empties it (RFC 7541 §4.4).
    pub fn insert(&mut self, entry: Entry) {
        let sz = entry.size();
        if sz > self.max_size {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
            self.size = 0;
            return;
        }
        self.size += sz;
        self.entries.push_front(entry);
        self.evict();
    }

    /// Entry at dynamic index `i` (0-based from most recent).
    pub fn get(&self, i: usize) -> Option<&Entry> {
        self.entries.get(i)
    }

    /// Find the index (0-based) of an exact (name, value) match.
    pub fn find(&self, name: &str, value: &str) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.name == name && e.value == value)
    }

    /// Find the index (0-based) of a name-only match.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        self.entries.iter().position(|e| e.name == name)
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            let e = self.entries.pop_back().expect("size>0 implies entries");
            self.size -= e.size();
            self.evictions += 1;
        }
    }
}

/// Resolve a wire index (1-based, static-then-dynamic address space)
/// to a header entry.
pub fn lookup(dynamic: &DynamicTable, index: usize) -> Option<Entry> {
    if index == 0 {
        return None;
    }
    if index <= STATIC_TABLE.len() {
        let (n, v) = STATIC_TABLE[index - 1];
        return Some(Entry {
            name: n.to_string(),
            value: v.to_string(),
        });
    }
    dynamic.get(index - STATIC_TABLE.len() - 1).cloned()
}

/// Find the wire index for an exact match, searching static then
/// dynamic.
pub fn find_index(dynamic: &DynamicTable, name: &str, value: &str) -> Option<usize> {
    for (i, (n, v)) in STATIC_TABLE.iter().enumerate() {
        if *n == name && *v == value {
            return Some(i + 1);
        }
    }
    dynamic
        .find(name, value)
        .map(|i| i + STATIC_TABLE.len() + 1)
}

/// Find a wire index whose *name* matches (for literal-with-indexed-
/// name representations).
pub fn find_name_index(dynamic: &DynamicTable, name: &str) -> Option<usize> {
    for (i, (n, _)) in STATIC_TABLE.iter().enumerate() {
        if *n == name {
            return Some(i + 1);
        }
    }
    dynamic.find_name(name).map(|i| i + STATIC_TABLE.len() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(name: &str, value: &str) -> Entry {
        Entry {
            name: name.into(),
            value: value.into(),
        }
    }

    #[test]
    fn static_table_spot_checks() {
        assert_eq!(STATIC_TABLE[0], (":authority", ""));
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[6], (":scheme", "https"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
        assert_eq!(STATIC_TABLE.len(), 61);
    }

    #[test]
    fn entry_size_includes_overhead() {
        assert_eq!(e("ab", "cde").size(), 2 + 3 + 32);
    }

    #[test]
    fn insert_and_index_order() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        // Most recent first.
        assert_eq!(t.get(0).unwrap().name, "b");
        assert_eq!(t.get(1).unwrap().name, "a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_on_overflow() {
        // Each entry is 34 octets; cap to fit exactly two.
        let mut t = DynamicTable::new(68);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        t.insert(e("c", "3"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().name, "c");
        assert_eq!(t.get(1).unwrap().name, "b");
        assert!(t.size() <= 68);
    }

    #[test]
    fn oversized_entry_clears_table() {
        let mut t = DynamicTable::new(40);
        t.insert(e("a", "1"));
        assert_eq!(t.len(), 1);
        t.insert(e("name-way-too-long", "value-way-too-long"));
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn resize_evicts() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        t.set_max_size(34);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0).unwrap().name, "b");
    }

    #[test]
    fn wire_index_lookup() {
        let mut t = DynamicTable::new(4096);
        assert_eq!(lookup(&t, 0), None);
        assert_eq!(lookup(&t, 2).unwrap(), e(":method", "GET"));
        assert_eq!(lookup(&t, 61).unwrap(), e("www-authenticate", ""));
        assert_eq!(lookup(&t, 62), None);
        t.insert(e("x-custom", "v"));
        assert_eq!(lookup(&t, 62).unwrap(), e("x-custom", "v"));
        assert_eq!(lookup(&t, 63), None);
    }

    #[test]
    fn find_index_prefers_static() {
        let t = DynamicTable::new(4096);
        assert_eq!(find_index(&t, ":method", "GET"), Some(2));
        assert_eq!(find_index(&t, ":method", "PUT"), None);
        assert_eq!(find_name_index(&t, ":method"), Some(2));
        assert_eq!(find_name_index(&t, "cookie"), Some(32));
    }

    #[test]
    fn find_index_searches_dynamic() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("x-a", "1"));
        t.insert(e("x-b", "2"));
        assert_eq!(find_index(&t, "x-b", "2"), Some(62));
        assert_eq!(find_index(&t, "x-a", "1"), Some(63));
        assert_eq!(find_name_index(&t, "x-a"), Some(63));
    }
}
