//! HPACK static and dynamic tables (RFC 7541 §2.3).
//!
//! Both directions of every simulated H2 connection run header-field
//! searches per request, so `find`/`find_name` are hot. Lookups are
//! O(1): the static table is indexed once into hash maps (preserving
//! the RFC's first-occurrence wire index), and the dynamic table keeps
//! name/value buckets of monotonic insertion ids in sync with FIFO
//! eviction — an entry's wire position is recovered arithmetically
//! from its id, so nothing is rescanned or renumbered as entries
//! shift.

use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// The RFC 7541 Appendix A static table (1-indexed on the wire).
pub const STATIC_TABLE: [(&str, &str); 61] = [
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":path", "/index.html"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "204"),
    (":status", "206"),
    (":status", "304"),
    (":status", "400"),
    (":status", "404"),
    (":status", "500"),
    ("accept-charset", ""),
    ("accept-encoding", "gzip, deflate"),
    ("accept-language", ""),
    ("accept-ranges", ""),
    ("accept", ""),
    ("access-control-allow-origin", ""),
    ("age", ""),
    ("allow", ""),
    ("authorization", ""),
    ("cache-control", ""),
    ("content-disposition", ""),
    ("content-encoding", ""),
    ("content-language", ""),
    ("content-length", ""),
    ("content-location", ""),
    ("content-range", ""),
    ("content-type", ""),
    ("cookie", ""),
    ("date", ""),
    ("etag", ""),
    ("expect", ""),
    ("expires", ""),
    ("from", ""),
    ("host", ""),
    ("if-match", ""),
    ("if-modified-since", ""),
    ("if-none-match", ""),
    ("if-range", ""),
    ("if-unmodified-since", ""),
    ("last-modified", ""),
    ("link", ""),
    ("location", ""),
    ("max-forwards", ""),
    ("proxy-authenticate", ""),
    ("proxy-authorization", ""),
    ("range", ""),
    ("referer", ""),
    ("refresh", ""),
    ("retry-after", ""),
    ("server", ""),
    ("set-cookie", ""),
    ("strict-transport-security", ""),
    ("transfer-encoding", ""),
    ("user-agent", ""),
    ("vary", ""),
    ("via", ""),
    ("www-authenticate", ""),
];

/// A header field as stored in the tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Header name (lowercase).
    pub name: String,
    /// Header value.
    pub value: String,
}

impl Entry {
    /// RFC 7541 §4.1 size: name length + value length + 32 octets of
    /// bookkeeping overhead.
    pub fn size(&self) -> usize {
        self.name.len() + self.value.len() + 32
    }
}

/// Per-name index bucket: live insertion ids, ascending (so the most
/// recent match is always `last()`), plus a value-keyed refinement for
/// exact (name, value) matches.
#[derive(Debug, Clone, Default)]
struct NameBucket {
    ids: Vec<u64>,
    by_value: HashMap<String, Vec<u64>>,
}

/// The FIFO dynamic table with size-based eviction.
///
/// Invariant: each insertion gets a monotonic id; live ids are always
/// the contiguous range `[next_id - len, next_id - 1]` (inserts mint
/// at the top, eviction always removes the smallest). The entry with
/// id `i` therefore sits at 0-based position `next_id - 1 - i`, which
/// is what lets the id buckets answer positional queries without
/// renumbering on every insert/evict.
#[derive(Debug, Clone)]
pub struct DynamicTable {
    entries: VecDeque<Entry>,
    size: usize,
    max_size: usize,
    evictions: u64,
    next_id: u64,
    by_name: HashMap<String, NameBucket>,
}

impl DynamicTable {
    /// New table with the given capacity (SETTINGS_HEADER_TABLE_SIZE).
    pub fn new(max_size: usize) -> Self {
        DynamicTable {
            entries: VecDeque::new(),
            size: 0,
            max_size,
            evictions: 0,
            next_id: 0,
            by_name: HashMap::new(),
        }
    }

    /// Number of entries dropped by size-based eviction over the
    /// table's lifetime (including RFC 7541 §4.4 whole-table clears).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current occupied size in octets.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Current capacity.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resize (dynamic table size update); evicts as needed.
    pub fn set_max_size(&mut self, max_size: usize) {
        self.max_size = max_size;
        self.evict();
    }

    /// Insert at the head (index 1 of the dynamic section). An entry
    /// larger than the whole table empties it (RFC 7541 §4.4).
    pub fn insert(&mut self, entry: Entry) {
        let sz = entry.size();
        if sz > self.max_size {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
            self.size = 0;
            self.by_name.clear();
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        let bucket = self.by_name.entry(entry.name.clone()).or_default();
        bucket.ids.push(id);
        bucket
            .by_value
            .entry(entry.value.clone())
            .or_default()
            .push(id);
        self.size += sz;
        self.entries.push_front(entry);
        self.evict();
    }

    /// Entry at dynamic index `i` (0-based from most recent).
    pub fn get(&self, i: usize) -> Option<&Entry> {
        self.entries.get(i)
    }

    /// Find the index (0-based, most recent match) of an exact
    /// (name, value) match.
    pub fn find(&self, name: &str, value: &str) -> Option<usize> {
        let id = *self.by_name.get(name)?.by_value.get(value)?.last()?;
        Some((self.next_id - 1 - id) as usize)
    }

    /// Find the index (0-based, most recent match) of a name-only
    /// match.
    pub fn find_name(&self, name: &str) -> Option<usize> {
        let id = *self.by_name.get(name)?.ids.last()?;
        Some((self.next_id - 1 - id) as usize)
    }

    fn evict(&mut self) {
        while self.size > self.max_size {
            // The entry about to go is the oldest live one, so its id
            // is the smallest and sits at the front of both buckets.
            let id = self.next_id - self.entries.len() as u64;
            let e = self.entries.pop_back().expect("size>0 implies entries");
            self.size -= e.size();
            self.evictions += 1;
            if let Some(bucket) = self.by_name.get_mut(&e.name) {
                debug_assert_eq!(bucket.ids.first(), Some(&id));
                bucket.ids.remove(0);
                if let Some(ids) = bucket.by_value.get_mut(&e.value) {
                    debug_assert_eq!(ids.first(), Some(&id));
                    ids.remove(0);
                    if ids.is_empty() {
                        bucket.by_value.remove(&e.value);
                    }
                }
                if bucket.ids.is_empty() {
                    self.by_name.remove(&e.name);
                }
            }
        }
    }
}

/// Hash index over [`STATIC_TABLE`], built once. `name_first` keeps
/// the RFC's first-occurrence semantics (`:method` → 2, not 3);
/// `pairs` keeps per-name value lists (at most 7 values, for
/// `:status`) in table order.
struct StaticIndex {
    name_first: HashMap<&'static str, usize>,
    pairs: HashMap<&'static str, Vec<(&'static str, usize)>>,
}

fn static_index() -> &'static StaticIndex {
    static IDX: OnceLock<StaticIndex> = OnceLock::new();
    IDX.get_or_init(|| {
        let mut name_first = HashMap::new();
        let mut pairs: HashMap<&'static str, Vec<(&'static str, usize)>> = HashMap::new();
        for (i, (n, v)) in STATIC_TABLE.iter().enumerate() {
            name_first.entry(*n).or_insert(i + 1);
            let values = pairs.entry(*n).or_default();
            if !values.iter().any(|&(val, _)| val == *v) {
                values.push((*v, i + 1));
            }
        }
        StaticIndex { name_first, pairs }
    })
}

/// Resolve a wire index (1-based, static-then-dynamic address space)
/// to a header entry.
pub fn lookup(dynamic: &DynamicTable, index: usize) -> Option<Entry> {
    if index == 0 {
        return None;
    }
    if index <= STATIC_TABLE.len() {
        let (n, v) = STATIC_TABLE[index - 1];
        return Some(Entry {
            name: n.to_string(),
            value: v.to_string(),
        });
    }
    dynamic.get(index - STATIC_TABLE.len() - 1).cloned()
}

/// Find the wire index for an exact match, searching static then
/// dynamic.
pub fn find_index(dynamic: &DynamicTable, name: &str, value: &str) -> Option<usize> {
    static_pair_index(name, value).or_else(|| {
        dynamic
            .find(name, value)
            .map(|i| i + STATIC_TABLE.len() + 1)
    })
}

/// Find a wire index whose *name* matches (for literal-with-indexed-
/// name representations).
pub fn find_name_index(dynamic: &DynamicTable, name: &str) -> Option<usize> {
    static_index()
        .name_first
        .get(name)
        .copied()
        .or_else(|| dynamic.find_name(name).map(|i| i + STATIC_TABLE.len() + 1))
}

/// [`find_index`] and [`find_name_index`] resolved together — the
/// encoder needs both on the literal path and used to walk the tables
/// twice for them.
pub fn find_indices(
    dynamic: &DynamicTable,
    name: &str,
    value: &str,
) -> (Option<usize>, Option<usize>) {
    let exact = static_pair_index(name, value).or_else(|| {
        dynamic
            .find(name, value)
            .map(|i| i + STATIC_TABLE.len() + 1)
    });
    let by_name = static_index()
        .name_first
        .get(name)
        .copied()
        .or_else(|| dynamic.find_name(name).map(|i| i + STATIC_TABLE.len() + 1));
    (exact, by_name)
}

fn static_pair_index(name: &str, value: &str) -> Option<usize> {
    static_index()
        .pairs
        .get(name)?
        .iter()
        .find(|&&(v, _)| v == value)
        .map(|&(_, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(name: &str, value: &str) -> Entry {
        Entry {
            name: name.into(),
            value: value.into(),
        }
    }

    #[test]
    fn static_table_spot_checks() {
        assert_eq!(STATIC_TABLE[0], (":authority", ""));
        assert_eq!(STATIC_TABLE[1], (":method", "GET"));
        assert_eq!(STATIC_TABLE[6], (":scheme", "https"));
        assert_eq!(STATIC_TABLE[7], (":status", "200"));
        assert_eq!(STATIC_TABLE[60], ("www-authenticate", ""));
        assert_eq!(STATIC_TABLE.len(), 61);
    }

    #[test]
    fn entry_size_includes_overhead() {
        assert_eq!(e("ab", "cde").size(), 2 + 3 + 32);
    }

    #[test]
    fn insert_and_index_order() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        // Most recent first.
        assert_eq!(t.get(0).unwrap().name, "b");
        assert_eq!(t.get(1).unwrap().name, "a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn eviction_on_overflow() {
        // Each entry is 34 octets; cap to fit exactly two.
        let mut t = DynamicTable::new(68);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        t.insert(e("c", "3"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(0).unwrap().name, "c");
        assert_eq!(t.get(1).unwrap().name, "b");
        assert!(t.size() <= 68);
    }

    #[test]
    fn oversized_entry_clears_table() {
        let mut t = DynamicTable::new(40);
        t.insert(e("a", "1"));
        assert_eq!(t.len(), 1);
        t.insert(e("name-way-too-long", "value-way-too-long"));
        assert!(t.is_empty());
        assert_eq!(t.size(), 0);
    }

    #[test]
    fn resize_evicts() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("a", "1"));
        t.insert(e("b", "2"));
        t.set_max_size(34);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(0).unwrap().name, "b");
    }

    #[test]
    fn wire_index_lookup() {
        let mut t = DynamicTable::new(4096);
        assert_eq!(lookup(&t, 0), None);
        assert_eq!(lookup(&t, 2).unwrap(), e(":method", "GET"));
        assert_eq!(lookup(&t, 61).unwrap(), e("www-authenticate", ""));
        assert_eq!(lookup(&t, 62), None);
        t.insert(e("x-custom", "v"));
        assert_eq!(lookup(&t, 62).unwrap(), e("x-custom", "v"));
        assert_eq!(lookup(&t, 63), None);
    }

    #[test]
    fn find_index_prefers_static() {
        let t = DynamicTable::new(4096);
        assert_eq!(find_index(&t, ":method", "GET"), Some(2));
        assert_eq!(find_index(&t, ":method", "PUT"), None);
        assert_eq!(find_name_index(&t, ":method"), Some(2));
        assert_eq!(find_name_index(&t, "cookie"), Some(32));
    }

    #[test]
    fn find_index_searches_dynamic() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("x-a", "1"));
        t.insert(e("x-b", "2"));
        assert_eq!(find_index(&t, "x-b", "2"), Some(62));
        assert_eq!(find_index(&t, "x-a", "1"), Some(63));
        assert_eq!(find_name_index(&t, "x-a"), Some(63));
    }

    #[test]
    fn find_indices_matches_separate_lookups() {
        let mut t = DynamicTable::new(4096);
        t.insert(e("x-a", "1"));
        for (name, value) in [
            (":method", "GET"),
            (":method", "PUT"),
            ("x-a", "1"),
            ("x-a", "2"),
            ("nope", "v"),
        ] {
            assert_eq!(
                find_indices(&t, name, value),
                (find_index(&t, name, value), find_name_index(&t, name))
            );
        }
    }

    /// The old implementations were linear scans over the static table
    /// and the dynamic entry deque; the hash indexes must agree with
    /// that scan exactly — same first-occurrence static index, same
    /// most-recent-first dynamic position — including after duplicate
    /// inserts, evictions and a §4.4 whole-table clear.
    #[test]
    fn indexed_lookup_agrees_with_linear_scan() {
        let scan_pair = |t: &DynamicTable, name: &str, value: &str| -> Option<usize> {
            STATIC_TABLE
                .iter()
                .position(|&(n, v)| n == name && v == value)
                .map(|i| i + 1)
                .or_else(|| {
                    (0..t.len())
                        .find(|&i| {
                            let en = t.get(i).unwrap();
                            en.name == name && en.value == value
                        })
                        .map(|i| i + STATIC_TABLE.len() + 1)
                })
        };
        let scan_name = |t: &DynamicTable, name: &str| -> Option<usize> {
            STATIC_TABLE
                .iter()
                .position(|&(n, _)| n == name)
                .map(|i| i + 1)
                .or_else(|| {
                    (0..t.len())
                        .find(|&i| t.get(i).unwrap().name == name)
                        .map(|i| i + STATIC_TABLE.len() + 1)
                })
        };
        let check_all = |t: &DynamicTable| {
            // Every static entry (duplicated names must resolve to the
            // first occurrence, e.g. :method → 2 and :status → 8)…
            for &(n, v) in STATIC_TABLE.iter() {
                assert_eq!(find_index(t, n, v), scan_pair(t, n, v), "pair {n}: {v}");
                assert_eq!(find_name_index(t, n), scan_name(t, n), "name {n}");
            }
            // …every live dynamic entry, and some misses.
            for i in 0..t.len() {
                let en = t.get(i).unwrap().clone();
                assert_eq!(
                    find_index(t, &en.name, &en.value),
                    scan_pair(t, &en.name, &en.value)
                );
                assert_eq!(find_name_index(t, &en.name), scan_name(t, &en.name));
                assert_eq!(
                    find_index(t, &en.name, "no-such-value"),
                    scan_pair(t, &en.name, "no-such-value")
                );
            }
            assert_eq!(find_index(t, "x-absent", ""), None);
            assert_eq!(find_name_index(t, "x-absent"), None);
        };

        // Small capacity so inserts continuously evict: each entry
        // below is 37–42 octets, so ~4 fit in 160.
        let mut t = DynamicTable::new(160);
        check_all(&t);
        let inserts = [
            ("x-a", "1"),
            (":method", "TRACE"), // shadows a static name
            ("x-a", "2"),         // duplicate name, new value
            ("cookie", "s=1"),
            ("x-a", "1"), // exact duplicate of an earlier pair
            ("x-b", "7"),
            ("x-a", "2"),
        ];
        for (n, v) in inserts {
            t.insert(e(n, v));
            check_all(&t);
        }
        t.set_max_size(80); // shrink → evict
        check_all(&t);
        t.insert(e("name-long-enough-to-clear-the-table", &"v".repeat(80)));
        assert!(t.is_empty());
        check_all(&t);
        t.insert(e("x-c", "3")); // index must still work after the clear
        check_all(&t);
        assert_eq!(find_index(&t, "x-c", "3"), Some(62));
    }
}
