//! HPACK header compression (RFC 7541).
//!
//! [`Encoder`] and [`Decoder`] hold per-connection state (the dynamic
//! table) and must each be used for exactly one direction of one
//! connection. All four literal representations, indexed fields,
//! Huffman string coding and dynamic table size updates are
//! implemented.

pub mod huffman;
pub mod table;

use crate::error::HpackError;
use table::{find_indices, find_name_index, lookup, DynamicTable, Entry};

/// A header field (name must be lowercase per HTTP/2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Field name.
    pub name: String,
    /// Field value.
    pub value: String,
    /// Sensitive fields are encoded never-indexed (RFC 7541 §7.1.3).
    pub sensitive: bool,
}

impl Header {
    /// Construct a regular header.
    pub fn new(name: &str, value: &str) -> Self {
        Header {
            name: name.to_ascii_lowercase(),
            value: value.to_string(),
            sensitive: false,
        }
    }

    /// Construct a sensitive (never-indexed) header.
    pub fn sensitive(name: &str, value: &str) -> Self {
        Header {
            sensitive: true,
            ..Header::new(name, value)
        }
    }
}

// ---- integer primitives (RFC 7541 §5.1) ----

/// Encode an integer with an N-bit prefix; `first` carries the bits
/// above the prefix (representation discriminator).
fn encode_int(value: usize, prefix_bits: u8, first: u8, out: &mut Vec<u8>) {
    debug_assert!((1..=8).contains(&prefix_bits));
    let max_prefix = (1usize << prefix_bits) - 1;
    if value < max_prefix {
        out.push(first | value as u8);
        return;
    }
    out.push(first | max_prefix as u8);
    let mut rest = value - max_prefix;
    while rest >= 128 {
        out.push((rest % 128 + 128) as u8);
        rest /= 128;
    }
    out.push(rest as u8);
}

/// Decode an integer with an N-bit prefix from `buf[*pos..]`.
fn decode_int(buf: &[u8], pos: &mut usize, prefix_bits: u8) -> Result<usize, HpackError> {
    if *pos >= buf.len() {
        return Err(HpackError::Truncated);
    }
    let max_prefix = (1usize << prefix_bits) - 1;
    let mut value = (buf[*pos] as usize) & max_prefix;
    *pos += 1;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        if *pos >= buf.len() {
            return Err(HpackError::Truncated);
        }
        let b = buf[*pos];
        *pos += 1;
        let add = ((b & 0x7f) as usize)
            .checked_shl(shift)
            .ok_or(HpackError::IntegerOverflow)?;
        value = value.checked_add(add).ok_or(HpackError::IntegerOverflow)?;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(HpackError::IntegerOverflow);
        }
    }
}

// ---- string primitives (RFC 7541 §5.2) ----

/// Encode a string literal in one pass: Huffman-code into `scratch`
/// (reused across calls, so steady-state encoding never allocates),
/// then emit whichever representation is shorter. The two-pass
/// `encoded_len` + `encode` split this replaces walked every byte
/// twice; the output is bit-identical because the emit condition
/// (`huffman len < raw len`) is unchanged.
fn encode_string(s: &str, use_huffman: bool, scratch: &mut Vec<u8>, out: &mut Vec<u8>) {
    let raw = s.as_bytes();
    if use_huffman {
        scratch.clear();
        huffman::encode(raw, scratch);
        if scratch.len() < raw.len() {
            encode_int(scratch.len(), 7, 0x80, out);
            out.extend_from_slice(scratch);
            return;
        }
    }
    encode_int(raw.len(), 7, 0x00, out);
    out.extend_from_slice(raw);
}

fn decode_string(buf: &[u8], pos: &mut usize) -> Result<String, HpackError> {
    if *pos >= buf.len() {
        return Err(HpackError::Truncated);
    }
    let huffman_coded = buf[*pos] & 0x80 != 0;
    let len = decode_int(buf, pos, 7)?;
    if *pos + len > buf.len() {
        return Err(HpackError::Truncated);
    }
    let raw = &buf[*pos..*pos + len];
    *pos += len;
    let bytes = if huffman_coded {
        huffman::decode(raw)?
    } else {
        raw.to_vec()
    };
    // Header contents in this stack are UTF-8 (the simulation only
    // produces ASCII); undecodable octets degrade to U+FFFD.
    Ok(String::from_utf8_lossy(&bytes).into_owned())
}

// ---- encoder ----

/// HPACK encoder for one direction of one connection.
pub struct Encoder {
    dynamic: DynamicTable,
    /// Whether to Huffman-code strings when it helps.
    pub use_huffman: bool,
    /// A pending dynamic-table size update to emit at the start of
    /// the next header block.
    pending_resize: Option<usize>,
    /// Reused Huffman staging buffer for [`encode_string`]; carries
    /// capacity only, never content, across blocks.
    huff_scratch: Vec<u8>,
}

impl Encoder {
    /// Encoder with the default 4096-octet dynamic table.
    pub fn new() -> Self {
        Encoder {
            dynamic: DynamicTable::new(4096),
            use_huffman: true,
            pending_resize: None,
            huff_scratch: Vec::new(),
        }
    }

    /// Set the dynamic table capacity (from the peer's
    /// SETTINGS_HEADER_TABLE_SIZE); emits a size update in the next
    /// block.
    pub fn set_max_table_size(&mut self, size: usize) {
        self.dynamic.set_max_size(size);
        self.pending_resize = Some(size);
    }

    /// Current dynamic table occupancy in octets.
    pub fn table_size(&self) -> usize {
        self.dynamic.size()
    }

    /// Lifetime count of dynamic-table evictions on the encode side.
    pub fn evictions(&self) -> u64 {
        self.dynamic.evictions()
    }

    /// Encode a header list into one header block, returning a fresh
    /// buffer. Convenience wrapper over [`Encoder::encode_into`].
    pub fn encode(&mut self, headers: &[Header]) -> Vec<u8> {
        let mut out = Vec::with_capacity(headers.len() * 16);
        self.encode_into(headers, &mut out);
        out
    }

    /// Encode a header list into one header block, appending to `out`.
    /// This is the zero-copy path: callers that reuse `out` (and this
    /// encoder, whose Huffman staging buffer is reused too) encode
    /// whole blocks without a single heap allocation at steady state.
    pub fn encode_into(&mut self, headers: &[Header], out: &mut Vec<u8>) {
        if let Some(size) = self.pending_resize.take() {
            encode_int(size, 5, 0x20, out);
        }
        for h in headers {
            self.encode_one(h, out);
        }
    }

    fn encode_one(&mut self, h: &Header, out: &mut Vec<u8>) {
        if h.sensitive {
            // Literal never indexed (0x10).
            match find_name_index(&self.dynamic, &h.name) {
                Some(i) => encode_int(i, 4, 0x10, out),
                None => {
                    encode_int(0, 4, 0x10, out);
                    encode_string(&h.name, self.use_huffman, &mut self.huff_scratch, out);
                }
            }
            encode_string(&h.value, self.use_huffman, &mut self.huff_scratch, out);
            return;
        }
        // One table probe answers both representations: the exact
        // match (indexed field) and the name-only fallback the
        // literal path needs.
        let (exact, name_index) = find_indices(&self.dynamic, &h.name, &h.value);
        if let Some(i) = exact {
            // Indexed field (1xxxxxxx).
            encode_int(i, 7, 0x80, out);
            return;
        }
        // Literal with incremental indexing (01xxxxxx).
        match name_index {
            Some(i) => encode_int(i, 6, 0x40, out),
            None => {
                encode_int(0, 6, 0x40, out);
                encode_string(&h.name, self.use_huffman, &mut self.huff_scratch, out);
            }
        }
        encode_string(&h.value, self.use_huffman, &mut self.huff_scratch, out);
        self.dynamic.insert(Entry {
            name: h.name.clone(),
            value: h.value.clone(),
        });
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

// ---- decoder ----

/// HPACK decoder for one direction of one connection.
pub struct Decoder {
    dynamic: DynamicTable,
    /// Protocol ceiling for dynamic table size updates
    /// (our SETTINGS_HEADER_TABLE_SIZE).
    pub max_allowed_table_size: usize,
}

impl Decoder {
    /// Decoder with the default 4096-octet table.
    pub fn new() -> Self {
        Decoder {
            dynamic: DynamicTable::new(4096),
            max_allowed_table_size: 4096,
        }
    }

    /// Current dynamic table occupancy in octets.
    pub fn table_size(&self) -> usize {
        self.dynamic.size()
    }

    /// Lifetime count of dynamic-table evictions on the decode side.
    pub fn evictions(&self) -> u64 {
        self.dynamic.evictions()
    }

    /// Decode one complete header block.
    pub fn decode(&mut self, block: &[u8]) -> Result<Vec<Header>, HpackError> {
        let mut pos = 0;
        let mut out = Vec::new();
        while pos < block.len() {
            let b = block[pos];
            if b & 0x80 != 0 {
                // Indexed field.
                let idx = decode_int(block, &mut pos, 7)?;
                let e = lookup(&self.dynamic, idx).ok_or(HpackError::BadIndex(idx))?;
                out.push(Header {
                    name: e.name,
                    value: e.value,
                    sensitive: false,
                });
            } else if b & 0x40 != 0 {
                // Literal with incremental indexing.
                let idx = decode_int(block, &mut pos, 6)?;
                let name = self.literal_name(block, &mut pos, idx)?;
                let value = decode_string(block, &mut pos)?;
                self.dynamic.insert(Entry {
                    name: name.clone(),
                    value: value.clone(),
                });
                out.push(Header {
                    name,
                    value,
                    sensitive: false,
                });
            } else if b & 0x20 != 0 {
                // Dynamic table size update.
                let size = decode_int(block, &mut pos, 5)?;
                if size > self.max_allowed_table_size {
                    return Err(HpackError::TableSizeUpdateTooLarge);
                }
                self.dynamic.set_max_size(size);
            } else {
                // Literal without indexing (0x00) or never indexed (0x10).
                let sensitive = b & 0x10 != 0;
                let idx = decode_int(block, &mut pos, 4)?;
                let name = self.literal_name(block, &mut pos, idx)?;
                let value = decode_string(block, &mut pos)?;
                out.push(Header {
                    name,
                    value,
                    sensitive,
                });
            }
        }
        Ok(out)
    }

    fn literal_name(
        &self,
        block: &[u8],
        pos: &mut usize,
        idx: usize,
    ) -> Result<String, HpackError> {
        if idx == 0 {
            decode_string(block, pos)
        } else {
            Ok(lookup(&self.dynamic, idx)
                .ok_or(HpackError::BadIndex(idx))?
                .name)
        }
    }
}

impl Default for Decoder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: &str, v: &str) -> Header {
        Header::new(n, v)
    }

    #[test]
    fn integer_primitives_rfc_examples() {
        // RFC 7541 C.1.1: 10 with 5-bit prefix → 0x0a.
        let mut out = Vec::new();
        encode_int(10, 5, 0, &mut out);
        assert_eq!(out, [0x0a]);
        // C.1.2: 1337 with 5-bit prefix → 1f 9a 0a.
        let mut out = Vec::new();
        encode_int(1337, 5, 0, &mut out);
        assert_eq!(out, [0x1f, 0x9a, 0x0a]);
        // C.1.3: 42 on an 8-bit prefix → 0x2a.
        let mut out = Vec::new();
        encode_int(42, 8, 0, &mut out);
        assert_eq!(out, [0x2a]);
        // Roundtrips.
        for v in [0usize, 1, 30, 31, 32, 127, 128, 1337, 65_535, 1 << 20] {
            for prefix in 1..=8u8 {
                let mut out = Vec::new();
                encode_int(v, prefix, 0, &mut out);
                let mut pos = 0;
                assert_eq!(decode_int(&out, &mut pos, prefix).unwrap(), v);
                assert_eq!(pos, out.len());
            }
        }
    }

    #[test]
    fn integer_truncation_detected() {
        let mut pos = 0;
        assert_eq!(decode_int(&[], &mut pos, 5), Err(HpackError::Truncated));
        // Continuation byte promised but absent.
        let mut pos = 0;
        assert_eq!(
            decode_int(&[0x1f, 0x80], &mut pos, 5),
            Err(HpackError::Truncated)
        );
    }

    #[test]
    fn integer_overflow_detected() {
        // 6 continuation bytes exceed the shift limit.
        let buf = [0x1f, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert_eq!(
            decode_int(&buf, &mut pos, 5),
            Err(HpackError::IntegerOverflow)
        );
    }

    #[test]
    fn rfc_c2_1_literal_with_indexing() {
        // C.2.1: custom-key: custom-header (no huffman).
        let mut enc = Encoder::new();
        enc.use_huffman = false;
        let block = enc.encode(&[h("custom-key", "custom-header")]);
        assert_eq!(
            block,
            [
                0x40, 0x0a, b'c', b'u', b's', b't', b'o', b'm', b'-', b'k', b'e', b'y', 0x0d, b'c',
                b'u', b's', b't', b'o', b'm', b'-', b'h', b'e', b'a', b'd', b'e', b'r'
            ]
        );
        let mut dec = Decoder::new();
        assert_eq!(
            dec.decode(&block).unwrap(),
            vec![h("custom-key", "custom-header")]
        );
        assert_eq!(dec.table_size(), 55);
    }

    #[test]
    fn rfc_c2_4_indexed_field() {
        // :method: GET is static index 2 → 0x82.
        let mut enc = Encoder::new();
        let block = enc.encode(&[h(":method", "GET")]);
        assert_eq!(block, [0x82]);
    }

    #[test]
    fn rfc_c3_request_sequence_without_huffman() {
        // RFC 7541 C.3: three requests on one connection.
        let mut enc = Encoder::new();
        enc.use_huffman = false;
        let mut dec = Decoder::new();

        let req1 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
        ];
        let b1 = enc.encode(&req1);
        assert_eq!(
            b1,
            [
                0x82, 0x86, 0x84, 0x41, 0x0f, b'w', b'w', b'w', b'.', b'e', b'x', b'a', b'm', b'p',
                b'l', b'e', b'.', b'c', b'o', b'm'
            ]
        );
        assert_eq!(dec.decode(&b1).unwrap(), req1);
        assert_eq!(dec.table_size(), 57);

        let req2 = [
            h(":method", "GET"),
            h(":scheme", "http"),
            h(":path", "/"),
            h(":authority", "www.example.com"),
            h("cache-control", "no-cache"),
        ];
        let b2 = enc.encode(&req2);
        // RFC 7541 C.3.2 wire bytes: the authority now hits the
        // dynamic table (index 62 → 0xbe).
        assert_eq!(
            b2,
            [0x82, 0x86, 0x84, 0xbe, 0x58, 0x08, b'n', b'o', b'-', b'c', b'a', b'c', b'h', b'e']
        );
        assert_eq!(dec.decode(&b2).unwrap(), req2);
        assert_eq!(dec.table_size(), 110);

        let req3 = [
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/index.html"),
            h(":authority", "www.example.com"),
            h("custom-key", "custom-value"),
        ];
        let b3 = enc.encode(&req3);
        assert_eq!(dec.decode(&b3).unwrap(), req3);
        assert_eq!(dec.table_size(), 164);
    }

    #[test]
    fn huffman_request_roundtrip() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let req = [
            h(":method", "GET"),
            h(":scheme", "https"),
            h(":path", "/style/main.css?v=12345"),
            h(":authority", "static.example.com"),
            h("user-agent", "Mozilla/5.0 (X11; Linux x86_64) Firefox/96.0"),
            h("accept-encoding", "gzip, deflate"),
        ];
        let block = enc.encode(&req);
        assert_eq!(dec.decode(&block).unwrap(), req);
        // Second identical request should compress dramatically via
        // the dynamic table.
        let block2 = enc.encode(&req);
        assert!(
            block2.len() < block.len() / 2,
            "{} vs {}",
            block2.len(),
            block.len()
        );
        assert_eq!(dec.decode(&block2).unwrap(), req);
    }

    #[test]
    fn sensitive_headers_never_indexed() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let hdr = Header::sensitive("authorization", "Bearer secret-token");
        let b1 = enc.encode(std::slice::from_ref(&hdr));
        let got = dec.decode(&b1).unwrap();
        assert_eq!(got[0].value, "Bearer secret-token");
        assert!(got[0].sensitive);
        // Never-indexed: a repeat encodes to the same size (no table
        // hit for the value).
        let b2 = enc.encode(std::slice::from_ref(&hdr));
        assert_eq!(b1.len(), b2.len());
        assert_eq!(enc.table_size(), 0);
    }

    #[test]
    fn table_size_update_emitted_and_honored() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        // Warm the tables.
        let hdrs = [h("x-first", "one")];
        dec.decode(&enc.encode(&hdrs)).unwrap();
        assert!(dec.table_size() > 0);
        // Shrink to zero: next block starts with a size update that
        // flushes the peer table.
        enc.set_max_table_size(0);
        let block = enc.encode(&[h("x-second", "two")]);
        assert_eq!(block[0] & 0xe0, 0x20, "first octet must be a size update");
        dec.decode(&block).unwrap();
        assert_eq!(dec.table_size(), 0);
    }

    #[test]
    fn oversized_table_update_rejected() {
        let mut dec = Decoder::new();
        let mut block = Vec::new();
        encode_int(65_536, 5, 0x20, &mut block);
        assert_eq!(dec.decode(&block), Err(HpackError::TableSizeUpdateTooLarge));
    }

    #[test]
    fn bad_index_rejected() {
        let mut dec = Decoder::new();
        // Indexed field 70 with empty dynamic table.
        let mut block = Vec::new();
        encode_int(70, 7, 0x80, &mut block);
        assert_eq!(dec.decode(&block), Err(HpackError::BadIndex(70)));
        // Index 0 is never valid for an indexed field.
        assert_eq!(dec.decode(&[0x80]), Err(HpackError::BadIndex(0)));
    }

    #[test]
    fn truncated_string_rejected() {
        let mut dec = Decoder::new();
        // Literal w/ incremental indexing, new name, 10-byte string but
        // only 2 present.
        let block = [0x40, 0x0a, b'a', b'b'];
        assert_eq!(dec.decode(&block), Err(HpackError::Truncated));
    }

    #[test]
    fn response_header_sequence() {
        let mut enc = Encoder::new();
        let mut dec = Decoder::new();
        let resp = [
            h(":status", "200"),
            h("content-type", "text/html; charset=utf-8"),
            h("content-length", "12345"),
            h("server", "origin-edge/1.0"),
        ];
        let block = enc.encode(&resp);
        assert_eq!(dec.decode(&block).unwrap(), resp);
    }

    #[test]
    fn non_ascii_value_roundtrip() {
        // UTF-8 values survive both plain and Huffman paths.
        for use_huffman in [false, true] {
            let mut enc = Encoder::new();
            enc.use_huffman = use_huffman;
            let mut dec = Decoder::new();
            let hdr = Header {
                name: "x-blob".into(),
                value: "gr\u{00fc}n \u{0001}".into(),
                sensitive: false,
            };
            let block = enc.encode(std::slice::from_ref(&hdr));
            let got = dec.decode(&block).unwrap();
            assert_eq!(got[0].value, hdr.value);
        }
    }
}
