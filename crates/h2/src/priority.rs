//! RFC 7540 §5.3 stream priority tree.
//!
//! The paper's §6.1 argues that coalescing "opens resource scheduling
//! opportunities … coalesced resources are always received in the
//! ordering intended to optimize the critical path", because one
//! connection gives the server a single scheduler, whereas parallel
//! connections compete at the bottleneck and arrive in network-jitter
//! order. This module provides that single scheduler: a dependency
//! tree with weights, yielding the bandwidth-allocation order a
//! server should transmit responses in.

use crate::frame::PrioritySpec;
use crate::stream::StreamId;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Node {
    parent: StreamId,
    weight: u16, // 1..=256
    children: Vec<StreamId>,
}

/// A priority tree rooted at stream 0.
#[derive(Debug, Clone)]
pub struct PriorityTree {
    nodes: HashMap<StreamId, Node>,
}

impl Default for PriorityTree {
    fn default() -> Self {
        Self::new()
    }
}

impl PriorityTree {
    /// A tree containing only the root (stream 0).
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            StreamId::CONNECTION,
            Node {
                parent: StreamId::CONNECTION,
                weight: 16,
                children: Vec::new(),
            },
        );
        PriorityTree { nodes }
    }

    /// Number of streams in the tree (excluding the root).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a stream with default priority (child of root, weight
    /// 16 — RFC 7540 §5.3.5).
    pub fn insert(&mut self, stream: StreamId) {
        self.apply(
            stream,
            PrioritySpec {
                exclusive: false,
                depends_on: StreamId::CONNECTION,
                weight: 15,
            },
        );
    }

    /// Apply a PRIORITY frame (or HEADERS priority fields) for
    /// `stream`. Unknown dependency targets are created with default
    /// priority, per §5.3.1. A dependency on itself is a protocol
    /// error upstream; here it is normalized to the root to stay
    /// total.
    pub fn apply(&mut self, stream: StreamId, spec: PrioritySpec) {
        let mut depends_on = spec.depends_on;
        if depends_on == stream {
            depends_on = StreamId::CONNECTION;
        }
        if !self.nodes.contains_key(&depends_on) {
            self.insert(depends_on);
        }
        // Re-parenting under one's own descendant: move that
        // descendant up to our old parent first (§5.3.3).
        if self.is_descendant(depends_on, stream) {
            let old_parent = self.nodes[&stream].parent;
            self.detach(depends_on);
            self.nodes
                .get_mut(&depends_on)
                .expect("dependency target inserted above")
                .parent = old_parent;
            self.nodes
                .get_mut(&old_parent)
                .expect("old parent still in tree after detach")
                .children
                .push(depends_on);
        }
        self.detach(stream);
        let weight = spec.weight as u16 + 1;
        if spec.exclusive {
            // Adopt all of the new parent's children.
            let children = std::mem::take(
                &mut self
                    .nodes
                    .get_mut(&depends_on)
                    .expect("dependency target inserted above")
                    .children,
            );
            let node = self.nodes.entry(stream).or_insert(Node {
                parent: depends_on,
                weight,
                children: Vec::new(),
            });
            node.parent = depends_on;
            node.weight = weight;
            let mut adopted = children;
            for c in &adopted {
                self.nodes
                    .get_mut(c)
                    .expect("adopted child is a tree node")
                    .parent = stream;
            }
            self.nodes
                .get_mut(&stream)
                .expect("stream node inserted above")
                .children
                .append(&mut adopted);
        } else {
            let node = self.nodes.entry(stream).or_insert(Node {
                parent: depends_on,
                weight,
                children: Vec::new(),
            });
            node.parent = depends_on;
            node.weight = weight;
        }
        self.nodes
            .get_mut(&depends_on)
            .expect("dependency target inserted above")
            .children
            .push(stream);
    }

    /// Remove a closed stream; its children are re-parented to its
    /// parent (§5.3.4, weights left as-is in this simplified model).
    pub fn remove(&mut self, stream: StreamId) {
        if stream.is_connection() {
            return;
        }
        let Some(node) = self.nodes.remove(&stream) else {
            return;
        };
        let parent = node.parent;
        if let Some(p) = self.nodes.get_mut(&parent) {
            p.children.retain(|&c| c != stream);
        }
        for c in node.children {
            if let Some(cn) = self.nodes.get_mut(&c) {
                cn.parent = parent;
            }
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.children.push(c);
            }
        }
    }

    /// The transmission order a single-connection server should use:
    /// depth-first from the root, siblings ordered by descending
    /// weight (ties by stream id for determinism).
    pub fn transmission_order(&self) -> Vec<StreamId> {
        let mut out = Vec::with_capacity(self.len());
        let mut stack = vec![StreamId::CONNECTION];
        while let Some(s) = stack.pop() {
            if !s.is_connection() {
                out.push(s);
            }
            let mut children = self.nodes[&s].children.clone();
            // Reverse-sorted so the highest-weight child pops first.
            children.sort_by(|a, b| {
                self.nodes[a]
                    .weight
                    .cmp(&self.nodes[b].weight)
                    .then(b.cmp(a))
            });
            stack.extend(children);
        }
        out
    }

    /// Bandwidth share of `stream` among its siblings (weight /
    /// Σ sibling weights).
    pub fn sibling_share(&self, stream: StreamId) -> f64 {
        let Some(node) = self.nodes.get(&stream) else {
            return 0.0;
        };
        let siblings = &self.nodes[&node.parent].children;
        let total: u32 = siblings.iter().map(|s| self.nodes[s].weight as u32).sum();
        if total == 0 {
            0.0
        } else {
            node.weight as f64 / total as f64
        }
    }

    fn detach(&mut self, stream: StreamId) {
        if let Some(node) = self.nodes.get(&stream) {
            let parent = node.parent;
            if let Some(p) = self.nodes.get_mut(&parent) {
                p.children.retain(|&c| c != stream);
            }
        }
    }

    fn is_descendant(&self, candidate: StreamId, ancestor: StreamId) -> bool {
        let mut cursor = candidate;
        while let Some(node) = self.nodes.get(&cursor) {
            if node.parent == ancestor {
                return true;
            }
            if node.parent == cursor {
                return false; // root
            }
            cursor = node.parent;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(depends_on: u32, weight: u8, exclusive: bool) -> PrioritySpec {
        PrioritySpec {
            exclusive,
            depends_on: StreamId(depends_on),
            weight,
        }
    }

    #[test]
    fn default_insert_is_root_child() {
        let mut t = PriorityTree::new();
        t.insert(StreamId(1));
        t.insert(StreamId(3));
        assert_eq!(t.len(), 2);
        assert_eq!(t.transmission_order(), vec![StreamId(1), StreamId(3)]);
    }

    #[test]
    fn weights_order_siblings() {
        let mut t = PriorityTree::new();
        t.apply(StreamId(1), spec(0, 10, false));
        t.apply(StreamId(3), spec(0, 200, false));
        t.apply(StreamId(5), spec(0, 100, false));
        assert_eq!(
            t.transmission_order(),
            vec![StreamId(3), StreamId(5), StreamId(1)]
        );
        // Shares: 201 / (201+101+11).
        let share = t.sibling_share(StreamId(3));
        assert!((share - 201.0 / 313.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_serialize_parents_first() {
        // css (1) ← font (3): the font depends on the css.
        let mut t = PriorityTree::new();
        t.apply(StreamId(1), spec(0, 100, false));
        t.apply(StreamId(3), spec(1, 100, false));
        t.apply(StreamId(5), spec(0, 10, false));
        let order = t.transmission_order();
        let pos = |s: u32| order.iter().position(|&x| x == StreamId(s)).unwrap();
        assert!(pos(1) < pos(3), "parent before child");
        assert!(pos(1) < pos(5), "heavier subtree first");
    }

    #[test]
    fn exclusive_adopts_children() {
        let mut t = PriorityTree::new();
        t.apply(StreamId(1), spec(0, 100, false));
        t.apply(StreamId(3), spec(0, 100, false));
        // Stream 5 inserts exclusively at the root: 1 and 3 become its
        // children.
        t.apply(StreamId(5), spec(0, 200, true));
        let order = t.transmission_order();
        assert_eq!(order[0], StreamId(5));
        assert_eq!(t.sibling_share(StreamId(5)), 1.0);
    }

    #[test]
    fn remove_reparents_children() {
        let mut t = PriorityTree::new();
        t.apply(StreamId(1), spec(0, 100, false));
        t.apply(StreamId(3), spec(1, 100, false));
        t.remove(StreamId(1));
        assert_eq!(t.transmission_order(), vec![StreamId(3)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn unknown_dependency_target_created() {
        let mut t = PriorityTree::new();
        t.apply(StreamId(3), spec(99, 50, false));
        let order = t.transmission_order();
        assert!(order.contains(&StreamId(99)));
        assert!(order.contains(&StreamId(3)));
    }

    #[test]
    fn self_dependency_normalized() {
        let mut t = PriorityTree::new();
        t.apply(StreamId(7), spec(7, 10, false));
        assert_eq!(t.transmission_order(), vec![StreamId(7)]);
    }

    #[test]
    fn reparent_under_descendant_moves_descendant_up() {
        // 1 ← 3; then 1 re-parents under 3 (§5.3.3's tricky case).
        let mut t = PriorityTree::new();
        t.apply(StreamId(1), spec(0, 100, false));
        t.apply(StreamId(3), spec(1, 100, false));
        t.apply(StreamId(1), spec(3, 100, false));
        let order = t.transmission_order();
        let pos = |s: u32| order.iter().position(|&x| x == StreamId(s)).unwrap();
        assert!(pos(3) < pos(1), "3 is now 1's parent");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_root_is_noop() {
        let mut t = PriorityTree::new();
        t.insert(StreamId(1));
        t.remove(StreamId::CONNECTION);
        assert_eq!(t.len(), 1);
    }
}
