//! SETTINGS parameters (RFC 7540 §6.5.2).

/// SETTINGS_HEADER_TABLE_SIZE.
pub const SETTINGS_HEADER_TABLE_SIZE: u16 = 0x1;
/// SETTINGS_ENABLE_PUSH.
pub const SETTINGS_ENABLE_PUSH: u16 = 0x2;
/// SETTINGS_MAX_CONCURRENT_STREAMS.
pub const SETTINGS_MAX_CONCURRENT_STREAMS: u16 = 0x3;
/// SETTINGS_INITIAL_WINDOW_SIZE.
pub const SETTINGS_INITIAL_WINDOW_SIZE: u16 = 0x4;
/// SETTINGS_MAX_FRAME_SIZE.
pub const SETTINGS_MAX_FRAME_SIZE: u16 = 0x5;
/// SETTINGS_MAX_HEADER_LIST_SIZE.
pub const SETTINGS_MAX_HEADER_LIST_SIZE: u16 = 0x6;

/// An endpoint's settings, with RFC 7540 defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Settings {
    /// HPACK dynamic table size the peer may use when encoding toward
    /// us.
    pub header_table_size: u32,
    /// Whether server push is permitted.
    pub enable_push: bool,
    /// Maximum concurrent streams the peer may open (None =
    /// unlimited).
    pub max_concurrent_streams: Option<u32>,
    /// Initial stream-level flow-control window.
    pub initial_window_size: u32,
    /// Largest frame payload we accept.
    pub max_frame_size: u32,
    /// Advisory maximum header list size (None = unlimited).
    pub max_header_list_size: Option<u32>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            header_table_size: 4_096,
            enable_push: true,
            max_concurrent_streams: None,
            initial_window_size: 65_535,
            max_frame_size: 16_384,
            max_header_list_size: None,
        }
    }
}

impl Settings {
    /// Serialize to `(identifier, value)` pairs, emitting only values
    /// that differ from the defaults (endpoints commonly omit
    /// defaults).
    pub fn to_params(&self) -> Vec<(u16, u32)> {
        let d = Settings::default();
        let mut out = Vec::new();
        if self.header_table_size != d.header_table_size {
            out.push((SETTINGS_HEADER_TABLE_SIZE, self.header_table_size));
        }
        if self.enable_push != d.enable_push {
            out.push((SETTINGS_ENABLE_PUSH, self.enable_push as u32));
        }
        if let Some(v) = self.max_concurrent_streams {
            out.push((SETTINGS_MAX_CONCURRENT_STREAMS, v));
        }
        if self.initial_window_size != d.initial_window_size {
            out.push((SETTINGS_INITIAL_WINDOW_SIZE, self.initial_window_size));
        }
        if self.max_frame_size != d.max_frame_size {
            out.push((SETTINGS_MAX_FRAME_SIZE, self.max_frame_size));
        }
        if let Some(v) = self.max_header_list_size {
            out.push((SETTINGS_MAX_HEADER_LIST_SIZE, v));
        }
        out
    }

    /// Apply received `(identifier, value)` pairs. Unknown identifiers
    /// are ignored (RFC 7540 §6.5.2).
    pub fn apply(&mut self, params: &[(u16, u32)]) {
        for &(id, value) in params {
            match id {
                SETTINGS_HEADER_TABLE_SIZE => self.header_table_size = value,
                SETTINGS_ENABLE_PUSH => self.enable_push = value != 0,
                SETTINGS_MAX_CONCURRENT_STREAMS => self.max_concurrent_streams = Some(value),
                SETTINGS_INITIAL_WINDOW_SIZE => self.initial_window_size = value,
                SETTINGS_MAX_FRAME_SIZE => self.max_frame_size = value,
                SETTINGS_MAX_HEADER_LIST_SIZE => self.max_header_list_size = Some(value),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_serialize_empty() {
        assert!(Settings::default().to_params().is_empty());
    }

    #[test]
    fn roundtrip_non_defaults() {
        let s = Settings {
            header_table_size: 8_192,
            enable_push: false,
            max_concurrent_streams: Some(128),
            initial_window_size: 1 << 20,
            max_frame_size: 32_768,
            max_header_list_size: Some(16_384),
        };
        let mut out = Settings::default();
        out.apply(&s.to_params());
        assert_eq!(out, s);
    }

    #[test]
    fn unknown_identifiers_ignored() {
        let mut s = Settings::default();
        s.apply(&[(0x99, 7), (0xffff, 0)]);
        assert_eq!(s, Settings::default());
    }

    #[test]
    fn enable_push_is_boolean() {
        let mut s = Settings::default();
        s.apply(&[(SETTINGS_ENABLE_PUSH, 0)]);
        assert!(!s.enable_push);
        s.apply(&[(SETTINGS_ENABLE_PUSH, 1)]);
        assert!(s.enable_push);
    }
}
