//! Frame codec: RFC 7540 core frames plus ALTSVC (RFC 7838) and
//! ORIGIN (RFC 8336).
//!
//! Encoding writes into a `BytesMut`; decoding is incremental in the
//! Tokio-framing style — [`FrameDecoder::decode`] consumes a byte
//! buffer and yields one complete frame at a time, returning
//! `Ok(None)` on partial input so a transport can feed bytes as they
//! arrive.

use crate::error::{ErrorCode, FrameError};
use crate::stream::StreamId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Default SETTINGS_MAX_FRAME_SIZE (RFC 7540 §6.5.2).
pub const DEFAULT_MAX_FRAME_SIZE: usize = 16_384;

/// Frame type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// 0x00.
    Data,
    /// 0x01.
    Headers,
    /// 0x02.
    Priority,
    /// 0x03.
    RstStream,
    /// 0x04.
    Settings,
    /// 0x05.
    PushPromise,
    /// 0x06.
    Ping,
    /// 0x07.
    GoAway,
    /// 0x08.
    WindowUpdate,
    /// 0x09.
    Continuation,
    /// 0x0a (RFC 7838).
    AltSvc,
    /// 0x0c (RFC 8336).
    Origin,
    /// Anything else — must be ignored per RFC 7540 §4.1.
    Unknown(u8),
}

impl FrameType {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            FrameType::Data => 0x00,
            FrameType::Headers => 0x01,
            FrameType::Priority => 0x02,
            FrameType::RstStream => 0x03,
            FrameType::Settings => 0x04,
            FrameType::PushPromise => 0x05,
            FrameType::Ping => 0x06,
            FrameType::GoAway => 0x07,
            FrameType::WindowUpdate => 0x08,
            FrameType::Continuation => 0x09,
            FrameType::AltSvc => 0x0a,
            FrameType::Origin => 0x0c,
            FrameType::Unknown(v) => v,
        }
    }

    /// Canonical RFC frame name (`DATA`, `ORIGIN`, …) for trace and
    /// log output; unknown types render as `UNKNOWN`.
    pub fn name(self) -> &'static str {
        match self {
            FrameType::Data => "DATA",
            FrameType::Headers => "HEADERS",
            FrameType::Priority => "PRIORITY",
            FrameType::RstStream => "RST_STREAM",
            FrameType::Settings => "SETTINGS",
            FrameType::PushPromise => "PUSH_PROMISE",
            FrameType::Ping => "PING",
            FrameType::GoAway => "GOAWAY",
            FrameType::WindowUpdate => "WINDOW_UPDATE",
            FrameType::Continuation => "CONTINUATION",
            FrameType::AltSvc => "ALTSVC",
            FrameType::Origin => "ORIGIN",
            FrameType::Unknown(_) => "UNKNOWN",
        }
    }

    /// Parse a wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0x00 => FrameType::Data,
            0x01 => FrameType::Headers,
            0x02 => FrameType::Priority,
            0x03 => FrameType::RstStream,
            0x04 => FrameType::Settings,
            0x05 => FrameType::PushPromise,
            0x06 => FrameType::Ping,
            0x07 => FrameType::GoAway,
            0x08 => FrameType::WindowUpdate,
            0x09 => FrameType::Continuation,
            0x0a => FrameType::AltSvc,
            0x0c => FrameType::Origin,
            other => FrameType::Unknown(other),
        }
    }
}

/// Flag bit: END_STREAM (DATA, HEADERS).
pub const FLAG_END_STREAM: u8 = 0x1;
/// Flag bit: ACK (SETTINGS, PING).
pub const FLAG_ACK: u8 = 0x1;
/// Flag bit: END_HEADERS (HEADERS, PUSH_PROMISE, CONTINUATION).
pub const FLAG_END_HEADERS: u8 = 0x4;
/// Flag bit: PADDED (DATA, HEADERS, PUSH_PROMISE).
pub const FLAG_PADDED: u8 = 0x8;
/// Flag bit: PRIORITY (HEADERS).
pub const FLAG_PRIORITY: u8 = 0x20;

/// The 9-octet frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length (24-bit).
    pub length: u32,
    /// Raw type octet.
    pub kind: u8,
    /// Flag octet.
    pub flags: u8,
    /// Stream identifier (reserved bit masked off).
    pub stream_id: StreamId,
}

impl FrameHeader {
    /// Parse from exactly 9 octets.
    pub fn parse(buf: &[u8; 9]) -> FrameHeader {
        let length = u32::from_be_bytes([0, buf[0], buf[1], buf[2]]);
        let kind = buf[3];
        let flags = buf[4];
        let stream_id =
            StreamId(u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) & 0x7fff_ffff);
        FrameHeader {
            length,
            kind,
            flags,
            stream_id,
        }
    }

    /// Serialize into 9 octets.
    pub fn encode(&self, dst: &mut BytesMut) {
        debug_assert!(self.length < (1 << 24));
        dst.put_uint(self.length as u64, 3);
        dst.put_u8(self.kind);
        dst.put_u8(self.flags);
        dst.put_u32(self.stream_id.0 & 0x7fff_ffff);
    }
}

/// A stream dependency specification carried by PRIORITY frames and
/// the HEADERS PRIORITY flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrioritySpec {
    /// Whether the dependency is exclusive.
    pub exclusive: bool,
    /// The stream this one depends on.
    pub depends_on: StreamId,
    /// Weight 1–256, stored as the wire octet (weight − 1).
    pub weight: u8,
}

/// A decoded HTTP/2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// DATA: request/response body bytes.
    Data {
        /// Carrying stream.
        stream: StreamId,
        /// Payload (padding stripped).
        data: Bytes,
        /// END_STREAM flag.
        end_stream: bool,
    },
    /// HEADERS: an HPACK-encoded header block fragment.
    Headers {
        /// Carrying stream.
        stream: StreamId,
        /// HPACK header block fragment (padding stripped).
        fragment: Bytes,
        /// END_STREAM flag.
        end_stream: bool,
        /// END_HEADERS flag.
        end_headers: bool,
        /// Priority fields when the PRIORITY flag was set.
        priority: Option<PrioritySpec>,
    },
    /// PRIORITY.
    Priority {
        /// Target stream.
        stream: StreamId,
        /// Dependency spec.
        spec: PrioritySpec,
    },
    /// RST_STREAM.
    RstStream {
        /// Target stream.
        stream: StreamId,
        /// Error code.
        code: ErrorCode,
    },
    /// SETTINGS.
    Settings {
        /// ACK flag (payload must be empty when set).
        ack: bool,
        /// `(identifier, value)` pairs in wire order.
        params: Vec<(u16, u32)>,
    },
    /// PUSH_PROMISE.
    PushPromise {
        /// Stream the promise rides on.
        stream: StreamId,
        /// The promised (reserved) stream.
        promised: StreamId,
        /// HPACK fragment of the promised request headers.
        fragment: Bytes,
        /// END_HEADERS flag.
        end_headers: bool,
    },
    /// PING.
    Ping {
        /// ACK flag.
        ack: bool,
        /// Opaque 8-octet payload.
        payload: [u8; 8],
    },
    /// GOAWAY.
    GoAway {
        /// Highest peer-initiated stream the sender may process.
        last_stream: StreamId,
        /// Error code.
        code: ErrorCode,
        /// Opaque debug data.
        debug: Bytes,
    },
    /// WINDOW_UPDATE (stream 0 = connection window).
    WindowUpdate {
        /// Target stream (0 for connection).
        stream: StreamId,
        /// Window size increment (1..2^31-1).
        increment: u32,
    },
    /// CONTINUATION of a header block.
    Continuation {
        /// Carrying stream.
        stream: StreamId,
        /// HPACK fragment.
        fragment: Bytes,
        /// END_HEADERS flag.
        end_headers: bool,
    },
    /// ALTSVC (RFC 7838): alternative service advertisement.
    AltSvc {
        /// Carrying stream.
        stream: StreamId,
        /// Origin the advertisement applies to (stream-0 frames).
        origin: Bytes,
        /// Alt-Svc field value.
        value: Bytes,
    },
    /// ORIGIN (RFC 8336): the origin set for this connection.
    /// Always stream 0; flags are unused.
    Origin {
        /// ASCII origins (`https://example.com[:port]`) in wire order.
        origins: Vec<String>,
    },
    /// A frame of unknown type — preserved so middlebox models and
    /// fail-open tests can observe it.
    Unknown {
        /// Raw type octet.
        kind: u8,
        /// Raw flags.
        flags: u8,
        /// Carrying stream.
        stream: StreamId,
        /// Raw payload.
        payload: Bytes,
    },
}

impl Frame {
    /// The frame's type.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Data { .. } => FrameType::Data,
            Frame::Headers { .. } => FrameType::Headers,
            Frame::Priority { .. } => FrameType::Priority,
            Frame::RstStream { .. } => FrameType::RstStream,
            Frame::Settings { .. } => FrameType::Settings,
            Frame::PushPromise { .. } => FrameType::PushPromise,
            Frame::Ping { .. } => FrameType::Ping,
            Frame::GoAway { .. } => FrameType::GoAway,
            Frame::WindowUpdate { .. } => FrameType::WindowUpdate,
            Frame::Continuation { .. } => FrameType::Continuation,
            Frame::AltSvc { .. } => FrameType::AltSvc,
            Frame::Origin { .. } => FrameType::Origin,
            Frame::Unknown { kind, .. } => FrameType::from_u8(*kind),
        }
    }

    /// The stream the frame rides on (0 for connection-scoped frames).
    pub fn stream_id(&self) -> StreamId {
        match self {
            Frame::Data { stream, .. }
            | Frame::Headers { stream, .. }
            | Frame::Priority { stream, .. }
            | Frame::RstStream { stream, .. }
            | Frame::PushPromise { stream, .. }
            | Frame::Continuation { stream, .. }
            | Frame::AltSvc { stream, .. }
            | Frame::WindowUpdate { stream, .. }
            | Frame::Unknown { stream, .. } => *stream,
            Frame::Settings { .. }
            | Frame::Ping { .. }
            | Frame::GoAway { .. }
            | Frame::Origin { .. } => StreamId::CONNECTION,
        }
    }

    /// Serialize the frame (header + payload) into `dst`.
    pub fn encode(&self, dst: &mut BytesMut) {
        match self {
            Frame::Data {
                stream,
                data,
                end_stream,
            } => {
                let flags = if *end_stream { FLAG_END_STREAM } else { 0 };
                header(dst, data.len(), FrameType::Data, flags, *stream);
                dst.extend_from_slice(data);
            }
            Frame::Headers {
                stream,
                fragment,
                end_stream,
                end_headers,
                priority,
            } => {
                encode_headers(
                    dst,
                    *stream,
                    fragment,
                    *end_stream,
                    *end_headers,
                    priority.as_ref(),
                );
            }
            Frame::Priority { stream, spec } => {
                header(dst, 5, FrameType::Priority, 0, *stream);
                put_priority(dst, spec);
            }
            Frame::RstStream { stream, code } => {
                header(dst, 4, FrameType::RstStream, 0, *stream);
                dst.put_u32(code.to_u32());
            }
            Frame::Settings { ack, params } => {
                let flags = if *ack { FLAG_ACK } else { 0 };
                header(
                    dst,
                    params.len() * 6,
                    FrameType::Settings,
                    flags,
                    StreamId::CONNECTION,
                );
                for (id, val) in params {
                    dst.put_u16(*id);
                    dst.put_u32(*val);
                }
            }
            Frame::PushPromise {
                stream,
                promised,
                fragment,
                end_headers,
            } => {
                let flags = if *end_headers { FLAG_END_HEADERS } else { 0 };
                header(
                    dst,
                    fragment.len() + 4,
                    FrameType::PushPromise,
                    flags,
                    *stream,
                );
                dst.put_u32(promised.0 & 0x7fff_ffff);
                dst.extend_from_slice(fragment);
            }
            Frame::Ping { ack, payload } => {
                let flags = if *ack { FLAG_ACK } else { 0 };
                header(dst, 8, FrameType::Ping, flags, StreamId::CONNECTION);
                dst.extend_from_slice(payload);
            }
            Frame::GoAway {
                last_stream,
                code,
                debug,
            } => {
                header(
                    dst,
                    8 + debug.len(),
                    FrameType::GoAway,
                    0,
                    StreamId::CONNECTION,
                );
                dst.put_u32(last_stream.0 & 0x7fff_ffff);
                dst.put_u32(code.to_u32());
                dst.extend_from_slice(debug);
            }
            Frame::WindowUpdate { stream, increment } => {
                header(dst, 4, FrameType::WindowUpdate, 0, *stream);
                dst.put_u32(increment & 0x7fff_ffff);
            }
            Frame::Continuation {
                stream,
                fragment,
                end_headers,
            } => {
                encode_continuation(dst, *stream, fragment, *end_headers);
            }
            Frame::AltSvc {
                stream,
                origin,
                value,
            } => {
                header(
                    dst,
                    2 + origin.len() + value.len(),
                    FrameType::AltSvc,
                    0,
                    *stream,
                );
                dst.put_u16(origin.len() as u16);
                dst.extend_from_slice(origin);
                dst.extend_from_slice(value);
            }
            Frame::Origin { origins } => {
                let len: usize = origins.iter().map(|o| 2 + o.len()).sum();
                header(dst, len, FrameType::Origin, 0, StreamId::CONNECTION);
                for o in origins {
                    debug_assert!(o.is_ascii());
                    dst.put_u16(o.len() as u16);
                    dst.extend_from_slice(o.as_bytes());
                }
            }
            Frame::Unknown {
                kind,
                flags,
                stream,
                payload,
            } => {
                let h = FrameHeader {
                    length: payload.len() as u32,
                    kind: *kind,
                    flags: *flags,
                    stream_id: *stream,
                };
                h.encode(dst);
                dst.extend_from_slice(payload);
            }
        }
    }

    /// Serialize into a standalone buffer.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        self.encode(&mut b);
        b.freeze()
    }
}

/// Encode a HEADERS frame whose fragment is a borrowed slice.
///
/// This is the zero-copy path [`crate::conn::Connection`] uses to
/// emit header blocks straight from its reused HPACK scratch buffer
/// into the connection's send buffer — no intermediate `Bytes`
/// allocation per frame. `Frame::Headers::encode` delegates here, so
/// the wire bytes are identical by construction.
pub fn encode_headers(
    dst: &mut BytesMut,
    stream: StreamId,
    fragment: &[u8],
    end_stream: bool,
    end_headers: bool,
    priority: Option<&PrioritySpec>,
) {
    let mut flags = 0;
    if end_stream {
        flags |= FLAG_END_STREAM;
    }
    if end_headers {
        flags |= FLAG_END_HEADERS;
    }
    let extra = if priority.is_some() { 5 } else { 0 };
    if priority.is_some() {
        flags |= FLAG_PRIORITY;
    }
    header(
        dst,
        fragment.len() + extra,
        FrameType::Headers,
        flags,
        stream,
    );
    if let Some(p) = priority {
        put_priority(dst, p);
    }
    dst.extend_from_slice(fragment);
}

/// Encode a CONTINUATION frame from a borrowed fragment slice (see
/// [`encode_headers`]). `Frame::Continuation::encode` delegates here.
pub fn encode_continuation(
    dst: &mut BytesMut,
    stream: StreamId,
    fragment: &[u8],
    end_headers: bool,
) {
    let flags = if end_headers { FLAG_END_HEADERS } else { 0 };
    header(dst, fragment.len(), FrameType::Continuation, flags, stream);
    dst.extend_from_slice(fragment);
}

fn header(dst: &mut BytesMut, len: usize, kind: FrameType, flags: u8, stream: StreamId) {
    FrameHeader {
        length: len as u32,
        kind: kind.to_u8(),
        flags,
        stream_id: stream,
    }
    .encode(dst);
}

fn put_priority(dst: &mut BytesMut, p: &PrioritySpec) {
    let dep = (p.depends_on.0 & 0x7fff_ffff) | if p.exclusive { 0x8000_0000 } else { 0 };
    dst.put_u32(dep);
    dst.put_u8(p.weight);
}

fn get_priority(payload: &mut Bytes) -> PrioritySpec {
    let dep = payload.get_u32();
    let weight = payload.get_u8();
    PrioritySpec {
        exclusive: dep & 0x8000_0000 != 0,
        depends_on: StreamId(dep & 0x7fff_ffff),
        weight,
    }
}

/// Incremental frame decoder.
///
/// Feed bytes into a `BytesMut` and call [`FrameDecoder::decode`] in a
/// loop; it yields `Ok(Some(frame))` per complete frame, `Ok(None)`
/// when more bytes are needed, and errors on malformed input. The
/// buffer is only consumed when a whole frame is available.
#[derive(Debug, Clone)]
pub struct FrameDecoder {
    /// Largest payload this endpoint accepts
    /// (SETTINGS_MAX_FRAME_SIZE).
    pub max_frame_size: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder {
            max_frame_size: DEFAULT_MAX_FRAME_SIZE,
        }
    }
}

impl FrameDecoder {
    /// Decoder with a specific max frame size.
    pub fn new(max_frame_size: usize) -> Self {
        FrameDecoder { max_frame_size }
    }

    /// Try to decode one frame from `src`.
    pub fn decode(&self, src: &mut BytesMut) -> Result<Option<Frame>, FrameError> {
        if src.len() < 9 {
            return Ok(None);
        }
        let mut hdr = [0u8; 9];
        hdr.copy_from_slice(&src[..9]);
        let head = FrameHeader::parse(&hdr);
        let len = head.length as usize;
        if len > self.max_frame_size {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_frame_size,
            });
        }
        if src.len() < 9 + len {
            return Ok(None);
        }
        src.advance(9);
        let mut payload = src.split_to(len).freeze();
        let frame = Self::decode_payload(head, &mut payload)?;
        Ok(Some(frame))
    }

    fn decode_payload(head: FrameHeader, payload: &mut Bytes) -> Result<Frame, FrameError> {
        let kind = FrameType::from_u8(head.kind);
        let stream = head.stream_id;
        let flags = head.flags;
        match kind {
            FrameType::Data => {
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "DATA",
                        id: 0,
                    });
                }
                let data = strip_padding(payload, flags)?;
                Ok(Frame::Data {
                    stream,
                    data,
                    end_stream: flags & FLAG_END_STREAM != 0,
                })
            }
            FrameType::Headers => {
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "HEADERS",
                        id: 0,
                    });
                }
                let mut body = strip_padding(payload, flags)?;
                let priority = if flags & FLAG_PRIORITY != 0 {
                    if body.len() < 5 {
                        return Err(FrameError::BadLength {
                            kind: "HEADERS",
                            len: body.len(),
                        });
                    }
                    Some(get_priority(&mut body))
                } else {
                    None
                };
                Ok(Frame::Headers {
                    stream,
                    fragment: body,
                    end_stream: flags & FLAG_END_STREAM != 0,
                    end_headers: flags & FLAG_END_HEADERS != 0,
                    priority,
                })
            }
            FrameType::Priority => {
                if payload.len() != 5 {
                    return Err(FrameError::BadLength {
                        kind: "PRIORITY",
                        len: payload.len(),
                    });
                }
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "PRIORITY",
                        id: 0,
                    });
                }
                Ok(Frame::Priority {
                    stream,
                    spec: get_priority(payload),
                })
            }
            FrameType::RstStream => {
                if payload.len() != 4 {
                    return Err(FrameError::BadLength {
                        kind: "RST_STREAM",
                        len: payload.len(),
                    });
                }
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "RST_STREAM",
                        id: 0,
                    });
                }
                Ok(Frame::RstStream {
                    stream,
                    code: ErrorCode::from_u32(payload.get_u32()),
                })
            }
            FrameType::Settings => {
                if !stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "SETTINGS",
                        id: stream.0,
                    });
                }
                let ack = flags & FLAG_ACK != 0;
                if ack && !payload.is_empty() {
                    return Err(FrameError::BadLength {
                        kind: "SETTINGS(ACK)",
                        len: payload.len(),
                    });
                }
                if !payload.len().is_multiple_of(6) {
                    return Err(FrameError::BadLength {
                        kind: "SETTINGS",
                        len: payload.len(),
                    });
                }
                let mut params = Vec::with_capacity(payload.len() / 6);
                while payload.remaining() >= 6 {
                    params.push((payload.get_u16(), payload.get_u32()));
                }
                Ok(Frame::Settings { ack, params })
            }
            FrameType::PushPromise => {
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "PUSH_PROMISE",
                        id: 0,
                    });
                }
                let mut body = strip_padding(payload, flags)?;
                if body.len() < 4 {
                    return Err(FrameError::BadLength {
                        kind: "PUSH_PROMISE",
                        len: body.len(),
                    });
                }
                let promised = StreamId(body.get_u32() & 0x7fff_ffff);
                Ok(Frame::PushPromise {
                    stream,
                    promised,
                    fragment: body,
                    end_headers: flags & FLAG_END_HEADERS != 0,
                })
            }
            FrameType::Ping => {
                if payload.len() != 8 {
                    return Err(FrameError::BadLength {
                        kind: "PING",
                        len: payload.len(),
                    });
                }
                if !stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "PING",
                        id: stream.0,
                    });
                }
                let mut p = [0u8; 8];
                p.copy_from_slice(&payload[..8]);
                Ok(Frame::Ping {
                    ack: flags & FLAG_ACK != 0,
                    payload: p,
                })
            }
            FrameType::GoAway => {
                if payload.len() < 8 {
                    return Err(FrameError::BadLength {
                        kind: "GOAWAY",
                        len: payload.len(),
                    });
                }
                if !stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "GOAWAY",
                        id: stream.0,
                    });
                }
                let last_stream = StreamId(payload.get_u32() & 0x7fff_ffff);
                let code = ErrorCode::from_u32(payload.get_u32());
                Ok(Frame::GoAway {
                    last_stream,
                    code,
                    debug: payload.clone(),
                })
            }
            FrameType::WindowUpdate => {
                if payload.len() != 4 {
                    return Err(FrameError::BadLength {
                        kind: "WINDOW_UPDATE",
                        len: payload.len(),
                    });
                }
                Ok(Frame::WindowUpdate {
                    stream,
                    increment: payload.get_u32() & 0x7fff_ffff,
                })
            }
            FrameType::Continuation => {
                if stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "CONTINUATION",
                        id: 0,
                    });
                }
                Ok(Frame::Continuation {
                    stream,
                    fragment: payload.clone(),
                    end_headers: flags & FLAG_END_HEADERS != 0,
                })
            }
            FrameType::AltSvc => {
                if payload.len() < 2 {
                    return Err(FrameError::BadLength {
                        kind: "ALTSVC",
                        len: payload.len(),
                    });
                }
                let origin_len = payload.get_u16() as usize;
                if payload.len() < origin_len {
                    return Err(FrameError::BadLength {
                        kind: "ALTSVC",
                        len: payload.len(),
                    });
                }
                let origin = payload.split_to(origin_len);
                Ok(Frame::AltSvc {
                    stream,
                    origin,
                    value: payload.clone(),
                })
            }
            FrameType::Origin => {
                // RFC 8336 §2: ORIGIN frames on a non-zero stream or
                // with a malformed payload "MUST be ignored" — but the
                // codec surfaces structural errors; the connection
                // layer decides to ignore.
                if !stream.is_connection() {
                    return Err(FrameError::BadStreamId {
                        kind: "ORIGIN",
                        id: stream.0,
                    });
                }
                let mut origins = Vec::new();
                while payload.has_remaining() {
                    if payload.remaining() < 2 {
                        return Err(FrameError::BadLength {
                            kind: "ORIGIN",
                            len: payload.remaining(),
                        });
                    }
                    let len = payload.get_u16() as usize;
                    if payload.remaining() < len {
                        return Err(FrameError::BadLength {
                            kind: "ORIGIN",
                            len: payload.remaining(),
                        });
                    }
                    let entry = payload.split_to(len);
                    let s = std::str::from_utf8(&entry).map_err(|_| FrameError::BadString)?;
                    if !s.is_ascii() {
                        return Err(FrameError::BadString);
                    }
                    origins.push(s.to_string());
                }
                Ok(Frame::Origin { origins })
            }
            FrameType::Unknown(kind) => Ok(Frame::Unknown {
                kind,
                flags,
                stream,
                payload: payload.clone(),
            }),
        }
    }
}

/// Strip PADDED framing: first octet is the pad length; that many
/// trailing octets are removed.
fn strip_padding(payload: &mut Bytes, flags: u8) -> Result<Bytes, FrameError> {
    if flags & FLAG_PADDED == 0 {
        return Ok(payload.clone());
    }
    if payload.is_empty() {
        return Err(FrameError::BadPadding);
    }
    let pad = payload.get_u8() as usize;
    // Pad length must not exceed the remaining payload (RFC 7540 §6.1).
    if pad > payload.len() {
        return Err(FrameError::BadPadding);
    }
    let body_len = payload.len() - pad;
    Ok(payload.split_to(body_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) -> Frame {
        let mut buf = BytesMut::new();
        f.encode(&mut buf);
        let dec = FrameDecoder::default();
        let out = dec.decode(&mut buf).expect("decode ok").expect("complete");
        assert!(buf.is_empty(), "decoder must consume the whole frame");
        out
    }

    #[test]
    fn data_roundtrip() {
        let f = Frame::Data {
            stream: StreamId(1),
            data: Bytes::from_static(b"hello world"),
            end_stream: true,
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn headers_roundtrip_with_priority() {
        let f = Frame::Headers {
            stream: StreamId(5),
            fragment: Bytes::from_static(&[0x82, 0x86]),
            end_stream: false,
            end_headers: true,
            priority: Some(PrioritySpec {
                exclusive: true,
                depends_on: StreamId(3),
                weight: 200,
            }),
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn settings_roundtrip() {
        let f = Frame::Settings {
            ack: false,
            params: vec![(0x3, 100), (0x4, 65_535)],
        };
        assert_eq!(roundtrip(f.clone()), f);
        let ack = Frame::Settings {
            ack: true,
            params: vec![],
        };
        assert_eq!(roundtrip(ack.clone()), ack);
    }

    #[test]
    fn ping_goaway_window_roundtrip() {
        let p = Frame::Ping {
            ack: true,
            payload: [1, 2, 3, 4, 5, 6, 7, 8],
        };
        assert_eq!(roundtrip(p.clone()), p);
        let g = Frame::GoAway {
            last_stream: StreamId(9),
            code: ErrorCode::EnhanceYourCalm,
            debug: Bytes::from_static(b"bye"),
        };
        assert_eq!(roundtrip(g.clone()), g);
        let w = Frame::WindowUpdate {
            stream: StreamId(0),
            increment: 0x7fff_ffff,
        };
        assert_eq!(roundtrip(w.clone()), w);
    }

    #[test]
    fn rst_priority_continuation_pushpromise_altsvc_roundtrip() {
        let r = Frame::RstStream {
            stream: StreamId(7),
            code: ErrorCode::Cancel,
        };
        assert_eq!(roundtrip(r.clone()), r);
        let p = Frame::Priority {
            stream: StreamId(7),
            spec: PrioritySpec {
                exclusive: false,
                depends_on: StreamId(0),
                weight: 15,
            },
        };
        assert_eq!(roundtrip(p.clone()), p);
        let c = Frame::Continuation {
            stream: StreamId(7),
            fragment: Bytes::from_static(&[1, 2, 3]),
            end_headers: true,
        };
        assert_eq!(roundtrip(c.clone()), c);
        let pp = Frame::PushPromise {
            stream: StreamId(7),
            promised: StreamId(8),
            fragment: Bytes::from_static(&[0x82]),
            end_headers: true,
        };
        assert_eq!(roundtrip(pp.clone()), pp);
        let a = Frame::AltSvc {
            stream: StreamId(0),
            origin: Bytes::from_static(b"https://example.com"),
            value: Bytes::from_static(b"h3=\":443\""),
        };
        assert_eq!(roundtrip(a.clone()), a);
    }

    #[test]
    fn origin_frame_roundtrip() {
        let f = Frame::Origin {
            origins: vec![
                "https://example.com".to_string(),
                "https://static.example.com".to_string(),
                "https://cdnjs.cloudflare.com".to_string(),
            ],
        };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn empty_origin_frame_clears_set() {
        // RFC 8336: an ORIGIN frame with no entries is valid (empties
        // the origin set).
        let f = Frame::Origin { origins: vec![] };
        assert_eq!(roundtrip(f.clone()), f);
    }

    #[test]
    fn unknown_frame_passthrough() {
        let f = Frame::Unknown {
            kind: 0xfb,
            flags: 0x55,
            stream: StreamId(11),
            payload: Bytes::from_static(b"\x01\x02"),
        };
        assert_eq!(roundtrip(f.clone()), f);
        assert_eq!(f.frame_type(), FrameType::Unknown(0xfb));
    }

    #[test]
    fn partial_input_returns_none() {
        let f = Frame::Ping {
            ack: false,
            payload: [0; 8],
        };
        let bytes = f.to_bytes();
        let dec = FrameDecoder::default();
        for cut in 0..bytes.len() {
            let mut buf = BytesMut::from(&bytes[..cut]);
            assert_eq!(dec.decode(&mut buf).unwrap(), None, "cut={cut}");
        }
    }

    #[test]
    fn two_frames_in_one_buffer() {
        let mut buf = BytesMut::new();
        Frame::Ping {
            ack: false,
            payload: [1; 8],
        }
        .encode(&mut buf);
        Frame::Ping {
            ack: true,
            payload: [2; 8],
        }
        .encode(&mut buf);
        let dec = FrameDecoder::default();
        let f1 = dec.decode(&mut buf).unwrap().unwrap();
        let f2 = dec.decode(&mut buf).unwrap().unwrap();
        assert!(matches!(f1, Frame::Ping { ack: false, .. }));
        assert!(matches!(f2, Frame::Ping { ack: true, .. }));
        assert_eq!(dec.decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 20_000,
            kind: 0,
            flags: 0,
            stream_id: StreamId(1),
        }
        .encode(&mut buf);
        let dec = FrameDecoder::default();
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn bad_lengths_rejected() {
        let dec = FrameDecoder::default();
        // PING with 7-byte payload
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 7,
            kind: 0x06,
            flags: 0,
            stream_id: StreamId(0),
        }
        .encode(&mut buf);
        buf.extend_from_slice(&[0; 7]);
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::BadLength { kind: "PING", .. })
        ));
        // SETTINGS with length 5
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 5,
            kind: 0x04,
            flags: 0,
            stream_id: StreamId(0),
        }
        .encode(&mut buf);
        buf.extend_from_slice(&[0; 5]);
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::BadLength {
                kind: "SETTINGS",
                ..
            })
        ));
    }

    #[test]
    fn data_on_stream_zero_rejected() {
        let dec = FrameDecoder::default();
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 1,
            kind: 0x00,
            flags: 0,
            stream_id: StreamId(0),
        }
        .encode(&mut buf);
        buf.put_u8(0xaa);
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::BadStreamId { kind: "DATA", .. })
        ));
    }

    #[test]
    fn origin_on_nonzero_stream_rejected() {
        let dec = FrameDecoder::default();
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 0,
            kind: 0x0c,
            flags: 0,
            stream_id: StreamId(3),
        }
        .encode(&mut buf);
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::BadStreamId { kind: "ORIGIN", .. })
        ));
    }

    #[test]
    fn origin_truncated_entry_rejected() {
        let dec = FrameDecoder::default();
        let mut buf = BytesMut::new();
        // Entry claims 10 bytes but only 3 are present.
        FrameHeader {
            length: 5,
            kind: 0x0c,
            flags: 0,
            stream_id: StreamId(0),
        }
        .encode(&mut buf);
        buf.put_u16(10);
        buf.extend_from_slice(b"abc");
        assert!(matches!(
            dec.decode(&mut buf),
            Err(FrameError::BadLength { kind: "ORIGIN", .. })
        ));
    }

    #[test]
    fn padded_data_stripped() {
        // Hand-build a padded DATA frame: padlen=3, body "hi", 3 pad octets.
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 6,
            kind: 0x00,
            flags: FLAG_PADDED | FLAG_END_STREAM,
            stream_id: StreamId(1),
        }
        .encode(&mut buf);
        buf.put_u8(3);
        buf.extend_from_slice(b"hi");
        buf.extend_from_slice(&[0; 3]);
        let dec = FrameDecoder::default();
        let f = dec.decode(&mut buf).unwrap().unwrap();
        assert_eq!(
            f,
            Frame::Data {
                stream: StreamId(1),
                data: Bytes::from_static(b"hi"),
                end_stream: true
            }
        );
    }

    #[test]
    fn pad_exceeding_payload_rejected() {
        let mut buf = BytesMut::new();
        FrameHeader {
            length: 2,
            kind: 0x00,
            flags: FLAG_PADDED,
            stream_id: StreamId(1),
        }
        .encode(&mut buf);
        buf.put_u8(200); // pad length 200 > remaining 1
        buf.put_u8(0);
        let dec = FrameDecoder::default();
        assert_eq!(dec.decode(&mut buf), Err(FrameError::BadPadding));
    }

    #[test]
    fn reserved_stream_bit_masked() {
        let h = FrameHeader::parse(&[0, 0, 0, 0x06, 0, 0xff, 0xff, 0xff, 0xff]);
        assert_eq!(h.stream_id, StreamId(0x7fff_ffff));
    }

    #[test]
    fn frame_type_codes() {
        assert_eq!(FrameType::Origin.to_u8(), 0x0c);
        assert_eq!(FrameType::AltSvc.to_u8(), 0x0a);
        assert_eq!(FrameType::from_u8(0x0b), FrameType::Unknown(0x0b));
        for v in 0..=0x0c_u8 {
            if v == 0x0b {
                continue;
            }
            assert_eq!(FrameType::from_u8(v).to_u8(), v);
        }
    }
}
