//! RFC 8336 ORIGIN frame semantics.
//!
//! The ORIGIN frame lets a server name the set of origins the current
//! connection is authoritative for, so clients can coalesce requests
//! for those origins without per-hostname DNS queries or new TLS
//! connections. This module implements both sides:
//!
//! - **Server**: an [`OriginSet`] is configured from the deployment's
//!   coalescing policy (in the paper: the third-party domain added to
//!   the certificate) and serialized into a stream-0 ORIGIN frame
//!   right after SETTINGS.
//! - **Client**: [`ClientOriginState`] tracks the connection's origin
//!   set per RFC 8336 §2.3 — implicitly the connected origin until an
//!   ORIGIN frame arrives, then exactly the most recent frame's
//!   contents. The client must still check the server certificate
//!   covers the coalesced name; that check lives in `origin-tls` and
//!   is consulted by the browser model.

use crate::frame::Frame;
use std::fmt;

/// A parsed ASCII origin: scheme, host, and effective port.
///
/// RFC 8336 carries origins as ASCII serializations
/// (`https://example.com[:port]`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OriginEntry {
    /// URI scheme; coalescing only ever applies to `https`.
    pub scheme: String,
    /// Lowercase hostname.
    pub host: String,
    /// Effective port (scheme default applied).
    pub port: u16,
}

impl OriginEntry {
    /// An `https` origin on the default port.
    pub fn https(host: &str) -> Self {
        OriginEntry {
            scheme: "https".to_string(),
            host: host.to_ascii_lowercase(),
            port: 443,
        }
    }

    /// Parse an ASCII origin serialization.
    ///
    /// Returns `None` for non-ASCII input, a missing scheme separator,
    /// an empty host, or an unparsable port — RFC 8336 §2.1 says
    /// unparsable entries must be ignored, so the caller skips `None`s
    /// rather than erroring the connection.
    pub fn parse(s: &str) -> Option<OriginEntry> {
        if !s.is_ascii() {
            return None;
        }
        let (scheme, rest) = s.split_once("://")?;
        if scheme.is_empty() || rest.is_empty() {
            return None;
        }
        let scheme = scheme.to_ascii_lowercase();
        let default_port = match scheme.as_str() {
            "https" => 443,
            "http" => 80,
            _ => 0,
        };
        let (host, port) = match rest.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()) => {
                (h, p.parse().ok()?)
            }
            _ => (rest, default_port),
        };
        if host.is_empty() || host.contains('/') {
            return None;
        }
        Some(OriginEntry {
            scheme,
            host: host.to_ascii_lowercase(),
            port,
        })
    }

    /// ASCII serialization, omitting the scheme-default port.
    pub fn ascii(&self) -> String {
        let default = match self.scheme.as_str() {
            "https" => 443,
            "http" => 80,
            _ => 0,
        };
        if self.port == default {
            format!("{}://{}", self.scheme, self.host)
        } else {
            format!("{}://{}:{}", self.scheme, self.host, self.port)
        }
    }
}

impl fmt::Display for OriginEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ascii())
    }
}

/// A set of origins a connection is authoritative for.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OriginSet {
    entries: Vec<OriginEntry>,
}

impl OriginSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from entries (deduplicated, order-preserving — wire order
    /// matters for reproducibility).
    pub fn from_entries<I: IntoIterator<Item = OriginEntry>>(entries: I) -> Self {
        let mut set = OriginSet::new();
        for e in entries {
            set.add(e);
        }
        set
    }

    /// Build an `https` origin set from hostnames.
    pub fn from_hosts<'a, I: IntoIterator<Item = &'a str>>(hosts: I) -> Self {
        Self::from_entries(hosts.into_iter().map(OriginEntry::https))
    }

    /// Add one entry (ignored if already present).
    pub fn add(&mut self, entry: OriginEntry) {
        if !self.entries.contains(&entry) {
            self.entries.push(entry);
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in wire order.
    pub fn entries(&self) -> &[OriginEntry] {
        &self.entries
    }

    /// Membership check: scheme, host and effective port must all
    /// match (RFC 6454 origin comparison).
    pub fn allows(&self, origin: &OriginEntry) -> bool {
        self.entries.contains(origin)
    }

    /// Convenience membership check for an https host on 443.
    pub fn allows_https_host(&self, host: &str) -> bool {
        self.allows(&OriginEntry::https(host))
    }

    /// Serialize into an ORIGIN frame (stream 0).
    pub fn to_frame(&self) -> Frame {
        Frame::Origin {
            origins: self.entries.iter().map(|e| e.ascii()).collect(),
        }
    }

    /// Parse a received ORIGIN frame's entries, silently skipping
    /// unparsable ones per RFC 8336 §2.1.
    pub fn from_frame_entries(origins: &[String]) -> Self {
        Self::from_entries(origins.iter().filter_map(|s| OriginEntry::parse(s)))
    }
}

/// Client-side origin tracking for one connection (RFC 8336 §2.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOriginState {
    /// No ORIGIN frame received: the origin set is implicitly the
    /// connected origin, and coalescing falls back to RFC 7540 §9.1.1
    /// certificate/IP rules.
    Implicit {
        /// The origin the connection was opened to.
        connected: OriginEntry,
    },
    /// An ORIGIN frame has been received: the set is exactly the most
    /// recent frame's contents.
    Explicit {
        /// The advertised origin set.
        set: OriginSet,
    },
}

impl ClientOriginState {
    /// Initial state for a connection to `host`.
    pub fn connect_https(host: &str) -> Self {
        ClientOriginState::Implicit {
            connected: OriginEntry::https(host),
        }
    }

    /// Handle a received ORIGIN frame: the origin set is replaced
    /// wholesale (not merged) by the frame contents.
    pub fn on_origin_frame(&mut self, origins: &[String]) {
        *self = ClientOriginState::Explicit {
            set: OriginSet::from_frame_entries(origins),
        };
    }

    /// Has an explicit origin set been received?
    pub fn is_explicit(&self) -> bool {
        matches!(self, ClientOriginState::Explicit { .. })
    }

    /// May this connection be used for `origin` *on the basis of the
    /// ORIGIN mechanism alone*? Certificate coverage must additionally
    /// be verified by the caller.
    ///
    /// - Implicit state: only the connected origin qualifies (other
    ///   coalescing paths — IP matching — are outside RFC 8336).
    /// - Explicit state: exactly the advertised set qualifies.
    pub fn allows(&self, origin: &OriginEntry) -> bool {
        match self {
            ClientOriginState::Implicit { connected } => connected == origin,
            ClientOriginState::Explicit { set } => set.allows(origin),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let o = OriginEntry::parse("https://Example.COM").unwrap();
        assert_eq!(o.scheme, "https");
        assert_eq!(o.host, "example.com");
        assert_eq!(o.port, 443);
        assert_eq!(o.ascii(), "https://example.com");
    }

    #[test]
    fn parse_explicit_port() {
        let o = OriginEntry::parse("https://example.com:8443").unwrap();
        assert_eq!(o.port, 8443);
        assert_eq!(o.ascii(), "https://example.com:8443");
        // Default port collapses in serialization.
        assert_eq!(
            OriginEntry::parse("https://example.com:443")
                .unwrap()
                .ascii(),
            "https://example.com"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(OriginEntry::parse("example.com"), None);
        assert_eq!(OriginEntry::parse("https://"), None);
        assert_eq!(OriginEntry::parse("://host"), None);
        assert_eq!(OriginEntry::parse("https://host/path"), None);
        assert_eq!(OriginEntry::parse("https://h\u{00e9}.com"), None);
    }

    #[test]
    fn parse_http_default_port() {
        assert_eq!(OriginEntry::parse("http://example.com").unwrap().port, 80);
    }

    #[test]
    fn set_membership_requires_exact_triple() {
        let set = OriginSet::from_hosts(["a.com", "b.com"]);
        assert!(set.allows(&OriginEntry::https("a.com")));
        assert!(set.allows_https_host("b.com"));
        assert!(!set.allows_https_host("c.com"));
        // Different port → different origin.
        assert!(!set.allows(&OriginEntry::parse("https://a.com:8443").unwrap()));
        // Different scheme → different origin.
        assert!(!set.allows(&OriginEntry::parse("http://a.com").unwrap()));
    }

    #[test]
    fn set_dedupes() {
        let set = OriginSet::from_hosts(["a.com", "a.com"]);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn frame_roundtrip() {
        let set = OriginSet::from_hosts(["example.com", "static.example.com"]);
        let frame = set.to_frame();
        let Frame::Origin { origins } = &frame else {
            panic!("not an ORIGIN frame")
        };
        let back = OriginSet::from_frame_entries(origins);
        assert_eq!(back, set);
    }

    #[test]
    fn unparsable_entries_skipped() {
        let set = OriginSet::from_frame_entries(&[
            "https://good.com".to_string(),
            "not an origin".to_string(),
            "https://also-good.com".to_string(),
        ]);
        assert_eq!(set.len(), 2);
        assert!(set.allows_https_host("good.com"));
        assert!(set.allows_https_host("also-good.com"));
    }

    #[test]
    fn client_state_implicit_allows_only_connected() {
        let st = ClientOriginState::connect_https("www.example.com");
        assert!(!st.is_explicit());
        assert!(st.allows(&OriginEntry::https("www.example.com")));
        assert!(!st.allows(&OriginEntry::https("static.example.com")));
    }

    #[test]
    fn origin_frame_replaces_set() {
        let mut st = ClientOriginState::connect_https("www.example.com");
        st.on_origin_frame(&[
            "https://www.example.com".to_string(),
            "https://static.example.com".to_string(),
        ]);
        assert!(st.is_explicit());
        assert!(st.allows(&OriginEntry::https("static.example.com")));
        // A second frame replaces wholesale — the first set is gone.
        st.on_origin_frame(&["https://only.example.com".to_string()]);
        assert!(!st.allows(&OriginEntry::https("static.example.com")));
        assert!(!st.allows(&OriginEntry::https("www.example.com")));
        assert!(st.allows(&OriginEntry::https("only.example.com")));
    }

    #[test]
    fn empty_origin_frame_empties_set() {
        let mut st = ClientOriginState::connect_https("www.example.com");
        st.on_origin_frame(&[]);
        assert!(st.is_explicit());
        // Even the connected origin is no longer advertised; the
        // client falls back to not coalescing anything new.
        assert!(!st.allows(&OriginEntry::https("www.example.com")));
    }
}
