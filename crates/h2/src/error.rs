//! HTTP/2 error codes and library error types.

use crate::stream::StreamId;
use std::fmt;

/// RFC 7540 §7 error codes, as carried in RST_STREAM and GOAWAY.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // names are the spec's own vocabulary
pub enum ErrorCode {
    NoError,
    ProtocolError,
    InternalError,
    FlowControlError,
    SettingsTimeout,
    StreamClosed,
    FrameSizeError,
    RefusedStream,
    Cancel,
    CompressionError,
    ConnectError,
    EnhanceYourCalm,
    InadequateSecurity,
    Http11Required,
    /// A code outside the registered range (forward compatibility:
    /// unknown codes must be treated as `InternalError`-equivalent but
    /// preserved on the wire).
    Unknown(u32),
}

impl ErrorCode {
    /// Wire value.
    pub fn to_u32(self) -> u32 {
        match self {
            ErrorCode::NoError => 0x0,
            ErrorCode::ProtocolError => 0x1,
            ErrorCode::InternalError => 0x2,
            ErrorCode::FlowControlError => 0x3,
            ErrorCode::SettingsTimeout => 0x4,
            ErrorCode::StreamClosed => 0x5,
            ErrorCode::FrameSizeError => 0x6,
            ErrorCode::RefusedStream => 0x7,
            ErrorCode::Cancel => 0x8,
            ErrorCode::CompressionError => 0x9,
            ErrorCode::ConnectError => 0xa,
            ErrorCode::EnhanceYourCalm => 0xb,
            ErrorCode::InadequateSecurity => 0xc,
            ErrorCode::Http11Required => 0xd,
            ErrorCode::Unknown(v) => v,
        }
    }

    /// Parse a wire value.
    pub fn from_u32(v: u32) -> Self {
        match v {
            0x0 => ErrorCode::NoError,
            0x1 => ErrorCode::ProtocolError,
            0x2 => ErrorCode::InternalError,
            0x3 => ErrorCode::FlowControlError,
            0x4 => ErrorCode::SettingsTimeout,
            0x5 => ErrorCode::StreamClosed,
            0x6 => ErrorCode::FrameSizeError,
            0x7 => ErrorCode::RefusedStream,
            0x8 => ErrorCode::Cancel,
            0x9 => ErrorCode::CompressionError,
            0xa => ErrorCode::ConnectError,
            0xb => ErrorCode::EnhanceYourCalm,
            0xc => ErrorCode::InadequateSecurity,
            0xd => ErrorCode::Http11Required,
            other => ErrorCode::Unknown(other),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors raised while encoding or decoding frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Frame length field exceeds the negotiated SETTINGS_MAX_FRAME_SIZE.
    TooLarge {
        /// Advertised payload length.
        len: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Payload length is invalid for the frame type (e.g. PING ≠ 8,
    /// RST_STREAM ≠ 4, SETTINGS not a multiple of 6).
    BadLength {
        /// The frame type.
        kind: &'static str,
        /// Observed payload length.
        len: usize,
    },
    /// A frame that requires a stream id arrived on stream 0, or vice
    /// versa.
    BadStreamId {
        /// The frame type.
        kind: &'static str,
        /// The stream id observed.
        id: u32,
    },
    /// Padding length exceeds payload size.
    BadPadding,
    /// A string field (e.g. ORIGIN entry) is not valid ASCII.
    BadString,
    /// HPACK decoding failed.
    Hpack(HpackError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds max {max}")
            }
            FrameError::BadLength { kind, len } => {
                write!(f, "invalid payload length {len} for {kind}")
            }
            FrameError::BadStreamId { kind, id } => {
                write!(f, "invalid stream id {id} for {kind}")
            }
            FrameError::BadPadding => write!(f, "padding exceeds payload"),
            FrameError::BadString => write!(f, "non-ASCII string field"),
            FrameError::Hpack(e) => write!(f, "hpack: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Errors raised by the HPACK codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HpackError {
    /// Input ended mid-field.
    Truncated,
    /// An integer exceeded the implementation limit (2^32).
    IntegerOverflow,
    /// An index pointed outside the static+dynamic table.
    BadIndex(usize),
    /// Huffman decoding hit an invalid sequence (including the
    /// spec-prohibited EOS symbol).
    BadHuffman,
    /// A dynamic table size update exceeded the protocol maximum.
    TableSizeUpdateTooLarge,
}

impl fmt::Display for HpackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HpackError::Truncated => write!(f, "truncated header block"),
            HpackError::IntegerOverflow => write!(f, "integer overflow"),
            HpackError::BadIndex(i) => write!(f, "index {i} out of table range"),
            HpackError::BadHuffman => write!(f, "invalid huffman sequence"),
            HpackError::TableSizeUpdateTooLarge => write!(f, "table size update too large"),
        }
    }
}

impl std::error::Error for HpackError {}

impl From<HpackError> for FrameError {
    fn from(e: HpackError) -> Self {
        FrameError::Hpack(e)
    }
}

/// Connection-level errors surfaced by [`crate::Connection`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H2Error {
    /// A malformed frame.
    Frame(FrameError),
    /// A protocol violation that must kill the connection.
    Connection(ErrorCode, &'static str),
    /// A violation scoped to one stream.
    Stream(StreamId, ErrorCode, &'static str),
    /// Peer closed the connection with GOAWAY.
    GoAway(ErrorCode),
    /// The client preface was malformed (server side only).
    BadPreface,
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::Frame(e) => write!(f, "frame error: {e}"),
            H2Error::Connection(code, msg) => write!(f, "connection error {code}: {msg}"),
            H2Error::Stream(id, code, msg) => write!(f, "stream {id} error {code}: {msg}"),
            H2Error::GoAway(code) => write!(f, "peer sent GOAWAY ({code})"),
            H2Error::BadPreface => write!(f, "malformed client preface"),
        }
    }
}

impl std::error::Error for H2Error {}

/// The client-side recovery action an error calls for — the
/// vocabulary `origin-browser`'s fault handling acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Tear the connection down and replay unanswered requests on a
    /// fresh one. Framing and compression faults poison shared
    /// connection state (RFC 7540 §4.3, §5.4.1), and a GOAWAY
    /// guarantees streams above `last_stream` were never processed
    /// (§6.8) — both make the replay safe.
    RetryOnNewConnection,
    /// Retry the stream, same connection: REFUSED_STREAM is the
    /// peer's explicit no-processing-happened guarantee (§8.1.4).
    RetryStream,
    /// Do not retry automatically — the request may have been acted
    /// on, and replaying a non-idempotent request is worse than
    /// failing it.
    Abandon,
}

impl H2Error {
    /// True when the connection itself is poisoned and must be torn
    /// down; stream-scoped violations leave it usable.
    pub fn is_connection_fatal(&self) -> bool {
        !matches!(self, H2Error::Stream(..))
    }

    /// Classify the error into the recovery the client should take.
    pub fn recovery(&self) -> Recovery {
        match self {
            H2Error::Frame(_) | H2Error::Connection(..) | H2Error::GoAway(_) => {
                Recovery::RetryOnNewConnection
            }
            // A broken preface means the peer isn't speaking HTTP/2 at
            // all; a fresh connection would hit the same wall.
            H2Error::BadPreface => Recovery::Abandon,
            H2Error::Stream(_, code, _) => match code {
                ErrorCode::RefusedStream => Recovery::RetryStream,
                _ => Recovery::Abandon,
            },
        }
    }
}

impl From<FrameError> for H2Error {
    fn from(e: FrameError) -> Self {
        H2Error::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_code_roundtrip() {
        for v in 0..=0xd_u32 {
            let c = ErrorCode::from_u32(v);
            assert_eq!(c.to_u32(), v);
            assert!(!matches!(c, ErrorCode::Unknown(_)));
        }
    }

    #[test]
    fn unknown_codes_preserved() {
        let c = ErrorCode::from_u32(0xdead);
        assert_eq!(c, ErrorCode::Unknown(0xdead));
        assert_eq!(c.to_u32(), 0xdead);
    }

    #[test]
    fn displays_are_informative() {
        let e = FrameError::BadLength {
            kind: "PING",
            len: 7,
        };
        assert!(e.to_string().contains("PING"));
        let e: H2Error = e.into();
        assert!(e.to_string().contains("frame error"));
        assert!(HpackError::BadIndex(99).to_string().contains("99"));
    }
}
