//! Error-path behaviour of the connection layer: GOAWAY landing
//! mid-stream, middlebox-style teardown of a half-delivered response,
//! and frame parsing over corrupted bytes. Each surfaced error must
//! classify into the client recovery the loader implements
//! ([`Recovery`]).

use bytes::{Bytes, BytesMut};
use origin_h2::conn::{request_headers, ServerConfig};
use origin_h2::{
    Connection, ErrorCode, Event, Frame, H2Error, Recovery, Settings, StreamId, StreamState,
};

fn server() -> Connection {
    Connection::server(ServerConfig {
        settings: Settings::default(),
        origin_set: None,
        authorized: vec!["a.example".into()],
    })
}

/// Shuttle bytes both ways until both sides go quiet; returns the
/// client's events.
fn pump(client: &mut Connection, server: &mut Connection) -> Vec<Event> {
    let mut events = Vec::new();
    loop {
        let c = client.take_outgoing();
        let s = server.take_outgoing();
        if c.is_empty() && s.is_empty() {
            break;
        }
        if !c.is_empty() {
            server.recv(&c).expect("server recv");
        }
        if !s.is_empty() {
            events.extend(client.recv(&s).expect("client recv"));
        }
    }
    events
}

#[test]
fn goaway_mid_stream_leaves_later_streams_replayable() {
    let mut client = Connection::client("a.example", Settings::default());
    let mut srv = server();
    pump(&mut client, &mut srv);

    // Three requests in flight; the server answers only the first and
    // then goes away, pinning last_stream to it.
    let s1 = client.send_request(&request_headers("GET", "a.example", "/1"), true);
    let s3 = client.send_request(&request_headers("GET", "a.example", "/2"), true);
    let s5 = client.send_request(&request_headers("GET", "a.example", "/3"), true);
    srv.recv(&client.take_outgoing()).unwrap();
    srv.send_response(s1, 200, b"only this one");
    let mut wire = BytesMut::from(&srv.take_outgoing()[..]);
    Frame::GoAway {
        last_stream: s1,
        code: ErrorCode::NoError,
        debug: Bytes::new(),
    }
    .encode(&mut wire);

    let events = client
        .recv(&wire)
        .expect("GOAWAY is an event, not an error");
    let goaway = events
        .iter()
        .find_map(|e| match e {
            Event::GoAway { code, last_stream } => Some((*code, *last_stream)),
            _ => None,
        })
        .expect("GOAWAY surfaced");
    assert_eq!(goaway, (ErrorCode::NoError, s1));
    assert!(client.is_closing());

    // Stream 1 completed; 3 and 5 are above last_stream — provably
    // unprocessed, so the loader may replay them on a new connection.
    assert_eq!(client.stream_state(s1), StreamState::Closed);
    for replayable in [s3, s5] {
        assert!(
            replayable > goaway.1,
            "stream {replayable:?} must be replayable"
        );
    }
    assert_eq!(
        H2Error::GoAway(ErrorCode::NoError).recovery(),
        Recovery::RetryOnNewConnection
    );
}

#[test]
fn teardown_mid_response_corrupts_into_a_fatal_error() {
    // A §6.7-style middlebox kills the TCP stream mid-response; what
    // the client actually observes is a response cut short and then
    // garbage (RST-induced junk / a new unrelated stream's bytes). The
    // decoder must fail closed with a connection-fatal error.
    let mut client = Connection::client("a.example", Settings::default());
    let mut srv = server();
    pump(&mut client, &mut srv);
    let s1 = client.send_request(&request_headers("GET", "a.example", "/big"), true);
    srv.recv(&client.take_outgoing()).unwrap();
    srv.send_response(s1, 200, &[0xAB; 4096]);
    let wire = srv.take_outgoing();

    // Cut the stream inside the last DATA frame and splice in junk:
    // enough 0xFF to fill out the in-flight payload (DATA content is
    // opaque, so that parses), then a frame header claiming a 16MB
    // payload — which must fail closed, poisoning the connection.
    let cut = wire.len() - 1024;
    let mut seen = BytesMut::from(&wire[..cut]);
    seen.extend_from_slice(&[0xFF; 1024 + 9]);
    let err = client.recv(&seen).expect_err("corrupt tail must error");
    assert!(err.is_connection_fatal());
    assert_eq!(err.recovery(), Recovery::RetryOnNewConnection);
    let _ = s1;
}

#[test]
fn corrupted_bytes_error_or_parse_but_never_panic() {
    // Flip one byte at every offset of a healthy server flight. Every
    // outcome must be an Ok parse or a classified H2Error — no panics,
    // and every error must map onto a recovery action.
    let mut client = Connection::client("a.example", Settings::default());
    let mut srv = server();
    pump(&mut client, &mut srv);
    let s1 = client.send_request(&request_headers("GET", "a.example", "/x"), true);
    srv.recv(&client.take_outgoing()).unwrap();
    srv.send_response(s1, 200, b"hello world body bytes");
    let wire = srv.take_outgoing();
    assert!(wire.len() > 30);

    let mut errors = 0usize;
    for i in 0..wire.len() {
        let mut corrupted = wire.to_vec();
        corrupted[i] ^= 0xFF;
        // A fresh client per trial: the preface/SETTINGS state must
        // match what produced the flight.
        let mut c = Connection::client("a.example", Settings::default());
        let mut s = server();
        pump(&mut c, &mut s);
        c.send_request(&request_headers("GET", "a.example", "/x"), true);
        match c.recv(&corrupted) {
            Ok(_) => {}
            Err(e) => {
                errors += 1;
                // Classification is total: every surfaced error names
                // its recovery, and connection-fatal errors never ask
                // for a same-connection retry.
                let r = e.recovery();
                if e.is_connection_fatal() {
                    assert_ne!(r, Recovery::RetryStream, "{e}");
                }
            }
        }
    }
    assert!(
        errors > 0,
        "bit flips over {} bytes never errored",
        wire.len()
    );
}

#[test]
fn recovery_classification_matches_the_rfc() {
    use origin_h2::FrameError;
    // Stream-scoped REFUSED_STREAM is the one same-connection retry.
    let refused = H2Error::Stream(StreamId(3), ErrorCode::RefusedStream, "refused");
    assert!(!refused.is_connection_fatal());
    assert_eq!(refused.recovery(), Recovery::RetryStream);
    // Any other stream code may have been processed: don't replay.
    let cancel = H2Error::Stream(StreamId(3), ErrorCode::Cancel, "cancel");
    assert_eq!(cancel.recovery(), Recovery::Abandon);
    // Connection-level faults replay on a fresh connection.
    for fatal in [
        H2Error::Frame(FrameError::BadPadding),
        H2Error::Connection(ErrorCode::CompressionError, "hpack"),
        H2Error::GoAway(ErrorCode::EnhanceYourCalm),
    ] {
        assert!(fatal.is_connection_fatal(), "{fatal}");
        assert_eq!(fatal.recovery(), Recovery::RetryOnNewConnection, "{fatal}");
    }
    // A peer that can't even speak the preface isn't worth retrying.
    assert_eq!(H2Error::BadPreface.recovery(), Recovery::Abandon);
}
