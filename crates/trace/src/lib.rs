//! Deterministic span tracing for the request path.
//!
//! Where `origin-metrics` answers *how much* work the pipeline did,
//! this crate answers *why a specific request did what it did*: every
//! DNS lookup, TLS handshake, HTTP/2 frame, and coalescing decision
//! becomes a structured event on a timeline of **simulated** time.
//!
//! The design mirrors the metrics registry's sharding discipline:
//!
//! * **No wall clock.** Every timestamp is simulated microseconds, a
//!   property of the workload rather than the machine.
//! * **No global counters.** Span and flow IDs derive purely from
//!   `(visit pid, per-visit sequence)` — see [`Tracer::next_id`] — so
//!   two runs, or two differently-sharded runs, mint identical IDs.
//! * **Rank-ordered merge.** Workers buffer events into private
//!   [`Tracer`]s; the driver merges shards back in rank order with
//!   [`Tracer::merge`], reproducing the sequential event order exactly.
//!   The exported JSON is therefore byte-identical for any `--threads`.
//! * **Deterministic sampling.** Whole-run traces keep 1-in-N *sites*
//!   chosen by a hash of the site's rank ([`Sampler`]), never by RNG
//!   draw order, so the sampled set is stable across thread counts.
//!
//! The only exporter living here is the Chrome trace-event JSON
//! (Perfetto-loadable) writer; HAR 1.2 and ASCII waterfalls reuse the
//! `origin-web` timeline types and live next to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod perfetto;
mod sample;
mod tracer;

pub use event::{ArgValue, EventKind, TraceEvent};
pub use perfetto::to_chrome_json;
pub use sample::Sampler;
pub use tracer::{span_ref, Tracer};
