//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The writer is hand-rolled for the same reason the metrics registry's
//! is: byte-identical output is an acceptance criterion, so formatting
//! must be fully specified here — integer timestamps, args in insertion
//! order, shortest round-trip floats — rather than delegated to a
//! serializer whose map ordering we don't control.

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::tracer::Tracer;

/// Escape a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(k);
        out.push_str("\":");
        match v {
            ArgValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::F64(f) => out.push_str(&format!("{f:?}")),
            ArgValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
}

fn write_event(out: &mut String, e: &TraceEvent) {
    // Metadata events invert the spec's layout: the event name is the
    // metadata key (process_name / thread_name) and the label goes
    // under args.name.
    if let EventKind::ProcessName | EventKind::ThreadName = e.kind {
        let key = match e.kind {
            EventKind::ProcessName => "process_name",
            _ => "thread_name",
        };
        out.push_str("{\"name\":\"");
        out.push_str(key);
        out.push_str("\",\"cat\":\"");
        out.push_str(e.cat);
        out.push_str("\",\"ph\":\"M\",\"ts\":0,\"pid\":");
        out.push_str(&e.pid.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"args\":{\"name\":\"");
        out.push_str(&escape(&e.name));
        out.push_str("\"}}");
        return;
    }
    out.push_str("{\"name\":\"");
    out.push_str(&escape(&e.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(e.cat);
    out.push_str("\",\"ph\":\"");
    match &e.kind {
        EventKind::Complete { .. } => out.push('X'),
        EventKind::Instant => out.push('i'),
        EventKind::FlowStart { .. } => out.push('s'),
        EventKind::FlowEnd { .. } => out.push('f'),
        EventKind::ProcessName | EventKind::ThreadName => unreachable!(),
    }
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&e.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    match &e.kind {
        EventKind::Complete { dur_us } => {
            out.push_str(",\"dur\":");
            out.push_str(&dur_us.to_string());
            out.push_str(",\"args\":");
            write_args(out, &e.args);
        }
        EventKind::Instant => {
            out.push_str(",\"s\":\"t\",\"args\":");
            write_args(out, &e.args);
        }
        EventKind::FlowStart { id } => {
            out.push_str(",\"id\":");
            out.push_str(&id.to_string());
        }
        EventKind::FlowEnd { id } => {
            out.push_str(",\"id\":");
            out.push_str(&id.to_string());
            out.push_str(",\"bp\":\"e\"");
        }
        EventKind::ProcessName | EventKind::ThreadName => unreachable!(),
    }
    out.push('}');
}

/// Serialize a tracer's buffer as a Chrome trace-event JSON document
/// (`{"displayTimeUnit":"ms","traceEvents":[...]}`), loadable in
/// Perfetto / `chrome://tracing`. Output is a pure function of the
/// event buffer: same events, same bytes.
pub fn to_chrome_json(tracer: &Tracer) -> String {
    let mut out = String::with_capacity(64 + tracer.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in tracer.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        write_event(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_all_phases() {
        let mut t = Tracer::new();
        t.begin_visit(42, "site-42 example.com");
        t.complete(
            "req 0",
            "request",
            100,
            250,
            vec![("host", "a.example".into())],
        );
        t.instant_at(
            "dns.cache_hit",
            "dns",
            105,
            vec![("name", "a.example".into())],
        );
        let id = t.next_id();
        t.flow_start(id, "coalesce", "flow", 10, 1);
        t.flow_end(id, "coalesce", "flow", 100);
        let json = to_chrome_json(&t);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"cat\":\"meta\",\"ph\":\"M\",\"ts\":0,\"pid\":42,\
             \"tid\":0,\"args\":{\"name\":\"site-42 example.com\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"cat\":\"meta\",\"ph\":\"M\",\"ts\":0,\"pid\":42,\
             \"tid\":0,\"args\":{\"name\":\"loader\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"req 0\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":100,\"pid\":42,\
             \"tid\":0,\"dur\":250,\"args\":{\"host\":\"a.example\"}}"
        ));
        assert!(json.contains("\"ph\":\"i\",\"ts\":105,\"pid\":42,\"tid\":0,\"s\":\"t\""));
        let flow_id = 42u64 << 24;
        assert!(json.contains(&format!(
            "{{\"name\":\"coalesce\",\"cat\":\"flow\",\"ph\":\"s\",\"ts\":10,\"pid\":42,\
             \"tid\":1,\"id\":{flow_id}}}"
        )));
        assert!(json.contains(&format!(
            "{{\"name\":\"coalesce\",\"cat\":\"flow\",\"ph\":\"f\",\"ts\":100,\"pid\":42,\
             \"tid\":0,\"id\":{flow_id},\"bp\":\"e\"}}"
        )));
        assert!(json.ends_with("\n]}\n"));
    }

    #[test]
    fn output_is_reproducible() {
        let build = || {
            let mut t = Tracer::new();
            t.begin_visit(7, "x");
            t.complete("a", "request", 1, 2, vec![("f", ArgValue::F64(1.25))]);
            to_chrome_json(&t)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut t = Tracer::new();
        t.begin_visit(1, "q\"uote\nline");
        let json = to_chrome_json(&t);
        assert!(json.contains("q\\\"uote\\nline"));
    }
}
