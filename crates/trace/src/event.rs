//! The structured event a [`crate::Tracer`] buffers.

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string value.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with shortest round-trip formatting).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for ArgValue {
    fn from(s: &str) -> Self {
        ArgValue::Str(s.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(s: String) -> Self {
        ArgValue::Str(s)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

/// What kind of trace-event a [`TraceEvent`] is, mapping 1:1 onto the
/// Chrome trace-event phases the exporter writes.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span (`ph:"X"`) with a duration.
    Complete {
        /// Span length in simulated microseconds.
        dur_us: u64,
    },
    /// A thread-scoped instant event (`ph:"i"`, `s:"t"`).
    Instant,
    /// Flow start (`ph:"s"`): the producing end of an arrow.
    FlowStart {
        /// Deterministic flow ID; the matching [`EventKind::FlowEnd`]
        /// carries the same value.
        id: u64,
    },
    /// Flow end (`ph:"f"`, `bp:"e"`): the consuming end of an arrow.
    FlowEnd {
        /// Deterministic flow ID minted by the matching start.
        id: u64,
    },
    /// Process-name metadata (`ph:"M"`, name `process_name`).
    ProcessName,
    /// Thread-name metadata (`ph:"M"`, name `thread_name`).
    ThreadName,
}

/// One buffered event.
///
/// `pid` is the *logical* process — the site visit's Tranco rank, not
/// the OS thread that happened to crawl it (worker identity would leak
/// the sharding and break byte-identical output across `--threads`).
/// `tid` is the connection lane inside the visit: 0 is the browser
/// loader itself, `1 + pool index` is each pooled connection.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (for metadata kinds: the process/thread label).
    pub name: String,
    /// Category tag (`dns`, `tls`, `h2`, `request`, `phase`, …).
    pub cat: &'static str,
    /// Simulated timestamp in microseconds.
    pub ts_us: u64,
    /// Logical process (site rank / visit key).
    pub pid: u64,
    /// Logical thread (0 = loader, `1+i` = pooled connection `i`).
    pub tid: u64,
    /// Phase-specific payload.
    pub kind: EventKind,
    /// Key/value annotations, serialised in insertion order.
    pub args: Vec<(&'static str, ArgValue)>,
}
