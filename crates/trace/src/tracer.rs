//! The per-worker trace buffer.

use crate::event::{ArgValue, EventKind, TraceEvent};

/// The span-ID minting formula: pid (site rank) in the high bits, the
/// per-visit sequence in the low 24. Exposed as a pure function so
/// out-of-band consumers — sketch exemplars in `origin-obs` — can name
/// a span in a visit's namespace without holding the tracer.
pub const fn span_ref(pid: u64, seq: u64) -> u64 {
    (pid << 24) | (seq & 0xFF_FFFF)
}

/// A buffer of trace events with the same merge discipline as the
/// metrics registry: each crawl worker owns one, and the driver merges
/// shards back in rank order, reproducing sequential event order.
///
/// A tracer carries a *visit context* — the current logical process
/// ([`Tracer::begin_visit`]), logical thread ([`Tracer::set_tid`]) and
/// simulated-time cursor ([`Tracer::set_now_us`]) — so deep layers
/// (the DNS resolver, the h2 connection) can emit events without
/// knowing which site they are serving.
///
/// IDs are minted by [`Tracer::next_id`] from `(pid, per-visit
/// sequence)` alone. Because a visit is always traced start-to-finish
/// by one worker, the sequence — and therefore every ID — is a pure
/// function of the visit, independent of sharding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    pid: u64,
    tid: u64,
    now_us: u64,
    seq: u64,
}

impl Tracer {
    /// New empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a visit: set the logical process to `pid` (the site's
    /// rank, or a reserved band for non-crawl phases), reset the
    /// per-visit ID sequence and time cursor, and emit process
    /// metadata plus a `loader` label for thread 0.
    pub fn begin_visit(&mut self, pid: u64, label: &str) {
        self.pid = pid;
        self.tid = 0;
        self.now_us = 0;
        self.seq = 0;
        self.events.push(TraceEvent {
            name: label.to_string(),
            cat: "meta",
            ts_us: 0,
            pid,
            tid: 0,
            kind: EventKind::ProcessName,
            args: Vec::new(),
        });
        self.name_thread(0, "loader");
    }

    /// Label logical thread `tid` of the current visit (shown as the
    /// track name in Perfetto).
    pub fn name_thread(&mut self, tid: u64, name: &str) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: "meta",
            ts_us: 0,
            pid: self.pid,
            tid,
            kind: EventKind::ThreadName,
            args: Vec::new(),
        });
    }

    /// Switch the current logical thread (connection lane).
    pub fn set_tid(&mut self, tid: u64) {
        self.tid = tid;
    }

    /// Current logical thread.
    pub fn tid(&self) -> u64 {
        self.tid
    }

    /// Move the simulated-time cursor used by [`Tracer::instant`].
    pub fn set_now_us(&mut self, us: u64) {
        self.now_us = us;
    }

    /// Mint the next deterministic ID for this visit: the pid in the
    /// high bits, the per-visit sequence in the low 24. No wall clock,
    /// no global counter — byte-identical across runs and shardings.
    pub fn next_id(&mut self) -> u64 {
        let id = span_ref(self.pid, self.seq);
        self.seq += 1;
        id
    }

    /// The trace process the tracer is currently attributing spans to
    /// (the visit's site rank, set by [`Tracer::begin_visit`]).
    pub fn pid(&self) -> u64 {
        self.pid
    }

    /// Record a complete span.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &'static str,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            pid: self.pid,
            tid: self.tid,
            kind: EventKind::Complete { dur_us },
            args,
        });
    }

    /// Record an instant event at the current time cursor.
    pub fn instant(&mut self, name: &str, cat: &'static str, args: Vec<(&'static str, ArgValue)>) {
        self.instant_at(name, cat, self.now_us, args);
    }

    /// Record an instant event at an explicit timestamp.
    pub fn instant_at(
        &mut self,
        name: &str,
        cat: &'static str,
        ts_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            pid: self.pid,
            tid: self.tid,
            kind: EventKind::Instant,
            args,
        });
    }

    /// Record the producing end of a flow arrow on thread `tid` at
    /// `ts_us`; pair with [`Tracer::flow_end`] using the same `id`.
    pub fn flow_start(&mut self, id: u64, name: &str, cat: &'static str, ts_us: u64, tid: u64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            pid: self.pid,
            tid,
            kind: EventKind::FlowStart { id },
            args: Vec::new(),
        });
    }

    /// Record the consuming end of a flow arrow on the current thread.
    pub fn flow_end(&mut self, id: u64, name: &str, cat: &'static str, ts_us: u64) {
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat,
            ts_us,
            pid: self.pid,
            tid: self.tid,
            kind: EventKind::FlowEnd { id },
            args: Vec::new(),
        });
    }

    /// Append another tracer's events. Merging rank-ordered shards in
    /// rank order reproduces the sequential event stream exactly — the
    /// same spine `origin-metrics::Registry` and the crawl series ride.
    pub fn merge(&mut self, other: Tracer) {
        self.events.extend(other.events);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Count events whose name matches `name` exactly.
    pub fn count_named(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(pid: u64) -> Tracer {
        let mut t = Tracer::new();
        t.begin_visit(pid, "site");
        t.complete("req", "request", 10, 5, vec![("k", ArgValue::U64(1))]);
        t.instant_at("hit", "dns", 12, vec![]);
        let id = t.next_id();
        t.flow_start(id, "coalesce", "flow", 1, 1);
        t.flow_end(id, "coalesce", "flow", 10);
        t
    }

    #[test]
    fn ids_derive_from_pid_and_sequence_only() {
        let mut a = Tracer::new();
        a.begin_visit(7, "x");
        let mut b = Tracer::new();
        b.begin_visit(7, "x");
        // Interleave unrelated work on b; IDs still match a's.
        b.instant_at("noise", "dns", 1, vec![]);
        assert_eq!(a.next_id(), b.next_id());
        assert_eq!(a.next_id(), b.next_id());
        // A different visit mints from a different namespace.
        let mut c = Tracer::new();
        c.begin_visit(8, "y");
        assert_ne!(a.next_id(), c.next_id());
    }

    #[test]
    fn begin_visit_resets_sequence() {
        let mut t = Tracer::new();
        t.begin_visit(1, "a");
        let first = t.next_id();
        t.begin_visit(1, "a");
        assert_eq!(t.next_id(), first, "sequence restarts per visit");
    }

    #[test]
    fn merge_preserves_order() {
        let mut merged = visit(1);
        merged.merge(visit(2));
        let seq = visit(1);
        assert_eq!(&merged.events()[..seq.len()], seq.events());
        assert_eq!(merged.len(), 2 * seq.len());
        // Merging the same shards in the same order is reproducible.
        let mut again = visit(1);
        again.merge(visit(2));
        assert_eq!(merged, again);
    }

    #[test]
    fn count_named_counts_exact_matches() {
        let t = visit(3);
        assert_eq!(t.count_named("coalesce"), 2);
        assert_eq!(t.count_named("req"), 1);
        assert_eq!(t.count_named("missing"), 0);
    }
}
