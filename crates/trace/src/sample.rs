//! Deterministic 1-in-N site sampling for whole-run traces.

/// Selects sites for whole-run trace export by hashing the site's
/// Tranco rank — never an RNG draw, whose order would depend on the
/// thread schedule. The same `--sample 1/N` therefore keeps the same
/// site set at any `--threads` and across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    denom: u32,
}

/// 64-bit FNV-1a over a byte slice: tiny, dependency-free, and stable
/// across platforms, which is all a sampling hash needs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl Sampler {
    /// Keep roughly 1 in `denom` sites. `denom == 0` is treated as 1
    /// (keep everything).
    pub fn new(denom: u32) -> Self {
        Self {
            denom: denom.max(1),
        }
    }

    /// Parse the CLI form `1/N` (also accepts a bare `N`).
    pub fn parse(s: &str) -> Option<Self> {
        let denom = match s.split_once('/') {
            Some(("1", d)) => d.trim().parse().ok()?,
            Some(_) => return None,
            None => s.trim().parse().ok()?,
        };
        Some(Self::new(denom))
    }

    /// The sampling denominator.
    pub fn denom(&self) -> u32 {
        self.denom
    }

    /// Whether the site at Tranco `rank` is in the sample.
    pub fn keep(&self, rank: u32) -> bool {
        self.denom <= 1 || fnv1a(&rank.to_le_bytes()).is_multiple_of(u64::from(self.denom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denom_one_keeps_everything() {
        let s = Sampler::new(1);
        assert!((1..200).all(|r| s.keep(r)));
        assert_eq!(Sampler::new(0), Sampler::new(1));
    }

    #[test]
    fn selection_is_stable_and_roughly_one_in_n() {
        let s = Sampler::new(16);
        let kept: Vec<u32> = (1..=4000).filter(|&r| s.keep(r)).collect();
        // Stable: a second sampler with the same denominator agrees.
        let again: Vec<u32> = (1..=4000).filter(|&r| Sampler::new(16).keep(r)).collect();
        assert_eq!(kept, again);
        // Roughly 1/16 of 4000 = 250; FNV is not perfectly uniform but
        // should land well within a factor of two.
        assert!(
            (125..=500).contains(&kept.len()),
            "kept {} of 4000",
            kept.len()
        );
    }

    #[test]
    fn parse_accepts_fraction_and_bare_forms() {
        assert_eq!(Sampler::parse("1/16"), Some(Sampler::new(16)));
        assert_eq!(Sampler::parse("8"), Some(Sampler::new(8)));
        assert_eq!(Sampler::parse("2/3"), None);
        assert_eq!(Sampler::parse("1/x"), None);
    }
}
