//! Regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--sites N] [--seed S] [--threads N] [--json <path>]
//!       [--metrics <path>] [--only <id>...]
//! ```
//!
//! `--threads` shards the crawl and the §5 active measurements over
//! worker threads (default: available parallelism). Output is
//! bit-identical for any thread count.
//!
//! `--json` additionally writes the raw figure series (CDF samples
//! for Figures 3/4/9, the Figure 8 time series) to a JSON file for
//! external plotting.
//!
//! `--metrics` writes the merged metrics registry (work counters,
//! histograms, simulated phase totals) as JSON. Everything except the
//! `runtime_ms` section is deterministic — byte-identical across runs
//! and thread counts; strip the wall-clock section with
//! `jq 'del(.runtime_ms)'` before comparing.
//!
//! `--faults drop=0.01,h421=0.005,middlebox=0.1` runs the crawl under
//! deterministic fault injection (see `origin_netsim::FaultProfile`):
//! every table and figure then describes the degraded web, a clean
//! baseline crawl is run alongside, and a resilience report (PLT
//! inflation, coalescing degradation, `fault.*` recovery counters) is
//! printed to stderr — and written as JSON to the `--faults-report`
//! path when given. Still byte-identical for any `--threads`.
//!
//! `--legacy-share P` regenerates a deterministic fraction `P` of
//! sites as legacy HTTP/1.1 deployments (domain-sharded assets, no h2
//! in the server's ALPN advertisement). Legacy visits drive the
//! sans-IO `origin-h1` machine, never coalesce, and obey the 6-per-
//! host connection cap. `--redundancy-report <path>` writes the
//! Sander et al. redundant-connections analysis — per-policy counts
//! of h1 connections the h2 coalescing rules would have merged — as
//! deterministic JSON. At `--legacy-share 0` (the default) output is
//! byte-identical to a build without the flag.
//!
//! `--timeline <path>` streams the crawl through the `origin-obs`
//! tumbling-window aggregator and writes the time-series JSON
//! (per-window counters, rates, and quantile sketches with trace
//! exemplars; see DESIGN.md §15). `--window MS` overrides the window
//! width. `--flight-recorder <path>` arms the bounded flight recorder:
//! with `--fault-abort N`, the first (lowest-ranked) visit whose
//! injected-fault count reaches N has its events snapshotted to the
//! path and the run exits with status 3. All observability output is
//! byte-identical for any `--threads`, and a run without these flags
//! produces byte-identical output to a build without them.
//!
//! `repro watch --site-range A-B` renders the windows covering a rank
//! range as a deterministic ASCII dashboard (sparklines + per-window
//! rows) instead of the paper tables.
//!
//! ids: t1 t2 t3 t4 t5 t6 t7 t8 t9 f1 f2 f3 f4 f5 f6 f7a f7b f8 f9
//!      passive-ip passive-origin incident ct privacy scheduling
//!
//! With no `--only`, everything is produced in paper order.

use origin_bench::{
    asn_label, run_crawl_h3, run_crawl_observed, run_crawl_traced, trace_site, CrawlResults,
    H3Report, ObsConfig, RedundancyReport, ResilienceReport,
};
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_cdn::{
    ActiveMeasurement, DeploymentMode, LongitudinalRun, MiddleboxIncident, PassivePipeline,
    SampleGroup, Treatment,
};
use origin_core::model::{predict, CoalescingGrouping};
use origin_metrics::Registry;
use origin_netsim::{FaultProfile, SimDuration, SimRng};
use origin_stats::table::{pct_change, TextTable};
use origin_stats::Cdf;
use origin_tls::CtLogSet;
use origin_trace::{Sampler, Tracer};

struct Args {
    sites: u32,
    seed: u64,
    threads: usize,
    only: Vec<String>,
    json: Option<String>,
    metrics: Option<String>,
    trace: Option<String>,
    sample: Sampler,
    faults: Option<FaultProfile>,
    faults_report: Option<String>,
    legacy_share: f64,
    redundancy_report: Option<String>,
    h3_share: f64,
    h3_report: Option<String>,
    timeline: Option<String>,
    window_ms: Option<u64>,
    fault_abort: Option<u64>,
    flight_recorder: Option<String>,
    flight_capacity: Option<usize>,
}

const USAGE: &str = "usage: repro [--sites N] [--seed S] [--threads N] [--json path] [--metrics path] [--trace path [--sample 1/N]] [--faults spec [--faults-report path]] [--legacy-share P [--redundancy-report path]] [--h3-share P [--h3-report path]] [--timeline path [--window MS]] [--flight-recorder path [--fault-abort N] [--flight-capacity N]] [--only id...]
       repro trace --site RANK [--format perfetto|har|ascii] [--sites N] [--seed S] [--out path]
       repro watch --site-range A-B [--sites N] [--seed S] [--threads N] [--window MS] [--faults spec] [--legacy-share P] [--h3-share P] [--out path]
       repro serve --visits N [--sites N] [--seed S] [--serve-seed S] [--threads N] [--rate R] [--rollout P [--rollout-ramp-secs S]] [--pool-budget N] [--edge-cap N] [--idle-timeout-secs S] [--window MS] [--retain-windows N] [--metrics path] [--timeline path]
       fault spec: comma-separated key=rate, keys drop corrupt h421 middlebox (e.g. drop=0.01,h421=0.005,middlebox=0.1)";

/// Every id `--only` accepts.
const ALL_IDS: &[&str] = &[
    "t1",
    "t2",
    "t3",
    "t4",
    "t5",
    "t6",
    "t7",
    "t8",
    "t9",
    "f1",
    "f2",
    "f3",
    "f4",
    "f5",
    "f6",
    "f7a",
    "f7b",
    "f8",
    "f9",
    "passive-ip",
    "passive-origin",
    "incident",
    "ct",
    "privacy",
    "scheduling",
];

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

/// The required value of flag `flag`, parsed; malformed or missing
/// values are hard errors, never silent defaults.
fn parse_value<T: std::str::FromStr>(
    flag: &str,
    value: Option<String>,
    check: impl Fn(&T) -> bool,
) -> T {
    let raw = value.unwrap_or_else(|| die(&format!("{flag} requires a value")));
    match raw.parse::<T>() {
        Ok(v) if check(&v) => v,
        _ => die(&format!("invalid value {raw:?} for {flag}")),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        sites: 4_000,
        seed: 0x0516,
        threads: 0,
        only: Vec::new(),
        json: None,
        metrics: None,
        trace: None,
        sample: Sampler::new(16),
        faults: None,
        faults_report: None,
        legacy_share: 0.0,
        redundancy_report: None,
        h3_share: 0.0,
        h3_report: None,
        timeline: None,
        window_ms: None,
        fault_abort: None,
        flight_recorder: None,
        flight_capacity: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--sites" => args.sites = parse_value("--sites", it.next(), |&n: &u32| n > 0),
            "--seed" => args.seed = parse_value("--seed", it.next(), |_| true),
            "--threads" => args.threads = parse_value("--threads", it.next(), |&n: &usize| n > 0),
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| die("--json requires a path")))
            }
            "--metrics" => {
                args.metrics = Some(
                    it.next()
                        .unwrap_or_else(|| die("--metrics requires a path")),
                )
            }
            "--trace" => {
                args.trace = Some(it.next().unwrap_or_else(|| die("--trace requires a path")))
            }
            "--sample" => {
                let raw = it.next().unwrap_or_else(|| die("--sample requires 1/N"));
                args.sample = Sampler::parse(&raw)
                    .unwrap_or_else(|| die(&format!("invalid value {raw:?} for --sample")));
            }
            "--faults" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| die("--faults requires a profile spec"));
                args.faults = Some(
                    FaultProfile::parse(&raw)
                        .unwrap_or_else(|e| die(&format!("invalid --faults spec: {e}"))),
                );
            }
            "--faults-report" => {
                args.faults_report = Some(
                    it.next()
                        .unwrap_or_else(|| die("--faults-report requires a path")),
                )
            }
            "--legacy-share" => {
                args.legacy_share = parse_value("--legacy-share", it.next(), |&p: &f64| {
                    (0.0..=1.0).contains(&p)
                })
            }
            "--redundancy-report" => {
                args.redundancy_report = Some(
                    it.next()
                        .unwrap_or_else(|| die("--redundancy-report requires a path")),
                )
            }
            "--h3-share" => {
                args.h3_share =
                    parse_value("--h3-share", it.next(), |&p: &f64| (0.0..=1.0).contains(&p))
            }
            "--h3-report" => {
                args.h3_report = Some(
                    it.next()
                        .unwrap_or_else(|| die("--h3-report requires a path")),
                )
            }
            "--timeline" => {
                args.timeline = Some(
                    it.next()
                        .unwrap_or_else(|| die("--timeline requires a path")),
                )
            }
            "--window" => {
                args.window_ms = Some(parse_value("--window", it.next(), |&ms: &u64| ms > 0))
            }
            "--fault-abort" => {
                args.fault_abort = Some(parse_value("--fault-abort", it.next(), |&n: &u64| n > 0))
            }
            "--flight-recorder" => {
                args.flight_recorder = Some(
                    it.next()
                        .unwrap_or_else(|| die("--flight-recorder requires a path")),
                )
            }
            "--flight-capacity" => {
                args.flight_capacity =
                    Some(parse_value("--flight-capacity", it.next(), |&n: &usize| {
                        n > 0
                    }))
            }
            "--only" => {
                // Consume ids up to (but not including) the next flag.
                while let Some(tok) = it.peek() {
                    if tok.starts_with("--") {
                        break;
                    }
                    let id = tok.to_lowercase();
                    if !ALL_IDS.contains(&id.as_str()) {
                        die(&format!(
                            "unknown --only id {id:?} (known: {})",
                            ALL_IDS.join(" ")
                        ));
                    }
                    args.only.push(id);
                    it.next();
                }
                if args.only.is_empty() {
                    die("--only requires at least one id");
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    // Default to all available cores; results are identical either way.
    if args.threads == 0 {
        args.threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    if args.faults_report.is_some() && args.faults.is_none() {
        die("--faults-report requires --faults");
    }
    if args.window_ms.is_some() && args.timeline.is_none() {
        die("--window requires --timeline");
    }
    if args.fault_abort.is_some() && args.flight_recorder.is_none() {
        die("--fault-abort requires --flight-recorder");
    }
    if args.flight_capacity.is_some() && args.flight_recorder.is_none() {
        die("--flight-capacity requires --flight-recorder");
    }
    args
}

/// The streaming-observability configuration the flags describe, or
/// `None` when the run is unobserved (no obs state allocated at all).
fn obs_config(args: &Args) -> Option<ObsConfig> {
    if args.timeline.is_none() && args.flight_recorder.is_none() {
        return None;
    }
    Some(ObsConfig {
        window: args.window_ms.map(SimDuration::from_millis),
        fault_abort: args.fault_abort,
        // A worker panic dumps the dying visit's flight events to the
        // recorder path (normal completion overwrites it with the
        // trigger snapshot, if any).
        panic_dump: args.flight_recorder.as_ref().map(std::path::PathBuf::from),
        flight_capacity: args.flight_capacity,
    })
}

fn want(args: &Args, id: &str) -> bool {
    args.only.is_empty() || args.only.iter().any(|o| o == id)
}

/// Run `f` and add its wall-clock cost (ms) to `acc` — the
/// `runtime_ms` side of the metrics export, never compared for
/// determinism.
fn timed(acc: &mut f64, f: impl FnOnce()) {
    let t = std::time::Instant::now();
    f();
    *acc += t.elapsed().as_secs_f64() * 1_000.0;
}

fn main() {
    // `repro trace …` is a separate mode: one site, one exporter.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("trace") {
        cmd_trace(&argv[1..]);
        return;
    }
    // `repro watch …` renders the live-series dashboard for a rank
    // range instead of the paper tables.
    if argv.first().map(String::as_str) == Some("watch") {
        cmd_watch(&argv[1..]);
        return;
    }
    // `repro serve …` runs the open-loop serving engine instead of
    // the one-shot crawl.
    if argv.first().map(String::as_str) == Some("serve") {
        cmd_serve(&argv[1..]);
        return;
    }
    let args = parse_args();
    let mut registry = Registry::new();
    // Whole-run trace buffer; filled along the way when `--trace` is
    // given, exported at the end.
    let mut run_trace: Option<Tracer> = args.trace.as_ref().map(|_| Tracer::new());
    let t_total = std::time::Instant::now();
    // Wall-clock per driver phase; the deterministic counterpart is
    // the registry's `sim.*` phase section.
    let mut ms_crawl = 0.0;
    let mut ms_characterize = 0.0;
    let mut ms_model = 0.0;
    let mut ms_certplan = 0.0;
    let mut ms_active = 0.0;
    let mut ms_passive = 0.0;
    let needs_crawl = [
        "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "f1", "f2", "f3", "f4", "f5", "f9",
        "ct",
    ]
    .iter()
    .any(|id| want(&args, id))
        // A fault profile always needs the crawl: the resilience
        // report is drawn from it. Likewise the redundancy report and
        // the streaming-observability outputs.
        || args.faults.is_some()
        || args.redundancy_report.is_some()
        || args.h3_report.is_some()
        || args.timeline.is_some()
        || args.flight_recorder.is_some();
    let obs = obs_config(&args);

    let mut crawl = needs_crawl.then(|| {
        eprintln!(
            "# crawling {} synthetic sites (seed {:#x}, {} threads{}{}{})…",
            args.sites,
            args.seed,
            args.threads,
            args.faults
                .as_ref()
                .map(|p| format!(", faults {}", p.spec()))
                .unwrap_or_default(),
            if args.legacy_share > 0.0 {
                format!(", legacy share {:.2}", args.legacy_share)
            } else {
                String::new()
            },
            if args.h3_share > 0.0 {
                format!(", h3 share {:.2}", args.h3_share)
            } else {
                String::new()
            }
        );
        let t = std::time::Instant::now();
        let sampler = run_trace.is_some().then_some(args.sample);
        let r = run_crawl_observed(
            args.sites,
            args.seed,
            args.threads,
            sampler.as_ref(),
            args.faults.as_ref(),
            args.legacy_share,
            args.h3_share,
            obs.as_ref(),
        );
        ms_crawl += t.elapsed().as_secs_f64() * 1_000.0;
        r
    });
    // Move the sampled crawl spans into the run trace buffer (the
    // trace's shard merge already put them in rank order).
    if let (Some(t), Some(r)) = (&mut run_trace, &mut crawl) {
        t.merge(std::mem::replace(&mut r.trace, Tracer::new()));
    }

    if let Some(r) = &crawl {
        registry.merge(&r.metrics);
        if want(&args, "t1") {
            timed(&mut ms_characterize, || table1(r));
        }
        if want(&args, "t2") {
            timed(&mut ms_characterize, || table2(r));
        }
        if want(&args, "t3") {
            timed(&mut ms_characterize, || table3(r));
        }
        if want(&args, "t4") {
            timed(&mut ms_characterize, || table4(r));
        }
        if want(&args, "t5") {
            timed(&mut ms_characterize, || table5(r));
        }
        if want(&args, "t6") {
            timed(&mut ms_characterize, || table6(r));
        }
        if want(&args, "t7") {
            timed(&mut ms_characterize, || table7(r));
        }
        if want(&args, "f1") {
            timed(&mut ms_characterize, || figure1(r));
        }
        if want(&args, "f2") {
            timed(&mut ms_model, || figure2(args.seed));
        }
        if want(&args, "f3") {
            timed(&mut ms_model, || figure3(r));
        }
        if want(&args, "f4") {
            timed(&mut ms_certplan, || figure4(r));
        }
        if want(&args, "f5") {
            timed(&mut ms_certplan, || figure5(r));
        }
        if want(&args, "t8") {
            timed(&mut ms_certplan, || table8(r));
        }
        if want(&args, "t9") {
            timed(&mut ms_certplan, || table9(r));
        }
        if want(&args, "f9") {
            timed(&mut ms_model, || figure9_top(r));
        }
        if want(&args, "ct") {
            timed(&mut ms_certplan, || ct_impact(r));
        }
    }

    // §5 deployment experiments.
    let needs_sample = [
        "f6",
        "f7a",
        "f7b",
        "f8",
        "f9",
        "passive-ip",
        "passive-origin",
        "incident",
        "privacy",
    ]
    .iter()
    .any(|id| want(&args, id));
    if needs_sample {
        let mut rng = SimRng::seed_from_u64(args.seed ^ 0x5000);
        let group = SampleGroup::build(5_000, &mut rng);
        eprintln!(
            "# sample group: {} candidates, {} removed (subpage-only), {} in study",
            5_000,
            group.removed_subpage_only,
            group.sites.len()
        );
        // Deterministic wire phase: real origin-h2 exchanges against
        // the edge — the registry's only source of `h2.*` counters.
        let wire_n = group.sites.len().min(200);
        let wire = match &mut run_trace {
            Some(t) => ActiveMeasurement::origin_experiment().wire_spot_check_traced(
                &group,
                wire_n,
                Some(&mut registry),
                t,
            ),
            None => ActiveMeasurement::origin_experiment().wire_spot_check_metrics(
                &group,
                wire_n,
                Some(&mut registry),
            ),
        };
        eprintln!("# wire spot check: {wire}/{wire_n} sites consistent with the analytic model");
        if want(&args, "f6") {
            timed(&mut ms_active, || figure6(&group));
        }
        if want(&args, "f7a") {
            timed(&mut ms_active, || {
                figure7(&group, args.seed, args.threads, true, &mut registry)
            });
        }
        if want(&args, "f7b") {
            timed(&mut ms_active, || {
                figure7(&group, args.seed, args.threads, false, &mut registry)
            });
        }
        if want(&args, "passive-ip") {
            timed(&mut ms_passive, || {
                passive(
                    &group,
                    args.seed,
                    DeploymentMode::IpAligned,
                    &mut registry,
                    run_trace.as_mut(),
                )
            });
        }
        if want(&args, "passive-origin") {
            timed(&mut ms_passive, || {
                passive(
                    &group,
                    args.seed,
                    DeploymentMode::OriginFrames,
                    &mut registry,
                    run_trace.as_mut(),
                )
            });
        }
        if want(&args, "f8") {
            timed(&mut ms_passive, || figure8(&group, args.seed));
        }
        if want(&args, "f9") {
            timed(&mut ms_active, || {
                figure9_bottom(&group, args.seed, args.threads, &mut registry)
            });
        }
        if want(&args, "incident") {
            timed(&mut ms_passive, || incident(&group, args.seed));
        }
        if want(&args, "privacy") {
            timed(&mut ms_active, || {
                privacy(&group, args.seed, args.threads, &mut registry)
            });
        }
    }
    if want(&args, "scheduling") {
        scheduling(args.seed);
    }
    // Resilience report: re-run the same crawl clean and compare.
    // Everything in the report is simulated time and counters, so the
    // bytes are identical for any thread count.
    if let (Some(profile), Some(faulted)) = (&args.faults, &crawl) {
        eprintln!("# re-crawling clean for the resilience baseline…");
        let t = std::time::Instant::now();
        // Same universe (including any legacy or h3 share), no
        // faults: the report isolates the profile's cost, nothing
        // else.
        let clean = run_crawl_h3(
            args.sites,
            args.seed,
            args.threads,
            None,
            None,
            args.legacy_share,
            args.h3_share,
        );
        ms_crawl += t.elapsed().as_secs_f64() * 1_000.0;
        let report = ResilienceReport::build(&clean, faulted, profile);
        eprintln!(
            "# resilience [{}]: median PLT {:.1} → {:.1} ms ({:+.2}%) | coalescing rate {:.4} → {:.4} (−{:.2}%) | connections {} → {}",
            report.profile,
            report.clean.0,
            report.faulted.0,
            report.plt_inflation_pct(),
            report.clean.1,
            report.faulted.1,
            report.coalescing_degradation_pct(),
            report.clean.2,
            report.faulted.2,
        );
        eprintln!(
            "# recoveries: {} 421 replays, {} evictions, {} middlebox teardowns, {} drops, {} retries",
            faulted.metrics.counter("fault.misdirected_421"),
            faulted.metrics.counter("fault.pool_evictions"),
            faulted.metrics.counter("fault.middlebox_teardowns"),
            faulted.metrics.counter("fault.drops"),
            faulted.metrics.counter("fault.retries"),
        );
        if let Some(path) = &args.faults_report {
            match std::fs::write(path, report.to_json()) {
                Ok(()) => eprintln!("# wrote resilience report to {path}"),
                Err(e) => eprintln!("# failed to write {path}: {e}"),
            }
        }
    }
    // Redundant-connections analysis (Sander et al.): what the h2
    // coalescing rules would have merged, per policy. Deterministic
    // for any thread count.
    if let (Some(path), Some(r)) = (&args.redundancy_report, &crawl) {
        let report = RedundancyReport::build(r, args.legacy_share);
        eprintln!(
            "# redundancy [share {:.2}]: {} legacy pages, {} h1 connections ({} keep-alive reuses, {} close-delimited) | redundant: {}",
            report.legacy_share,
            report.legacy_pages,
            report.h1_connections,
            report.keepalive_reuse,
            report.close_delimited,
            report
                .redundant
                .iter()
                .map(|(name, v)| format!("{name} {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("# wrote redundancy report to {path}"),
            Err(e) => eprintln!("# failed to write {path}: {e}"),
        }
    }
    // H2-vs-h3 comparison (the §4 best-case question under QUIC
    // semantics): re-run the same universe with the h3 share zeroed
    // and report what deploying h3 changed.
    if let (Some(path), Some(r)) = (&args.h3_report, &crawl) {
        eprintln!("# re-crawling with h3 share 0 for the h2 baseline…");
        let t = std::time::Instant::now();
        let baseline = run_crawl_h3(
            args.sites,
            args.seed,
            args.threads,
            None,
            args.faults.as_ref(),
            args.legacy_share,
            0.0,
        );
        ms_crawl += t.elapsed().as_secs_f64() * 1_000.0;
        let report = H3Report::build(&baseline, r, args.h3_share);
        eprintln!(
            "# h3 [share {:.2}]: {} h3 pages, {} quic connections ({} 1-rtt, {} 0-rtt, {} rejected) | median PLT {:.1} → {:.1} ms ({:+.2}%) | 0-rtt share {:.4}",
            report.h3_share,
            report.h3_pages,
            report.counter("h3.connections"),
            report.counter("h3.handshakes_1rtt"),
            report.counter("h3.handshakes_0rtt"),
            report.counter("h3.zero_rtt_rejected"),
            report.baseline.2,
            report.h3_run.2,
            report.plt_delta_pct(),
            report.zero_rtt_share(),
        );
        match std::fs::write(path, report.to_json()) {
            Ok(()) => eprintln!("# wrote h3 report to {path}"),
            Err(e) => eprintln!("# failed to write {path}: {e}"),
        }
    }
    // Streaming-observability exports: the windowed time series and,
    // when a fault-abort threshold was hit, the flight-recorder
    // snapshot of the lowest-ranked triggering visit.
    let mut fault_aborted = false;
    if let (Some(path), Some(r)) = (&args.timeline, &crawl) {
        if let Some(tl) = &r.timeline {
            match std::fs::write(path, tl.to_json()) {
                Ok(()) => eprintln!(
                    "# wrote timeline to {path} ({} windows, {} visits, window {}ms)",
                    tl.num_windows(),
                    tl.total_visits(),
                    tl.window_width().as_micros() / 1_000
                ),
                Err(e) => eprintln!("# failed to write {path}: {e}"),
            }
        }
    }
    if let (Some(path), Some(r)) = (&args.flight_recorder, &crawl) {
        if let Some(rec) = &r.flight {
            let threshold = args.fault_abort.unwrap_or(0);
            match rec.trigger_snapshot_json(threshold) {
                Some(snapshot) => {
                    fault_aborted = true;
                    let rank = rec.trigger().map(|t| t.rank).unwrap_or(0);
                    match std::fs::write(path, snapshot) {
                        Ok(()) => eprintln!(
                            "# fault-abort: visit rank {rank} reached {threshold} fault events; wrote flight snapshot to {path}"
                        ),
                        Err(e) => eprintln!("# failed to write {path}: {e}"),
                    }
                }
                None => eprintln!(
                    "# flight recorder: {} events observed, no visit reached the abort threshold",
                    rec.events_recorded()
                ),
            }
        }
    }
    if let (Some(path), Some(r)) = (&args.json, &crawl) {
        export_json(path, r);
    }
    if let (Some(path), Some(t)) = (&args.trace, &run_trace) {
        match std::fs::write(path, origin_trace::to_chrome_json(t)) {
            Ok(()) => eprintln!(
                "# wrote trace to {path} ({} events, sample 1/{})",
                t.len(),
                args.sample.denom()
            ),
            Err(e) => eprintln!("# failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics {
        for (name, ms) in [
            ("crawl", ms_crawl),
            ("characterize", ms_characterize),
            ("model", ms_model),
            ("certplan", ms_certplan),
            ("active", ms_active),
            ("passive", ms_passive),
        ] {
            if ms > 0.0 {
                registry.set_runtime_ms(name, ms);
            }
        }
        registry.set_runtime_ms("total", t_total.elapsed().as_secs_f64() * 1_000.0);
        match std::fs::write(path, registry.to_json()) {
            Ok(()) => eprintln!("# wrote metrics to {path}"),
            Err(e) => eprintln!("# failed to write {path}: {e}"),
        }
    }
    // Abort status last, after every requested artifact is on disk.
    if fault_aborted {
        std::process::exit(3);
    }
}

/// `repro watch --site-range A-B [--sites N] [--seed S] [--threads N]
/// `repro serve --visits N …`: run the open-loop serving engine
/// (DESIGN.md §16) — Poisson/diurnal session arrivals, pooled
/// multi-visit sessions, live ORIGIN rollout A/B — and print the
/// deterministic run summary. `--metrics` writes the merged `serve.*`
/// registry (strip `runtime_ms` before comparing); `--timeline`
/// writes the per-arm window series. Output is byte-identical at any
/// `--threads`; the wall-clock serving rate goes to stderr only.
fn cmd_serve(argv: &[String]) {
    let mut cfg = origin_serve::ServeConfig::default();
    let mut sites: u32 = 4_000;
    let mut dataset_seed: u64 = 0x0516;
    let mut threads: usize = 0;
    let mut metrics_out: Option<String> = None;
    let mut timeline_out: Option<String> = None;
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--visits" => cfg.visits = parse_value("--visits", it.next(), |&n: &u64| n > 0),
            "--sites" => sites = parse_value("--sites", it.next(), |&n: &u32| n > 0),
            "--seed" => dataset_seed = parse_value("--seed", it.next(), |_| true),
            "--serve-seed" => cfg.seed = parse_value("--serve-seed", it.next(), |_| true),
            "--threads" => threads = parse_value("--threads", it.next(), |&n: &usize| n > 0),
            "--rate" => {
                cfg.peak_rate_per_sec = parse_value("--rate", it.next(), |&r: &f64| r > 0.0)
            }
            "--rollout" => {
                cfg.rollout =
                    parse_value("--rollout", it.next(), |&p: &f64| (0.0..=1.0).contains(&p))
            }
            "--rollout-ramp-secs" => {
                cfg.rollout_ramp = SimDuration::from_secs(parse_value(
                    "--rollout-ramp-secs",
                    it.next(),
                    |_: &u64| true,
                ))
            }
            "--pool-budget" => {
                cfg.pool_budget = parse_value("--pool-budget", it.next(), |_: &usize| true)
            }
            "--edge-cap" => cfg.edge_cap = parse_value("--edge-cap", it.next(), |&n: &usize| n > 0),
            "--idle-timeout-secs" => {
                cfg.idle_timeout = SimDuration::from_secs(parse_value(
                    "--idle-timeout-secs",
                    it.next(),
                    |&s: &u64| s > 0,
                ))
            }
            "--window" => {
                cfg.window =
                    SimDuration::from_millis(parse_value("--window", it.next(), |&ms: &u64| ms > 0))
            }
            "--retain-windows" => {
                cfg.retain_windows =
                    Some(parse_value("--retain-windows", it.next(), |&n: &u64| n > 0))
            }
            "--metrics" => {
                metrics_out = Some(
                    it.next()
                        .unwrap_or_else(|| die("--metrics requires a path")),
                )
            }
            "--timeline" => {
                timeline_out = Some(
                    it.next()
                        .unwrap_or_else(|| die("--timeline requires a path")),
                )
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?} for repro serve")),
        }
    }
    if threads == 0 {
        threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    cfg.threads = threads;
    cfg.dataset = origin_webgen::DatasetConfig {
        sites,
        seed: dataset_seed,
        ..origin_webgen::DatasetConfig::default()
    };

    eprintln!(
        "# serving {} visits over {} sites ({} threads, rollout {:.2})…",
        cfg.visits, sites, threads, cfg.rollout
    );
    let t_gen = std::time::Instant::now();
    let dataset = origin_webgen::Dataset::generate(cfg.dataset);
    let plans = origin_serve::plan::compile_dataset(&dataset);
    let ms_gen = t_gen.elapsed().as_secs_f64() * 1_000.0;
    let t_serve = std::time::Instant::now();
    let mut report = origin_serve::engine::run_serve_on(&cfg, &plans);
    let ms_serve = t_serve.elapsed().as_secs_f64() * 1_000.0;
    eprintln!(
        "# served {} visits in {:.0} ms ({:.0} visits/sec)",
        report.visits,
        ms_serve,
        report.visits as f64 / (ms_serve / 1_000.0)
    );

    print!("{}", report.summary());
    if let Some(path) = timeline_out {
        match std::fs::write(&path, report.timeline_json()) {
            Ok(()) => eprintln!("# wrote per-arm timeline to {path}"),
            Err(e) => die(&format!("failed to write {path}: {e}")),
        }
    }
    if let Some(path) = metrics_out {
        report.metrics.set_runtime_ms("dataset", ms_gen);
        report.metrics.set_runtime_ms("serve", ms_serve);
        report.metrics.set_runtime_ms("total", ms_gen + ms_serve);
        match std::fs::write(&path, report.metrics.to_json()) {
            Ok(()) => eprintln!("# wrote metrics to {path}"),
            Err(e) => die(&format!("failed to write {path}: {e}")),
        }
    }
}

/// [--window MS] [--faults spec] [--legacy-share P] [--h3-share P] [--out path]`:
/// run the observed crawl and render the windows covering the rank
/// range as a deterministic ASCII dashboard.
fn cmd_watch(argv: &[String]) {
    let mut range: Option<(u32, u32)> = None;
    let mut sites: u32 = 4_000;
    let mut seed: u64 = 0x0516;
    let mut threads: usize = 0;
    let mut window_ms: Option<u64> = None;
    let mut faults: Option<FaultProfile> = None;
    let mut legacy_share: f64 = 0.0;
    let mut h3_share: f64 = 0.0;
    let mut out: Option<String> = None;
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--site-range" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| die("--site-range requires A-B"));
                let parsed = raw
                    .split_once('-')
                    .and_then(|(a, b)| Some((a.parse::<u32>().ok()?, b.parse::<u32>().ok()?)));
                range = match parsed {
                    Some((lo, hi)) if lo <= hi => Some((lo, hi)),
                    _ => die(&format!(
                        "invalid value {raw:?} for --site-range (want A-B, A <= B)"
                    )),
                };
            }
            "--sites" => sites = parse_value("--sites", it.next(), |&n: &u32| n > 0),
            "--seed" => seed = parse_value("--seed", it.next(), |_| true),
            "--threads" => threads = parse_value("--threads", it.next(), |&n: &usize| n > 0),
            "--window" => window_ms = Some(parse_value("--window", it.next(), |&ms: &u64| ms > 0)),
            "--faults" => {
                let raw = it
                    .next()
                    .unwrap_or_else(|| die("--faults requires a profile spec"));
                faults = Some(
                    FaultProfile::parse(&raw)
                        .unwrap_or_else(|e| die(&format!("invalid --faults spec: {e}"))),
                );
            }
            "--legacy-share" => {
                legacy_share = parse_value("--legacy-share", it.next(), |&p: &f64| {
                    (0.0..=1.0).contains(&p)
                })
            }
            "--h3-share" => {
                h3_share = parse_value("--h3-share", it.next(), |&p: &f64| (0.0..=1.0).contains(&p))
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| die("--out requires a path"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?} for repro watch")),
        }
    }
    let (lo, hi) = range.unwrap_or_else(|| die("repro watch requires --site-range A-B"));
    if hi >= sites {
        die(&format!(
            "--site-range {lo}-{hi} exceeds the dataset ({sites} sites; ranks 0..={})",
            sites - 1
        ));
    }
    if threads == 0 {
        threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    }
    let obs = ObsConfig {
        window: window_ms.map(SimDuration::from_millis),
        fault_abort: None,
        panic_dump: None,
        flight_capacity: None,
    };
    let r = run_crawl_observed(
        sites,
        seed,
        threads,
        None,
        faults.as_ref(),
        legacy_share,
        h3_share,
        Some(&obs),
    );
    let timeline = r
        .timeline
        .expect("observed crawl always produces a timeline");
    let body = origin_obs::dashboard::render(&timeline, lo, hi);
    match out {
        Some(path) => match std::fs::write(&path, &body) {
            Ok(()) => eprintln!("# wrote dashboard to {path}"),
            Err(e) => die(&format!("failed to write {path}: {e}")),
        },
        None => print!("{body}"),
    }
}

/// `repro trace --site RANK [--format perfetto|har|ascii] [--sites N]
/// [--seed S] [--out path]`: visit one ranked site with tracing on and
/// export the visit in the chosen format (stdout unless `--out`).
fn cmd_trace(argv: &[String]) {
    let mut site: Option<u32> = None;
    let mut format = "perfetto".to_string();
    let mut sites: u32 = 4_000;
    let mut seed: u64 = 0x0516;
    let mut out: Option<String> = None;
    let mut sample: Option<Sampler> = None;
    let mut it = argv.iter().cloned();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--site" => site = Some(parse_value("--site", it.next(), |&n: &u32| n > 0)),
            "--sample" => {
                let raw = it.next().unwrap_or_else(|| die("--sample requires 1/N"));
                sample = Some(
                    Sampler::parse(&raw)
                        .unwrap_or_else(|| die(&format!("invalid value {raw:?} for --sample"))),
                );
            }
            "--format" => {
                format = it
                    .next()
                    .unwrap_or_else(|| die("--format requires a value"));
                if !["perfetto", "har", "ascii"].contains(&format.as_str()) {
                    die(&format!(
                        "invalid value {format:?} for --format (perfetto|har|ascii)"
                    ));
                }
            }
            "--sites" => sites = parse_value("--sites", it.next(), |&n: &u32| n > 0),
            "--seed" => seed = parse_value("--seed", it.next(), |_| true),
            "--out" => out = Some(it.next().unwrap_or_else(|| die("--out requires a path"))),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?} for repro trace")),
        }
    }
    let (body, what) = match site {
        Some(rank) => {
            let (load, trace) = trace_site(sites, seed, rank).unwrap_or_else(|| {
                die(&format!(
                    "no successful site at rank {rank} (dataset of {sites} sites, seed {seed:#x})"
                ))
            });
            let body = match format.as_str() {
                "perfetto" => origin_trace::to_chrome_json(&trace),
                "har" => load.to_har_json(),
                _ => origin_web::waterfall::render(&load, 72),
            };
            (body, format!("{format} trace of site {rank}"))
        }
        // Without `--site`: trace the whole crawl at a 1-in-N sample
        // (per-visit formats need a single visit).
        None => {
            let sampler =
                sample.unwrap_or_else(|| die("repro trace requires --site RANK or --sample 1/N"));
            if format != "perfetto" {
                die(&format!("--sample only exports perfetto, not {format}"));
            }
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            let r = run_crawl_traced(sites, seed, threads, Some(&sampler));
            (
                origin_trace::to_chrome_json(&r.trace),
                format!("sampled 1/{} crawl trace", sampler.denom()),
            )
        }
    };
    match out {
        Some(path) => match std::fs::write(&path, &body) {
            Ok(()) => eprintln!("# wrote {what} to {path}"),
            Err(e) => die(&format!("failed to write {path}: {e}")),
        },
        None => {
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
        }
    }
}

/// Render an f64 as JSON (shortest round-trip form).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Render a slice as a JSON array with a per-element renderer.
fn jarr<T>(xs: &[T], f: impl Fn(&T) -> String) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&f(x));
    }
    s.push(']');
    s
}

fn jarr_f64(xs: &[f64]) -> String {
    jarr(xs, |&x| jf(x))
}

/// Write the raw figure series to JSON for external plotting.
///
/// Hand-rolled (the workspace has no serde dependency); emitted keys
/// and shapes match what `serde_json` produced before: tuples become
/// arrays.
fn export_json(path: &str, r: &CrawlResults) {
    let (existing, ideal) = r.plan.figure4();
    let value = format!(
        concat!(
            "{{\"figure1\":{},",
            "\"figure3\":{{\"measured_dns\":{},\"measured_tls\":{},",
            "\"ideal_ip_dns\":{},\"ideal_ip_tls\":{},",
            "\"ideal_origin_dns\":{},\"ideal_origin_tls\":{}}},",
            "\"figure4\":{{\"existing\":{},\"ideal\":{}}},",
            "\"figure5\":{},",
            "\"figure9_top\":{{\"measured_plt\":{},\"ideal_ip_plt\":{},",
            "\"ideal_origin_plt\":{},\"cdn_only_plt\":{}}}}}"
        ),
        jarr(&r.characterization.figure1(), |&(v, frac, cdf)| format!(
            "[{v},{},{}]",
            jf(frac),
            jf(cdf)
        )),
        jarr_f64(&r.measured.dns),
        jarr_f64(&r.measured.tls),
        jarr_f64(&r.model_ip.dns),
        jarr_f64(&r.model_ip.tls),
        jarr_f64(&r.model_origin.dns),
        jarr_f64(&r.model_origin.tls),
        jarr(&existing.steps(), |&(x, p)| format!(
            "[{},{}]",
            jf(x),
            jf(p)
        )),
        jarr(&ideal.steps(), |&(x, p)| format!("[{},{}]", jf(x), jf(p))),
        jarr(&r.plan.figure5(), |&(e, i, c)| format!("[{e},{i},{c}]")),
        jarr_f64(&r.measured.plt),
        jarr_f64(&r.model_ip.plt),
        jarr_f64(&r.model_origin.plt),
        jarr_f64(&r.model_cdn_plt),
    );
    match std::fs::write(path, value) {
        Ok(()) => eprintln!("# wrote figure series to {path}"),
        Err(e) => eprintln!("# failed to write {path}: {e}"),
    }
}

/// §6.1: priority-inversion comparison between one coalesced
/// connection and parallel connections racing at the bottleneck.
fn scheduling(seed: u64) {
    println!("§6.1 scheduling fidelity (mean priority inversions per page)");
    println!("connections  coalesced  parallel");
    for k in [2usize, 4, 6, 10] {
        let (coal, par) = origin_core::scheduling::compare(60, 14, k, seed ^ k as u64);
        println!("{k:>11}  {coal:>9.1}  {par:>8.1}");
    }
    println!("coalesced resources always arrive in intended order; parallel connections cannot enforce cross-connection priority\n");
}

/// §6.2: quantify the cleartext signals coalescing removes. Each new
/// TLS connection exposes one plaintext SNI (no ECH in 2021/22) and
/// each network DNS query over UDP-53 exposes the queried name.
fn privacy(group: &SampleGroup, seed: u64, threads: usize, registry: &mut Registry) {
    let mut exposure = |mode: DeploymentMode, browser: BrowserKind| -> (u64, u64) {
        let m = ActiveMeasurement { mode, browser };
        let (exp, ctl) = m.run_both_threads(group, seed ^ 0x9417AC, threads);
        registry.merge(&exp.metrics);
        registry.merge(&ctl.metrics);
        // SNI exposures = total new TLS connections across visits.
        let snis: u64 = exp.new_connections.bins().map(|(v, c)| v * c).sum();
        // One render-blocking plaintext DNS query per connection plus
        // the site lookup per visit (the loader counts them exactly;
        // approximate here from the same histogram for the report).
        let visits = exp.new_connections.total();
        (snis + visits, visits)
    };
    let (before_snis, visits) = exposure(DeploymentMode::Baseline, BrowserKind::Firefox);
    let (after_snis, _) = exposure(DeploymentMode::OriginFrames, BrowserKind::FirefoxOrigin);
    println!("§6.2 privacy: plaintext third-party SNI+DNS exposures per {visits} visits");
    println!(
        "without ORIGIN: {before_snis} | with ORIGIN: {after_snis} ({:+.1}%)",
        (after_snis as f64 - before_snis as f64) / before_snis.max(1) as f64 * 100.0
    );
    println!("each removed exposure is one cleartext signal an on-path observer no longer sees\n");
}

fn table1(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 1: successful collection per rank bucket (median page attributes)",
        &["Rank", "Success", "#Reqs", "PLT (ms)", "#DNS", "#TLS"],
    );
    for row in r.characterization.table1() {
        let label = if row.bucket == u32::MAX {
            "Total".to_string()
        } else {
            format!("{}-{}K", row.bucket * 100, (row.bucket + 1) * 100)
        };
        t.row(&[
            label,
            row.success.to_string(),
            format!("{:.0}", row.median_requests),
            format!("{:.1}", row.median_plt),
            format!("{:.0}", row.median_dns),
            format!("{:.0}", row.median_tls),
        ]);
    }
    if let Some(s) = r.characterization.request_summary() {
        t.row(&[
            "μ".to_string(),
            String::new(),
            format!("{:.0}", s.mean),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }
    println!("{}", t.render());
}

fn table2(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 2: top-10 destination ASes for resource requests",
        &["Rank", "AS Number", "Org. Name", "#Req", "%"],
    );
    for (i, e) in r.characterization.as_requests.top(10).iter().enumerate() {
        t.row(&[
            (i + 1).to_string(),
            format!("AS {}", e.key),
            asn_label(e.key),
            e.count.to_string(),
            format!("{:.2}", e.percent),
        ]);
    }
    let top10 = r.characterization.as_requests.top_share(10);
    let to80 = r.characterization.as_requests.keys_to_reach(80.0);
    t.row(&[
        String::new(),
        String::new(),
        "Total".to_string(),
        String::new(),
        format!("{top10:.2}"),
    ]);
    println!("{}", t.render());
    println!(
        "ASes to reach 80% of requests: {} (paper: 51) | distinct ASes: {}\n",
        to80.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
        r.characterization.as_requests.distinct()
    );
}

fn table3(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 3: requests by application protocol / encryption",
        &["Protocol", "# Requests", "%"],
    );
    for e in r.characterization.protocol_requests.top(10) {
        t.row(&[
            e.key.to_string(),
            e.count.to_string(),
            format!("{:.2}", e.percent),
        ]);
    }
    let secure = r.characterization.secure_fraction();
    t.row(&[
        "Secure".into(),
        r.characterization.secure_requests.to_string(),
        format!("{:.2}", secure * 100.0),
    ]);
    t.row(&[
        "Insecure".into(),
        r.characterization.insecure_requests.to_string(),
        format!("{:.2}", (1.0 - secure) * 100.0),
    ]);
    println!("{}", t.render());
}

fn table4(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 4: top certificate issuers by validations",
        &["Certificate Issuer", "# Validations", "%"],
    );
    for e in r.characterization.issuers.top(10) {
        t.row(&[
            e.key.clone(),
            e.count.to_string(),
            format!("{:.2}", e.percent),
        ]);
    }
    println!("{}", t.render());
}

fn table5(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 5: requests by top content types",
        &["Content Type", "# Req", "%"],
    );
    for e in r.characterization.content_types.top(12) {
        t.row(&[
            e.key.to_string(),
            e.count.to_string(),
            format!("{:.2}", e.percent),
        ]);
    }
    println!("{}", t.render());
}

fn table6(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 6: top content types per top-3 ASes",
        &["ASN", "Content Type", "#Req", "%"],
    );
    for e in r.characterization.as_requests.top(3) {
        if let Some(topk) = r.characterization.as_content.get(&e.key) {
            for c in topk.top(4) {
                t.row(&[
                    format!("{} (AS {})", asn_label(e.key), e.key),
                    c.key.to_string(),
                    c.count.to_string(),
                    format!("{:.2}", c.percent),
                ]);
            }
        }
    }
    println!("{}", t.render());
}

fn table7(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 7: top-10 subresource hostnames",
        &["Hostname", "#Req", "%"],
    );
    for e in r.characterization.hostnames.top(10) {
        t.row(&[
            e.key.clone(),
            e.count.to_string(),
            format!("{:.2}", e.percent),
        ]);
    }
    println!("{}", t.render());
}

fn figure1(r: &CrawlResults) {
    println!("Figure 1: unique ASes needed to load a page");
    println!("as_count  fraction  cdf");
    for (v, frac, cdf) in r.characterization.figure1().into_iter().take(30) {
        println!("{v:>8}  {:>8.4}  {cdf:.4}", frac);
    }
    println!();
}

fn figure2(seed: u64) {
    use origin_webgen::{Dataset, DatasetConfig};
    let d = Dataset::generate(DatasetConfig {
        sites: 40,
        seed,
        ..Default::default()
    });
    let site = d
        .sites()
        .iter()
        .find(|s| !s.failed && !s.services.is_empty())
        .expect("a usable site")
        .clone();
    let page = d.page_for(&site);
    let mut env = UniverseEnv::new(&d);
    env.flush_dns();
    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut rng = SimRng::seed_from_u64(site.page_seed);
    let load = loader.load(&page, &mut env, &mut rng);
    let (_, recon) = predict(&page, &load, CoalescingGrouping::ByAs);
    // Only show the first handful of requests, Figure 2 style.
    let mut before = load.clone();
    before.requests.truncate(8);
    let mut after = recon.clone();
    after.requests.truncate(8);
    println!("Figure 2: measured vs reconstructed timeline (first 8 requests)");
    println!(
        "{}",
        origin_web::waterfall::render_comparison(&before, &after, 70)
    );
}

fn print_cdf_quantiles(label: &str, cdf: &Cdf) {
    let q = |p: f64| cdf.quantile(p).unwrap_or(0.0);
    println!(
        "{label:<38} p25={:>7.1} median={:>7.1} p75={:>7.1} p90={:>8.1}",
        q(0.25),
        q(0.5),
        q(0.75),
        q(0.9)
    );
}

fn figure3(r: &CrawlResults) {
    println!("Figure 3: measured vs ideal DNS / TLS counts (CDF quantiles)");
    print_cdf_quantiles("Measured DNS Requests", &Cdf::from_samples(&r.measured.dns));
    print_cdf_quantiles("Measured TLS Requests", &Cdf::from_samples(&r.measured.tls));
    print_cdf_quantiles(
        "Ideal Modelled IP Coalescing (DNS)",
        &Cdf::from_samples(&r.model_ip.dns),
    );
    print_cdf_quantiles(
        "Ideal Modelled IP Coalescing (TLS)",
        &Cdf::from_samples(&r.model_ip.tls),
    );
    print_cdf_quantiles(
        "Ideal Modelled Origin Coalescing (DNS)",
        &Cdf::from_samples(&r.model_origin.dns),
    );
    print_cdf_quantiles(
        "Ideal Modelled Origin Coalescing (TLS)",
        &Cdf::from_samples(&r.model_origin.tls),
    );
    let (m_dns, m_tls, _) = r.measured.medians();
    let (i_dns, i_tls, _) = r.model_ip.medians();
    let (o_dns, o_tls, _) = r.model_origin.medians();
    println!(
        "reductions: IP dns {} tls {} | ORIGIN dns {} tls {}  (paper: −7%/−19% and −64%/−67%)\n",
        pct_change(origin_stats::percent_change(m_dns, i_dns)),
        pct_change(origin_stats::percent_change(m_tls, i_tls)),
        pct_change(origin_stats::percent_change(m_dns, o_dns)),
        pct_change(origin_stats::percent_change(m_tls, o_tls)),
    );
}

fn figure4(r: &CrawlResults) {
    let (existing, ideal) = r.plan.figure4();
    println!("Figure 4: DNS SAN names per certificate, existing vs ideal (CDF)");
    println!("sans  existing_cdf  ideal_cdf");
    for x in 0..=15u64 {
        println!(
            "{x:>4}  {:>12.4}  {:>9.4}",
            existing.eval(x as f64),
            ideal.eval(x as f64)
        );
    }
    println!(
        "median {} → {} | p75 {} → {}\n",
        existing.quantile(0.5).unwrap_or(0.0),
        ideal.quantile(0.5).unwrap_or(0.0),
        existing.quantile(0.75).unwrap_or(0.0),
        ideal.quantile(0.75).unwrap_or(0.0)
    );
}

fn figure5(r: &CrawlResults) {
    println!("Figure 5: SAN sizes ranked by existing size (sampled rows)");
    println!("rank  existing  ideal  changes");
    let f5 = r.plan.figure5();
    let mut rank = 1usize;
    while rank <= f5.len() {
        let (e, i, c) = f5[rank - 1];
        println!("{rank:>5}  {e:>8}  {i:>5}  {c:>7}");
        rank = if rank < 10 { rank + 1 } else { rank * 10 / 3 };
    }
    let (b250, a250) = r.plan.sites_above(250);
    println!("certificates with >250 SAN names: {b250} → {a250} (paper: 230 → 529, +130%)\n");
}

fn table8(r: &CrawlResults) {
    let (measured, ideal) = r.plan.table8(10);
    let mut t = TextTable::new(
        "Table 8: distribution of SAN sizes, measured vs ideal",
        &["Rank", "Measured #SAN", "Count", "Ideal #SAN", "Count"],
    );
    for i in 0..10 {
        let m = measured.get(i);
        let d = ideal.get(i);
        t.row(&[
            (i + 1).to_string(),
            m.map(|x| x.0.to_string()).unwrap_or_default(),
            m.map(|x| x.1.to_string()).unwrap_or_default(),
            d.map(|x| x.0.to_string()).unwrap_or_default(),
            d.map(|x| x.1.to_string()).unwrap_or_default(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "unchanged certificates: {:.2}% (paper 62.41%) | ≤10 changes: {:.2}% (paper 92.66%) | SAN-less sites: {} (needing changes: {})\n",
        r.plan.unchanged_fraction() * 100.0,
        r.plan.within_changes(10) * 100.0,
        r.plan.san_less_sites,
        r.plan.san_less_needing_changes,
    );
}

fn table9(r: &CrawlResults) {
    let mut t = TextTable::new(
        "Table 9: most frequently needed hostnames per top hosting provider",
        &["Provider", "#Sites", "Hostname", "Count", "%"],
    );
    for (provider, sites, hosts) in r.effective.table9(5).into_iter().take(4) {
        if provider == "Self-hosted" {
            continue;
        }
        for (host, count, pctg) in hosts {
            t.row(&[
                format!("{provider} ({sites} sites)"),
                sites.to_string(),
                host,
                count.to_string(),
                format!("{pctg:.2}"),
            ]);
        }
    }
    println!("{}", t.render());
}

fn figure9_top(r: &CrawlResults) {
    println!("Figure 9 (top): modelled PLT CDFs");
    print_cdf_quantiles("Measured", &Cdf::from_samples(&r.measured.plt));
    print_cdf_quantiles("I.M. IP Coalescing", &Cdf::from_samples(&r.model_ip.plt));
    print_cdf_quantiles(
        "I.M. Origin Coalescing",
        &Cdf::from_samples(&r.model_origin.plt),
    );
    print_cdf_quantiles(
        "I.M. CDN Origin Coalescing",
        &Cdf::from_samples(&r.model_cdn_plt),
    );
    let m = origin_stats::median(&r.measured.plt).unwrap_or(0.0);
    let ip = origin_stats::median(&r.model_ip.plt).unwrap_or(0.0);
    let or = origin_stats::median(&r.model_origin.plt).unwrap_or(0.0);
    let cdn = origin_stats::median(&r.model_cdn_plt).unwrap_or(0.0);
    println!(
        "median PLT change: IP {} | ORIGIN {} | CDN-only {}  (paper: −10%, −27%, −1.5%)\n",
        pct_change(origin_stats::percent_change(m, ip)),
        pct_change(origin_stats::percent_change(m, or)),
        pct_change(origin_stats::percent_change(m, cdn)),
    );
}

fn ct_impact(r: &CrawlResults) {
    let changed = r.plan.total_sites - r.plan.unchanged_sites;
    let hours = CtLogSet::burst_as_hours_of_global_issuance(changed);
    // Scale the changed-site count up to the paper's dataset size.
    let scale = 315_796.0 / r.plan.total_sites.max(1) as f64;
    let scaled = (changed as f64 * scale) as u64;
    println!(
        "§6.4 CT impact: {changed} certificates to reissue ({:.2}% of sites;",
        (changed as f64 / r.plan.total_sites as f64) * 100.0
    );
    println!(
        "scaled to the paper's 315,796 sites: {scaled} ≈ {:.2} hours of global issuance (paper: 37.59% → one-time burst ≪ daily volume)\n",
        CtLogSet::burst_as_hours_of_global_issuance(scaled)
    );
    let _ = hours;
}

fn figure6(group: &SampleGroup) {
    println!("Figure 6: equal-byte certificate issuance check");
    println!(
        "third party: {} ({} bytes) | control decoy: {} ({} bytes)",
        origin_cdn::THIRD_PARTY_HOST,
        origin_cdn::THIRD_PARTY_HOST.len(),
        origin_cdn::CONTROL_DECOY_HOST,
        origin_cdn::CONTROL_DECOY_HOST.len()
    );
    println!(
        "equal-byte property across {} certificates: {}\n",
        group.sites.len(),
        if group.equal_byte_check() {
            "HOLDS"
        } else {
            "VIOLATED"
        }
    );
}

fn figure7(group: &SampleGroup, seed: u64, threads: usize, ip: bool, registry: &mut Registry) {
    let (label, m) = if ip {
        (
            "Figure 7a: IP-based coalescing (Firefox v91)",
            ActiveMeasurement::ip_experiment(),
        )
    } else {
        (
            "Figure 7b: ORIGIN frame (Firefox v96)",
            ActiveMeasurement::origin_experiment(),
        )
    };
    let (exp, ctl) = m.run_both_threads(group, seed, threads);
    registry.merge(&exp.metrics);
    registry.merge(&ctl.metrics);
    println!("{label}");
    println!("new_conns  experiment_cdf  control_cdf");
    let (ecdf, ccdf) = (exp.cdf(), ctl.cdf());
    for n in 0..=exp.max_connections().max(ctl.max_connections()) {
        println!(
            "{n:>9}  {:>14.3}  {:>11.3}",
            ecdf.eval(n as f64),
            ccdf.eval(n as f64)
        );
    }
    println!(
        "zero-connection visits: experiment {:.1}% control {:.1}%  (paper: {} )\n",
        exp.fraction_with(0) * 100.0,
        ctl.fraction_with(0) * 100.0,
        if ip { "70% vs 9%" } else { "64% vs 6%" }
    );
}

/// Logical-process base for passive-pipeline trace aggregates — its
/// own band above [`ActiveMeasurement::WIRE_PID_BASE`]'s.
const PASSIVE_PID_BASE: u64 = 1 << 23;

fn passive(
    group: &SampleGroup,
    seed: u64,
    mode: DeploymentMode,
    registry: &mut Registry,
    trace: Option<&mut Tracer>,
) {
    let p = PassivePipeline::new(mode);
    let r = p.run(group, seed);
    r.record_into(registry);
    if let Some(t) = trace {
        let pid = PASSIVE_PID_BASE
            + match mode {
                DeploymentMode::Baseline => 0,
                DeploymentMode::IpAligned => 1,
                DeploymentMode::OriginFrames => 2,
            };
        r.record_trace(t, pid);
    }
    let label = match mode {
        DeploymentMode::IpAligned => "§5.2 passive (IP alignment)",
        DeploymentMode::OriginFrames => "§5.3 passive (ORIGIN frames)",
        DeploymentMode::Baseline => "baseline passive",
    };
    println!("{label}: sampled {} records", r.sampled_records);
    println!(
        "new TLS connections to third party per sampled visit: experiment {} / control {}",
        r.experiment_tp_connections, r.control_tp_connections
    );
    println!(
        "rate reduction: {:.1}% (paper: {}) | coalesced connections observed: {}\n",
        r.tp_connection_reduction() * 100.0,
        match mode {
            DeploymentMode::IpAligned => "56%",
            DeploymentMode::OriginFrames => "≈50%",
            DeploymentMode::Baseline => "0%",
        },
        r.coalesced_connections
    );
}

fn figure8(group: &SampleGroup, seed: u64) {
    let run = LongitudinalRun::paper_window();
    let s = run.run(group, DeploymentMode::OriginFrames, seed);
    println!("Figure 8: daily new TLS connections to the third party");
    println!("day  experiment  control");
    for (d, (e, c)) in s
        .experiment
        .counts()
        .iter()
        .zip(s.control.counts())
        .enumerate()
    {
        if d % 2 == 0 {
            println!("{d:>3}  {e:>10}  {c:>7}");
        }
    }
    println!(
        "reduction during deployment (days {}–{}): {:.1}% | before: {:.1}% | after: {:.1}%\n",
        run.deploy_start_day,
        run.deploy_end_day,
        s.reduction(run.deploy_start_day, run.deploy_end_day) * 100.0,
        s.reduction(0, run.deploy_start_day) * 100.0,
        s.reduction(run.deploy_end_day, run.days) * 100.0
    );
}

fn figure9_bottom(group: &SampleGroup, seed: u64, threads: usize, registry: &mut Registry) {
    let (exp, ctl) =
        ActiveMeasurement::origin_experiment().run_both_threads(group, seed ^ 0xF9, threads);
    registry.merge(&exp.metrics);
    registry.merge(&ctl.metrics);
    println!("Figure 9 (bottom): measured PLT at the deployment CDN");
    print_cdf_quantiles("Control", &Cdf::from_samples(&ctl.plt_ms));
    print_cdf_quantiles("Experiment", &Cdf::from_samples(&exp.plt_ms));
    println!(
        "median PLT change: {} (paper: ≈−1%, 'no worse')\n",
        pct_change(origin_stats::percent_change(
            ctl.median_plt(),
            exp.median_plt()
        ))
    );
}

fn incident(group: &SampleGroup, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed ^ 0x1BC1);
    let inc = MiddleboxIncident::default();
    let (exp, ctl) = inc.simulate(group, 50_000, true, &mut rng);
    println!("§6.7 incident: non-compliant middlebox vs ORIGIN frames");
    println!(
        "experiment arm: {}/{} torn down ({:.2}%) | control arm: {}/{} ({:.2}%)",
        exp.torn_down,
        exp.attempts,
        exp.failure_rate() * 100.0,
        ctl.torn_down,
        ctl.attempts,
        ctl.failure_rate() * 100.0
    );
    let fixed = MiddleboxIncident {
        vendor_fixed: true,
        ..inc
    };
    let (exp2, ctl2) = fixed.simulate(group, 50_000, true, &mut rng);
    println!(
        "after vendor fix (Sept 2022): {} failures across {} connections\n",
        exp2.torn_down + ctl2.torn_down,
        exp2.attempts + ctl2.attempts
    );
    let _ = Treatment::Experiment;
}
