//! Shared experiment harness for the `repro` binary and the Criterion
//! benches.
//!
//! [`run_crawl`] performs the full §3 crawl + §4 model over a
//! synthetic dataset and returns every series the paper's tables and
//! figures need; the deployment experiments (§5) are run separately
//! through `origin-cdn`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_core::certplan::{plan_site, EffectiveChanges, PlanSummary};
use origin_core::characterize::Characterization;
use origin_core::model::{predict, CoalescingGrouping};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig, PROVIDERS};

/// The AS used for the "deployment-CDN only" model line in Figure 9.
pub const DEPLOYMENT_CDN_ASN: u32 = 13335;

/// Per-policy sample vectors for CDFs.
#[derive(Debug, Clone, Default)]
pub struct SeriesSamples {
    /// DNS queries per page.
    pub dns: Vec<f64>,
    /// New TLS connections per page.
    pub tls: Vec<f64>,
    /// Page load times (ms).
    pub plt: Vec<f64>,
}

impl SeriesSamples {
    fn push(&mut self, dns: u64, tls: u64, plt: f64) {
        self.dns.push(dns as f64);
        self.tls.push(tls as f64);
        self.plt.push(plt);
    }

    /// Median of a component.
    pub fn medians(&self) -> (f64, f64, f64) {
        (
            origin_stats::median(&self.dns).unwrap_or(0.0),
            origin_stats::median(&self.tls).unwrap_or(0.0),
            origin_stats::median(&self.plt).unwrap_or(0.0),
        )
    }
}

/// Everything the §3/§4 tables and figures are drawn from.
pub struct CrawlResults {
    /// The generated dataset (zones, certs, AS attribution).
    pub dataset: Dataset,
    /// Streaming characterization (Tables 1–7, Figure 1).
    pub characterization: Characterization,
    /// Measured (Chrome-policy) series.
    pub measured: SeriesSamples,
    /// Ideal IP-coalescing model series (Figure 3 blue, Figure 9 top).
    pub model_ip: SeriesSamples,
    /// Ideal ORIGIN-coalescing model series (Figure 3 green).
    pub model_origin: SeriesSamples,
    /// Deployment-CDN-only model PLTs (Figure 9 dotted).
    pub model_cdn_plt: Vec<f64>,
    /// Certificate plan aggregation (Figures 4–5, Table 8).
    pub plan: PlanSummary,
    /// Per-provider most-effective changes (Table 9).
    pub effective: EffectiveChanges,
}

/// Run the crawl + model over `sites` generated ranks.
pub fn run_crawl(sites: u32, seed: u64) -> CrawlResults {
    let config = DatasetConfig { sites, seed, ..Default::default() };
    let mut dataset = Dataset::generate(config);
    let mut characterization = Characterization::new(sites, config.tranco_total);
    let mut measured = SeriesSamples::default();
    let mut model_ip = SeriesSamples::default();
    let mut model_origin = SeriesSamples::default();
    let mut model_cdn_plt = Vec::new();
    let mut plan = PlanSummary::default();
    let mut effective = EffectiveChanges::new();

    let site_cfgs: Vec<_> = dataset.successful_sites().cloned().collect();
    let loader = PageLoader::new(BrowserKind::Chromium);
    for site in &site_cfgs {
        let page = dataset.page_for(site);

        // §3: measured crawl (fresh browser session per page).
        let mut env = UniverseEnv::new(&mut dataset);
        env.flush_dns();
        let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
        let load = loader.load(&page, &mut env, &mut rng);
        characterization.add(&page, &load);
        measured.push(load.dns_queries(), load.tls_connections(), load.plt());

        // §4.2: model predictions via timeline reconstruction.
        let (ip, _) = predict(&page, &load, CoalescingGrouping::ByIp);
        model_ip.push(ip.dns_queries, ip.tls_connections, ip.plt_ms);
        let (origin, _) = predict(&page, &load, CoalescingGrouping::ByAs);
        model_origin.push(origin.dns_queries, origin.tls_connections, origin.plt_ms);
        let (cdn, _) =
            predict(&page, &load, CoalescingGrouping::BySingleAs(DEPLOYMENT_CDN_ASN));
        model_cdn_plt.push(cdn.plt_ms);

        // §4.3: certificate plan.
        let cert = dataset.universe.cert_for(&site.root_host).cloned();
        let universe = &dataset.universe;
        let site_plan = plan_site(&page, cert.as_ref(), |a, b| {
            if a.registrable() == b.registrable() {
                return true;
            }
            let (x, y) = (universe.asn_of_host(a), universe.asn_of_host(b));
            x != 0 && x == y
        });
        plan.add(&site_plan);
        let provider_label = site
            .provider
            .map(|i| PROVIDERS[i].org)
            .unwrap_or("Self-hosted");
        effective.add(provider_label, &site_plan);
    }

    CrawlResults {
        dataset,
        characterization,
        measured,
        model_ip,
        model_origin,
        model_cdn_plt,
        plan,
        effective,
    }
}

/// Map an ASN to its Table 2 organization name (tail ASes get a
/// generated label).
pub fn asn_label(asn: u32) -> String {
    for p in PROVIDERS.iter() {
        if p.asn == asn {
            return p.org.to_string();
        }
    }
    if asn >= 70_000 {
        format!("Self-hosted AS {asn}")
    } else if asn >= 60_000 {
        format!("Tail provider AS {asn}")
    } else {
        format!("AS {asn}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crawl_produces_all_series() {
        let r = run_crawl(150, 0xBEEF);
        assert!(r.characterization.pages > 50);
        assert_eq!(r.measured.dns.len(), r.characterization.pages as usize);
        assert_eq!(r.model_ip.plt.len(), r.measured.plt.len());
        assert_eq!(r.model_origin.tls.len(), r.measured.tls.len());
        assert_eq!(r.model_cdn_plt.len(), r.measured.plt.len());
        assert_eq!(r.plan.total_sites, r.characterization.pages);
        // Orderings that define the paper's story.
        let (m_dns, m_tls, m_plt) = r.measured.medians();
        let (i_dns, i_tls, i_plt) = r.model_ip.medians();
        let (o_dns, o_tls, o_plt) = r.model_origin.medians();
        assert!(o_dns <= i_dns && i_dns <= m_dns);
        assert!(o_tls <= i_tls && i_tls <= m_tls);
        assert!(o_plt <= i_plt && i_plt <= m_plt);
    }

    #[test]
    fn labels_resolve() {
        assert_eq!(asn_label(13335), "Cloudflare");
        assert_eq!(asn_label(15169), "Google");
        assert!(asn_label(60_005).contains("Tail"));
        assert!(asn_label(70_123).contains("Self-hosted"));
    }
}
