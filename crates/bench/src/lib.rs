//! Shared experiment harness for the `repro` binary and the Criterion
//! benches.
//!
//! [`run_crawl`] performs the full §3 crawl + §4 model over a
//! synthetic dataset and returns every series the paper's tables and
//! figures need; the deployment experiments (§5) are run separately
//! through `origin-cdn`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use origin_browser::{
    BrowserKind, FaultSession, PageLoader, UniverseEnv, VisitArena, REDUNDANCY_KINDS,
};
use origin_core::certplan::{plan_site, EffectiveChanges, PlanSummary};
use origin_core::characterize::Characterization;
use origin_core::model::predict_counts3;
#[cfg(test)]
use origin_core::model::{predict_counts, CoalescingGrouping};
use origin_metrics::Registry;
use origin_netsim::{FaultProfile, SimDuration, SimRng};
use origin_obs::window::{DEFAULT_SPACING, DEFAULT_WINDOW};
use origin_obs::{FlightRecorder, Timeline, VisitObs, VisitSinks};
use origin_trace::{Sampler, Tracer};
use origin_webgen::{Dataset, DatasetConfig, SiteConfig, PROVIDERS};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The AS used for the "deployment-CDN only" model line in Figure 9.
pub const DEPLOYMENT_CDN_ASN: u32 = 13335;

/// Per-policy sample vectors for CDFs.
#[derive(Debug, Clone, Default)]
pub struct SeriesSamples {
    /// DNS queries per page.
    pub dns: Vec<f64>,
    /// New TLS connections per page.
    pub tls: Vec<f64>,
    /// Page load times (ms).
    pub plt: Vec<f64>,
}

impl SeriesSamples {
    fn push(&mut self, dns: u64, tls: u64, plt: f64) {
        self.dns.push(dns as f64);
        self.tls.push(tls as f64);
        self.plt.push(plt);
    }

    /// Append another shard's samples. Merging rank-ordered shards in
    /// rank order reproduces the sequential sample order exactly.
    pub fn merge(&mut self, other: SeriesSamples) {
        self.dns.extend(other.dns);
        self.tls.extend(other.tls);
        self.plt.extend(other.plt);
    }

    /// Median of a component.
    pub fn medians(&self) -> (f64, f64, f64) {
        (
            origin_stats::median(&self.dns).unwrap_or(0.0),
            origin_stats::median(&self.tls).unwrap_or(0.0),
            origin_stats::median(&self.plt).unwrap_or(0.0),
        )
    }
}

/// Everything the §3/§4 tables and figures are drawn from.
pub struct CrawlResults {
    /// The generated dataset (zones, certs, AS attribution).
    pub dataset: Dataset,
    /// Streaming characterization (Tables 1–7, Figure 1).
    pub characterization: Characterization,
    /// Measured (Chrome-policy) series.
    pub measured: SeriesSamples,
    /// Ideal IP-coalescing model series (Figure 3 blue, Figure 9 top).
    pub model_ip: SeriesSamples,
    /// Ideal ORIGIN-coalescing model series (Figure 3 green).
    pub model_origin: SeriesSamples,
    /// Deployment-CDN-only model PLTs (Figure 9 dotted).
    pub model_cdn_plt: Vec<f64>,
    /// Certificate plan aggregation (Figures 4–5, Table 8).
    pub plan: PlanSummary,
    /// Per-provider most-effective changes (Table 9).
    pub effective: EffectiveChanges,
    /// Work counters and simulated phase totals for the whole crawl
    /// (`crawl.*`, `browser.*`, `dns.*`, `certplan.*`, `sim.*`).
    /// Deterministic across thread counts.
    pub metrics: Registry,
    /// Span trace of the sampled visits (empty unless the crawl ran
    /// with a [`Sampler`]). Merged along the same rank-ordered shard
    /// spine as everything else, so the buffer — and its exported
    /// JSON — is byte-identical for any thread count.
    pub trace: Tracer,
    /// Streaming timeline aggregate (present when the crawl ran with
    /// an [`ObsConfig`]). Window-keyed merge is order-free, so the
    /// timeline — and its exported JSON — is byte-identical for any
    /// thread count.
    pub timeline: Option<Timeline>,
    /// Merged flight recorder (present when the crawl ran with an
    /// [`ObsConfig`]): carries the crawl-wide event count and, if any
    /// visit reached the fault-abort threshold, the lowest-ranked
    /// trigger's captured events.
    pub flight: Option<FlightRecorder>,
}

/// Streaming-observability configuration for an observed crawl.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Tumbling-window width; `None` uses
    /// [`origin_obs::window::DEFAULT_WINDOW`].
    pub window: Option<SimDuration>,
    /// Fault-abort threshold: a visit whose injected-fault event count
    /// reaches this is captured by the flight recorder (the lowest
    /// such rank wins across shards). `None` disables capture.
    pub fault_abort: Option<u64>,
    /// Write the current visit's flight events here if a crawl worker
    /// panics (best-effort crash forensics).
    pub panic_dump: Option<std::path::PathBuf>,
    /// Flight-recorder ring capacity; `None` uses
    /// [`origin_obs::flight::DEFAULT_CAPACITY`]. Long serving runs
    /// want a deeper ring than the crawl default.
    pub flight_capacity: Option<usize>,
}

/// Per-shard streaming-observability accumulators, plus the reused
/// per-visit observation scratch.
struct ObsAccum {
    timeline: Timeline,
    flight: FlightRecorder,
    visit: VisitObs,
    fault_abort: Option<u64>,
}

impl ObsAccum {
    fn new(config: &ObsConfig) -> Self {
        ObsAccum {
            timeline: Timeline::new(config.window.unwrap_or(DEFAULT_WINDOW), DEFAULT_SPACING),
            flight: FlightRecorder::new(
                config
                    .flight_capacity
                    .unwrap_or(origin_obs::flight::DEFAULT_CAPACITY),
            ),
            visit: VisitObs::default(),
            fault_abort: config.fault_abort,
        }
    }

    fn merge(&mut self, other: &ObsAccum) {
        self.timeline.merge(&other.timeline);
        self.flight.merge(&other.flight);
    }
}

/// One shard's worth of crawl output: every accumulator a worker fills
/// while walking its contiguous rank range. Merging shards in rank
/// order reconstructs exactly what a sequential pass would produce.
struct ShardAccum {
    characterization: Characterization,
    measured: SeriesSamples,
    model_ip: SeriesSamples,
    model_origin: SeriesSamples,
    model_cdn_plt: Vec<f64>,
    plan: PlanSummary,
    effective: EffectiveChanges,
    metrics: Registry,
    trace: Tracer,
    obs: Option<ObsAccum>,
}

impl ShardAccum {
    fn new(sites: u32, tranco_total: u32, obs: Option<&ObsConfig>) -> Self {
        ShardAccum {
            characterization: Characterization::new(sites, tranco_total),
            measured: SeriesSamples::default(),
            model_ip: SeriesSamples::default(),
            model_origin: SeriesSamples::default(),
            model_cdn_plt: Vec::new(),
            plan: PlanSummary::default(),
            effective: EffectiveChanges::new(),
            metrics: Registry::new(),
            trace: Tracer::new(),
            obs: obs.map(ObsAccum::new),
        }
    }

    fn merge(&mut self, other: ShardAccum) {
        self.characterization.merge(other.characterization);
        self.measured.merge(other.measured);
        self.model_ip.merge(other.model_ip);
        self.model_origin.merge(other.model_origin);
        self.model_cdn_plt.extend(other.model_cdn_plt);
        self.plan.merge(other.plan);
        self.effective.merge(other.effective);
        self.metrics.merge(&other.metrics);
        self.trace.merge(other.trace);
        if let (Some(mine), Some(theirs)) = (self.obs.as_mut(), other.obs.as_ref()) {
            mine.merge(theirs);
        }
    }
}

/// Crawl + model one site into `acc`. Every site is self-contained —
/// flushed DNS (fresh browser session), resolver-stat deltas, and an
/// RNG seeded purely from the site's own `page_seed` — so no state
/// crosses site boundaries, which is what makes sharding over threads
/// exact rather than approximate.
///
/// The `env` is *reused* across a worker's sites purely as a cache
/// carrier: everything it memoizes (host facts) is a pure function of
/// the immutable dataset, and everything per-visit (DNS cache,
/// rotation serials, stats) is flushed here. A fresh env per site
/// produces byte-identical output, just slower. The `scratch` and
/// `arena` likewise carry only buffer capacity between visits — page
/// materialization and the load recycle their working memory through
/// them instead of re-allocating it per site.
#[allow(clippy::too_many_arguments)] // one site, its world, and the recycled buffers
fn crawl_site(
    dataset: &Dataset,
    loader: &PageLoader,
    env: &mut UniverseEnv,
    site: &SiteConfig,
    acc: &mut ShardAccum,
    sampler: Option<&Sampler>,
    faults: Option<&FaultProfile>,
    scratch: &mut origin_webgen::PageScratch,
    arena: &mut VisitArena,
) {
    let page = dataset.page_for_with(site, scratch);

    // §3: measured crawl (fresh browser session per page).
    env.flush_dns();
    let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
    // Fault injection, like tracing, is a per-site affair: the session
    // draws from its own RNG, seeded purely from the site, so sharding
    // stays exact under any profile (and an all-zero profile draws
    // nothing at all).
    let mut fault_session = faults.map(|p| FaultSession::new(*p, site.page_seed ^ 0xFA017CE5));
    // Streaming observability rides in the shard accumulator: give the
    // flight recorder its visit context and reset the per-visit
    // observation scratch before the load fills both.
    if let Some(o) = acc.obs.as_mut() {
        o.flight.begin_visit(site.rank);
        o.flight
            .record(0, "visit.begin", site.rank as u64, site.root_host.as_str());
        o.visit.clear();
    }
    // Tracing observes the simulation without touching its RNG, so a
    // traced load returns the same PageLoad as an untraced one; the
    // sample set is a pure function of each site's rank.
    let load = if sampler.is_some_and(|s| s.keep(site.rank)) {
        acc.trace.begin_visit(
            site.rank as u64,
            &format!("site-{} {}", site.rank, site.root_host.as_str()),
        );
        loader.load_observed(
            &page,
            env,
            &mut rng,
            fault_session.as_mut(),
            Some(&mut acc.metrics),
            Some(&mut acc.trace),
            arena,
            sinks_of(acc.obs.as_mut()),
        )
    } else {
        loader.load_observed(
            &page,
            env,
            &mut rng,
            fault_session.as_mut(),
            Some(&mut acc.metrics),
            None,
            arena,
            sinks_of(acc.obs.as_mut()),
        )
    };
    let resolver_stats = env.take_resolver_stats();
    resolver_stats.record_into(&mut acc.metrics);
    acc.characterization.add(&page, &load);
    acc.measured
        .push(load.dns_queries(), load.tls_connections(), load.plt());

    // §4.2: model predictions via timeline reconstruction (counts
    // only — the reconstructed timelines themselves are not kept).
    // One fused walk produces all three groupings.
    let [ip, origin, cdn] = predict_counts3(&page, &load, DEPLOYMENT_CDN_ASN);
    acc.model_ip
        .push(ip.dns_queries, ip.tls_connections, ip.plt_ms);
    acc.model_origin
        .push(origin.dns_queries, origin.tls_connections, origin.plt_ms);
    acc.model_cdn_plt.push(cdn.plt_ms);

    // Complete the visit's observation with the pieces the loader
    // can't see — resolver stats and model predictions — then fold it
    // into the timeline and arm the fault-abort trigger.
    if let Some(o) = acc.obs.as_mut() {
        let v = &mut o.visit;
        resolver_stats.record_obs(v);
        v.model_ip_tls = ip.tls_connections;
        v.model_origin_tls = origin.tls_connections;
        v.plt_ideal_ip_us = origin_web::har::ms_to_us(ip.plt_ms);
        v.plt_ideal_origin_us = origin_web::har::ms_to_us(origin.plt_ms);
        o.flight
            .record(v.plt_us, "visit.end", v.plt_us, site.root_host.as_str());
        o.timeline.record_visit(v);
        if o.fault_abort
            .is_some_and(|threshold| v.fault_events >= threshold)
        {
            o.flight.capture_trigger();
        }
    }

    // §4.3: certificate plan. `plan_site` always passes the root host
    // as the closure's first argument, so its registrable suffix and
    // ASN hoist out of the per-resource loop.
    let cert = dataset.universe.cert_for(&site.root_host);
    let universe = &dataset.universe;
    let root_reg = site.root_host.registrable_str();
    let root_asn = universe.asn_of_host(&site.root_host);
    let site_plan = plan_site(&page, cert, |a, b| {
        debug_assert_eq!(a, &site.root_host);
        if root_reg == b.registrable_str() {
            return true;
        }
        root_asn != 0 && root_asn == universe.asn_of_host(b)
    });
    acc.plan.add(&site_plan);
    let provider_label = site
        .provider
        .map(|i| PROVIDERS[i].org)
        .unwrap_or("Self-hosted");
    acc.effective.add(provider_label, &site_plan);

    // Hand the visit's buffers back for the worker's next site.
    scratch.recycle(page);
    arena.recycle(load);
}

/// Run the crawl + model over `sites` generated ranks, using all
/// available cores. Results are bit-identical for any thread count;
/// see [`run_crawl_threads`].
pub fn run_crawl(sites: u32, seed: u64) -> CrawlResults {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_crawl_threads(sites, seed, threads)
}

/// Run the crawl + model over `sites` generated ranks on `threads`
/// worker threads.
///
/// The site list is cut into contiguous rank-ordered chunks (a few per
/// thread, so a slow chunk doesn't idle the other workers); workers
/// claim chunks off a shared counter, crawl each site into a
/// per-chunk `ShardAccum`, and the chunks are merged back in rank
/// order. Because each site's RNG is seeded only from its own
/// `page_seed` and each page load runs in its own session environment,
/// the merged output is byte-identical to a sequential crawl — the
/// thread count changes wall-clock time and nothing else.
pub fn run_crawl_threads(sites: u32, seed: u64, threads: usize) -> CrawlResults {
    run_crawl_traced(sites, seed, threads, None)
}

/// [`run_crawl_threads`] plus deterministic trace collection: visits
/// whose rank the `sampler` keeps are loaded through
/// [`PageLoader::load_traced`] into per-shard [`Tracer`] buffers that
/// merge along the rank-ordered chunk spine. Passing `None` disables
/// tracing entirely (and costs nothing).
pub fn run_crawl_traced(
    sites: u32,
    seed: u64,
    threads: usize,
    sampler: Option<&Sampler>,
) -> CrawlResults {
    run_crawl_faulted(sites, seed, threads, sampler, None)
}

/// [`run_crawl_traced`] plus deterministic fault injection: every page
/// visit runs under a per-site [`FaultSession`] derived from `faults`,
/// suffering 421s on coalesced requests, §6.7 middlebox teardowns and
/// packet drops, and paying the client-side recovery costs. When the
/// profile's `middlebox` rate is nonzero the crawl models the
/// mid-deployment world the incident actually hit: provider-hosted
/// servers advertise ORIGIN (which the Chromium-policy crawl ignores
/// for coalescing, so clean-path decisions are unchanged), and a
/// fraction of fresh connections cross the hostile middlebox.
///
/// For any fixed profile the merged output is byte-identical at any
/// thread count; the all-zero profile (and `None`) reproduces a clean
/// crawl exactly, `fault.*` keys and all (they never materialize).
pub fn run_crawl_faulted(
    sites: u32,
    seed: u64,
    threads: usize,
    sampler: Option<&Sampler>,
    faults: Option<&FaultProfile>,
) -> CrawlResults {
    run_crawl_mixed(sites, seed, threads, sampler, faults, 0.0)
}

/// [`run_crawl_faulted`] over a mixed-protocol universe: a
/// `legacy_share` fraction of sites is regenerated as legacy HTTP/1.1
/// deployments (domain-sharded assets, no h2 in the server's ALPN
/// advertisement; see `origin_webgen::DatasetConfig::legacy_share`).
/// At `0.0` this *is* [`run_crawl_faulted`] — same dataset, same
/// bytes — and every entry point above bottoms out here.
///
/// Legacy visits drive the sans-IO `origin-h1` machine per request and
/// feed the `h1.*` counters, including the per-policy
/// `h1.redundant.*` counts a [`RedundancyReport`] is built from.
pub fn run_crawl_mixed(
    sites: u32,
    seed: u64,
    threads: usize,
    sampler: Option<&Sampler>,
    faults: Option<&FaultProfile>,
    legacy_share: f64,
) -> CrawlResults {
    run_crawl_h3(sites, seed, threads, sampler, faults, legacy_share, 0.0)
}

/// [`run_crawl_mixed`] over an HTTP/3 universe: an `h3_share` fraction
/// of (non-legacy) sites deploys QUIC (Alt-Svc advertisement, 0-RTT
/// resumption, QPACK, connection-ID rotation; see
/// `origin_webgen::DatasetConfig::h3_share`). At `0.0` this *is*
/// [`run_crawl_mixed`] — same dataset, same bytes.
///
/// H3 visits feed the `h3.*` counters an [`H3Report`] is built from.
#[allow(clippy::too_many_arguments)] // one more universe axis than run_crawl_mixed
pub fn run_crawl_h3(
    sites: u32,
    seed: u64,
    threads: usize,
    sampler: Option<&Sampler>,
    faults: Option<&FaultProfile>,
    legacy_share: f64,
    h3_share: f64,
) -> CrawlResults {
    run_crawl_observed(
        sites,
        seed,
        threads,
        sampler,
        faults,
        legacy_share,
        h3_share,
        None,
    )
}

/// Borrow a shard's observability sinks for one page load (the merge
/// identity — both sinks absent — when the crawl runs unobserved).
fn sinks_of(obs: Option<&mut ObsAccum>) -> VisitSinks<'_> {
    match obs {
        Some(o) => VisitSinks {
            flight: Some(&mut o.flight),
            visit: Some(&mut o.visit),
        },
        None => VisitSinks::default(),
    }
}

/// [`run_crawl_mixed`] plus streaming observability: when `obs` is set,
/// every visit feeds a tumbling-window [`Timeline`] on the open-loop
/// simulated timeline and a bounded per-worker [`FlightRecorder`], and
/// the merged results carry both (see [`CrawlResults::timeline`]).
///
/// The timeline's window-keyed merge is commutative and associative, so
/// the observed output — like everything else here — is byte-identical
/// at any thread count. Passing `None` makes this exactly
/// [`run_crawl_mixed`]: no observation state is allocated, no `obs.*`
/// counters materialize, and every exported byte matches an unobserved
/// crawl. Every crawl entry point bottoms out here.
#[allow(clippy::too_many_arguments)] // the full crawl matrix: world, policies, observation
pub fn run_crawl_observed(
    sites: u32,
    seed: u64,
    threads: usize,
    sampler: Option<&Sampler>,
    faults: Option<&FaultProfile>,
    legacy_share: f64,
    h3_share: f64,
    obs: Option<&ObsConfig>,
) -> CrawlResults {
    let threads = threads.max(1);
    let origin_advertised = faults.is_some_and(|p| p.middlebox > 0.0);
    let config = DatasetConfig {
        sites,
        seed,
        legacy_share,
        h3_share,
        ..Default::default()
    };
    let dataset = Dataset::generate(config);
    let site_cfgs: Vec<SiteConfig> = dataset.successful_sites().cloned().collect();

    // Over-split so chunk-duration variance load-balances; contiguous
    // chunks keep the rank order trivially reconstructable.
    let n_chunks = (threads * 4).min(site_cfgs.len()).max(1);
    let chunk_size = site_cfgs.len().div_ceil(n_chunks);
    let next_chunk = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<ShardAccum>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n_chunks) {
            scope.spawn(|| {
                let loader = PageLoader::new(BrowserKind::Chromium);
                // One env per worker: its host-fact cache warms over
                // the whole run; crawl_site flushes all per-visit
                // state, so sharding stays exact (see crawl_site).
                let mut env = UniverseEnv::new(&dataset);
                // Per-worker recycled buffers: page materialization
                // scratch and the loader's visit arena (capacity-only
                // state; see crawl_site).
                let mut scratch = origin_webgen::PageScratch::new();
                let mut arena = VisitArena::new();
                if origin_advertised {
                    env.origin_enabled_asns = PROVIDERS.iter().map(|p| p.asn).collect();
                }
                loop {
                    let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    // Ceil-sized chunks can overrun the tail: clamp,
                    // leaving trailing chunks empty (merge identity).
                    let start = (chunk * chunk_size).min(site_cfgs.len());
                    let end = (start + chunk_size).min(site_cfgs.len());
                    let mut acc = ShardAccum::new(sites, config.tranco_total, obs);
                    let mut run = |acc: &mut ShardAccum| {
                        for site in &site_cfgs[start..end] {
                            crawl_site(
                                &dataset,
                                &loader,
                                &mut env,
                                site,
                                acc,
                                sampler,
                                faults,
                                &mut scratch,
                                &mut arena,
                            );
                        }
                    };
                    match obs.and_then(|o| o.panic_dump.as_ref()) {
                        // Crash forensics: if a visit panics, dump the
                        // worker's ring — ending with the events of the
                        // visit that died — before propagating.
                        Some(dump_path) => {
                            let caught =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    run(&mut acc)
                                }));
                            if let Err(payload) = caught {
                                if let Some(o) = acc.obs.as_ref() {
                                    let _ =
                                        std::fs::write(dump_path, o.flight.panic_snapshot_json());
                                }
                                std::panic::resume_unwind(payload);
                            }
                        }
                        None => run(&mut acc),
                    }
                    *slots[chunk]
                        .lock()
                        .expect("crawl shard slot poisoned by a worker panic") = Some(acc);
                }
            });
        }
    });

    // Rank-ordered merge: chunk 0, 1, 2, … — the deterministic spine.
    // (The timeline and flight merges are order-free anyway; riding the
    // same spine costs nothing and keeps one mental model.)
    let mut total = ShardAccum::new(sites, config.tranco_total, obs);
    for slot in slots {
        let acc = slot
            .into_inner()
            .expect("crawl shard slot poisoned by a worker panic")
            .expect("every chunk was claimed and completed");
        total.merge(acc);
    }

    // Crawl-wide totals recorded once, after the rank-ordered merge.
    total.characterization.record_into(&mut total.metrics);
    total.plan.record_into(&mut total.metrics);
    // Observability counters exist only on observed runs, so an
    // unobserved export stays byte-identical to the pre-obs schema —
    // the same absent-subsystem rule `fault.*`/`h1.*` follow.
    if let Some(o) = &total.obs {
        total
            .metrics
            .add("obs.flight_events", o.flight.events_recorded());
        total.metrics.add("obs.visits", o.timeline.total_visits());
        total
            .metrics
            .add("obs.windows", o.timeline.num_windows() as u64);
    }

    let (timeline, flight) = match total.obs {
        Some(o) => (Some(o.timeline), Some(o.flight)),
        None => (None, None),
    };
    CrawlResults {
        dataset,
        characterization: total.characterization,
        measured: total.measured,
        model_ip: total.model_ip,
        model_origin: total.model_origin,
        model_cdn_plt: total.model_cdn_plt,
        plan: total.plan,
        effective: total.effective,
        metrics: total.metrics,
        trace: total.trace,
        timeline,
        flight,
    }
}

/// The `fault.*` counter names a resilience report carries, in export
/// order. Fixed here so the report schema is stable even when a
/// profile never fires a given fault class.
const FAULT_COUNTERS: [&str; 7] = [
    "fault.corruptions",
    "fault.drops",
    "fault.middlebox_teardowns",
    "fault.misdirected_421",
    "fault.origin_suppressed",
    "fault.pool_evictions",
    "fault.retries",
];

/// Clean-vs-faulted comparison of two crawls over the same dataset:
/// what the profile cost in page load time and in coalescing.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// The injected profile, in `FaultProfile::parse` form.
    pub profile: String,
    /// Pages crawled (identical in both runs by construction).
    pub pages: u64,
    /// `fault.*` counter values from the faulted run, in
    /// `FAULT_COUNTERS` order (zeros included — stable schema).
    pub counters: Vec<(&'static str, u64)>,
    /// Retransmit backoff intervals served and their total sim time.
    pub backoff: origin_metrics::PhaseStat,
    /// (median PLT ms, coalescing rate, connections opened): clean.
    pub clean: (f64, f64, u64),
    /// Same triple for the faulted run.
    pub faulted: (f64, f64, u64),
}

impl ResilienceReport {
    /// Compare a faulted crawl against the clean crawl of the same
    /// dataset. `clean` and `faulted` must come from the same
    /// `(sites, seed)` — the report is meaningless otherwise.
    pub fn build(clean: &CrawlResults, faulted: &CrawlResults, profile: &FaultProfile) -> Self {
        assert_eq!(
            clean.characterization.pages, faulted.characterization.pages,
            "resilience report requires both crawls to cover the same sites"
        );
        fn triple(r: &CrawlResults) -> (f64, f64, u64) {
            let requests = r.metrics.counter("browser.requests");
            let coalesced = r.metrics.counter("browser.coalesced_requests");
            let rate = if requests > 0 {
                coalesced as f64 / requests as f64
            } else {
                0.0
            };
            let (_, _, plt) = r.measured.medians();
            (plt, rate, r.metrics.counter("browser.connections_opened"))
        }
        ResilienceReport {
            profile: profile.spec(),
            pages: clean.characterization.pages,
            counters: FAULT_COUNTERS
                .iter()
                .map(|&name| (name, faulted.metrics.counter(name)))
                .collect(),
            backoff: faulted.metrics.phase("fault.backoff").unwrap_or_default(),
            clean: triple(clean),
            faulted: triple(faulted),
        }
    }

    /// Median PLT inflation of the faulted run, in percent.
    pub fn plt_inflation_pct(&self) -> f64 {
        if self.clean.0 > 0.0 {
            (self.faulted.0 - self.clean.0) / self.clean.0 * 100.0
        } else {
            0.0
        }
    }

    /// Relative loss of coalescing (percent of the clean rate).
    pub fn coalescing_degradation_pct(&self) -> f64 {
        if self.clean.1 > 0.0 {
            (self.clean.1 - self.faulted.1) / self.clean.1 * 100.0
        } else {
            0.0
        }
    }

    /// Serialise to JSON. Fixed-precision formatting of the derived
    /// floats keeps the bytes identical across thread counts (the
    /// inputs already are) and free of wall-clock values.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"profile\": \"{}\",", self.profile);
        let _ = writeln!(out, "  \"pages\": {},", self.pages);
        out.push_str("  \"fault_counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {v}{comma}");
        }
        out.push_str("  },\n");
        let _ = writeln!(
            out,
            "  \"fault_backoff\": {{\"count\": {}, \"total_us\": {}}},",
            self.backoff.count,
            self.backoff.total.as_micros()
        );
        for (key, (plt, rate, conns)) in [("clean", self.clean), ("faulted", self.faulted)] {
            let _ = writeln!(
                out,
                "  \"{key}\": {{\"median_plt_ms\": {plt:.3}, \"coalescing_rate\": {rate:.6}, \"connections_opened\": {conns}}},"
            );
        }
        let _ = writeln!(
            out,
            "  \"impact\": {{\"plt_inflation_pct\": {:.3}, \"coalescing_degradation_pct\": {:.3}, \"extra_connections\": {}}}",
            self.plt_inflation_pct(),
            self.coalescing_degradation_pct(),
            self.faulted.2 as i64 - self.clean.2 as i64
        );
        out.push_str("}\n");
        out
    }
}

/// The redundant-connections analysis (Sander et al.): for every
/// HTTP/1.1 connection a mixed-protocol crawl opened, how many would
/// the h2 coalescing rules of each policy have merged onto a
/// connection already in the pool?
///
/// Built from a single [`run_crawl_mixed`] result — the loader probes
/// the pool with the protocol gates removed (`redundant_if_h2`) at the
/// moment each legacy connection is opened, so the counts are exact,
/// per-policy, and deterministic. In a pure-h2 universe
/// (`legacy_share == 0`) every field except `pages` is zero.
#[derive(Debug, Clone)]
pub struct RedundancyReport {
    /// The `--legacy-share` the crawl ran with.
    pub legacy_share: f64,
    /// Pages crawled.
    pub pages: u64,
    /// Pages served by legacy HTTP/1.1 sites.
    pub legacy_pages: u64,
    /// Requests that ran over the HTTP/1.1 machine.
    pub h1_requests: u64,
    /// HTTP/1.1 connections opened (the redundancy denominators).
    pub h1_connections: u64,
    /// Requests that reused a kept-alive HTTP/1.1 connection.
    pub keepalive_reuse: u64,
    /// Close-delimited responses (connection consumed by framing).
    pub close_delimited: u64,
    /// Per-policy redundant-connection counts, in
    /// [`REDUNDANCY_KINDS`] order (zeros included — stable schema).
    pub redundant: Vec<(&'static str, u64)>,
}

impl RedundancyReport {
    /// Read the `h1.*` counters of a mixed crawl into report form.
    pub fn build(crawl: &CrawlResults, legacy_share: f64) -> Self {
        RedundancyReport {
            legacy_share,
            pages: crawl.characterization.pages,
            legacy_pages: crawl.metrics.counter("h1.pages"),
            h1_requests: crawl.metrics.counter("h1.requests"),
            h1_connections: crawl.metrics.counter("h1.connections_opened"),
            keepalive_reuse: crawl.metrics.counter("h1.keepalive_reuse"),
            close_delimited: crawl.metrics.counter("h1.close_delimited"),
            redundant: REDUNDANCY_KINDS
                .iter()
                .map(|&(_, name)| {
                    (
                        name.trim_start_matches("h1.redundant."),
                        crawl.metrics.counter(name),
                    )
                })
                .collect(),
        }
    }

    /// Fraction of opened h1 connections a policy would have merged.
    pub fn redundant_share(&self, policy: &str) -> f64 {
        let count = self
            .redundant
            .iter()
            .find(|&&(name, _)| name == policy)
            .map_or(0, |&(_, v)| v);
        if self.h1_connections > 0 {
            count as f64 / self.h1_connections as f64
        } else {
            0.0
        }
    }

    /// Serialise to JSON. Fixed-precision formatting keeps the bytes
    /// identical across thread counts (the counter inputs already
    /// are) and free of wall-clock values.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"legacy_share\": {:.4},", self.legacy_share);
        let _ = writeln!(out, "  \"pages\": {},", self.pages);
        let _ = writeln!(out, "  \"legacy_pages\": {},", self.legacy_pages);
        out.push_str("  \"h1\": {\n");
        let _ = writeln!(out, "    \"requests\": {},", self.h1_requests);
        let _ = writeln!(out, "    \"connections_opened\": {},", self.h1_connections);
        let _ = writeln!(out, "    \"keepalive_reuse\": {},", self.keepalive_reuse);
        let _ = writeln!(out, "    \"close_delimited\": {}", self.close_delimited);
        out.push_str("  },\n");
        out.push_str("  \"redundant_connections\": {\n");
        for (i, (name, v)) in self.redundant.iter().enumerate() {
            let comma = if i + 1 < self.redundant.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    \"{name}\": {{\"count\": {v}, \"share\": {:.6}}}{comma}",
                self.redundant_share(name)
            );
        }
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

/// The `h3.*` counter names an H3 report carries, in export order.
/// Fixed here so the report schema is stable even when a crawl never
/// exercises a given part of the QUIC path.
pub const H3_COUNTERS: [&str; 16] = [
    "h3.addr_validated_skips",
    "h3.altsvc_learned",
    "h3.altsvc_suppressed",
    "h3.amplification_rtts",
    "h3.cids_issued",
    "h3.cids_retired",
    "h3.connections",
    "h3.handshakes_0rtt",
    "h3.handshakes_1rtt",
    "h3.pages",
    "h3.qpack_evictions",
    "h3.qpack_instructions",
    "h3.requests",
    "h3.resumed_cross_host",
    "h3.tickets_issued",
    "h3.zero_rtt_rejected",
];

/// H2-vs-h3 comparison of two crawls over the same site list: what
/// deploying QUIC on an `h3_share` fraction of origins changed in
/// page load time, connection setup, and resumption behaviour.
///
/// Built from a baseline [`run_crawl_mixed`] (h3 share 0) and an
/// [`run_crawl_h3`] over the same `(sites, seed)` — the §4 best-case
/// question re-asked under h3 semantics: 0-RTT resumption and shared
/// address validation make the *setup* cheaper, but coalescing is
/// still gated on certificate coverage, and RFC 8336 ORIGIN frames
/// never apply to QUIC connections.
#[derive(Debug, Clone)]
pub struct H3Report {
    /// The `--h3-share` the h3 crawl ran with.
    pub h3_share: f64,
    /// Pages crawled (identical in both runs by construction).
    pub pages: u64,
    /// Pages served by h3-deploying sites.
    pub h3_pages: u64,
    /// `h3.*` counter values from the h3 run, in [`H3_COUNTERS`]
    /// order (zeros included — stable schema).
    pub counters: Vec<(&'static str, u64)>,
    /// (median DNS queries, median new TLS connections, median PLT
    /// ms, connections opened): the h3-share-0 baseline.
    pub baseline: (f64, f64, f64, u64),
    /// Same tuple for the h3 run.
    pub h3_run: (f64, f64, f64, u64),
}

impl H3Report {
    /// Compare an h3 crawl against the baseline crawl of the same
    /// dataset. Both must come from the same `(sites, seed)` — the
    /// report is meaningless otherwise.
    pub fn build(baseline: &CrawlResults, h3: &CrawlResults, h3_share: f64) -> Self {
        assert_eq!(
            baseline.characterization.pages, h3.characterization.pages,
            "h3 report requires both crawls to cover the same sites"
        );
        fn tuple(r: &CrawlResults) -> (f64, f64, f64, u64) {
            let (dns, tls, plt) = r.measured.medians();
            (
                dns,
                tls,
                plt,
                r.metrics.counter("browser.connections_opened"),
            )
        }
        H3Report {
            h3_share,
            pages: baseline.characterization.pages,
            h3_pages: h3.metrics.counter("h3.pages"),
            counters: H3_COUNTERS
                .iter()
                .map(|&name| (name, h3.metrics.counter(name)))
                .collect(),
            baseline: tuple(baseline),
            h3_run: tuple(h3),
        }
    }

    /// Value of one `h3.*` counter from the h3 run.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Median-PLT change of the h3 run relative to the baseline, in
    /// percent (negative = h3 made pages faster).
    pub fn plt_delta_pct(&self) -> f64 {
        if self.baseline.2 > 0.0 {
            (self.h3_run.2 - self.baseline.2) / self.baseline.2 * 100.0
        } else {
            0.0
        }
    }

    /// Fraction of QUIC connections that resumed with 0-RTT.
    pub fn zero_rtt_share(&self) -> f64 {
        let conns = self.counter("h3.connections");
        if conns > 0 {
            self.counter("h3.handshakes_0rtt") as f64 / conns as f64
        } else {
            0.0
        }
    }

    /// Serialise to JSON. Fixed-precision formatting of the derived
    /// floats keeps the bytes identical across thread counts (the
    /// counter inputs already are) and free of wall-clock values.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"h3_share\": {:.4},", self.h3_share);
        let _ = writeln!(out, "  \"pages\": {},", self.pages);
        let _ = writeln!(out, "  \"h3_pages\": {},", self.h3_pages);
        out.push_str("  \"h3_counters\": {\n");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let comma = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{name}\": {v}{comma}");
        }
        out.push_str("  },\n");
        for (key, (dns, tls, plt, conns)) in [("baseline", self.baseline), ("h3", self.h3_run)] {
            let _ = writeln!(
                out,
                "  \"{key}\": {{\"median_dns\": {dns:.3}, \"median_tls\": {tls:.3}, \"median_plt_ms\": {plt:.3}, \"connections_opened\": {conns}}},"
            );
        }
        let _ = writeln!(
            out,
            "  \"impact\": {{\"plt_delta_pct\": {:.3}, \"tls_median_delta\": {:.3}, \"zero_rtt_share\": {:.6}, \"extra_connections\": {}}}",
            self.plt_delta_pct(),
            self.h3_run.1 - self.baseline.1,
            self.zero_rtt_share(),
            self.h3_run.3 as i64 - self.baseline.3 as i64
        );
        out.push_str("}\n");
        out
    }
}

/// Trace one ranked site's visit in full: regenerate the dataset,
/// find the site, and run exactly the load `crawl_site` would —
/// same environment, same RNG seed — with a [`Tracer`] attached.
/// Returns `None` when no successful site has that rank.
///
/// Because tracing never draws from the load's RNG, the returned
/// [`origin_web::PageLoad`] is identical to what the full crawl
/// measures for this rank, and the trace buffer is identical to the
/// slice a sampled whole-run trace would hold for it.
pub fn trace_site(sites: u32, seed: u64, rank: u32) -> Option<(origin_web::PageLoad, Tracer)> {
    let dataset = Dataset::generate(DatasetConfig {
        sites,
        seed,
        ..Default::default()
    });
    let site = dataset.successful_sites().find(|s| s.rank == rank)?.clone();
    let page = dataset.page_for(&site);
    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut env = UniverseEnv::new(&dataset);
    env.flush_dns();
    let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
    let mut trace = Tracer::new();
    trace.begin_visit(
        rank as u64,
        &format!("site-{} {}", rank, site.root_host.as_str()),
    );
    let load = loader.load_traced(&page, &mut env, &mut rng, None, &mut trace);
    Some((load, trace))
}

/// Map an ASN to its Table 2 organization name (tail ASes get a
/// generated label).
pub fn asn_label(asn: u32) -> String {
    for p in PROVIDERS.iter() {
        if p.asn == asn {
            return p.org.to_string();
        }
    }
    if asn >= 70_000 {
        format!("Self-hosted AS {asn}")
    } else if asn >= 60_000 {
        format!("Tail provider AS {asn}")
    } else {
        format!("AS {asn}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crawl_produces_all_series() {
        let r = run_crawl(150, 0xBEEF);
        assert!(r.characterization.pages > 50);
        assert_eq!(r.measured.dns.len(), r.characterization.pages as usize);
        assert_eq!(r.model_ip.plt.len(), r.measured.plt.len());
        assert_eq!(r.model_origin.tls.len(), r.measured.tls.len());
        assert_eq!(r.model_cdn_plt.len(), r.measured.plt.len());
        assert_eq!(r.plan.total_sites, r.characterization.pages);
        // Orderings that define the paper's story.
        let (m_dns, m_tls, m_plt) = r.measured.medians();
        let (i_dns, i_tls, i_plt) = r.model_ip.medians();
        let (o_dns, o_tls, o_plt) = r.model_origin.medians();
        assert!(o_dns <= i_dns && i_dns <= m_dns);
        assert!(o_tls <= i_tls && i_tls <= m_tls);
        assert!(o_plt <= i_plt && i_plt <= m_plt);
    }

    #[test]
    fn fast_predictions_match_full_reconstruction() {
        // predict_counts (the crawl's clone-free path) must agree with
        // predict's materialised reconstruction on real measured loads
        // for every grouping the crawl uses.
        use origin_core::model::predict;
        let dataset = Dataset::generate(DatasetConfig {
            sites: 60,
            seed: 0xFEED,
            ..Default::default()
        });
        let loader = PageLoader::new(BrowserKind::Chromium);
        let mut env = UniverseEnv::new(&dataset);
        for site in dataset.successful_sites().take(30) {
            let page = dataset.page_for(site);
            env.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let load = loader.load(&page, &mut env, &mut rng);
            for grouping in [
                CoalescingGrouping::ByIp,
                CoalescingGrouping::ByAs,
                CoalescingGrouping::BySingleAs(DEPLOYMENT_CDN_ASN),
            ] {
                let (full, _) = predict(&page, &load, grouping);
                let fast = predict_counts(&page, &load, grouping);
                assert_eq!(full, fast, "rank {} grouping {grouping:?}", site.rank);
            }
            // The fused walk the crawl actually runs must agree too.
            let [ip, by_as, cdn] = predict_counts3(&page, &load, DEPLOYMENT_CDN_ASN);
            assert_eq!(
                [ip, by_as, cdn],
                [
                    predict_counts(&page, &load, CoalescingGrouping::ByIp),
                    predict_counts(&page, &load, CoalescingGrouping::ByAs),
                    predict_counts(
                        &page,
                        &load,
                        CoalescingGrouping::BySingleAs(DEPLOYMENT_CDN_ASN)
                    ),
                ],
                "rank {} fused",
                site.rank
            );
        }
    }

    #[test]
    fn env_reuse_is_output_invisible() {
        // One env reused across visits (warm host-fact cache, per-site
        // DNS flush + stat deltas) must produce exactly the loads and
        // resolver stats a fresh env per site produces.
        let dataset = Dataset::generate(DatasetConfig {
            sites: 40,
            seed: 0xD00D,
            ..Default::default()
        });
        let loader = PageLoader::new(BrowserKind::Chromium);
        let mut shared = UniverseEnv::new(&dataset);
        for site in dataset.successful_sites().take(20) {
            let page = dataset.page_for(site);
            let mut fresh = UniverseEnv::new(&dataset);
            fresh.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let want = loader.load(&page, &mut fresh, &mut rng);
            let want_stats = fresh.resolver_stats();

            shared.flush_dns();
            let mut rng = SimRng::seed_from_u64(site.page_seed ^ 0xC0A1E5CE);
            let got = loader.load(&page, &mut shared, &mut rng);
            let got_stats = shared.take_resolver_stats();
            assert_eq!(want, got, "rank {}", site.rank);
            assert_eq!(want_stats, got_stats, "rank {}", site.rank);
        }
    }

    #[test]
    fn faulted_crawl_fires_and_reports() {
        let clean = run_crawl_threads(150, 0xBEEF, 2);
        let profile = FaultProfile::parse("drop=0.02,h421=0.02,middlebox=0.2").unwrap();
        let faulted = run_crawl_faulted(150, 0xBEEF, 2, None, Some(&profile));
        // The profile actually bites: recoveries happened and they cost
        // page load time and coalescing.
        assert!(faulted.metrics.counter("fault.retries") > 0);
        assert!(faulted.metrics.counter("fault.pool_evictions") > 0);
        assert!(faulted.metrics.counter("fault.middlebox_teardowns") > 0);
        let report = ResilienceReport::build(&clean, &faulted, &profile);
        assert!(report.plt_inflation_pct() > 0.0);
        assert!(report.coalescing_degradation_pct() > 0.0);
        assert!(
            report.faulted.2 > report.clean.2,
            "evictions open extra connections"
        );
        // The JSON is valid enough for jq and carries the full schema.
        let json = report.to_json();
        for name in FAULT_COUNTERS {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(json.contains("\"plt_inflation_pct\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn zero_profile_crawl_matches_clean_crawl() {
        let clean = run_crawl_threads(120, 0xBEEF, 2);
        let zero = run_crawl_faulted(120, 0xBEEF, 2, None, Some(&FaultProfile::none()));
        assert_eq!(clean.measured.plt, zero.measured.plt);
        assert_eq!(clean.metrics.to_json(), zero.metrics.to_json());
        let report = ResilienceReport::build(&clean, &zero, &FaultProfile::none());
        assert_eq!(report.plt_inflation_pct(), 0.0);
        assert_eq!(report.coalescing_degradation_pct(), 0.0);
        assert!(report.counters.iter().all(|&(_, v)| v == 0));
    }

    #[test]
    fn zero_legacy_share_is_byte_identical_to_the_pure_crawl() {
        // `--legacy-share 0` must not perturb a single output byte:
        // same loads, same metrics JSON (no `h1.*` keys), zero report.
        let pure = run_crawl_threads(120, 0xBEEF, 2);
        let mixed = run_crawl_mixed(120, 0xBEEF, 2, None, None, 0.0);
        assert_eq!(pure.measured.plt, mixed.measured.plt);
        assert_eq!(pure.metrics.to_json(), mixed.metrics.to_json());
        assert!(pure
            .metrics
            .counters()
            .all(|(name, _)| !name.starts_with("h1.")));
        let report = RedundancyReport::build(&mixed, 0.0);
        assert_eq!(report.legacy_pages, 0);
        assert_eq!(report.h1_connections, 0);
        assert!(report.redundant.iter().all(|&(_, v)| v == 0));
        assert_eq!(report.redundant_share("ideal_origin"), 0.0);
    }

    #[test]
    fn redundancy_grows_with_the_legacy_share() {
        // More legacy sites → more h1 connections → strictly more
        // connections the h2 rules would have merged, per policy.
        let quarter = run_crawl_mixed(150, 0xBEEF, 2, None, None, 0.25);
        let half = run_crawl_mixed(150, 0xBEEF, 2, None, None, 0.5);
        let r25 = RedundancyReport::build(&quarter, 0.25);
        let r50 = RedundancyReport::build(&half, 0.5);
        assert!(r25.legacy_pages > 0);
        assert!(r50.legacy_pages > r25.legacy_pages);
        assert!(r25.h1_connections > 0);
        assert!(r50.h1_connections > r25.h1_connections);
        for (&(name, v25), &(_, v50)) in r25.redundant.iter().zip(&r50.redundant) {
            assert!(v25 > 0, "policy {name} never fired at 25%");
            assert!(v50 > v25, "policy {name} not monotone: {v25} → {v50}");
        }
        // The ideal ORIGIN policy merges a superset of what any
        // evidence-bound policy merges.
        let ideal = r25.redundant.last().unwrap().1;
        assert!(r25.redundant.iter().all(|&(_, v)| v <= ideal));
        // Sanity on the report bytes: jq-parsable shape, full schema.
        let json = r25.to_json();
        for (name, _) in &r25.redundant {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn mixed_crawl_is_thread_invariant() {
        // The mixed universe keeps the crawl's core guarantee: the
        // thread count changes wall-clock time and nothing else —
        // metrics and the redundancy report are byte-identical.
        let one = run_crawl_mixed(120, 0x0516, 1, None, None, 0.25);
        let four = run_crawl_mixed(120, 0x0516, 4, None, None, 0.25);
        assert_eq!(one.measured.plt, four.measured.plt);
        assert_eq!(one.metrics.to_json(), four.metrics.to_json());
        assert_eq!(
            RedundancyReport::build(&one, 0.25).to_json(),
            RedundancyReport::build(&four, 0.25).to_json()
        );
    }

    #[test]
    fn zero_h3_share_is_byte_identical_to_the_pure_crawl() {
        // `--h3-share 0` must not perturb a single output byte: same
        // loads, same metrics JSON (no `h3.*` keys), zero report.
        let pure = run_crawl_threads(120, 0xBEEF, 2);
        let h3 = run_crawl_h3(120, 0xBEEF, 2, None, None, 0.0, 0.0);
        assert_eq!(pure.measured.plt, h3.measured.plt);
        assert_eq!(pure.metrics.to_json(), h3.metrics.to_json());
        assert!(pure
            .metrics
            .counters()
            .all(|(name, _)| !name.starts_with("h3.")));
        let report = H3Report::build(&pure, &h3, 0.0);
        assert_eq!(report.h3_pages, 0);
        assert!(report.counters.iter().all(|&(_, v)| v == 0));
        assert_eq!(report.plt_delta_pct(), 0.0);
        assert_eq!(report.zero_rtt_share(), 0.0);
    }

    #[test]
    fn h3_crawl_fires_and_reports() {
        let baseline = run_crawl_threads(150, 0xBEEF, 2);
        let h3 = run_crawl_h3(150, 0xBEEF, 2, None, None, 0.0, 0.6);
        // The QUIC path actually runs: Alt-Svc scopes are learned,
        // connections upgrade, and resumption fires.
        assert!(h3.metrics.counter("h3.pages") > 0);
        assert!(h3.metrics.counter("h3.altsvc_learned") > 0);
        assert!(h3.metrics.counter("h3.connections") > 0);
        assert!(h3.metrics.counter("h3.requests") > 0);
        // Bookkeeping balances: every connection ran exactly one
        // handshake, and 0-RTT attempts only spend banked tickets.
        assert_eq!(
            h3.metrics.counter("h3.connections"),
            h3.metrics.counter("h3.handshakes_1rtt") + h3.metrics.counter("h3.handshakes_0rtt"),
        );
        assert!(
            h3.metrics.counter("h3.handshakes_0rtt") + h3.metrics.counter("h3.zero_rtt_rejected")
                <= h3.metrics.counter("h3.tickets_issued")
        );
        assert!(
            h3.metrics.counter("h3.zero_rtt_rejected") <= h3.metrics.counter("h3.handshakes_1rtt")
        );
        assert!(h3.metrics.counter("h3.cids_issued") >= h3.metrics.counter("h3.connections"));
        let report = H3Report::build(&baseline, &h3, 0.6);
        assert_eq!(report.h3_pages, h3.metrics.counter("h3.pages"));
        assert!(report.zero_rtt_share() > 0.0);
        // The JSON is valid enough for jq and carries the full schema.
        let json = report.to_json();
        for name in H3_COUNTERS {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
        assert!(json.contains("\"plt_delta_pct\""));
        assert!(json.contains("\"zero_rtt_share\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn h3_crawl_is_thread_invariant() {
        // The h3 universe keeps the crawl's core guarantee: the
        // thread count changes wall-clock time and nothing else —
        // metrics and the h3 report are byte-identical.
        let base_one = run_crawl_threads(120, 0x0516, 1);
        let base_four = run_crawl_threads(120, 0x0516, 4);
        let one = run_crawl_h3(120, 0x0516, 1, None, None, 0.0, 0.5);
        let four = run_crawl_h3(120, 0x0516, 4, None, None, 0.0, 0.5);
        assert_eq!(one.measured.plt, four.measured.plt);
        assert_eq!(one.metrics.to_json(), four.metrics.to_json());
        assert_eq!(
            H3Report::build(&base_one, &one, 0.5).to_json(),
            H3Report::build(&base_four, &four, 0.5).to_json()
        );
    }

    #[test]
    fn h3_crawl_survives_fault_profiles() {
        // PR 5's fault classes over an h3 universe: 421 replays and
        // middlebox teardowns interact with Alt-Svc learning (a torn
        // connection advertises nothing), but every page still lands
        // and the zero-rate profile is invisible.
        let profile = FaultProfile::parse("drop=0.02,h421=0.02,middlebox=0.2").unwrap();
        let clean = run_crawl_h3(150, 0xBEEF, 2, None, None, 0.0, 0.6);
        let faulted = run_crawl_h3(150, 0xBEEF, 2, None, Some(&profile), 0.0, 0.6);
        assert_eq!(
            clean.characterization.pages, faulted.characterization.pages,
            "every page recovers: the crawl never loses a site to a fault"
        );
        assert!(faulted.metrics.counter("fault.retries") > 0);
        assert!(faulted.metrics.counter("fault.middlebox_teardowns") > 0);
        // Teardowns suppress Alt-Svc on the connection that died.
        assert!(faulted.metrics.counter("h3.altsvc_suppressed") > 0);
        // The QUIC path still works under fire.
        assert!(faulted.metrics.counter("h3.connections") > 0);
        assert_eq!(
            faulted.metrics.counter("h3.connections"),
            faulted.metrics.counter("h3.handshakes_1rtt")
                + faulted.metrics.counter("h3.handshakes_0rtt"),
        );
        // A zero-rate profile is byte-invisible on the h3 universe,
        // exactly as it is on the pure one.
        let zero = run_crawl_h3(150, 0xBEEF, 2, None, Some(&FaultProfile::none()), 0.0, 0.6);
        assert_eq!(clean.measured.plt, zero.measured.plt);
        assert_eq!(clean.metrics.to_json(), zero.metrics.to_json());
    }

    #[test]
    fn labels_resolve() {
        assert_eq!(asn_label(13335), "Cloudflare");
        assert_eq!(asn_label(15169), "Google");
        assert!(asn_label(60_005).contains("Tail"));
        assert!(asn_label(70_123).contains("Self-hosted"));
    }
}
