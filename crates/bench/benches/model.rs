//! §4 model benches: timeline reconstruction (Figures 2/3/9) and the
//! certificate planner (Figures 4/5, Tables 8/9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use origin_browser::{BrowserKind, PageLoader, UniverseEnv};
use origin_core::certplan::plan_site;
use origin_core::model::{predict, CoalescingGrouping};
use origin_netsim::SimRng;
use origin_webgen::{Dataset, DatasetConfig};

fn fixtures() -> (Dataset, Vec<(origin_web::Page, origin_web::PageLoad)>) {
    let d = Dataset::generate(DatasetConfig {
        sites: 80,
        ..Default::default()
    });
    let sites: Vec<_> = d.successful_sites().cloned().collect();
    let loader = PageLoader::new(BrowserKind::Chromium);
    let mut out = Vec::new();
    for site in &sites {
        let page = d.page_for(site);
        let mut env = UniverseEnv::new(&d);
        env.flush_dns();
        let mut rng = SimRng::seed_from_u64(site.page_seed);
        let load = loader.load(&page, &mut env, &mut rng);
        out.push((page, load));
    }
    (d, out)
}

fn bench_predict(c: &mut Criterion) {
    let (_d, pages) = fixtures();
    let mut g = c.benchmark_group("model_predict");
    for (label, grouping) in [
        ("ideal_ip", CoalescingGrouping::ByIp),
        ("ideal_origin", CoalescingGrouping::ByAs),
        ("cdn_only", CoalescingGrouping::BySingleAs(13335)),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &grouping,
            |b, &grouping| {
                b.iter(|| {
                    let mut total = 0u64;
                    for (page, load) in &pages {
                        let (p, _) = predict(page, load, grouping);
                        total += p.tls_connections;
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

fn bench_certplan(c: &mut Criterion) {
    let (d, pages) = fixtures();
    c.bench_function("certplan_sites", |b| {
        b.iter(|| {
            let mut additions = 0usize;
            for (page, _) in &pages {
                let cert = d.universe.cert_for(&page.root_host).cloned();
                let universe = &d.universe;
                let plan = plan_site(page, cert.as_ref(), |a, bb| {
                    a.registrable() == bb.registrable()
                        || (universe.asn_of_host(a) != 0
                            && universe.asn_of_host(a) == universe.asn_of_host(bb))
                });
                additions += plan.additions.len();
            }
            additions
        })
    });
}

criterion_group!(benches, bench_predict, bench_certplan);
criterion_main!(benches);
