//! HPACK throughput benches plus the Huffman on/off and
//! dynamic-table-size ablations called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use origin_h2::hpack::{Decoder, Encoder, Header};

fn request_headers(i: usize) -> Vec<Header> {
    vec![
        Header::new(":method", "GET"),
        Header::new(":scheme", "https"),
        Header::new(":authority", "static.example.com"),
        Header::new(":path", &format!("/assets/app-{i}.js?v=12345")),
        Header::new(
            "user-agent",
            "Mozilla/5.0 (X11; Linux x86_64; rv:96.0) Gecko/20100101 Firefox/96.0",
        ),
        Header::new("accept", "*/*"),
        Header::new("accept-encoding", "gzip, deflate, br"),
        Header::new("referer", "https://www.example.com/"),
        Header::new("cookie", "session=0123456789abcdef0123456789abcdef"),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("hpack_encode");
    for &huffman in &[true, false] {
        g.bench_with_input(
            BenchmarkId::new("request_stream", if huffman { "huffman" } else { "plain" }),
            &huffman,
            |b, &huffman| {
                b.iter(|| {
                    let mut enc = Encoder::new();
                    enc.use_huffman = huffman;
                    let mut total = 0usize;
                    for i in 0..64 {
                        total += enc.encode(&request_headers(i % 8)).len();
                    }
                    total
                })
            },
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut enc = Encoder::new();
    let blocks: Vec<Vec<u8>> = (0..64)
        .map(|i| enc.encode(&request_headers(i % 8)))
        .collect();
    let bytes: usize = blocks.iter().map(Vec::len).sum();
    let mut g = c.benchmark_group("hpack_decode");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("request_stream", |b| {
        b.iter(|| {
            let mut dec = Decoder::new();
            let mut n = 0usize;
            for blk in &blocks {
                n += dec.decode(blk).expect("valid").len();
            }
            n
        })
    });
    g.finish();
}

fn bench_table_sizes(c: &mut Criterion) {
    // Ablation: wire bytes vs dynamic table capacity.
    let mut g = c.benchmark_group("hpack_table_size");
    for &size in &[0usize, 512, 4096, 65_536] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let mut enc = Encoder::new();
                enc.set_max_table_size(size);
                let mut total = 0usize;
                for i in 0..64 {
                    total += enc.encode(&request_headers(i % 8)).len();
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_dynamic_churn(c: &mut Criterion) {
    // Worst case for the encoder's indexed lookup: every block carries
    // fresh cookie/path values, so the dynamic table churns (insert +
    // evict) continuously and the name/value indexes must stay in sync
    // with eviction. The O(1) lookup keeps this linear in headers, not
    // in table size × headers.
    let mut g = c.benchmark_group("hpack_dynamic_churn");
    g.bench_function("rotating_values", |b| {
        b.iter(|| {
            let mut enc = Encoder::new();
            let mut total = 0usize;
            for i in 0..256 {
                let headers = vec![
                    Header::new(":method", "GET"),
                    Header::new(":scheme", "https"),
                    Header::new(":authority", "static.example.com"),
                    Header::new(":path", &format!("/assets/chunk-{i}.js")),
                    Header::new("cookie", &format!("session={i:032x}")),
                    Header::new("x-request-id", &format!("{i:016x}")),
                ];
                total += enc.encode(&headers).len();
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_table_sizes,
    bench_dynamic_churn
);
criterion_main!(benches);
