//! Frame codec throughput, including the ORIGIN frame (RFC 8336) and
//! a full connection handshake exchange.

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use origin_h2::conn::{request_headers, ServerConfig};
use origin_h2::{Connection, Frame, FrameDecoder, OriginSet, Settings, StreamId};

fn bench_origin_frame(c: &mut Criterion) {
    let set = OriginSet::from_hosts([
        "www.example.com",
        "static.example.com",
        "img.example.com",
        "cdnjs.cloudflare.com",
        "fonts.gstatic.com",
        "www.google-analytics.com",
        "cdn.jsdelivr.net",
    ]);
    let frame = set.to_frame();
    let wire = frame.to_bytes();
    let mut g = c.benchmark_group("origin_frame");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(256);
            frame.encode(&mut buf);
            buf.len()
        })
    });
    g.bench_function("decode", |b| {
        let decoder = FrameDecoder::default();
        b.iter(|| {
            let mut buf = BytesMut::from(&wire[..]);
            decoder.decode(&mut buf).unwrap().unwrap()
        })
    });
    g.finish();
}

fn bench_data_stream(c: &mut Criterion) {
    // A realistic mixed frame stream: headers + body chunks + pings.
    let mut stream = BytesMut::new();
    for i in 0..32u32 {
        Frame::Data {
            stream: StreamId(2 * i + 1),
            data: Bytes::from(vec![0xAB; 1200]),
            end_stream: i % 4 == 3,
        }
        .encode(&mut stream);
        if i % 8 == 0 {
            Frame::Ping {
                ack: false,
                payload: [i as u8; 8],
            }
            .encode(&mut stream);
        }
    }
    let wire = stream.freeze();
    let mut g = c.benchmark_group("frame_stream");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("decode_mixed", |b| {
        let decoder = FrameDecoder::default();
        b.iter(|| {
            let mut buf = BytesMut::from(&wire[..]);
            let mut n = 0;
            while let Some(_f) = decoder.decode(&mut buf).unwrap() {
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_connection_exchange(c: &mut Criterion) {
    // Full sans-IO exchange: preface + SETTINGS + ORIGIN + 8 requests.
    c.bench_function("connection_exchange", |b| {
        b.iter(|| {
            let mut client = Connection::client("shop.example", Settings::default());
            let mut server = Connection::server(ServerConfig {
                settings: Settings::default(),
                origin_set: Some(OriginSet::from_hosts([
                    "shop.example",
                    "cdnjs.cloudflare.com",
                ])),
                authorized: vec![],
            });
            for i in 0..8 {
                client.send_request(
                    &request_headers("GET", "shop.example", &format!("/r{i}")),
                    true,
                );
            }
            let mut served = 0;
            loop {
                let cb = client.take_outgoing();
                let sb = server.take_outgoing();
                if cb.is_empty() && sb.is_empty() {
                    break;
                }
                if !cb.is_empty() {
                    for ev in server.recv(&cb).unwrap() {
                        if let origin_h2::Event::Headers { stream, .. } = ev {
                            server.send_response(stream, 200, b"0123456789abcdef");
                            served += 1;
                        }
                    }
                }
                if !sb.is_empty() {
                    client.recv(&sb).unwrap();
                }
            }
            served
        })
    });
}

criterion_group!(
    benches,
    bench_origin_frame,
    bench_data_stream,
    bench_connection_exchange
);
criterion_main!(benches);
