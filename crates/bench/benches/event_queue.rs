//! Event-queue scheduler throughput: the calendar queue that powers
//! [`origin_netsim::EventQueue`] against the binary-heap reference it
//! replaced, over workloads shaped like the simulator's (clustered
//! handshake timers, FIFO bursts at one instant, and a steady
//! schedule/pop churn with a bounded horizon).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use origin_netsim::event::{EventQueue, ReferenceHeapQueue};
use origin_netsim::{SimRng, SimTime};

/// One deterministic churn workload: seed events, then repeatedly pop
/// one and schedule a few more at bounded offsets, like a connection
/// posting its next timer from an event handler. Returns a checksum
/// so the work cannot be optimized away.
fn churn_calendar(events: u32, rng: &mut SimRng) -> u64 {
    let mut q = EventQueue::new();
    let mut sum = 0u64;
    for i in 0..64u32 {
        q.schedule(SimTime::from_micros(rng.range_u64(0, 5_000)), i);
    }
    let mut id = 64u32;
    while q.processed() < u64::from(events) {
        let (t, e) = q.next().expect("queue seeded non-empty");
        sum = sum.wrapping_add(t.as_micros()).wrapping_add(u64::from(e));
        // Same-instant FIFO burst every few pops, plus a spread timer.
        let burst = if e % 5 == 0 { 2 } else { 1 };
        for _ in 0..burst {
            let dt = rng.range_u64(0, 3_000);
            q.schedule(SimTime::from_micros(t.as_micros() + dt), id);
            id += 1;
        }
    }
    sum
}

/// The identical workload against the heap oracle (same RNG stream,
/// same schedule, same checksum).
fn churn_heap(events: u32, rng: &mut SimRng) -> u64 {
    let mut q = ReferenceHeapQueue::new();
    let mut sum = 0u64;
    let mut processed = 0u64;
    for i in 0..64u32 {
        q.schedule(SimTime::from_micros(rng.range_u64(0, 5_000)), i);
    }
    let mut id = 64u32;
    while processed < u64::from(events) {
        let (t, e) = q.next().expect("queue seeded non-empty");
        processed += 1;
        sum = sum.wrapping_add(t.as_micros()).wrapping_add(u64::from(e));
        let burst = if e % 5 == 0 { 2 } else { 1 };
        for _ in 0..burst {
            let dt = rng.range_u64(0, 3_000);
            q.schedule(SimTime::from_micros(t.as_micros() + dt), id);
            id += 1;
        }
    }
    sum
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &events in &[1_000u32, 20_000] {
        g.throughput(Throughput::Elements(u64::from(events)));
        g.bench_with_input(
            BenchmarkId::new("calendar", events),
            &events,
            |b, &events| b.iter(|| churn_calendar(events, &mut SimRng::seed_from_u64(0xE0E))),
        );
        g.bench_with_input(BenchmarkId::new("heap", events), &events, |b, &events| {
            b.iter(|| churn_heap(events, &mut SimRng::seed_from_u64(0xE0E)))
        });
    }
    g.finish();
}

fn bench_fifo_burst(c: &mut Criterion) {
    // Everything at one instant: the case where a heap pays sift cost
    // for ordering FIFO ties and the calendar pops sequentially from
    // one sorted bucket.
    let mut g = c.benchmark_group("event_queue_fifo_burst");
    let n = 4_096u32;
    g.throughput(Throughput::Elements(u64::from(n)));
    g.bench_function("calendar", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let t = SimTime::from_micros(1_000);
            for i in 0..n {
                q.schedule(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.next() {
                sum = sum.wrapping_add(u64::from(e));
            }
            sum
        })
    });
    g.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = ReferenceHeapQueue::new();
            let t = SimTime::from_micros(1_000);
            for i in 0..n {
                q.schedule(t, i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.next() {
                sum = sum.wrapping_add(u64::from(e));
            }
            sum
        })
    });
    g.finish();
}

criterion_group!(benches, bench_churn, bench_fifo_burst);
criterion_main!(benches);
